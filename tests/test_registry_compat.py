"""Back-compat shims for the pre-ProblemSpec registry surfaces.

The unified ``(problem, name)`` registry replaced six twin tables and
five twin getters.  The old names must keep resolving — to the
*identical* solver objects — while emitting ``DeprecationWarning``,
and the cross-family KeyError hints must survive verbatim (they are
pinned CLI-facing strings).
"""

import warnings

import pytest

from repro.algorithms import registry
from repro.algorithms.registry import (
    BACKENDS,
    ENGINE_KERNELS,
    SOLVERS,
    SWEEPS,
    get_engine_solver,
    get_solver,
    get_sweep,
    sweep_start_edges,
)
from repro.core.problemspec import SPECS
from repro.gen import natural_graph

#: The frozen pre-refactor solver-name sets: the unified registry must
#: expose exactly these (no silent drops), mirrored by the CI smoke
#: assertion in .github/workflows/ci.yml.
EXPECTED_NAMES = [
    (SOLVERS, "msr", ["dp-msr", "ilp", "lmg", "lmg-all"]),
    (SOLVERS, "bmr", ["bmr-lmg", "dp-bmr", "ilp", "mp", "mp-local"]),
    (SWEEPS, "msr", ["lmg", "lmg-all"]),
    (SWEEPS, "bmr", ["bmr-lmg"]),
    (ENGINE_KERNELS, "msr", ["lmg", "lmg-all"]),
    (ENGINE_KERNELS, "bmr", ["bmr-lmg", "mp", "mp-local"]),
]


def names(table, problem):
    return sorted(n for p, n in table if p == problem)


class TestUnifiedTables:
    def test_no_silent_solver_drops(self):
        for table, problem, expected in EXPECTED_NAMES:
            assert names(table, problem) == expected

    def test_every_key_problem_is_registered(self):
        for table in (SOLVERS, SWEEPS, ENGINE_KERNELS, BACKENDS):
            for problem, _name in table:
                assert problem in SPECS

    def test_new_getters_resolve_every_entry(self):
        for (problem, name), fn in SOLVERS.items():
            assert get_solver(problem, name) is fn
        for (problem, name), fn in SWEEPS.items():
            assert get_sweep(problem, name) is fn
        for (problem, name), fn in ENGINE_KERNELS.items():
            assert get_engine_solver(problem, name) is fn

    def test_unknown_problem_everywhere(self):
        with pytest.raises(ValueError, match="unknown problem 'mmr'"):
            get_solver("mmr", "lmg")
        with pytest.raises(ValueError, match="unknown problem 'mmr'"):
            get_sweep("mmr", "lmg")
        # an unknown first argument falls to the legacy (name, problem)
        # order, preserving the pinned pre-refactor messages
        with pytest.warns(DeprecationWarning), pytest.raises(
            ValueError, match="unknown engine problem 'mmr'"
        ):
            get_engine_solver("lmg", "mmr")
        with pytest.warns(DeprecationWarning), pytest.raises(
            KeyError, match="unknown MSR engine solver 'mmr'"
        ):
            get_engine_solver("mmr")

    def test_new_engine_getter_requires_name(self):
        with pytest.raises(TypeError, match="requires a solver name"):
            get_engine_solver("msr")


class TestDeprecatedTables:
    @pytest.mark.parametrize(
        "old,table,problem",
        [
            ("MSR_SOLVERS", SOLVERS, "msr"),
            ("BMR_SOLVERS", SOLVERS, "bmr"),
            ("MSR_SWEEPS", SWEEPS, "msr"),
            ("BMR_SWEEPS", SWEEPS, "bmr"),
            ("ENGINE_SOLVERS", ENGINE_KERNELS, "msr"),
            ("BMR_ENGINE_SOLVERS", ENGINE_KERNELS, "bmr"),
        ],
    )
    def test_view_matches_unified_table(self, old, table, problem):
        with pytest.warns(DeprecationWarning, match=old):
            view = getattr(registry, old)
        assert sorted(view) == names(table, problem)
        for name, fn in view.items():
            assert fn is table[(problem, name)]  # identical objects

    def test_views_are_stable_objects(self):
        with pytest.warns(DeprecationWarning):
            a = registry.MSR_SOLVERS
        with pytest.warns(DeprecationWarning):
            b = registry.MSR_SOLVERS
        assert a is b

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            registry.NOT_A_TABLE


class TestDeprecatedGetters:
    def test_solver_getters_delegate(self):
        with pytest.warns(DeprecationWarning, match="get_msr_solver"):
            assert registry.get_msr_solver("lmg") is get_solver("msr", "lmg")
        with pytest.warns(DeprecationWarning, match="get_bmr_solver"):
            assert registry.get_bmr_solver("mp") is get_solver("bmr", "mp")
        with pytest.warns(DeprecationWarning):
            dict_lmg = registry.get_msr_solver("lmg", backend="dict")
        assert dict_lmg is BACKENDS[("msr", "lmg")]["dict"]

    def test_sweep_getters_delegate(self):
        with pytest.warns(DeprecationWarning, match="get_msr_sweep"):
            assert registry.get_msr_sweep("lmg") is get_sweep("msr", "lmg")
        with pytest.warns(DeprecationWarning, match="get_bmr_sweep"):
            assert registry.get_bmr_sweep("bmr-lmg") is get_sweep("bmr", "bmr-lmg")
        with pytest.warns(DeprecationWarning):
            assert registry.get_msr_sweep("dp-msr") is None

    def test_engine_getter_legacy_order(self):
        with pytest.warns(DeprecationWarning, match="get_engine_solver"):
            legacy = get_engine_solver("lmg")
        assert legacy is get_engine_solver("msr", "lmg")
        with pytest.warns(DeprecationWarning):
            legacy_bmr = get_engine_solver("mp-local", "bmr")
        assert legacy_bmr is get_engine_solver("bmr", "mp-local")

    def test_engine_getter_new_order_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            get_engine_solver("msr", "lmg")
            get_engine_solver("bmr", "bmr-lmg")
            get_engine_solver("msr", name="lmg")
            get_engine_solver(problem="bmr", name="mp-local")

    def test_engine_getter_legacy_keyword_forms(self):
        # the pre-refactor signature was (name, problem="msr"): keyword
        # callers of the old shape must keep resolving with a warning
        with pytest.warns(DeprecationWarning):
            kw = get_engine_solver("mp-local", problem="bmr")
        assert kw is get_engine_solver("bmr", "mp-local")
        with pytest.warns(DeprecationWarning):
            name_only = get_engine_solver(name="lmg-all")
        assert name_only is get_engine_solver("msr", "lmg-all")

    def test_engine_getter_unknown_new_order_family_blamed_correctly(self):
        # a typo'd family in the documented new order must not be
        # misread as a legacy solver name (no warning, right argument)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(ValueError, match="unknown engine problem 'bsr'"):
                get_engine_solver("bsr", "lmg")

    def test_start_edges_shim(self):
        g = natural_graph(15, seed=3)
        with pytest.warns(DeprecationWarning, match="msr_sweep_start_edges"):
            old = registry.msr_sweep_start_edges(g, ["lmg"])
        assert old == sweep_start_edges("msr", g, ["lmg"])
        # families without an arborescence start share nothing
        assert sweep_start_edges("bmr", g, ["bmr-lmg"]) is None


class TestPinnedHintsSurviveVerbatim:
    """The cross-family redirect hints are CLI-facing pinned strings;
    the unified resolver must reproduce them byte-for-byte."""

    def test_solver_hints(self):
        with pytest.raises(KeyError) as exc:
            get_solver("msr", "mp")
        assert "('mp' is a BMR solver; use get_bmr_solver)" in str(exc.value)
        with pytest.raises(KeyError) as exc:
            get_solver("bmr", "lmg-all")
        assert "('lmg-all' is a MSR solver; use get_msr_solver)" in str(exc.value)

    def test_engine_hints(self):
        with pytest.raises(KeyError) as exc:
            get_engine_solver("msr", "mp")
        assert "('mp' is a BMR engine solver)" in str(exc.value)
        with pytest.raises(KeyError) as exc:
            get_engine_solver("bmr", "lmg")
        assert "('lmg' is a MSR engine solver)" in str(exc.value)

    def test_old_and_new_paths_raise_identical_messages(self):
        with pytest.raises(KeyError) as new_exc:
            get_solver("msr", "nope")
        with pytest.warns(DeprecationWarning), pytest.raises(KeyError) as old_exc:
            registry.get_msr_solver("nope")
        assert str(new_exc.value) == str(old_exc.value)
