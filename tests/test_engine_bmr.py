"""Tests for the ingest engine's BMR mode (retrieval-budget serving).

The ISSUE-4 acceptance bar, pinned here:

* the engine's post-re-solve plan is *identical* to a from-scratch BMR
  solve on the final graph;
* every per-arrival plan satisfies the max-retrieval budget, checked
  through the shared :mod:`repro.core.tolerance` helpers.
"""

import pytest

from repro.algorithms.registry import get_engine_solver
from repro.core.tolerance import within_budget, within_budget_recomputed
from repro.engine import IngestEngine
from repro.fastgraph import mp_local_array
# shared instance/budget helpers live in tests/helpers.py (see conftest)
from helpers import cached_repo, repo_graph_budget


class TestBMREngineEquivalence:
    @pytest.mark.parametrize("solver", ["mp", "mp-local", "bmr-lmg"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_post_resolve_plan_identical_to_batch(self, solver, seed):
        repo, batch, budget = repo_graph_budget(60, seed=seed, problem="bmr")
        engine = IngestEngine(
            problem="bmr", budget=budget, solver=solver, staleness_threshold=0.1
        )
        for stats in engine.ingest_repository(repo):
            assert within_budget(stats.max_retrieval, budget)
        tree = engine.resolve()
        ref = get_engine_solver(solver, "bmr")(batch.compile(), budget)
        assert tree.to_plan() == ref.to_plan()
        assert tree.total_storage == ref.total_storage
        assert tree.total_retrieval == ref.total_retrieval

    def test_every_arrival_plan_feasible_in_pure_repair_mode(self):
        repo, _, budget = repo_graph_budget(50, seed=6, problem="bmr")
        engine = IngestEngine(
            problem="bmr", budget=budget, staleness_threshold=float("inf")
        )
        for stats in engine.ingest_repository(repo):
            assert within_budget(stats.max_retrieval, budget)
        # only the bootstrap solve happened; the cached totals and the
        # exported plan must still be exact and feasible
        assert engine.resolves == 1
        engine.graph.compile()
        engine.tree.check_invariants()
        score_max = engine.plan().retrieval(engine.graph).maximum
        assert within_budget_recomputed(score_max, budget)

    def test_background_engine_converges_to_batch_plan(self):
        repo, batch, budget = repo_graph_budget(60, seed=13, problem="bmr")
        engine = IngestEngine(
            problem="bmr",
            budget=budget,
            staleness_threshold=0.02,
            background=True,
        )
        for stats in engine.ingest_repository(repo):
            assert within_budget(stats.max_retrieval, budget)
        engine.wait()
        engine.tree.check_invariants()
        tree = engine.resolve()
        ref = mp_local_array(batch.compile(), budget)
        assert tree.to_plan() == ref.to_plan()


class TestBMREngineBehavior:
    def test_staleness_accumulates_storage_and_resets(self):
        repo, _, budget = repo_graph_budget(60, seed=8, problem="bmr")
        engine = IngestEngine(
            problem="bmr", budget=budget, staleness_threshold=0.02
        )
        saw_reset = False
        prev = 0.0
        for stats in engine.ingest_repository(repo):
            if stats.resolved:
                assert stats.staleness == 0.0
                saw_reset = prev > 0.0 or saw_reset
            prev = stats.staleness
        assert saw_reset
        assert engine.resolves > 1

    def test_tight_budget_forces_materialization(self):
        # budget 0: every arrival must be materialized (retrieval 0)
        engine = IngestEngine(problem="bmr", budget=0.0)
        engine.ingest_version("a", 10.0)
        stats = engine.ingest_version(
            "b", 12.0, [("a", "b", 1.0, 5.0), ("b", "a", 1.0, 5.0)]
        )
        assert stats.max_retrieval == 0.0
        assert engine.plan().materialized == frozenset({"a", "b"})

    def test_negative_budget_raises(self):
        engine = IngestEngine(problem="bmr", budget=-1.0)
        with pytest.raises(ValueError, match="infeasible"):
            engine.ingest_version("a", 10.0)

    def test_missing_budget_rejected(self):
        with pytest.raises(ValueError, match="exactly one of budget"):
            IngestEngine(problem="bmr")

    def test_both_budget_modes_rejected(self):
        with pytest.raises(ValueError, match="exactly one of budget"):
            IngestEngine(problem="bmr", budget=5.0, budget_factor=2.0)

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="unknown problem"):
            IngestEngine(problem="mmr", budget=1.0)

    def test_msr_solver_names_rejected(self):
        with pytest.raises(KeyError, match="BMR engine solver"):
            IngestEngine(problem="bmr", budget=10.0, solver="lmg")

    def test_default_solver_is_mp_local(self):
        engine = IngestEngine(problem="bmr", budget=10.0)
        assert engine.solver_name == "mp-local"
        assert engine.problem == "bmr"
        assert engine.spec.budget_kind == "retrieval"


def brute_force_retrieval_lower_bound(graph) -> float:
    """Reference for the spec's online bound: ``max_v min{ r(e) :
    e a delta into v with s(e) < s_v }`` (0 with no qualifying delta)."""
    best = 0.0
    for v in graph.versions:
        s_v = graph.storage_cost(v)
        bound = min(
            (d.retrieval for d in graph.predecessors(v).values() if d.storage < s_v),
            default=0.0,
        )
        best = max(best, bound)
    return best


class TestBMRBudgetFactor:
    """The PR-4 open item: a BMR analogue of ``budget_factor`` built on
    an online retrieval lower bound (pinned against brute force)."""

    @pytest.mark.parametrize("factor", [1.0, 3.0])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_dynamic_budget_tracks_online_lower_bound(self, factor, seed):
        repo = cached_repo(50, seed=seed)
        engine = IngestEngine(
            problem="bmr", budget_factor=factor, staleness_threshold=0.1
        )
        for stats in engine.ingest_repository(repo):
            # the budget in force is exactly factor x the incremental
            # bound, which must equal the from-scratch recomputation
            expect = factor * brute_force_retrieval_lower_bound(engine.graph)
            assert stats.budget == expect
            if stats.resolved:
                # a fresh solve is feasible against the budget it used;
                # between solves the dynamic budget may tighten (the
                # bound shrinks when a cheaper qualifying delta lands),
                # leaving the standing plan stale until the next solve
                assert within_budget(stats.max_retrieval, stats.budget)
        assert engine.resolves >= 1
        assert engine.current_budget() > 0.0
        tree = engine.resolve()
        assert within_budget(tree.max_retrieval(), engine.current_budget())

    def test_lower_bound_hand_instance(self):
        # b's only cheaper-than-materialization delta forces retrieval 7;
        # c's cheaper deltas force min(5, 9) = 5; a has none -> bound 0.
        engine = IngestEngine(problem="bmr", budget_factor=2.0)
        engine.ingest_version("a", 10.0)
        engine.ingest_version("b", 20.0, [("a", "b", 6.0, 7.0)])
        assert engine.current_budget() == 2.0 * 7.0
        engine.ingest_version(
            "c", 30.0, [("a", "c", 4.0, 5.0), ("b", "c", 8.0, 9.0)]
        )
        assert engine.current_budget() == 2.0 * 7.0  # c's bound is 5 < 7
        # a delta NOT cheaper than materializing must not count
        engine.ingest_version("d", 3.0, [("a", "d", 3.0, 50.0)])
        assert engine.current_budget() == 2.0 * 7.0

    def test_lower_bound_survives_out_of_band_rebuild(self):
        engine = IngestEngine(problem="bmr", budget_factor=1.0)
        engine.ingest_version("a", 10.0)
        engine.ingest_version("b", 20.0, [("a", "b", 6.0, 7.0)])
        assert engine.current_budget() == 7.0
        # out-of-band removal: bookkeeping goes dirty, then rebuilds
        engine.graph.remove_delta("a", "b")
        engine.ingest_version("c", 5.0, [("a", "c", 1.0, 2.0)])
        assert engine.current_budget() == 2.0  # only c's delta qualifies
