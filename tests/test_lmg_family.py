"""Tests for LMG and LMG-All (Algorithms 1 and 7)."""

import math

import pytest

from repro.core import AUX, MSR, evaluate_plan
from repro.core.instances import figure1_graph, lmg_adversarial_chain
from repro.algorithms import brute_force_solve, lmg, lmg_all, min_storage_plan_tree
from repro.gen import natural_graph, random_digraph


def run_both(g, budget):
    return lmg(g, budget), lmg_all(g, budget)


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(6))
    def test_plans_respect_budget(self, seed):
        g = random_digraph(10, seed=seed)
        base = min_storage_plan_tree(g).total_storage
        total = g.total_version_storage()
        for frac in (1.0, 1.3, 2.0):
            budget = base * frac + 1
            for tree in run_both(g, min(budget, total * 2)):
                assert tree.total_storage <= budget + 1e-6
                plan = tree.to_plan()
                score = evaluate_plan(g, plan)
                assert score.feasible_reconstruction
                assert score.storage <= budget + 1e-6

    def test_infeasible_budget_raises(self):
        g = figure1_graph()
        base = min_storage_plan_tree(g).total_storage
        with pytest.raises(ValueError):
            lmg(g, base - 1)
        with pytest.raises(ValueError):
            lmg_all(g, base - 1)

    def test_tight_budget_returns_min_storage(self):
        g = figure1_graph()
        base = min_storage_plan_tree(g).total_storage
        t1 = lmg(g, base)
        t2 = lmg_all(g, base)
        assert t1.total_storage == t2.total_storage == base


class TestQuality:
    def test_figure1_budget_finds_optimum(self):
        g = figure1_graph()
        opt = brute_force_solve(g, MSR(21_000))
        t1, t2 = run_both(g, 21_000)
        assert t2.total_retrieval == pytest.approx(opt[1].sum_retrieval)
        assert t1.total_retrieval == pytest.approx(opt[1].sum_retrieval)

    @pytest.mark.parametrize("seed", range(8))
    def test_lmg_all_never_worse_than_lmg_here(self, seed):
        # Not a theorem (both are greedy), but holds on these instances
        # and in every experiment of the paper.
        g = random_digraph(9, extra_edge_prob=0.3, seed=seed)
        base = min_storage_plan_tree(g).total_storage
        budget = base * 1.5 + 5
        t1, t2 = run_both(g, budget)
        assert t2.total_retrieval <= t1.total_retrieval + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_vs_optimal_gap_bounded_on_small(self, seed):
        g = random_digraph(7, seed=seed)
        base = min_storage_plan_tree(g).total_storage
        budget = base * 1.4 + 3
        opt = brute_force_solve(g, MSR(budget))
        _, t2 = run_both(g, budget)
        assert t2.total_retrieval >= opt[1].sum_retrieval - 1e-9  # sanity
        # LMG-All is not exact, but should stay within a small factor here
        assert t2.total_retrieval <= max(10 * opt[1].sum_retrieval, opt[1].sum_retrieval + 50)

    def test_retrieval_monotone_in_budget(self):
        g = natural_graph(40, seed=2)
        base = min_storage_plan_tree(g).total_storage
        rets = []
        for frac in (1.0, 1.2, 1.5, 2.0, 3.0):
            rets.append(lmg_all(g, base * frac).total_retrieval)
        assert all(a >= b - 1e-6 for a, b in zip(rets, rets[1:]))


class TestTheorem1:
    """LMG's unbounded gap on the adversarial chain (Theorem 1).

    On the chain the *ratio-greedy step itself* is the trap: option (1)
    (materialize B, rho = 2/eps - 1) beats option (2) (materialize C,
    rho = 1/eps - eps), yet only option (2) leads to the optimum.  Both
    LMG and LMG-All take option (1) — the chain has no extra edges for
    LMG-All's wider move set to exploit — while the exact solvers and
    DP-MSR recover the optimum (1-eps)*b.
    """

    def test_greedy_falls_into_the_trap(self):
        b, c = 100.0, 10_000.0
        g = lmg_adversarial_chain(a=10_000.0, b=b, c=c)
        eps = b / c
        budget = 10_000.0 + (1 - eps) * b + c  # in [a+(1-eps)b+c, a+b+c)
        assert lmg(g, budget).total_retrieval == pytest.approx((1 - eps) * c)
        assert lmg_all(g, budget).total_retrieval == pytest.approx((1 - eps) * c)

    def test_optimum_is_materializing_c(self):
        from repro.algorithms import dp_msr

        b, c = 100.0, 10_000.0
        g = lmg_adversarial_chain(a=10_000.0, b=b, c=c)
        eps = b / c
        budget = 10_000.0 + (1 - eps) * b + c
        opt = brute_force_solve(g, MSR(budget))
        assert opt[1].sum_retrieval == pytest.approx((1 - eps) * b)
        assert sorted(opt[0].materialized) == ["A", "C"]
        # DP-MSR (exact on the extracted chain) also finds it
        res = dp_msr(g, budget, ticks=None)
        assert res.score.sum_retrieval == pytest.approx((1 - eps) * b)

    def test_gap_scales_with_c_over_b(self):
        gaps = []
        for c in (1_000.0, 10_000.0, 100_000.0):
            b = 100.0
            g = lmg_adversarial_chain(a=c, b=b, c=c)
            eps = b / c
            budget = c + (1 - eps) * b + c
            r_lmg = lmg(g, budget).total_retrieval
            r_opt = brute_force_solve(g, MSR(budget))[1].sum_retrieval
            gaps.append(r_lmg / r_opt)
        assert gaps[0] < gaps[1] < gaps[2]
        assert gaps[2] > 500  # c/b = 1000, the gap approaches it

    def test_invalid_chain_parameters(self):
        with pytest.raises(ValueError):
            lmg_adversarial_chain(b=10, c=10)


class TestDeterminism:
    """Regression for the candidate-list rewrite.

    LMG used to re-sort a candidate *set* with ``sorted(candidates,
    key=str)`` on every greedy round; it now keeps one pre-sorted list
    pruned in place.  The scan order is unchanged, so plans must be
    identical to the old implementation (re-implemented inline here) and
    across repeated runs.
    """

    @staticmethod
    def _lmg_resorting_reference(graph, storage_budget):
        # the pre-rewrite loop: set of candidates, re-sorted every round
        tree = min_storage_plan_tree(graph)
        candidates = {v for v in tree.parent if tree.parent[v] is not AUX}
        for _ in range(len(tree.parent)):
            if tree.total_storage >= storage_budget or not candidates:
                break
            best_rho = 0.0
            best_v = None
            best_dr = 0.0
            for v in sorted(candidates, key=str):
                if tree.parent[v] is AUX:
                    continue
                ds, dr = tree.swap_deltas(AUX, v)
                if tree.total_storage + ds > storage_budget * (1 + 1e-12) + 1e-9:
                    continue
                reduction = -dr
                if reduction <= 0:
                    continue
                rho = math.inf if ds <= 0 else reduction / ds
                if rho > best_rho or (
                    rho == best_rho == math.inf and reduction > -best_dr
                ):
                    best_rho = rho
                    best_v = v
                    best_dr = dr
            if best_v is None:
                break
            tree.apply_swap(AUX, best_v)
            candidates.discard(best_v)
        return tree

    @pytest.mark.parametrize("seed", range(6))
    def test_plans_identical_to_resorting_implementation(self, seed):
        g = random_digraph(11, extra_edge_prob=0.3, seed=seed)
        base = min_storage_plan_tree(g).total_storage
        for frac in (1.1, 1.6, 2.5):
            budget = base * frac
            old = self._lmg_resorting_reference(g, budget)
            new = lmg(g, budget)
            assert old.parent == new.parent
            assert old.total_storage == new.total_storage
            assert old.total_retrieval == new.total_retrieval

    def test_repeated_runs_identical(self):
        g = natural_graph(35, seed=9)
        base = min_storage_plan_tree(g).total_storage
        budget = base * 1.8
        first = lmg(g, budget)
        for _ in range(3):
            again = lmg(g, budget)
            assert again.parent == first.parent


class TestMechanics:
    def test_lmg_each_version_materialized_at_most_once(self):
        g = natural_graph(30, seed=4)
        budget = g.total_version_storage()  # everything fits
        tree = lmg(g, budget)
        mats = tree.materialized_versions()
        assert len(mats) == len(set(mats))

    def test_lmg_all_caches_consistent_after_run(self):
        g = random_digraph(12, extra_edge_prob=0.2, seed=21)
        base = min_storage_plan_tree(g).total_storage
        tree = lmg_all(g, base * 2)
        tree.check_invariants()

    def test_max_iterations_caps_work(self):
        g = natural_graph(30, seed=4)
        tree = lmg_all(g, g.total_version_storage(), max_iterations=1)
        # only the single best move applied
        assert tree.total_storage <= g.total_version_storage()
