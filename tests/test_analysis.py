"""Tests for the repro.analysis invariant linter.

Every rule gets a known-bad fixture (each expected finding asserted by
line and rule name) and a known-clean fixture (the compliant spelling
of the same code).  On top of the per-rule fixtures: suppression
semantics, the runner/CLI contract, and the load-bearing repo-wide
gate — ``src/repro`` must lint clean with every rule enabled.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    Module,
    all_rules,
    get_rule,
    lint_module,
    lint_paths,
    main,
    render_json,
    render_text,
)

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"


def run_rule(rule_name, source, *, name="fixture.mod", is_package=False):
    """Lint an in-memory snippet with a single rule."""
    module = Module.from_source(
        textwrap.dedent(source), name=name, is_package=is_package
    )
    return lint_module(module, [get_rule(rule_name)])


def lines_of(findings):
    return sorted(f.line for f in findings)


class TestToleranceDiscipline:
    def test_flags_inline_patterns(self):
        findings = run_rule(
            "tolerance-discipline",
            """\
            import math

            def check(sigma, budget):
                if sigma <= budget * (1 + 1e-9) + 1e-12:       # BinOp, 2 literals
                    return True
                if math.isclose(sigma, budget, rel_tol=1e-9):  # isclose w/ literal
                    return True
                return sigma - budget < 1e-6                   # Compare w/ literal
            """,
        )
        assert [f.rule for f in findings] == ["tolerance-discipline"] * 3
        assert lines_of(findings) == [4, 6, 8]

    def test_clean_spelling_passes(self):
        findings = run_rule(
            "tolerance-discipline",
            """\
            from repro.core.tolerance import within_budget

            def check(sigma, budget):
                return within_budget(sigma, budget)
            """,
        )
        assert findings == []

    def test_home_module_exempt(self):
        findings = run_rule(
            "tolerance-discipline",
            "EPS = 1e-9\n\ndef ok(a, b):\n    return a <= b * (1 + 1e-9) + 1e-12\n",
            name="repro.core.tolerance",
        )
        assert findings == []

    def test_non_tolerance_literals_ignored(self):
        findings = run_rule(
            "tolerance-discipline",
            "def f(x):\n    return x * 2.0 + 0.5 < 100.0\n",
        )
        assert findings == []


class TestSpecRouting:
    def test_flags_problem_literal_branches(self):
        findings = run_rule(
            "spec-routing",
            """\
            def pick(problem):
                if problem == "msr":
                    return 1
                if problem != "bmr":
                    return 2
                if problem in ("msr", "bmr"):
                    return 3
                return 0
            """,
        )
        assert [f.rule for f in findings] == ["spec-routing"] * 3
        assert lines_of(findings) == [2, 4, 6]

    def test_spec_dispatch_passes(self):
        findings = run_rule(
            "spec-routing",
            """\
            def pick(spec):
                return spec.default_panel_solvers
            """,
        )
        assert findings == []

    def test_home_module_exempt(self):
        findings = run_rule(
            "spec-routing",
            'def canon(problem):\n    return problem == "msr"\n',
            name="repro.core.problemspec",
        )
        assert findings == []

    def test_unrelated_string_compare_ignored(self):
        findings = run_rule(
            "spec-routing",
            'def f(fmt):\n    return fmt == "json"\n',
        )
        assert findings == []


class TestRegistryDiscipline:
    def test_flags_table_subscripts_and_shims(self):
        findings = run_rule(
            "registry-discipline",
            """\
            from repro.algorithms.registry import SOLVERS, get_msr_solver

            def pick(name):
                solver = SOLVERS[("msr", name)]
                legacy = get_msr_solver(name)
                return solver, legacy
            """,
        )
        assert all(f.rule == "registry-discipline" for f in findings)
        # the deprecated import itself, the subscript, and the shim call
        assert 1 in lines_of(findings)
        assert 4 in lines_of(findings)
        assert 5 in lines_of(findings)

    def test_getters_pass(self):
        findings = run_rule(
            "registry-discipline",
            """\
            from repro.algorithms.registry import get_solver

            def pick(spec, name):
                return get_solver(spec, name)
            """,
        )
        assert findings == []

    def test_registry_module_exempt(self):
        findings = run_rule(
            "registry-discipline",
            "SOLVERS = {}\n\ndef get_solver(k):\n    return SOLVERS[k]\n",
            name="repro.algorithms.registry",
        )
        assert findings == []


class TestLayering:
    def test_flags_upward_import(self):
        findings = run_rule(
            "layering",
            "from repro.fastgraph import lmg_array\n",
            name="repro.core.graph",
        )
        assert len(findings) == 1
        assert findings[0].rule == "layering"
        assert "upward import" in findings[0].message

    def test_downward_and_same_family_pass(self):
        findings = run_rule(
            "layering",
            """\
            from repro.core.graph import VersionGraph
            from repro.algorithms.lmg import local_move_greedy
            """,
            name="repro.algorithms.dp_msr",
        )
        assert findings == []

    def test_type_checking_imports_exempt(self):
        findings = run_rule(
            "layering",
            """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.fastgraph.compiled import CompiledGraph
            """,
            name="repro.core.graph",
        )
        assert findings == []

    def test_relative_import_resolution_in_package(self):
        # `from .lmg import x` inside algorithms/__init__.py must resolve
        # to repro.algorithms.lmg (same family), not repro.lmg.
        findings = run_rule(
            "layering",
            "from .lmg import local_move_greedy\n",
            name="repro.algorithms",
            is_package=True,
        )
        assert findings == []

    def test_registry_is_sanctioned_wiring_hub(self):
        findings = run_rule(
            "layering",
            "from repro.fastgraph.trajectory import TRAJECTORY_SOLVERS\n",
            name="repro.algorithms.registry",
        )
        assert findings == []

    def test_non_repro_modules_skipped(self):
        findings = run_rule(
            "layering",
            "from repro.cli import main\n",
            name="somepackage.tool",
        )
        assert findings == []


class TestLockDiscipline:
    FIXTURE = """\
    import threading

    class Worker:
        def __init__(self):
            self._lock = threading.Lock()
            self._thread = None  # guarded-by: _lock

        def bad(self):
            return self._thread is None

        def good_with(self):
            with self._lock:
                return self._thread is None

        def good_holds(self):  # holds: _lock
            return self._thread is None
    """

    def test_flags_unprotected_access_only(self):
        findings = run_rule("lock-discipline", self.FIXTURE)
        assert len(findings) == 1
        assert findings[0].rule == "lock-discipline"
        assert findings[0].line == 9
        assert "_thread" in findings[0].message

    def test_nested_function_resets_coverage(self):
        # A closure defined under `with self._lock:` may run on another
        # thread after the lock is released — coverage must not leak in.
        findings = run_rule(
            "lock-discipline",
            """\
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._out = None  # guarded-by: _lock

                def submit(self):
                    with self._lock:
                        def run():
                            return self._out
                        return run
            """,
        )
        assert lines_of(findings) == [11]

    def test_owner_thread_token(self):
        # Tokens that are not attributes (thread-ownership discipline)
        # are satisfied only by a `# holds:` annotation.
        findings = run_rule(
            "lock-discipline",
            """\
            class Ingest:
                def __init__(self):
                    self._gen = 0  # guarded-by: ingest-thread

                def bad(self):
                    return self._gen

                def good(self):  # holds: ingest-thread
                    return self._gen
            """,
        )
        assert lines_of(findings) == [6]

    def test_declaration_lines_exempt(self):
        findings = run_rule(
            "lock-discipline",
            """\
            import threading

            class W:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._x = 0  # guarded-by: _lock

                def reset(self):  # holds: _lock
                    self._x = 0
            """,
        )
        assert findings == []


class TestSuppression:
    def test_inline_marker_suppresses_named_rule(self):
        findings = run_rule(
            "tolerance-discipline",
            "def f(a, b):\n"
            "    return a <= b + 1e-9  # lint-ignore: tolerance-discipline\n",
        )
        assert findings == []

    def test_marker_on_comment_line_applies_to_next_code_line(self):
        findings = run_rule(
            "tolerance-discipline",
            "def f(a, b):\n"
            "    # justified: see docs\n"
            "    # lint-ignore: tolerance-discipline\n"
            "    return a <= b + 1e-9\n",
        )
        assert findings == []

    def test_bare_marker_suppresses_all_rules(self):
        findings = run_rule(
            "spec-routing",
            'def f(p):\n    return p == "msr"  # lint-ignore\n',
        )
        assert findings == []

    def test_marker_for_other_rule_does_not_suppress(self):
        findings = run_rule(
            "tolerance-discipline",
            "def f(a, b):\n    return a <= b + 1e-9  # lint-ignore: layering\n",
        )
        assert len(findings) == 1


class TestFramework:
    def test_all_rules_registered(self):
        names = sorted(all_rules())
        assert names == [
            "layering",
            "lock-discipline",
            "registry-discipline",
            "spec-routing",
            "tolerance-discipline",
        ]

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("no-such-rule")

    def test_finding_render_and_dict(self):
        f = Finding(path="x.py", line=3, col=5, rule="layering", message="m")
        assert f.render() == "x.py:3:5: layering: m"
        assert f.to_dict() == {
            "path": "x.py",
            "line": 3,
            "col": 5,
            "rule": "layering",
            "message": "m",
        }

    def test_reporters(self):
        f = Finding(path="x.py", line=1, col=1, rule="layering", message="m")
        assert "1 finding" in render_text([f])
        assert render_text([]) == "no findings"
        payload = json.loads(render_json([f]))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "layering"

    def test_parse_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([bad])
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"


class TestRunnerCli:
    def test_repo_wide_clean(self):
        """The gate: src/repro lints clean under every rule."""
        findings = lint_paths([SRC_ROOT / "repro"])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text('def f(p):\n    return p == "msr"\n')
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 0\n")
        assert main([str(dirty)]) == 1
        assert main([str(clean)]) == 0
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text('def f(p):\n    return p == "msr"\n')
        assert main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "spec-routing"

    def test_select_restricts_rules(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text('def f(p):\n    return p == "msr"\n')
        assert main([str(dirty), "--select", "tolerance-discipline"]) == 0
        capsys.readouterr()

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            main([str(tmp_path), "--select", "bogus"])
        assert err.value.code == 2
        capsys.readouterr()

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC_ROOT / "repro")],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_lint_subcommand(self):
        from repro.cli import main as cli_main

        assert cli_main(["lint", str(SRC_ROOT / "repro")]) == 0
