"""Shared fixtures for the test suite.

Consolidates the ad-hoc setup previously duplicated across
``test_vcs*.py`` / ``test_engine*.py`` / ``test_sweep_*.py``: seeded
random repositories, the version graphs derived from them, and the
span-based budget helpers.  The single implementation lives in
``tests/helpers.py`` (importable by test modules directly); these
fixtures are the preferred access path.  Factories cache per parameter
tuple for the whole session — treat their outputs as **read-only**; a
test that mutates a repo or graph must build its own.

Also registers the ``slow`` marker used to fence the heavy store /
engine matrix legs into a dedicated CI job (``pytest -m slow``).
"""

import pytest

import helpers


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: heavy matrix legs, run as a dedicated CI job (pytest -m slow)",
    )


@pytest.fixture(scope="session")
def repo_factory():
    """Cached ``(commits, seed, branch_prob, merge_prob) -> Repository``.

    ``repo_factory(40, seed=3)`` returns the same object every call, so
    heavyweight generation happens once per parameter tuple per session.
    """
    return helpers.cached_repo


@pytest.fixture(scope="session")
def graph_factory():
    """Cached version graph built from ``repo_factory``'s repository.

    Same signature and caching key as ``repo_factory``; the returned
    :class:`~repro.core.graph.VersionGraph` corresponds byte-for-byte to
    the repository from the same parameters.
    """
    return helpers.cached_graph


@pytest.fixture(scope="session")
def storage_budget():
    """``storage_budget(graph, span=2.0)`` — span x min-storage cost.

    The minimum achievable MSR storage is the min-storage arborescence
    over the graph's full-version pseudo-root; multiplying by ``span``
    yields a feasible budget with known slack, the idiom previously
    re-implemented in each engine test module.
    """
    return helpers.storage_span_budget


@pytest.fixture(scope="session")
def retrieval_budget():
    """``retrieval_budget(graph, span=2.0)`` — span x max retrieval cost.

    The BMR analogue of :func:`storage_budget`: scaling the graph's
    worst single-edge retrieval cost gives a feasible max-retrieval
    budget, the idiom previously local to ``test_engine_bmr.py``.
    """
    return helpers.retrieval_span_budget
