"""Validity checks for the docs/ site (ISSUE-4 acceptance).

`docs/` must render as sane Markdown, the README must link to it, and
internal cross-links plus the solver names the docs promise must stay
truthful as the registry evolves.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
DOCS = ROOT / "docs"
PAGES = ("architecture.md", "algorithms.md", "benchmarks.md")


@pytest.mark.parametrize("page", PAGES)
def test_page_exists_and_renders_as_markdown(page):
    path = DOCS / page
    text = path.read_text()
    assert text.startswith("# "), "every page leads with an H1"
    assert len(text) > 1000, "a docs page should be substantial"
    # balanced code fences (valid Markdown rendering)
    assert text.count("```") % 2 == 0
    # every table row has a header separator somewhere in the same table
    for line in text.splitlines():
        if line.startswith("|---"):
            break
    else:
        if "|" in text:
            pytest.fail(f"{page}: tables present but no separator row")


def test_readme_links_to_docs():
    readme = (ROOT / "README.md").read_text()
    for page in PAGES:
        assert f"docs/{page}" in readme, f"README must link docs/{page}"


def test_internal_doc_links_resolve():
    link = re.compile(r"\]\(([^)#]+)(?:#[^)]*)?\)")
    for page in PAGES:
        text = (DOCS / page).read_text()
        for target in link.findall(text):
            if target.startswith(("http://", "https://")):
                continue
            assert (DOCS / target).exists(), f"{page}: broken link {target}"


def test_algorithms_page_matches_registry():
    from repro.algorithms.registry import ENGINE_KERNELS, SOLVERS, SWEEPS
    from repro.core.problemspec import SPECS

    text = (DOCS / "algorithms.md").read_text()
    names = {
        name for table in (SOLVERS, SWEEPS, ENGINE_KERNELS) for _, name in table
    }
    for name in names:
        assert name in text, f"algorithms.md must mention solver {name!r}"
    for problem in SPECS:
        assert problem in text, f"algorithms.md must mention family {problem!r}"


def test_architecture_page_mentions_problemspec():
    text = (DOCS / "architecture.md").read_text()
    assert "ProblemSpec" in text, "architecture.md must document the spec layer"


def test_benchmarks_page_covers_every_bench_file():
    text = (DOCS / "benchmarks.md").read_text()
    bench_files = sorted(p.name for p in ROOT.glob("BENCH_*.json"))
    assert bench_files, "committed BENCH_*.json files expected"
    for name in bench_files:
        assert name in text, f"benchmarks.md must document {name}"
    # each documented file names its regeneration script, and it exists
    for script in re.findall(r"benchmarks/(\w+\.py)", text):
        assert (ROOT / "benchmarks" / script).exists(), script
