"""Hypothesis property tests for PlanTree mutation sequences.

The greedy heuristics rely on the incremental caches (retrieval costs,
subtree sizes, totals, Euler intervals) staying exact through arbitrary
swap sequences.  These tests drive random (valid) swap sequences on
random graphs and verify every cached quantity against a from-scratch
rebuild, plus the O(1) move-evaluation contract.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AUX, PlanTree, evaluate_plan
from repro.algorithms import min_storage_plan_tree
from repro.gen import random_digraph


def apply_random_swaps(tree: PlanTree, rng: np.random.Generator, steps: int) -> int:
    """Apply up to ``steps`` random valid swaps; returns how many applied."""
    ext = tree.graph
    edges = [(u, v) for u, v, _ in ext.deltas()]
    applied = 0
    for _ in range(steps):
        u, v = edges[int(rng.integers(0, len(edges)))]
        if tree.parent[v] == u:
            continue
        if u is not AUX and tree.is_ancestor(v, u):
            continue
        tree.apply_swap(u, v)
        applied += 1
    return applied


@given(
    seed=st.integers(0, 10**6),
    steps=st.integers(0, 25),
    n=st.integers(4, 12),
)
@settings(max_examples=60, deadline=None)
def test_caches_survive_random_swap_sequences(seed, steps, n):
    rng = np.random.default_rng(seed)
    g = random_digraph(n, extra_edge_prob=0.3, seed=seed % 1000)
    tree = min_storage_plan_tree(g)
    apply_random_swaps(tree, rng, steps)
    tree.check_invariants()  # compares every cache to a fresh rebuild


@given(seed=st.integers(0, 10**6), n=st.integers(4, 10))
@settings(max_examples=40, deadline=None)
def test_swap_evaluation_is_exact(seed, n):
    """swap_deltas must predict apply_swap's effect exactly."""
    rng = np.random.default_rng(seed)
    g = random_digraph(n, extra_edge_prob=0.4, seed=seed % 1000)
    tree = min_storage_plan_tree(g)
    apply_random_swaps(tree, rng, 5)
    ext = tree.graph
    candidates = [
        (u, v)
        for u, v, _ in ext.deltas()
        if tree.parent[v] != u and (u is AUX or not tree.is_ancestor(v, u))
    ]
    if not candidates:
        return
    u, v = candidates[int(rng.integers(0, len(candidates)))]
    ds, dr = tree.swap_deltas(u, v)
    s0, r0 = tree.total_storage, tree.total_retrieval
    tree.apply_swap(u, v)
    assert math.isclose(tree.total_storage, s0 + ds, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(tree.total_retrieval, r0 + dr, rel_tol=1e-9, abs_tol=1e-6)


@given(seed=st.integers(0, 10**6), n=st.integers(4, 10))
@settings(max_examples=40, deadline=None)
def test_tree_plans_match_dijkstra_evaluation(seed, n):
    """A PlanTree's cached totals upper-bound (and usually equal) the
    general Dijkstra evaluation of its exported plan."""
    rng = np.random.default_rng(seed)
    g = random_digraph(n, extra_edge_prob=0.3, seed=seed % 1000)
    tree = min_storage_plan_tree(g)
    apply_random_swaps(tree, rng, 8)
    score = evaluate_plan(g, tree.to_plan())
    assert score.feasible_reconstruction
    assert math.isclose(score.storage, tree.total_storage, rel_tol=1e-9, abs_tol=1e-6)
    assert score.sum_retrieval <= tree.total_retrieval + 1e-6
