"""Unit tests for storage plans and plan trees."""

import math

import pytest

from repro.core import AUX, GraphError, PlanTree, StoragePlan, evaluate_plan
from repro.core.instances import figure1_graph


@pytest.fixture()
def g():
    return figure1_graph()


class TestStoragePlan:
    def test_materialize_everything(self, g):
        plan = StoragePlan.of(g.versions)
        score = evaluate_plan(g, plan)
        # Figure 1(ii): storing all versions costs the sum of version sizes
        assert score.storage == 10000 + 10100 + 9700 + 9800 + 10120
        assert score.sum_retrieval == 0
        assert score.max_retrieval == 0

    def test_figure1_option_iii(self, g):
        # Figure 1(iii): materialize v1, store all parent->child deltas
        plan = StoragePlan.of(
            ["v1"], [("v1", "v2"), ("v1", "v3"), ("v2", "v4"), ("v2", "v5"), ("v3", "v5")]
        )
        score = evaluate_plan(g, plan)
        assert score.storage == 10000 + 200 + 1000 + 50 + 800 + 200
        # v5 is retrieved via the cheaper path v1->v2->v5? r=200+2500=2700
        # vs v1->v3->v5 = 3000+550=3550 -> Dijkstra picks 2700
        summary = plan.retrieval(g)
        assert summary.per_version["v5"] == 2700
        assert summary.per_version["v4"] == 600

    def test_figure1_option_iv(self, g):
        # Figure 1(iv): materialize v1 and v3
        plan = StoragePlan.of(["v1", "v3"], [("v1", "v2"), ("v2", "v4"), ("v3", "v5")])
        summary = plan.retrieval(g)
        assert summary.per_version["v3"] == 0
        assert summary.per_version["v5"] == 550
        assert summary.total == 0 + 200 + 0 + 600 + 550
        assert summary.maximum == 600

    def test_infeasible_plan(self, g):
        plan = StoragePlan.of(["v1"], [("v1", "v2")])
        summary = plan.retrieval(g)
        assert not summary.feasible
        assert math.isinf(summary.per_version["v4"])
        assert not plan.is_feasible(g)

    def test_unused_deltas_do_not_help_retrieval(self, g):
        base = StoragePlan.of(["v1", "v3"], [("v1", "v2"), ("v2", "v4"), ("v3", "v5")])
        extra = StoragePlan.of(["v1", "v3"], base.stored_deltas | {("v2", "v5")})
        # extra stored delta can only lower retrieval, raise storage
        assert extra.storage_cost(g) > base.storage_cost(g)
        assert extra.retrieval(g).total <= base.retrieval(g).total

    def test_validate_rejects_unknown(self, g):
        with pytest.raises(GraphError):
            StoragePlan.of(["nope"]).validate(g)
        with pytest.raises(GraphError):
            StoragePlan.of([], [("v1", "v4")]).validate(g)

    def test_union(self, g):
        a = StoragePlan.of(["v1"], [("v1", "v2")])
        b = StoragePlan.of(["v3"], [("v3", "v5")])
        u = a | b
        assert u.materialized == frozenset({"v1", "v3"})
        assert len(u.stored_deltas) == 2


def full_tree_parent_map():
    return {"v1": AUX, "v2": "v1", "v3": "v1", "v4": "v2", "v5": "v2"}


class TestPlanTree:
    def test_requires_extended_graph(self, g):
        with pytest.raises(GraphError):
            PlanTree(g, full_tree_parent_map())

    def test_costs_match_plan_evaluation(self, g):
        ext = g.extended()
        tree = PlanTree(ext, full_tree_parent_map())
        plan = tree.to_plan()
        score = evaluate_plan(g, plan)
        assert tree.total_storage == pytest.approx(score.storage)
        # tree paths are the only paths here, so Dijkstra agrees
        assert tree.total_retrieval == pytest.approx(score.sum_retrieval)
        assert tree.max_retrieval() == pytest.approx(score.max_retrieval)

    def test_retrieval_values(self, g):
        tree = PlanTree(g.extended(), full_tree_parent_map())
        assert tree.ret["v1"] == 0
        assert tree.ret["v2"] == 200
        assert tree.ret["v5"] == 2700
        assert tree.subtree_size["v2"] == 3
        assert tree.subtree_size["v1"] == 5

    def test_missing_version_rejected(self, g):
        pm = full_tree_parent_map()
        del pm["v5"]
        with pytest.raises(GraphError):
            PlanTree(g.extended(), pm)

    def test_cycle_rejected(self, g):
        # v2 and v4 form a cycle if v2's parent were v4 (no such delta,
        # so craft one on a custom graph)
        h = g.copy()
        h.add_delta("v4", "v2", 1, 1)
        pm = full_tree_parent_map()
        pm["v2"] = "v4"
        with pytest.raises(GraphError):
            PlanTree(h.extended(), pm)

    def test_swap_evaluation_matches_application(self, g):
        ext = g.extended()
        tree = PlanTree(ext, full_tree_parent_map())
        ds, dr = tree.swap_deltas("v3", "v5")
        before_s, before_r = tree.total_storage, tree.total_retrieval
        tree.apply_swap("v3", "v5")
        assert tree.total_storage == pytest.approx(before_s + ds)
        assert tree.total_retrieval == pytest.approx(before_r + dr)
        tree.check_invariants()

    def test_materialize(self, g):
        tree = PlanTree(g.extended(), full_tree_parent_map())
        tree.materialize("v3")
        assert tree.parent["v3"] is AUX
        assert tree.ret["v3"] == 0
        assert "v3" in tree.materialized_versions()
        tree.check_invariants()

    def test_ancestor_queries(self, g):
        tree = PlanTree(g.extended(), full_tree_parent_map())
        assert tree.is_ancestor("v1", "v5")
        assert tree.is_ancestor("v2", "v2")
        assert not tree.is_ancestor("v5", "v1")
        assert tree.is_ancestor(AUX, "v4")

    def test_swap_cycle_guard(self, g):
        h = g.copy()
        h.add_delta("v4", "v2", 1, 1)
        tree = PlanTree(h.extended(), full_tree_parent_map())
        with pytest.raises(GraphError):
            tree.apply_swap("v4", "v2")  # v4 is inside subtree(v2)

    def test_sequence_of_swaps_keeps_invariants(self, g):
        ext = g.extended()
        tree = PlanTree(ext, full_tree_parent_map())
        tree.apply_swap("v3", "v5")  # v5 now under v3
        tree.materialize("v3")
        tree.apply_swap("v1", "v3")  # attach v3 back under v1
        tree.check_invariants()
        # plan export matches
        plan = tree.to_plan()
        assert plan.is_feasible(g)

    def test_to_plan_roundtrip_cost(self, g):
        tree = PlanTree(g.extended(), full_tree_parent_map())
        tree.materialize("v3")
        plan = tree.to_plan()
        score = evaluate_plan(g, plan)
        assert score.storage == pytest.approx(tree.total_storage)
        # Dijkstra may find cheaper paths than tree paths in general, but
        # here the tree is the set of stored edges so values agree:
        assert score.sum_retrieval <= tree.total_retrieval + 1e-9

    def test_iter_nodes_topological(self, g):
        tree = PlanTree(g.extended(), full_tree_parent_map())
        order = list(tree.iter_nodes_topological())
        pos = {v: i for i, v in enumerate(order)}
        for v, p in tree.parent.items():
            if p is not AUX:
                assert pos[p] < pos[v]

    def test_copy_independent(self, g):
        tree = PlanTree(g.extended(), full_tree_parent_map())
        clone = tree.copy()
        clone.materialize("v2")
        assert tree.parent["v2"] == "v1"
        tree.check_invariants()
        clone.check_invariants()
