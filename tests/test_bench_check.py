"""Exit codes and diff output of the bench-regression comparator.

``repro-versioning bench-check`` (:mod:`repro.bench.check`) is the CI
perf-regression gate: it compares fresh ``BENCH_*.json`` payloads
against committed baselines and fails the build on regressions beyond
the noise margin.  CI relies on the exit-code contract (0 clean /
1 regression / 2 missing-or-bad-input), so these tests pin it against
synthetic payload pairs, along with the structural metric-tracking
rules and the human-readable report.
"""

import json

import pytest

from repro.bench.check import (
    DEFAULT_MARGIN,
    compare_payloads,
    format_report,
    main,
    tracked_metrics,
)

BASE = {
    "preset": "996.ICU",  # untracked: not a speedup, not a True bool
    "lmg_speedup": 8.0,
    "bmr_lmg_speedup": 6.0,
    "min_speedup": 5.0,
    "all_plans_identical": True,
    "sweep_never_slower": False,  # False baselines gate nothing
    "lmg_seconds": 12.5,  # absolute timings are deliberately untracked
    "null_speedup": None,  # null ratios are untracked too
}


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestTracking:
    def test_tracked_metrics_structural_rules(self):
        tracked = tracked_metrics(BASE)
        assert tracked == {
            "lmg_speedup": 8.0,
            "bmr_lmg_speedup": 6.0,
            "min_speedup": 5.0,
            "all_plans_identical": True,
        }

    def test_statuses(self):
        cand = dict(BASE)
        cand["lmg_speedup"] = 9.5  # improved
        cand["bmr_lmg_speedup"] = 5.0  # within the 0.5 margin (floor 3.0)
        cand["min_speedup"] = 2.0  # regression (floor 2.5)
        diffs = {d.key: d.status for d in compare_payloads(BASE, cand)}
        assert diffs == {
            "lmg_speedup": "improved",
            "bmr_lmg_speedup": "ok",
            "min_speedup": "regression",
            "all_plans_identical": "ok",
        }

    def test_margin_is_relative(self):
        cand = dict(BASE)
        cand["lmg_speedup"] = 7.3  # floor at margin 0.1 is 7.2
        statuses = {
            d.key: d.status for d in compare_payloads(BASE, cand, margin=0.1)
        }
        assert statuses["lmg_speedup"] == "ok"
        cand["lmg_speedup"] = 7.1
        statuses = {
            d.key: d.status for d in compare_payloads(BASE, cand, margin=0.1)
        }
        assert statuses["lmg_speedup"] == "regression"

    def test_boolean_gate_is_exact(self):
        cand = dict(BASE)
        cand["all_plans_identical"] = False
        diffs = {d.key: d.status for d in compare_payloads(BASE, cand)}
        assert diffs["all_plans_identical"] == "regression"

    def test_missing_metric_is_structural(self):
        cand = dict(BASE)
        del cand["min_speedup"]
        cand["all_plans_identical"] = None
        diffs = {d.key: d.status for d in compare_payloads(BASE, cand)}
        assert diffs["min_speedup"] == "missing"
        assert diffs["all_plans_identical"] == "missing"
        # a bool where a ratio belongs is also structural, not a value
        cand = dict(BASE)
        cand["min_speedup"] = True
        diffs = {d.key: d.status for d in compare_payloads(BASE, cand)}
        assert diffs["min_speedup"] == "missing"


class TestReport:
    def test_report_shows_floor_and_tags(self):
        cand = dict(BASE)
        cand["min_speedup"] = 2.0
        report = format_report("BENCH_x.json", compare_payloads(BASE, cand))
        assert "BENCH_x.json: 4 tracked metric(s), margin 0.5" in report
        assert "REGRESSION" in report
        assert "min_speedup: 5 -> 2 (floor 2.5)" in report

    def test_report_with_nothing_tracked(self):
        report = format_report("BENCH_y.json", compare_payloads({"a": 1}, {}))
        assert "nothing tracked" in report


class TestMainExitCodes:
    def test_clean_and_improved_exit_zero(self, tmp_path, capsys):
        base = write(tmp_path, "BENCH_a.json", BASE)
        cand = dict(BASE)
        cand["lmg_speedup"] = 100.0
        candp = write(tmp_path, "cand.json", cand)
        assert main([str(candp), "--baseline", str(base)]) == 0
        assert "improved" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path):
        base = write(tmp_path, "BENCH_a.json", BASE)
        cand = dict(BASE)
        cand["min_speedup"] = 0.5
        candp = write(tmp_path, "cand.json", cand)
        assert main([str(candp), "--baseline", str(base)]) == 1

    def test_missing_metric_exits_two(self, tmp_path):
        base = write(tmp_path, "BENCH_a.json", BASE)
        cand = {k: v for k, v in BASE.items() if k != "lmg_speedup"}
        candp = write(tmp_path, "cand.json", cand)
        assert main([str(candp), "--baseline", str(base)]) == 2

    def test_bad_json_exits_two(self, tmp_path, capsys):
        base = write(tmp_path, "BENCH_a.json", BASE)
        candp = tmp_path / "cand.json"
        candp.write_text("not json{")
        assert main([str(candp), "--baseline", str(base)]) == 2
        candp.write_text("[1, 2]")  # legal JSON, wrong shape
        assert main([str(candp), "--baseline", str(base)]) == 2
        assert "must be a JSON object" in capsys.readouterr().out

    def test_baseline_dir_matching_by_name(self, tmp_path, capsys):
        bdir = tmp_path / "baselines"
        bdir.mkdir()
        write(bdir, "BENCH_a.json", BASE)
        cand = write(tmp_path, "BENCH_a.json", BASE)
        assert main([str(cand), "--baseline-dir", str(bdir)]) == 0
        orphan = write(tmp_path, "BENCH_orphan.json", BASE)
        assert main([str(orphan), "--baseline-dir", str(bdir)]) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_worst_code_wins_across_candidates(self, tmp_path):
        bdir = tmp_path / "baselines"
        bdir.mkdir()
        write(bdir, "BENCH_ok.json", BASE)
        write(bdir, "BENCH_bad.json", BASE)
        ok = write(tmp_path, "BENCH_ok.json", BASE)
        bad_payload = dict(BASE)
        bad_payload["min_speedup"] = 0.1
        bad = write(tmp_path, "BENCH_bad.json", bad_payload)
        code = main([str(ok), str(bad), "--baseline-dir", str(bdir)])
        assert code == 1

    def test_explicit_baseline_requires_single_candidate(self, tmp_path, capsys):
        base = write(tmp_path, "BENCH_a.json", BASE)
        c1 = write(tmp_path, "c1.json", BASE)
        c2 = write(tmp_path, "c2.json", BASE)
        assert main([str(c1), str(c2), "--baseline", str(base)]) == 2
        assert "exactly one candidate" in capsys.readouterr().err

    def test_margin_flag_threads_through(self, tmp_path):
        base = write(tmp_path, "BENCH_a.json", BASE)
        cand = dict(BASE)
        cand["min_speedup"] = 4.0  # floor 4.5 at margin 0.1, 2.5 at default
        candp = write(tmp_path, "cand.json", cand)
        assert main([str(candp), "--baseline", str(base)]) == 0
        assert main([str(candp), "--baseline", str(base), "--margin", "0.1"]) == 1


class TestCliWiring:
    def test_bench_check_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        base = write(tmp_path, "BENCH_a.json", BASE)
        cand = write(tmp_path, "cand.json", BASE)
        code = cli_main(
            ["bench-check", str(cand), "--baseline", str(base)]
        )
        assert code == 0
        assert "tracked metric(s)" in capsys.readouterr().out

    def test_default_margin_documented_value(self):
        assert DEFAULT_MARGIN == pytest.approx(0.5)
