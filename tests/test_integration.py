"""Cross-module integration tests: full pipelines, solver cross-checks.

These tie the substrates together the way the benchmarks and examples
do: content-backed repository -> version graph -> every solver family,
with mutual consistency assertions (exact solvers agree; heuristics are
feasible and no better than exact; reductions agree with direct
solvers; parallel equals serial).
"""


import pytest

from repro.core import BMR, MSR, evaluate_plan
from repro.algorithms import (
    brute_force_solve,
    bmr_ilp,
    dp_bmr_heuristic,
    dp_msr,
    dp_msr_frontier,
    dp_msr_tree_reference,
    last_tree,
    lmg,
    lmg_all,
    min_storage_plan_tree,
    mp,
    msr_ilp,
    shortest_path_plan_tree,
)
from repro.gen import load_dataset, natural_graph, random_bidirectional_tree
from repro.vcs import build_graph_from_repo, random_repository


@pytest.fixture(scope="module")
def repo_graph():
    repo = random_repository(30, branch_prob=0.2, merge_prob=0.1, seed=99)
    return build_graph_from_repo(repo, name="integration-repo")


class TestRepoPipeline:
    def test_all_msr_solvers_feasible_and_ordered(self, repo_graph):
        g = repo_graph
        base = min_storage_plan_tree(g).total_storage
        budget = base * 1.6
        plans = {
            "lmg": lmg(g, budget).to_plan(),
            "lmg-all": lmg_all(g, budget).to_plan(),
            "dp-msr": dp_msr(g, budget, ticks=64).plan,
        }
        scores = {k: evaluate_plan(g, p) for k, p in plans.items()}
        for name, score in scores.items():
            assert score.feasible_reconstruction, name
            assert score.storage <= budget + 1e-6, name
        # the paper's headline ordering on natural graphs
        assert scores["lmg-all"].sum_retrieval <= scores["lmg"].sum_retrieval * 1.001
        assert scores["dp-msr"].sum_retrieval <= scores["lmg"].sum_retrieval * 1.05

    def test_bmr_solvers_meet_sla(self, repo_graph):
        g = repo_graph
        sla = g.max_retrieval_cost() * 2.5
        for plan in (mp(g, sla).to_plan(), dp_bmr_heuristic(g, sla).plan):
            score = evaluate_plan(g, plan)
            assert score.max_retrieval <= sla + 1e-6

    def test_extremes_bracket_everything(self, repo_graph):
        g = repo_graph
        base = min_storage_plan_tree(g)
        spt = shortest_path_plan_tree(g)
        mid = lmg_all(g, base.total_storage * 2).to_plan()
        score = evaluate_plan(g, mid)
        assert base.total_storage - 1e-6 <= score.storage <= spt.total_storage + 1e-6
        assert spt.total_retrieval - 1e-6 <= score.sum_retrieval <= base.total_retrieval + 1e-6


class TestExactSolversAgree:
    @pytest.mark.parametrize("seed", range(4))
    def test_three_way_msr_agreement(self, seed):
        """Brute force == ILP == exact DP reference on small trees."""
        g = random_bidirectional_tree(6, seed=200 + seed)
        budget = g.total_version_storage() * 0.6
        bf = brute_force_solve(g, MSR(budget))
        if bf is None:
            return
        ilp = msr_ilp(g, budget)
        ref = dp_msr_tree_reference(g, budget)
        frontier = dp_msr_frontier(g, ticks=None)
        assert ilp.score.sum_retrieval == pytest.approx(bf[1].sum_retrieval)
        assert ref.retrieval == pytest.approx(bf[1].sum_retrieval)
        assert frontier.best_retrieval_within(budget) == pytest.approx(bf[1].sum_retrieval)

    @pytest.mark.parametrize("seed", range(3))
    def test_bmr_agreement(self, seed):
        from repro.algorithms import dp_bmr

        g = random_bidirectional_tree(6, seed=300 + seed)
        budget = 20
        bf = brute_force_solve(g, BMR(budget))
        dp = dp_bmr(g, budget)
        ilp = bmr_ilp(g, budget)
        assert dp.storage == pytest.approx(bf[1].storage)
        assert ilp.score.storage == pytest.approx(bf[1].storage)


class TestDatasetPresetsSolvable:
    @pytest.mark.parametrize("name", ["datasharing", "LeetCodeAnimation"])
    def test_presets_run_through_solvers(self, name):
        g = load_dataset(name, scale=0.5 if name != "datasharing" else 1.0)
        base = min_storage_plan_tree(g).total_storage
        tree = lmg_all(g, base * 1.5)
        assert evaluate_plan(g, tree.to_plan()).feasible_reconstruction
        f = dp_msr_frontier(g, ticks=32)
        assert not f.is_empty
        # the s+r-extracted tree need not contain the min-storage
        # arborescence, so its cheapest plan may cost slightly more
        assert f.min_storage() <= base * 1.05


class TestHeuristicNeverBeatsExact:
    @pytest.mark.parametrize("seed", range(4))
    def test_msr_heuristics_lower_bounded_by_opt(self, seed):
        g = random_bidirectional_tree(7, seed=400 + seed)
        budget = g.total_version_storage() * 0.55
        bf = brute_force_solve(g, MSR(budget))
        if bf is None:
            return
        opt = bf[1].sum_retrieval
        for plan in (
            lmg(g, budget).to_plan(),
            lmg_all(g, budget).to_plan(),
            dp_msr(g, budget, ticks=16).plan,
            last_tree(g, 2.0).to_plan(),
        ):
            score = evaluate_plan(g, plan)
            if score.storage <= budget + 1e-6:
                assert score.sum_retrieval >= opt - 1e-6
