"""Checkout LRU cache: byte identity, replay savings, invalidation.

The cache trades a bounded number of decoded snapshots for shorter
delta replays — it must never change *what* checkout returns, only how
much of the chain it re-decodes:

* warm checkouts are byte-identical to cold ones (and to the repo);
* a warm sweep issues strictly fewer object-store reads — zero when
  every version fits in the cache;
* ``checkout_cache=0`` disables caching entirely;
* callers may mutate returned snapshots without poisoning the cache;
* ``sync`` invalidates: a version the new plan dropped can never be
  resurrected from cache.
"""

import pytest

from repro.algorithms.registry import get_solver
from repro.store import (
    MaterializationStore,
    MemoryObjectStore,
    StoreError,
)
from repro.vcs import build_graph_from_repo

from helpers import cached_repo, cached_graph, storage_span_budget


class CountingObjectStore(MemoryObjectStore):
    """A backend that counts ``get`` calls (decode traffic)."""

    def __init__(self):
        super().__init__()
        self.gets = 0

    def get(self, key):
        self.gets += 1
        return super().get(key)


def solved_plan(commits=40, seed=3):
    graph = cached_graph(commits, seed=seed)
    plan = get_solver("msr", "lmg", backend="array")(
        graph, storage_span_budget(graph, 2.0)
    )
    assert plan is not None
    return plan


def fresh_store(plan, repo, *, checkout_cache=64):
    objects = CountingObjectStore()
    store = MaterializationStore(objects, checkout_cache=checkout_cache)
    store.materialize(repo, plan)
    objects.gets = 0  # count checkout traffic only
    return store, objects


class TestCheckoutCache:
    def test_warm_equals_cold_equals_repo(self):
        repo = cached_repo(40, seed=3)
        plan = solved_plan(40, seed=3)
        cached, _ = fresh_store(plan, repo)
        cold, _ = fresh_store(plan, repo, checkout_cache=0)
        for commit in repo.commits:
            first = cached.checkout(commit.id)
            again = cached.checkout(commit.id)  # served from cache
            assert first == cold.checkout(commit.id) == commit.snapshot
            assert again == commit.snapshot

    def test_warm_sweep_reads_nothing(self):
        repo = cached_repo(40, seed=3)
        store, objects = fresh_store(plan := solved_plan(40, seed=3), repo)
        for commit in repo.commits:
            store.checkout(commit.id)
        cold_gets = objects.gets
        assert cold_gets > 0
        objects.gets = 0
        for commit in repo.commits:
            store.checkout(commit.id)
        # 40 versions, 64 slots: every snapshot is still resident
        assert objects.gets == 0

    def test_small_cache_serves_a_working_set(self):
        # 8 slots cannot hold a 40-version sweep, but they do hold the
        # access pattern the cache is for: repeated checkouts of a few
        # nearby versions (reviewing the tip of a branch)
        repo = cached_repo(40, seed=3)
        store, objects = fresh_store(
            solved_plan(40, seed=3), repo, checkout_cache=8
        )
        cold, cold_objects = fresh_store(
            solved_plan(40, seed=3), repo, checkout_cache=0
        )
        tip = [c.id for c in repo.commits[-6:]]
        for _ in range(3):
            for v in tip:
                store.checkout(v)
                cold.checkout(v)
        assert 0 < objects.gets < cold_objects.gets
        assert len(store._snap_cache) <= 8

    def test_zero_slots_disables_caching(self):
        repo = cached_repo(40, seed=3)
        store, objects = fresh_store(
            solved_plan(40, seed=3), repo, checkout_cache=0
        )
        for commit in repo.commits:
            store.checkout(commit.id)
        cold_gets = objects.gets
        objects.gets = 0
        for commit in repo.commits:
            store.checkout(commit.id)
        assert objects.gets == cold_gets
        assert not store._snap_cache

    def test_caller_mutation_does_not_poison_the_cache(self):
        repo = cached_repo(40, seed=3)
        store, _ = fresh_store(solved_plan(40, seed=3), repo)
        v = repo.commits[-1].id
        snap = store.checkout(v)
        snap["__evil__"] = ("mutated",)
        snap.clear()
        assert store.checkout(v) == repo.commits[-1].snapshot

    def test_sync_never_resurrects_a_dropped_version(self):
        repo = cached_repo(40, seed=3)
        store, _ = fresh_store(solved_plan(40, seed=3), repo)
        # warm the cache with every version, then migrate to a plan
        # that no longer covers one of them
        for commit in repo.commits:
            store.checkout(commit.id)
        graph = build_graph_from_repo(repo)  # private, mutable copy
        victim = next(
            v for v in graph.versions
            if all(p != v for c in repo.commits for p in c.parents)
        )
        graph.remove_version(victim)
        plan = get_solver("msr", "lmg", backend="array")(
            graph, storage_span_budget(graph, 3.0)
        )
        store.sync(plan)
        with pytest.raises(StoreError):
            store.checkout(victim)
        # survivors still check out byte-identically post-invalidation
        for commit in repo.commits:
            if commit.id != victim:
                assert store.checkout(commit.id) == commit.snapshot
