"""Tests for the online ingest engine and incremental compilation.

The ISSUE-3 acceptance bar, pinned here:

* for any ingest sequence, the engine's post-re-solve plan is
  *identical* to a from-scratch solve on the final graph;
* the incrementally extended :class:`CompiledGraph` equals a fresh
  ``compile()`` of the final graph, arrays compared elementwise.
"""

import numpy as np
import pytest

from repro.algorithms.registry import get_engine_solver, get_msr_solver
from repro.core.graph import AUX, GraphError, GraphMutation, VersionGraph
from repro.core.solution import PlanTree
from repro.engine import IngestEngine
from repro.fastgraph import ArrayPlanTree, CompiledGraph, lmg_array
from repro.fastgraph.arborescence import min_storage_parent_edges
from repro.gen import random_digraph
from repro.parallel import BackgroundResolver

# shared instance/budget helpers live in tests/helpers.py (see conftest)
from helpers import cached_repo, repo_graph_budget
from helpers import storage_span_budget as repo_budget

COMPARED_ARRAYS = (
    "node_storage",
    "edge_src",
    "edge_dst",
    "edge_storage",
    "edge_retrieval",
    "aux_edge",
    "out_indptr",
    "out_edges",
    "in_indptr",
    "in_edges",
)


def assert_compiled_equal(a: CompiledGraph, b: CompiledGraph):
    assert a.n == b.n and a.aux == b.aux and a.num_edges == b.num_edges
    assert a.nodes == b.nodes
    assert a.index == b.index
    for attr in COMPARED_ARRAYS:
        assert np.array_equal(getattr(a, attr), getattr(b, attr)), attr


class TestGraphMutationEvents:
    def test_listeners_see_every_mutation(self):
        g = VersionGraph()
        events = []
        g.subscribe(events.append)
        g.add_version("a", 5.0)
        g.add_version("b", 7.0)
        g.add_delta("a", "b", 2.0, 3.0)
        g.add_version("a", 6.0)  # update
        g.add_delta("a", "b", 1.0, 9.0, keep_cheapest=True)  # update (merge)
        g.remove_delta("a", "b")
        kinds = [e.kind for e in events]
        assert kinds == [
            "add_version",
            "add_version",
            "add_delta",
            "update_version",
            "update_delta",
            "remove_delta",
        ]
        # the keep_cheapest merge reports the merged costs
        merged = events[4]
        assert (merged.storage, merged.retrieval) == (1.0, 3.0)
        g.unsubscribe(events.append)
        g.add_version("c", 1.0)
        assert len(kinds) == 6

    def test_append_kinds_constant(self):
        assert GraphMutation.APPEND_KINDS == {"add_version", "add_delta"}

    def test_listeners_not_pickled(self):
        import pickle

        g = VersionGraph()
        g.add_version("a", 1.0)
        g.subscribe(lambda e: None)  # unpicklable listener must be dropped
        g2 = pickle.loads(pickle.dumps(g))
        assert g2.num_versions == 1
        assert g2._listeners == []


class TestIncrementalCompile:
    def test_appends_extend_cache_elementwise_equal(self):
        g = random_digraph(8, seed=1)
        cg = g.compile()
        for i in range(5):
            g.add_version(f"n{i}", 10.0 + i)
            g.add_delta(g.versions[i], f"n{i}", 1.0 + i, 2.0)
            g.add_delta(f"n{i}", g.versions[i], 1.5 + i, 2.5)
        assert g.compile() is cg  # extended in place, never rebuilt
        fresh = CompiledGraph(g)
        assert_compiled_equal(cg, fresh)

    def test_interleaved_compiles_stay_equal(self):
        g = random_digraph(6, seed=2)
        cg = g.compile()
        for i in range(4):
            g.add_version(f"m{i}", 3.0)
            g.add_delta(f"m{i}", g.versions[0], 1.0, 1.0)
            # force a refresh mid-stream: arrays must be correct each time
            assert_compiled_equal(g.compile(), CompiledGraph(g))
        assert g.compile() is cg

    def test_edge_id_current_between_refreshes(self):
        g = random_digraph(5, seed=3)
        cg = g.compile()
        g.add_version("x", 4.0)
        g.add_delta(g.versions[0], "x", 1.0, 1.0)
        vi = cg.index["x"]
        assert vi == 5
        real_eid = cg.edge_id(cg.index[g.versions[0]], vi)
        aux_eid = cg.edge_id(cg.aux, vi)
        cg.refresh()
        assert cg.edge_id(cg.index[g.versions[0]], vi) == real_eid
        assert int(cg.aux_edge[vi]) == aux_eid
        assert cg.edge_dst[real_eid] == vi

    def test_snapshot_is_frozen(self):
        g = random_digraph(6, seed=4)
        cg = g.compile()
        snap = cg.snapshot()
        n0, m0 = snap.n, snap.num_edges
        edge_src0 = snap.edge_src.copy()
        g.add_version("later", 9.0)
        g.add_delta(g.versions[0], "later", 1.0, 1.0)
        g.compile()  # refresh the live arrays
        assert (snap.n, snap.num_edges) == (n0, m0)
        assert np.array_equal(snap.edge_src, edge_src0)
        assert cg.n == n0 + 1
        # the snapshot still solves correctly
        tree = lmg_array(snap, repo_budget(random_digraph(6, seed=4)))
        assert tree.num_versions == n0

    def test_detach_mutations_are_absorbed(self):
        # removals tombstone + compact in place instead of invalidating
        g = random_digraph(6, seed=5)
        cg = g.compile()
        u, v, _ = next(g.deltas())
        g.remove_delta(u, v)
        cg2 = g.compile()
        assert cg2 is cg
        assert_compiled_equal(cg2, CompiledGraph(g))
        g.remove_version(g.versions[-1])
        cg3 = g.compile()
        assert cg3 is cg
        assert_compiled_equal(cg3, CompiledGraph(g))

    def test_update_mutations_invalidate(self):
        g = random_digraph(6, seed=5)
        cg = g.compile()
        u, v, d = next(g.deltas())
        g.add_delta(u, v, d.storage / 2, d.retrieval / 2, keep_cheapest=True)
        cg2 = g.compile()
        assert cg2 is not cg
        assert_compiled_equal(cg2, CompiledGraph(g))

    def test_compiling_extended_graph_opts_out(self):
        # a compile of an already-extended graph must not absorb events
        # (the caller mutates that graph directly: double-apply hazard)
        g = random_digraph(5, seed=6)
        ext = g.extended()
        cg = ext.compile()
        assert cg.graph is ext
        ext.add_version("new", 2.0)
        cg2 = ext.compile()
        assert cg2 is not cg


class TestArrayPlanTreeAppend:
    def test_append_matches_from_scratch(self):
        g = random_digraph(10, seed=7, extra_edge_prob=0.3)
        cg = g.compile()
        tree = ArrayPlanTree(cg, min_storage_parent_edges(cg))
        # grow the graph + tree by three versions, attach variously
        for i, parent_pos in enumerate([0, 3, 1]):
            name = f"g{i}"
            g.add_version(name, 50.0 + i)
            g.add_delta(g.versions[parent_pos], name, 5.0 + i, 7.0 + i)
            vi = cg.index[name]
            p_idx = cg.index[g.versions[parent_pos]]
            eid = cg.edge_id(p_idx, vi)
            new_v = tree.append_version(p_idx, eid, 5.0 + i, 7.0 + i)
            assert new_v == vi
        cg.refresh()
        # rebuild from the parent *map* — AUX par_edge ids in the live
        # tree go stale as later real edges shift the AUX id block
        rebuilt = ArrayPlanTree.from_parent_map(cg, tree.parent_map())
        assert np.array_equal(tree.parent, rebuilt.parent)
        assert np.array_equal(tree.size, rebuilt.size)
        assert np.allclose(tree.ret, rebuilt.ret)
        assert tree.total_storage == pytest.approx(rebuilt.total_storage)
        assert tree.total_retrieval == pytest.approx(rebuilt.total_retrieval)
        tree.check_invariants()

    def test_append_materialized(self):
        g = random_digraph(4, seed=8)
        cg = g.compile()
        tree = ArrayPlanTree(cg, min_storage_parent_edges(cg))
        g.add_version("mat", 42.0)
        vi = cg.index["mat"]
        eid = cg.edge_id(cg.aux, vi)
        tree.append_version(cg.aux, eid, 42.0, 0.0)
        assert tree.parent[vi] == cg.aux
        assert float(tree.ret[vi]) == 0.0
        assert "mat" in tree.materialized_versions()
        tree.check_invariants()

    def test_append_rejects_bad_parent(self):
        g = random_digraph(4, seed=9)
        cg = g.compile()
        tree = ArrayPlanTree(cg, min_storage_parent_edges(cg))
        with pytest.raises(GraphError):
            tree.append_version(99, 0, 1.0, 1.0)


class TestBatchSubtreeShift:
    def test_vectorized_shift_matches_dict_reference(self):
        # dense-ish graph: every LMG-All move shifts a real subtree; the
        # vectorized masked shift must stay bit-identical to PlanTree
        from repro.algorithms import lmg_all

        g = random_digraph(40, seed=10, extra_edge_prob=0.4)
        budget = repo_budget(g, span=1.6)
        ref = lmg_all(g, budget)
        arr = get_msr_solver("lmg-all")(g, budget)
        assert ref.to_plan() == arr
        tree = ArrayPlanTree.from_parent_map(g.compile(), ref.parent)
        assert tree.total_retrieval == pytest.approx(ref.total_retrieval)


class TestIngestEngineEquivalence:
    @pytest.mark.parametrize("solver", ["lmg", "lmg-all"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_post_resolve_plan_identical_to_batch(self, solver, seed):
        repo, batch, budget = repo_graph_budget(60, seed=seed)
        engine = IngestEngine(
            budget=budget, solver=solver, staleness_threshold=0.1
        )
        for stats in engine.ingest_repository(repo):
            assert stats.storage <= budget * (1 + 1e-9) + 1e-6
        tree = engine.resolve()
        ref = get_engine_solver(solver)(batch.compile(), budget)
        assert tree.to_plan() == ref.to_plan()
        assert tree.total_storage == ref.total_storage
        assert tree.total_retrieval == ref.total_retrieval
        assert_compiled_equal(engine.graph.compile(), CompiledGraph(batch))

    def test_ingest_graph_byte_identical_to_batch_graph(self):
        repo, batch, budget = repo_graph_budget(
            80, seed=5, merge_prob=0.15, branch_prob=0.25
        )
        assert any(len(c.parents) == 2 for c in repo.commits)  # merges exercised
        engine = IngestEngine(
            budget=budget, staleness_threshold=float("inf"), name="repo"
        )
        for _ in engine.ingest_repository(repo):
            pass
        assert engine.graph.to_dict() == batch.to_dict()
        assert_compiled_equal(engine.graph.compile(), CompiledGraph(batch))

    def test_live_plan_tree_invariants_hold_between_resolves(self):
        repo, _, budget = repo_graph_budget(50, seed=6)
        engine = IngestEngine(budget=budget, staleness_threshold=float("inf"))
        for _ in engine.ingest_repository(repo):
            pass
        # only one bootstrap solve happened; every other arrival was a
        # greedy attach — the cached totals must still be exact
        assert engine.resolves == 1
        engine.graph.compile()  # refresh arrays for the dict-view check
        engine.tree.check_invariants()
        plan = engine.plan()
        assert plan.is_feasible(engine.graph)

    def test_plan_tree_view_roundtrip(self):
        repo, _, budget = repo_graph_budget(30, seed=7)
        engine = IngestEngine(budget=budget)
        for _ in engine.ingest_repository(repo):
            pass
        cg = engine.graph.compile()
        view = engine.tree.to_plan_tree()
        assert isinstance(view, PlanTree)
        assert view.total_storage == pytest.approx(engine.tree.total_storage)
        assert cg.graph.has_aux


class TestIngestEngineBehavior:
    def test_staleness_resets_on_resolve(self):
        repo, _, budget = repo_graph_budget(60, seed=8)
        engine = IngestEngine(budget=budget, staleness_threshold=0.02)
        saw_reset = False
        prev = 0.0
        for stats in engine.ingest_repository(repo):
            if stats.resolved:
                assert stats.staleness == 0.0
                saw_reset = prev > 0.0 or saw_reset
            prev = stats.staleness
        assert saw_reset
        assert engine.resolves > 1

    def test_budget_factor_mode_stays_feasible(self):
        repo = cached_repo(60, seed=9)
        engine = IngestEngine(budget_factor=4.0, staleness_threshold=0.1)
        for stats in engine.ingest_repository(repo):
            assert stats.storage <= stats.budget * (1 + 1e-9) + 1e-6
        # the dynamic budget is a factor over a *lower* bound on the
        # minimum-storage arborescence: must be solvable throughout
        assert engine.resolves >= 1

    def test_infeasible_budget_raises(self):
        repo = cached_repo(20, seed=10)
        engine = IngestEngine(budget=1.0, staleness_threshold=float("inf"))
        with pytest.raises(ValueError, match="infeasible"):
            for _ in engine.ingest_repository(repo):
                pass

    def test_infeasible_attach_falls_back_to_resolve(self):
        # no attach candidate fits the budget, but a full re-solve can
        # restructure the plan (materialize the cheap newcomer, reach the
        # expensive old version through a delta): repair must fall back,
        # not fail
        engine = IngestEngine(budget=14.0, staleness_threshold=float("inf"))
        engine.ingest_version("old", 10.0)
        assert engine.resolves == 1
        stats = engine.ingest_version(
            "new",
            5.0,
            [("old", "new", 6.0, 6.0), ("new", "old", 1.0, 1.0)],
        )
        assert stats.resolved
        assert engine.resolves == 2
        assert stats.storage == 6.0  # materialize "new" + delta new->old
        assert engine.plan().materialized == frozenset({"new"})

    def test_duplicate_version_rejected(self):
        engine = IngestEngine(budget=100.0)
        engine.ingest_version("a", 10.0)
        with pytest.raises(GraphError):
            engine.ingest_version("a", 10.0)

    def test_non_incident_delta_rejected(self):
        engine = IngestEngine(budget=100.0)
        engine.ingest_version("a", 10.0)
        engine.ingest_version("b", 10.0, [("a", "b", 1.0, 1.0)])
        with pytest.raises(GraphError):
            engine.ingest_version("c", 10.0, [("a", "b", 1.0, 1.0)])

    def test_rejected_ingest_is_atomic(self):
        # a bad delta anywhere in the list must leave the graph, the
        # bookkeeping and the live tree untouched — the engine keeps
        # working afterwards as if the call never happened
        engine = IngestEngine(budget=1000.0)
        engine.ingest_version("a", 10.0)
        engine.ingest_version("b", 10.0, [("a", "b", 1.0, 1.0)])
        bad_calls = [
            ("x", [("a", "x", 1.0, 1.0), ("a", "b", 1.0, 1.0)]),  # non-incident 2nd
            ("x", [("a", "x", 1.0, 1.0), ("ghost", "x", 1.0, 1.0)]),  # unknown src
            ("x", [("a", "x", 1.0, 1.0), ("a", "x", 2.0, 2.0)]),  # duplicate edge
            ("x", [("x", "x", 1.0, 1.0)]),  # self-delta
            ("x", [("a", "x", -1.0, 1.0)]),  # negative cost
        ]
        for name, deltas in bad_calls:
            with pytest.raises(GraphError):
                engine.ingest_version(name, 5.0, deltas)
            assert "x" not in engine.graph
        # the engine is still fully functional and consistent
        engine.ingest_version("c", 10.0, [("b", "c", 2.0, 2.0)])
        tree = engine.resolve()
        ref = lmg_array(CompiledGraph(engine.graph), 1000.0)
        assert tree.to_plan() == ref.to_plan()
        assert engine.graph.num_versions == 3

    def test_out_of_band_mutation_triggers_rebuild(self):
        repo, _, budget = repo_graph_budget(40, seed=12)
        engine = IngestEngine(budget=budget, staleness_threshold=float("inf"))
        commits = iter(repo.commits)
        for _ in range(30):
            engine.ingest_commit(repo, next(commits))
        # out-of-band: a delta disappears (e.g. garbage collection)
        u, v, _ = next(engine.graph.deltas())
        engine.graph.remove_delta(u, v)
        for c in commits:
            engine.ingest_commit(repo, c)
        tree = engine.resolve()
        # reference: the same final graph, solved from scratch
        ref = lmg_array(CompiledGraph(engine.graph), budget)
        assert tree.to_plan() == ref.to_plan()

    def test_engine_requires_exactly_one_budget_mode(self):
        with pytest.raises(ValueError):
            IngestEngine()
        with pytest.raises(ValueError):
            IngestEngine(budget=5.0, budget_factor=2.0)

    def test_unknown_solver_rejected(self):
        with pytest.raises(KeyError, match="engine solver"):
            IngestEngine(budget=5.0, solver="dp-msr")


class TestBackgroundMode:
    def test_background_resolver_runs_and_collects(self):
        bg = BackgroundResolver()
        assert bg.poll() is None
        bg.submit(lambda x: x * 2, 21)
        bg.wait()
        ok, value = bg.poll()
        assert ok and value == 42
        assert not bg.busy

    def test_background_resolver_captures_exceptions(self):
        bg = BackgroundResolver()

        def boom():
            raise ValueError("nope")

        bg.submit(boom)
        bg.wait()
        ok, err = bg.poll()
        assert not ok and isinstance(err, ValueError)

    def test_background_resolver_single_slot(self):
        import threading

        bg = BackgroundResolver()
        release = threading.Event()
        bg.submit(release.wait, 5)
        with pytest.raises(RuntimeError):
            bg.submit(lambda: None)
        release.set()
        bg.wait()
        assert bg.poll() is not None

    def test_stale_failed_background_result_is_dropped(self):
        # a background solve that fails AFTER a sync resolve superseded
        # it (its captured budget no longer applies) must not abort the
        # ingest stream
        repo, batch, budget = repo_graph_budget(30, seed=14)
        engine = IngestEngine(
            budget=budget, staleness_threshold=float("inf"), background=True
        )
        commits = iter(repo.commits)
        for _ in range(10):
            engine.ingest_commit(repo, next(commits))

        def boom(cg, b):
            raise ValueError("infeasible against a superseded budget")

        engine._bg_sub_gen = engine._bg_gen
        engine._bg.submit(boom, None, 0.0)
        engine.resolve()  # sync resolve bumps the generation
        engine._bg.wait()
        engine._poll_background()  # stale failure: swallowed, not raised
        for c in commits:
            engine.ingest_commit(repo, c)
        tree = engine.resolve()
        assert tree.to_plan() == lmg_array(batch.compile(), budget).to_plan()

    def test_current_background_failure_still_raises(self):
        engine = IngestEngine(budget=1e9, background=True)
        engine.ingest_version("a", 10.0)

        def boom(cg, b):
            raise ValueError("genuinely infeasible")

        engine._bg_sub_gen = engine._bg_gen
        engine._bg.submit(boom, None, 0.0)
        engine._bg.wait()
        with pytest.raises(ValueError, match="genuinely infeasible"):
            engine._poll_background()
        # the failure nulls the tree (like _resolve_sync), so a caller
        # that catches the error gets a clean full re-solve next ingest
        assert engine.tree is None
        stats = engine.ingest_version("b", 10.0, [("a", "b", 1.0, 1.0)])
        assert stats.resolved
        engine.tree.check_invariants()

    def test_background_engine_converges_to_batch_plan(self):
        repo, batch, budget = repo_graph_budget(60, seed=13)
        engine = IngestEngine(
            budget=budget,
            solver="lmg",
            staleness_threshold=0.02,
            background=True,
        )
        for stats in engine.ingest_repository(repo):
            assert stats.storage <= budget * (1 + 1e-9) + 1e-6
        engine.wait()
        engine.tree.check_invariants()
        tree = engine.resolve()
        ref = lmg_array(batch.compile(), budget)
        assert tree.to_plan() == ref.to_plan()


class TestEngineAuxInvariants:
    def test_aux_index_tracks_graph_growth(self):
        engine = IngestEngine(budget=1e9)
        engine.ingest_version("r", 10.0)
        engine.ingest_version("a", 12.0, [("r", "a", 3.0, 3.0), ("a", "r", 3.0, 3.0)])
        cg = engine.graph.compile()
        assert cg.aux == 2
        assert cg.index[AUX] == 2
        tree = engine.tree
        assert len(tree.parent) == 3
        assert tree.parent[tree.cg.index["a"]] in (cg.index["r"], cg.aux)
