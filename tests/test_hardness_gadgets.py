"""Executable versions of the paper's hardness reductions (Section 3).

These tests run exact solvers on the reduction gadgets and map optimal
plans back to the source problems, validating the structural lemmas:

* Set Cover -> BMR (Theorem 3 / Lemma 4): materialized set versions of
  an optimal BMR plan at R=1 form a minimum set cover.
* Set Cover -> BSR (Theorem 3 / Lemma 5): with budget m - m_OPT + n the
  optimal BSR plan materializes exactly m_OPT set versions.
* Subset Sum -> MSR on an arborescence (Theorem 6).
* k-median -> MSR (Theorem 2): the materialized set of the optimal MSR
  plan is an optimal k-median set.
"""

import itertools

import pytest

from repro.core import BMR, BSR, MSR
from repro.core.instances import (
    SetCoverInstance,
    k_median_to_msr,
    set_cover_to_bmr,
    set_cover_to_bsr,
    subset_sum_to_msr,
)
from repro.algorithms import bmr_ilp, bsr_ilp, msr_ilp


def optimal_set_cover_size(inst: SetCoverInstance) -> int:
    for k in range(1, len(inst.sets) + 1):
        for combo in itertools.combinations(range(len(inst.sets)), k):
            if inst.covers(combo):
                return k
    raise AssertionError("uncoverable instance")


@pytest.fixture()
def cover_instance():
    # 6 elements; optimum cover is 2 sets ({0,1,2} and {3,4,5})
    return SetCoverInstance.of(
        6, [[0, 1, 2], [3, 4, 5], [0, 3], [1, 4], [2, 5], [0, 5]]
    )


class TestSetCoverInstance:
    def test_covers(self, cover_instance):
        assert cover_instance.covers([0, 1])
        assert not cover_instance.covers([2, 3])

    def test_greedy_is_feasible(self, cover_instance):
        chosen = cover_instance.greedy_cover()
        assert cover_instance.covers(chosen)

    def test_element_out_of_range(self):
        with pytest.raises(ValueError):
            SetCoverInstance.of(2, [[0, 5]])


class TestSetCoverToBMR:
    def test_optimal_bmr_yields_optimal_cover(self, cover_instance):
        graph, budget = set_cover_to_bmr(cover_instance, big_n=1000.0)
        res = bmr_ilp(graph, budget)
        assert res.optimal
        chosen = [v[1] for v in res.plan.materialized if v[0] == "a"]
        # Lemma 4: an optimal (improved) solution materializes only sets
        assert all(v[0] == "a" for v in res.plan.materialized)
        assert cover_instance.covers(chosen)
        assert len(chosen) == optimal_set_cover_size(cover_instance)

    def test_objective_tracks_cover_size(self, cover_instance):
        graph, budget = set_cover_to_bmr(cover_instance, big_n=1000.0)
        res = bmr_ilp(graph, budget)
        m_opt = optimal_set_cover_size(cover_instance)
        # storage ~ m_opt * N + one delta per remaining version
        n_rest = graph.num_versions - m_opt
        assert res.score.storage == pytest.approx(m_opt * 1000.0 + n_rest)


class TestSetCoverToBSR:
    def test_optimal_bsr_materializes_m_opt_sets(self, cover_instance):
        m_opt = optimal_set_cover_size(cover_instance)
        graph, budget = set_cover_to_bsr(cover_instance, m_opt, big_n=1000.0)
        res = bsr_ilp(graph, budget)
        assert res.optimal
        mats = [v for v in res.plan.materialized]
        assert len(mats) == m_opt
        chosen = [v[1] for v in mats if v[0] == "a"]
        assert cover_instance.covers(chosen)


class TestSubsetSumToMSR:
    @pytest.mark.parametrize(
        "values,target,expected",
        [
            ([3, 5, 8, 11], 13, 13),  # 5 + 8
            ([3, 5, 8, 11], 10, 8),  # best <= 10 is 8
            ([2, 4, 6], 12, 12),  # everything
            ([7, 9], 5, 0),  # nothing fits
        ],
    )
    def test_optimal_msr_solves_subset_sum(self, values, target, expected):
        graph, budget = subset_sum_to_msr(values, target)
        res = msr_ilp(graph, budget)
        assert res.optimal
        chosen = [v for v in res.plan.materialized if v != "r"]
        total = sum(values[i] for i in chosen)
        assert total <= target
        assert total == expected

    def test_gadget_satisfies_generalized_triangle(self):
        graph, _ = subset_sum_to_msr([3, 5, 8], 10)
        assert graph.check_generalized_triangle_inequality() == []


class TestKMedianToMSR:
    def test_line_metric(self):
        # 5 points on a line; k=2 optimal medians are positions 1 and 3
        pos = [0, 1, 2, 9, 10]
        n = len(pos)
        dist = [[abs(pos[i] - pos[j]) for j in range(n)] for i in range(n)]
        graph, budget = k_median_to_msr(dist, k=2)
        res = msr_ilp(graph, budget)
        assert res.optimal
        medians = sorted(res.plan.materialized)
        assert len(medians) == 2
        # optimal 2-median cost on this line is 1 (0,2 -> 1) + 1 (9 or 10)
        best = min(
            sum(min(dist[i][a], dist[i][b]) for i in range(n))
            for a in range(n)
            for b in range(n)
        )
        assert res.score.sum_retrieval == pytest.approx(best)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            k_median_to_msr([[0, 1], [1, 0], [2, 2]], k=1)
