"""Tests for DP-BMR (Algorithm 2): exactness, reconstruction, heuristic."""


import pytest

from repro.core import BMR, GraphError, evaluate_plan
from repro.algorithms import (
    brute_force_solve,
    dp_bmr,
    dp_bmr_heuristic,
    extract_index,
    mp,
)
from repro.algorithms.dp_bmr import TreeIndex, _orient, build_bidirectional_tree
from repro.gen import natural_graph, random_bidirectional_tree, random_digraph


class TestTreeIndex:
    def test_path_costs_directed(self):
        g = random_bidirectional_tree(6, seed=0)
        idx = TreeIndex(g, 0, _orient(g, 0))
        for u in g.versions:
            assert idx.path_cost[u][u] == 0
        # directed asymmetry: cost(u->v) generally != cost(v->u)
        asym = any(
            idx.path_cost[u][v] != idx.path_cost[v][u]
            for u in g.versions
            for v in g.versions
            if u != v
        )
        assert asym

    def test_pred_on_path(self):
        g = random_bidirectional_tree(8, seed=1)
        idx = TreeIndex(g, 0, _orient(g, 0))
        for u in g.versions:
            for v in g.versions:
                if u == v:
                    continue
                p = idx.pred_on_path(u, v)
                # the predecessor is adjacent to v and closer to u
                assert g.has_delta(p, v)
                assert idx.path_cost[u][p] + g.delta(p, v).retrieval == pytest.approx(
                    idx.path_cost[u][v]
                )

    def test_subtree_nodes(self):
        g = random_bidirectional_tree(10, seed=2)
        idx = TreeIndex(g, 0, _orient(g, 0))
        assert sorted(idx.subtree_nodes(0), key=str) == sorted(g.versions, key=str)
        for v in g.versions:
            for x in idx.subtree_nodes(v):
                assert idx.in_subtree(x, v)


class TestExactness:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        g = random_bidirectional_tree(6, seed=seed)
        # probe several budgets including tight and loose
        budgets = [0, 5, 10, 20, 40, 1000]
        for budget in budgets:
            res = dp_bmr(g, budget)
            bf = brute_force_solve(g, BMR(budget))
            assert bf is not None
            assert res.storage == pytest.approx(bf[1].storage), f"budget={budget}"

    @pytest.mark.parametrize("seed", range(5))
    def test_plan_is_feasible_and_matches_reported_storage(self, seed):
        g = random_bidirectional_tree(7, seed=100 + seed)
        res = dp_bmr(g, 25)
        score = evaluate_plan(g, res.plan)
        assert score.max_retrieval <= 25 + 1e-9
        assert score.storage == pytest.approx(res.storage)

    def test_zero_budget_materializes_everything(self):
        g = random_bidirectional_tree(6, seed=3)
        res = dp_bmr(g, 0)
        assert sorted(res.plan.materialized, key=str) == sorted(g.versions, key=str)
        assert res.storage == pytest.approx(g.total_version_storage())

    def test_huge_budget_hits_min_storage(self):
        from repro.algorithms import min_storage_plan_tree

        g = random_bidirectional_tree(8, seed=4)
        res = dp_bmr(g, 10**9)
        # on a tree, min storage over all plans is achievable by DP too
        best = min_storage_plan_tree(g).total_storage
        assert res.storage <= best + 1e-9

    def test_monotone_in_budget(self):
        g = random_bidirectional_tree(12, seed=5)
        values = [dp_bmr(g, b).storage for b in (0, 5, 10, 20, 40, 80)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_rejects_non_tree(self):
        g = random_digraph(6, extra_edge_prob=0.5, seed=6)
        with pytest.raises(GraphError):
            dp_bmr(g, 10)

    def test_index_reuse_consistent(self):
        g = random_bidirectional_tree(9, seed=7)
        idx = TreeIndex(g, 0, _orient(g, 0))
        for b in (5, 15, 45):
            assert dp_bmr(g, b).storage == pytest.approx(dp_bmr(g, b, index=idx).storage)


class TestCenters:
    def test_centers_are_materialized_and_paths_within_budget(self):
        g = random_bidirectional_tree(10, seed=8)
        idx = TreeIndex(g, 0, _orient(g, 0))
        res = dp_bmr(g, 30, index=idx)
        for v, u in res.centers.items():
            assert res.centers[u] == u, "centers must be materialized"
            assert idx.path_cost[u][v] <= 30 + 1e-9


class TestHeuristic:
    @pytest.mark.parametrize("seed", range(5))
    def test_heuristic_feasible_on_general_graphs(self, seed):
        g = random_digraph(10, extra_edge_prob=0.3, seed=seed)
        res = dp_bmr_heuristic(g, 25)
        score = evaluate_plan(g, res.plan)
        assert score.feasible_reconstruction
        assert score.max_retrieval <= 25 + 1e-9
        assert score.storage == pytest.approx(res.storage)

    def test_heuristic_vs_mp_on_natural_graph(self):
        # the Figure-13 claim: DP-BMR usually beats MP except near R=0
        g = natural_graph(60, seed=9)
        budget = g.max_retrieval_cost() * 4
        dp_res = dp_bmr_heuristic(g, budget)
        mp_res = mp(g, budget)
        assert dp_res.storage <= mp_res.total_storage * 1.05

    def test_index_reuse_on_heuristic(self):
        g = natural_graph(40, seed=10)
        idx = extract_index(g)
        a = dp_bmr_heuristic(g, 1000, index=idx).storage
        b = dp_bmr_heuristic(g, 1000).storage
        assert a == pytest.approx(b)


class TestBidirectionalTreeBuilder:
    def test_synthetic_reverse_edges(self):
        from repro.algorithms.arborescence import extract_tree_parent_map

        g = random_digraph(8, extra_edge_prob=0.0, seed=11)
        # drop reverse edges to force synthesis
        for u, v, _ in list(g.deltas()):
            if u > v and g.has_delta(u, v):
                g.remove_delta(u, v)
        root, pm = extract_tree_parent_map(g)
        tree, synthetic = build_bidirectional_tree(g, root, pm)
        assert tree.is_bidirectional_tree()
        for (u, v) in synthetic:
            d = tree.delta(u, v)
            assert d.storage == g.storage_cost(v)
            assert d.retrieval == 0
