"""Byte-identity roundtrips through the materialization store.

The acceptance bar for the store executor: for seeded random
repositories solved under BOTH problem families (MSR storage budget,
BMR retrieval budget) and BOTH solver backends (dict reference, array
kernels), materializing the plan and checking out EVERY version must
reproduce the committed snapshot byte-for-byte, and the store must
never hold more bytes than the sum of raw snapshots (dedup engaged).
"""

import pytest

from repro.algorithms.registry import get_solver
from repro.store import (
    MaterializationStore,
    materialize,
    plan_parent_map,
    snapshot_digest,
)

SOLVER = {"msr": "lmg", "bmr": "mp-local"}

#: The fast leg: one instance per (problem, backend) cell.
FAST_CASES = [
    ("msr", "dict", 40, 3),
    ("msr", "array", 40, 3),
    ("bmr", "dict", 40, 3),
    ("bmr", "array", 40, 3),
]

#: The heavy matrix: more commits, more seeds, branchier histories.
SLOW_CASES = [
    (problem, backend, commits, seed)
    for problem in ("msr", "bmr")
    for backend in ("dict", "array")
    for commits, seed in ((60, 0), (80, 7))
]


def solve_plan(graph, problem, backend, budget_fn):
    """A feasible plan for ``graph`` under ``problem`` via ``backend``."""
    plan = get_solver(problem, SOLVER[problem], backend=backend)(
        graph, budget_fn(graph)
    )
    assert plan is not None, "budget helper produced an infeasible budget"
    return plan


def budget_for(problem, storage_budget, retrieval_budget):
    return storage_budget if problem == "msr" else retrieval_budget


def assert_roundtrip(repo, plan):
    """Materialize ``plan`` and verify every version byte-identically."""
    store = materialize(repo, plan)
    raw_bytes = sum(c.total_bytes() for c in repo.commits)
    for commit in repo.commits:
        snap = store.checkout(commit.id)
        assert snap == commit.snapshot, f"version {commit.id} differs"
        # dict equality on dict[str, tuple[str, ...]] IS byte identity:
        # the blob codec encodes exactly these lines joined by newlines
        assert snapshot_digest(snap) == store.digest(commit.id)
    assert store.total_bytes() <= raw_bytes, (
        f"store holds {store.total_bytes()} bytes > "
        f"{raw_bytes} raw snapshot bytes"
    )
    assert store.fsck() == []
    return store


@pytest.mark.parametrize("problem,backend,commits,seed", FAST_CASES)
def test_roundtrip_fast(
    problem,
    backend,
    commits,
    seed,
    repo_factory,
    graph_factory,
    storage_budget,
    retrieval_budget,
):
    repo = repo_factory(commits, seed=seed)
    graph = graph_factory(commits, seed=seed)
    budget_fn = budget_for(problem, storage_budget, retrieval_budget)
    plan = solve_plan(graph, problem, backend, budget_fn)
    assert_roundtrip(repo, plan)


@pytest.mark.slow
@pytest.mark.parametrize("problem,backend,commits,seed", SLOW_CASES)
def test_roundtrip_matrix(
    problem,
    backend,
    commits,
    seed,
    repo_factory,
    graph_factory,
    storage_budget,
    retrieval_budget,
):
    repo = repo_factory(commits, seed=seed, branch_prob=0.25, merge_prob=0.1)
    graph = graph_factory(commits, seed=seed, branch_prob=0.25, merge_prob=0.1)
    budget_fn = budget_for(problem, storage_budget, retrieval_budget)
    plan = solve_plan(graph, problem, backend, budget_fn)
    assert_roundtrip(repo, plan)


def test_dict_and_array_materialize_identically(
    repo_factory, graph_factory, storage_budget
):
    """Plan-identical backends produce object-identical stores."""
    repo = repo_factory(40, seed=3)
    graph = graph_factory(40, seed=3)
    stores = {}
    for backend in ("dict", "array"):
        plan = solve_plan(graph, "msr", backend, storage_budget)
        stores[backend] = materialize(repo, plan)
    a, b = stores["dict"], stores["array"]
    assert a.edge_set() == b.edge_set()
    assert set(a.objects.keys()) == set(b.objects.keys())


def test_plan_structure_respected(repo_factory, graph_factory, storage_budget):
    """Materialized/delta split in the store mirrors the plan exactly."""
    repo = repo_factory(40, seed=3)
    graph = graph_factory(40, seed=3)
    plan = solve_plan(graph, "msr", "dict", storage_budget)
    store = materialize(repo, plan)
    parent = plan_parent_map(plan)
    for v, p in parent.items():
        assert store.is_materialized(v) == (p is None)
    assert store.edge_set() == {(p, v) for v, p in parent.items()}


def test_file_store_survives_reopen(
    tmp_path, repo_factory, graph_factory, storage_budget
):
    """A directory-backed store reopens byte-identically from disk."""
    repo = repo_factory(30, seed=5)
    graph = graph_factory(30, seed=5)
    plan = solve_plan(graph, "msr", "dict", storage_budget)
    store = MaterializationStore.open(tmp_path)
    store.materialize(repo, plan)

    reopened = MaterializationStore.open(tmp_path)
    for commit in repo.commits:
        assert reopened.checkout(commit.id) == commit.snapshot
    assert reopened.fsck() == []


def test_empty_file_transitions_roundtrip():
    """Empty files appearing/vanishing must survive the delta codec.

    Regression: content-first change detection saw ``() == ()`` for a
    create or delete of a zero-line file and silently dropped the entry,
    leaving every descendant checkout with a digest mismatch.
    """
    from repro.core.solution import StoragePlan
    from repro.vcs.repo import Repository

    repo = Repository()
    repo.commit({"a.txt": ("hello",)})                    # 0
    repo.commit({"a.txt": ("hello",), "empty.txt": ()})   # 1: create empty
    repo.commit({"a.txt": ("hello",)})                    # 2: delete empty
    repo.commit({"a.txt": ()})                            # 3: truncate to empty
    repo.commit({})                                       # 4: delete empty a.txt
    plan = StoragePlan.of([0], [(0, 1), (1, 2), (2, 3), (3, 4)])
    # no dedup assertion: codec overhead dominates a 47-byte micro-repo
    store = materialize(repo, plan)
    for commit in repo.commits:
        snap = store.checkout(commit.id)
        assert snap == commit.snapshot, f"version {commit.id} differs"
        assert snapshot_digest(snap) == store.digest(commit.id)
    assert store.fsck() == []


def test_encode_delta_records_empty_file_presence_changes():
    """The delta codec keys create/delete on presence, not content."""
    from repro.store.codec import decode_delta, encode_delta

    base = {"gone.txt": (), "keep.txt": ("x",)}
    target = {"keep.txt": ("x",), "new.txt": ()}
    payload = encode_delta(base, target, blob_hash_of=lambda p: "B")
    assert decode_delta(payload) == {
        "gone.txt": {"op": "delete"},
        "new.txt": {"op": "create", "blob": "B"},
    }


def test_file_store_put_is_atomic_and_self_healing(tmp_path, monkeypatch):
    """A crash mid-put never plants a truncated object at its key."""
    import os

    from repro.store.objects import FileObjectStore

    store = FileObjectStore(tmp_path)
    key = "ab" + "c" * 62
    real_replace = os.replace
    monkeypatch.setattr(
        os, "replace", lambda *a: (_ for _ in ()).throw(OSError("crash"))
    )
    with pytest.raises(OSError):
        store.put(key, b"payload")
    monkeypatch.setattr(os, "replace", real_replace)

    # the failed write left nothing behind: no object, no visible keys,
    # and a retry of the same content succeeds (put is not frozen out
    # by a half-written file at the final path)
    assert store.get(key) is None
    assert list(store.keys()) == []
    assert store.put(key, b"payload") is True
    assert store.get(key) == b"payload"

    # orphaned temp files (crash between write and replace) are
    # invisible to keys()/fsck rather than read back as stray objects
    (tmp_path / "objects" / "ab" / ".tmp-orphan").write_bytes(b"junk")
    assert list(store.keys()) == [key]


def test_checkout_unknown_version_raises(
    repo_factory, graph_factory, storage_budget
):
    from repro.store import StoreError

    repo = repo_factory(30, seed=5)
    graph = graph_factory(30, seed=5)
    plan = solve_plan(graph, "msr", "dict", storage_budget)
    store = materialize(repo, plan)
    with pytest.raises(StoreError):
        store.checkout(10**9)


def test_engine_attached_store_stays_current(
    repo_factory, graph_factory, storage_budget
):
    """An attached store mirrors the engine's plan after every sync."""
    from repro.engine import IngestEngine
    from repro.store import MaterializationStore

    repo = repo_factory(60, seed=3)
    graph = graph_factory(60, seed=3)
    budget = storage_budget(graph)
    engine = IngestEngine(budget=budget, staleness_threshold=0.1)
    store = MaterializationStore()
    engine.attach_store(store, repo)
    for _ in engine.ingest_repository(repo):
        pass
    engine.resolve()

    plan = engine.plan()
    assert store.edge_set() == {
        (p, v) for v, p in plan_parent_map(plan).items()
    }
    for commit in repo.commits:
        assert store.checkout(commit.id) == commit.snapshot
    assert store.fsck() == []
    scratch = materialize(repo, plan)
    assert set(store.objects.keys()) == set(scratch.objects.keys())
