"""Tests for the BMR greedy family (dict references + array kernels).

The ISSUE-4 acceptance bar, pinned here:

* the array kernels ``bmr_lmg_array`` / ``mp_local_array`` are
  *plan-identical* to the dict references on preset and random graphs
  (same parent map, same storage, same retrieval);
* every produced plan satisfies the max-retrieval budget through the
  shared :mod:`repro.core.tolerance` helpers;
* ``mp_local`` never stores more than plain MP, and both greedy plans
  are sanity-checked against the DP-BMR reference;
* the trajectory-replay retrieval-budget sweep emits plans identical
  to independent per-budget solves.
"""

import pytest

from repro.algorithms import mp
from repro.algorithms.bmr_greedy import bmr_lmg, mp_local
from repro.algorithms.dp_bmr import dp_bmr_heuristic
from repro.algorithms.registry import get_bmr_solver
from repro.core.solution import PlanTree
from repro.core.tolerance import within_budget, within_budget_recomputed
from repro.core.problems import evaluate_plan
from repro.fastgraph import (
    ArrayPlanTree,
    bmr_lmg_array,
    mp_local_array,
    sweep_greedy_bmr,
)
from repro.gen import natural_graph, random_digraph
from repro.gen.presets import PRESETS

# Scales keep each preset at a size where the dict reference is fast
# enough for CI (mirrors tests/test_fastgraph.py).
PRESET_SCALES = {
    "datasharing": 1.0,
    "styleguide": 0.2,
    "996.ICU": 0.05,
    "LeetCodeAnimation": 0.5,
}


def assert_tree_equal(ref: PlanTree, arr: ArrayPlanTree):
    assert ref.parent == arr.parent_map()
    assert ref.total_storage == arr.total_storage
    assert ref.total_retrieval == pytest.approx(arr.total_retrieval, rel=1e-12, abs=1e-9)


def budgets_for(g):
    rmax = g.max_retrieval_cost()
    return (0.0, rmax * 0.5, rmax, 3 * rmax, float("inf"))


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = random_digraph(12, extra_edge_prob=0.3, seed=seed)
        for rb in budgets_for(g):
            assert_tree_equal(bmr_lmg(g, rb), bmr_lmg_array(g, rb))
            assert_tree_equal(mp_local(g, rb), mp_local_array(g, rb))

    @pytest.mark.parametrize("name", sorted(PRESET_SCALES))
    def test_presets(self, name):
        g = PRESETS[name].build(scale=PRESET_SCALES[name])
        rmax = g.max_retrieval_cost()
        for rb in (0.0, rmax, 4 * rmax):
            assert_tree_equal(bmr_lmg(g, rb), bmr_lmg_array(g, rb))
            assert_tree_equal(mp_local(g, rb), mp_local_array(g, rb))

    def test_natural_graph(self):
        g = natural_graph(70, seed=9)
        rb = g.max_retrieval_cost() * 2
        assert_tree_equal(bmr_lmg(g, rb), bmr_lmg_array(g, rb))
        assert_tree_equal(mp_local(g, rb), mp_local_array(g, rb))

    def test_max_iterations_cap(self):
        g = natural_graph(30, seed=4)
        rb = g.max_retrieval_cost() * 3
        assert_tree_equal(
            bmr_lmg(g, rb, max_iterations=2), bmr_lmg_array(g, rb, max_iterations=2)
        )
        assert_tree_equal(
            mp_local(g, rb, max_iterations=3), mp_local_array(g, rb, max_iterations=3)
        )

    def test_infeasible_budget_raises_like_reference(self):
        g = random_digraph(8, seed=20)
        for fn in (bmr_lmg, mp_local, bmr_lmg_array, mp_local_array):
            with pytest.raises(ValueError, match="infeasible"):
                fn(g, -1.0)


class TestPlanQuality:
    @pytest.mark.parametrize("seed", range(4))
    def test_every_plan_respects_the_budget(self, seed):
        g = random_digraph(14, extra_edge_prob=0.35, seed=seed)
        for rb in budgets_for(g):
            for tree in (bmr_lmg_array(g, rb), mp_local_array(g, rb)):
                assert within_budget(tree.max_retrieval(), rb)
                score = evaluate_plan(g, tree.to_plan())
                assert within_budget_recomputed(score.max_retrieval, rb)

    @pytest.mark.parametrize("seed", range(4))
    def test_mp_local_dominates_mp(self, seed):
        g = random_digraph(14, extra_edge_prob=0.35, seed=seed)
        for rb in budgets_for(g):
            assert mp_local(g, rb).total_storage <= mp(g, rb).total_storage

    def test_zero_budget_materializes_everything(self):
        g = random_digraph(10, seed=5)
        tree = bmr_lmg_array(g, 0.0)
        assert tree.max_retrieval() == 0.0
        # only zero-retrieval deltas may replace materializations
        assert tree.total_storage <= g.total_version_storage()

    @pytest.mark.parametrize("seed", range(3))
    def test_sane_against_dp_reference(self, seed):
        # The DP is exact on its extracted tree but not on the full
        # digraph, so neither side dominates; both must be feasible and
        # within a loose factor of each other on natural graphs.
        g = natural_graph(40, seed=seed)
        rb = g.max_retrieval_cost() * 2
        dp_storage = dp_bmr_heuristic(g, rb).plan.storage_cost(g)
        greedy = mp_local_array(g, rb).total_storage
        assert greedy <= dp_storage * 10
        assert dp_storage <= greedy * 10


class TestRegistryIntegration:
    def test_backends_agree_through_registry(self):
        g = random_digraph(10, seed=30)
        rb = g.max_retrieval_cost()
        for name in ("bmr-lmg", "mp-local"):
            fast = get_bmr_solver(name)
            ref = get_bmr_solver(name, backend="dict")
            assert fast(g, rb) == ref(g, rb)
            assert fast(g, -1.0) is None and ref(g, -1.0) is None

    def test_solvers_accept_compiled_graph(self):
        g = random_digraph(9, seed=31)
        cg = g.compile()
        rb = g.max_retrieval_cost() * 2
        assert_tree_equal(bmr_lmg(g, rb), bmr_lmg_array(cg, rb))
        assert_tree_equal(mp_local(g, rb), mp_local_array(cg, rb))


class TestTrajectorySweep:
    @pytest.mark.parametrize("seed", range(4))
    def test_sweep_plan_identical_to_independent_solves(self, seed):
        g = random_digraph(13, extra_edge_prob=0.3, seed=seed)
        rmax = g.max_retrieval_cost()
        budgets = [-1.0, 0.0, rmax * 0.25, rmax * 0.8, rmax * 2, rmax * 5, rmax]
        entries = sweep_greedy_bmr(g, "bmr-lmg", budgets)
        assert [e.budget for e in entries] == [float(b) for b in budgets]
        for e in entries:
            if e.budget < 0:
                assert e.plan is None and not e.feasible
                continue
            ref = bmr_lmg_array(g, e.budget)
            assert e.plan == ref.to_plan()
            assert e.score.storage == ref.total_storage

    def test_sweep_natural_graph_with_divergences(self):
        g = natural_graph(80, seed=7)
        rmax = g.max_retrieval_cost()
        budgets = [rmax * f for f in (0.1, 0.3, 0.6, 1.0, 1.8, 3.0, 6.0)]
        entries = sweep_greedy_bmr(g, "bmr-lmg", budgets)
        assert any(e.replayed for e in entries)  # replay actually used
        for e in entries:
            assert e.plan == bmr_lmg_array(g, e.budget).to_plan()

    def test_unknown_sweep_solver_raises(self):
        g = random_digraph(6, seed=1)
        with pytest.raises(KeyError, match="unknown BMR sweep solver"):
            sweep_greedy_bmr(g, "mp", [1.0])

    def test_all_infeasible_grid(self):
        g = random_digraph(6, seed=2)
        entries = sweep_greedy_bmr(g, "bmr-lmg", [-5.0, -1.0])
        assert all(e.plan is None for e in entries)
