"""Unit tests for problem descriptors (Table 1 encodings)."""

import pytest

from repro.core import BMR, BSR, MMR, MSR, Objective, StoragePlan, evaluate_plan
from repro.core.instances import figure1_graph


@pytest.fixture()
def g():
    return figure1_graph()


@pytest.fixture()
def plan_iv():
    # Figure 1(iv): materialize v1, v3
    return StoragePlan.of(["v1", "v3"], [("v1", "v2"), ("v2", "v4"), ("v3", "v5")])


class TestProblemDescriptors:
    def test_msr(self, g, plan_iv):
        score = evaluate_plan(g, plan_iv)
        prob = MSR(storage_budget=25_000)
        assert prob.is_feasible(score)
        assert prob.objective_value(score) == score.sum_retrieval == 1350

    def test_msr_budget_violation(self, g, plan_iv):
        score = evaluate_plan(g, plan_iv)
        prob = MSR(storage_budget=score.storage - 1)
        assert not prob.is_feasible(score)
        with pytest.raises(ValueError):
            prob.check(g, plan_iv)

    def test_mmr(self, g, plan_iv):
        score = evaluate_plan(g, plan_iv)
        assert MMR(25_000).objective_value(score) == 600

    def test_bsr(self, g, plan_iv):
        score = evaluate_plan(g, plan_iv)
        prob = BSR(retrieval_budget=1350)
        assert prob.is_feasible(score)
        assert prob.objective_value(score) == score.storage
        assert not BSR(1349).is_feasible(score)

    def test_bmr(self, g, plan_iv):
        score = evaluate_plan(g, plan_iv)
        assert BMR(600).is_feasible(score)
        assert not BMR(599).is_feasible(score)

    def test_infeasible_reconstruction_fails_every_variant(self, g):
        broken = StoragePlan.of(["v1"], [])
        score = evaluate_plan(g, broken)
        for prob in (MSR(1e12), MMR(1e12), BSR(1e12), BMR(1e12)):
            assert not prob.is_feasible(score)

    def test_objective_enum(self, g, plan_iv):
        score = evaluate_plan(g, plan_iv)
        assert score.objective(Objective.STORAGE) == score.storage
        assert score.objective(Objective.SUM_RETRIEVAL) == score.sum_retrieval
        assert score.objective(Objective.MAX_RETRIEVAL) == score.max_retrieval

    def test_str(self):
        assert "MSR" in str(MSR(5))

    def test_check_returns_score(self, g, plan_iv):
        score = MSR(1e9).check(g, plan_iv)
        assert score.sum_retrieval == 1350
