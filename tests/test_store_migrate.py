"""Plan migration: rewrite exactly the tree diff, end in the scratch state.

Two invariants pin ``MaterializationStore.migrate``:

* **minimality** — the number of edges rewritten equals the symmetric
  difference of the two plans' edge sets (op-counter asserted, so a
  regression that silently re-materializes everything fails loudly);
* **equivalence** — the migrated store is object-for-object equal to a
  from-scratch materialization of the new plan: same records, same
  object keys, same object bytes (garbage fully collected).
"""

import pytest

from repro.algorithms.registry import get_solver
from repro.store import materialize, plan_parent_map


def edge_set(plan):
    return {(p, v) for v, p in plan_parent_map(plan).items()}


def solve(graph, problem, solver, budget):
    plan = get_solver(problem, solver)(graph, budget)
    assert plan is not None
    return plan


def assert_stores_equal(migrated, scratch):
    """Object-for-object equality of two stores."""
    assert migrated.edge_set() == scratch.edge_set()
    assert {v: migrated.digest(v) for v in migrated.versions} == {
        v: scratch.digest(v) for v in scratch.versions
    }
    m_keys = set(migrated.objects.keys())
    s_keys = set(scratch.objects.keys())
    assert m_keys == s_keys, (
        f"stray objects: {m_keys - s_keys}, missing: {s_keys - m_keys}"
    )
    for key in s_keys:
        assert migrated.objects.get(key) == scratch.objects.get(key)


@pytest.mark.parametrize("span_a,span_b", [(2.0, 4.0), (4.0, 2.0), (2.0, 2.5)])
def test_migrate_equals_scratch(
    span_a, span_b, repo_factory, graph_factory, storage_budget
):
    repo = repo_factory(60, seed=3)
    graph = graph_factory(60, seed=3)
    plan_a = solve(graph, "msr", "lmg", storage_budget(graph, span=span_a))
    plan_b = solve(graph, "msr", "lmg", storage_budget(graph, span=span_b))

    store = materialize(repo, plan_a)
    report = store.migrate(plan_a, plan_b)
    scratch = materialize(repo, plan_b)

    diff = edge_set(plan_a) ^ edge_set(plan_b)
    assert report.edges_rewritten == len(diff)
    assert report.edges_written == len(edge_set(plan_b) - edge_set(plan_a))
    assert report.edges_deleted == len(edge_set(plan_a) - edge_set(plan_b))
    assert_stores_equal(store, scratch)
    assert store.fsck() == []

    for commit in repo.commits:
        assert store.checkout(commit.id) == commit.snapshot


def test_migrate_identity_is_noop(repo_factory, graph_factory, storage_budget):
    """Same plan in, zero edges rewritten, zero objects touched."""
    repo = repo_factory(40, seed=3)
    graph = graph_factory(40, seed=3)
    plan = solve(graph, "msr", "lmg", storage_budget(graph))

    store = materialize(repo, plan)
    before = set(store.objects.keys())
    report = store.migrate(plan, plan)

    assert report.edges_rewritten == 0
    assert report.edges_written == 0
    assert report.edges_deleted == 0
    assert report.objects_written == 0
    assert report.objects_deleted == 0
    assert set(store.objects.keys()) == before


def test_migrate_across_problem_families(
    repo_factory, graph_factory, storage_budget, retrieval_budget
):
    """An MSR store migrates cleanly onto a BMR plan for the same repo."""
    repo = repo_factory(60, seed=3)
    graph = graph_factory(60, seed=3)
    plan_msr = solve(graph, "msr", "lmg", storage_budget(graph))
    plan_bmr = solve(graph, "bmr", "mp-local", retrieval_budget(graph))

    store = materialize(repo, plan_msr)
    report = store.migrate(plan_msr, plan_bmr)
    scratch = materialize(repo, plan_bmr)

    assert report.edges_rewritten == len(edge_set(plan_msr) ^ edge_set(plan_bmr))
    assert_stores_equal(store, scratch)
    for commit in repo.commits:
        assert store.checkout(commit.id) == commit.snapshot


def test_migrate_rejects_stale_old_plan(
    repo_factory, graph_factory, storage_budget
):
    """``migrate`` refuses an old_plan that doesn't match the store."""
    from repro.store import StoreError

    repo = repo_factory(40, seed=3)
    graph = graph_factory(40, seed=3)
    plan_a = solve(graph, "msr", "lmg", storage_budget(graph, span=2.0))
    plan_b = solve(graph, "msr", "lmg", storage_budget(graph, span=4.0))
    if edge_set(plan_a) == edge_set(plan_b):
        pytest.skip("plans coincide on this instance")

    store = materialize(repo, plan_a)
    with pytest.raises(StoreError):
        store.migrate(plan_b, plan_a)


def test_migration_cheaper_than_rematerialization(
    repo_factory, graph_factory, storage_budget
):
    """A small budget nudge must not rewrite the whole tree."""
    repo = repo_factory(60, seed=3)
    graph = graph_factory(60, seed=3)
    plan_a = solve(graph, "msr", "lmg", storage_budget(graph, span=2.0))
    plan_b = solve(graph, "msr", "lmg", storage_budget(graph, span=2.2))

    store = materialize(repo, plan_a)
    report = store.migrate(plan_a, plan_b)
    assert report.edges_rewritten < len(repo.commits)
