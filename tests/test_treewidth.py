"""Tests for elimination orderings and (nice) tree decompositions."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import natural_graph, random_bidirectional_tree, random_digraph, series_parallel_graph
from repro.treewidth import (
    decompose,
    exact_treewidth,
    from_elimination_order,
    make_nice,
    min_degree_order,
    min_fill_order,
    treewidth_upper_bound,
    undirected_adjacency,
    width_of_order,
)


def cycle_adj(n):
    return {i: {(i - 1) % n, (i + 1) % n} for i in range(n)}


def complete_adj(n):
    return {i: set(range(n)) - {i} for i in range(n)}


def grid_adj(rows, cols):
    adj = {}
    for r in range(rows):
        for c in range(cols):
            nbrs = set()
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    nbrs.add((rr, cc))
            adj[(r, c)] = nbrs
    return adj


class TestKnownWidths:
    def test_tree_has_width_1(self):
        g = random_bidirectional_tree(15, seed=1)
        adj = undirected_adjacency(g)
        w, _ = treewidth_upper_bound(adj)
        assert w == 1
        assert exact_treewidth(adj) == 1

    def test_cycle_has_width_2(self):
        assert exact_treewidth(cycle_adj(8)) == 2
        w, _ = treewidth_upper_bound(cycle_adj(8))
        assert w == 2

    def test_complete_graph(self):
        assert exact_treewidth(complete_adj(6)) == 5

    def test_grid_3xn(self):
        assert exact_treewidth(grid_adj(3, 4)) == 3

    def test_series_parallel_at_most_2(self):
        g = series_parallel_graph(25, seed=2)
        adj = undirected_adjacency(g)
        w, _ = treewidth_upper_bound(adj)
        assert w <= 2

    def test_natural_graphs_are_tree_like(self):
        """Footnote 7's claim: real version graphs have low treewidth."""
        g = natural_graph(120, seed=3)
        adj = undirected_adjacency(g)
        w, _ = treewidth_upper_bound(adj)
        assert w <= 4

    def test_empty_and_singleton(self):
        assert exact_treewidth({}) == 0
        assert treewidth_upper_bound({}) == (0, [])
        assert exact_treewidth({0: set()}) == 0


class TestHeuristics:
    @pytest.mark.parametrize("seed", range(6))
    def test_heuristics_upper_bound_exact(self, seed):
        g = random_digraph(9, extra_edge_prob=0.3, seed=seed)
        adj = undirected_adjacency(g)
        exact = exact_treewidth(adj)
        for order_fn in (min_degree_order, min_fill_order):
            order = order_fn(adj)
            assert sorted(map(str, order)) == sorted(map(str, adj))
            assert width_of_order(adj, order) >= exact

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_heuristic_ballpark(self, seed):
        g = random_digraph(12, extra_edge_prob=0.25, seed=40 + seed)
        adj = undirected_adjacency(g)
        w, _ = treewidth_upper_bound(adj)
        nxg = nx.Graph({u: set(nbrs) for u, nbrs in adj.items()})
        w_nx, _ = nx.algorithms.approximation.treewidth_min_fill_in(nxg)
        assert abs(w - w_nx) <= 2

    def test_exact_guard(self):
        with pytest.raises(ValueError):
            exact_treewidth(complete_adj(30))


class TestDecomposition:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_from_heuristic_orders(self, seed):
        g = random_digraph(10, extra_edge_prob=0.3, seed=seed)
        adj = undirected_adjacency(g)
        for order_fn in (min_degree_order, min_fill_order):
            td = from_elimination_order(adj, order_fn(adj))
            td.validate(adj)

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_valid_on_random_graphs(self, seed):
        g = random_digraph(8, extra_edge_prob=0.4, seed=seed)
        adj = undirected_adjacency(g)
        td = decompose(adj)
        td.validate(adj)
        assert td.width >= exact_treewidth(adj)

    def test_width_matches_order_width(self):
        g = random_digraph(9, extra_edge_prob=0.3, seed=77)
        adj = undirected_adjacency(g)
        order = min_fill_order(adj)
        td = from_elimination_order(adj, order)
        assert td.width == width_of_order(adj, order)


class TestNiceDecomposition:
    @pytest.mark.parametrize("seed", range(6))
    def test_nice_properties_hold(self, seed):
        g = random_digraph(9, extra_edge_prob=0.3, seed=seed)
        adj = undirected_adjacency(g)
        td = decompose(adj)
        nd = make_nice(td)
        nd.validate()  # leaf/introduce/forget/join structure
        assert nd.width == td.width

    def test_every_vertex_forgotten_or_root(self):
        g = random_digraph(8, extra_edge_prob=0.3, seed=5)
        adj = undirected_adjacency(g)
        nd = make_nice(decompose(adj))
        forgotten = {n.special for n in nd.nodes if n.kind == "forget"}
        root_bag = nd.nodes[nd.root].bag
        assert forgotten | set(root_bag) == set(adj)

    def test_postorder_children_first(self):
        g = random_digraph(8, extra_edge_prob=0.3, seed=6)
        nd = make_nice(decompose(undirected_adjacency(g)))
        pos = {x: i for i, x in enumerate(nd.postorder())}
        for i, node in enumerate(nd.nodes):
            for c in node.children:
                assert pos[c] < pos[i]

    def test_root_is_singleton(self):
        g = random_digraph(8, extra_edge_prob=0.3, seed=7)
        nd = make_nice(decompose(undirected_adjacency(g)))
        assert len(nd.nodes[nd.root].bag) == 1
