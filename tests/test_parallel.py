"""Tests for the parallel substrate (pool, sweeps, parallel DP)."""

import math
import multiprocessing

import pytest

from repro.gen import natural_graph, random_bidirectional_tree
from repro.parallel import (
    default_workers,
    dp_msr_frontier_parallel,
    parallel_map,
    sweep_bmr,
    sweep_msr,
)
from repro.algorithms import dp_msr_frontier, min_storage_plan_tree


def square(x):
    return x * x


def raise_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(square, list(range(10)), processes=1) == [
            x * x for x in range(10)
        ]

    def test_preserves_order_parallel(self):
        xs = list(range(50))
        assert parallel_map(square, xs, processes=4) == [x * x for x in xs]

    def test_small_inputs_fall_back_to_serial(self):
        assert parallel_map(square, [2], processes=8) == [4]

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            parallel_map(raise_on_three, [1, 2, 3, 4] * 4, processes=2)

    def test_default_workers_sane(self):
        assert 1 <= default_workers() <= 8


class TestSweeps:
    @pytest.fixture(scope="class")
    def graph(self):
        return natural_graph(25, seed=1)

    def test_msr_sweep_serial_vs_parallel(self, graph):
        base = min_storage_plan_tree(graph).total_storage
        budgets = [base * f for f in (1.05, 1.3, 1.8, 2.5)]
        serial = sweep_msr(graph, ["lmg", "lmg-all"], budgets, processes=1)
        para = sweep_msr(graph, ["lmg", "lmg-all"], budgets, processes=2)
        assert len(serial) == len(para) == 8
        for a, b in zip(serial, para):
            assert a.solver == b.solver and a.budget == b.budget
            assert a.score.sum_retrieval == pytest.approx(b.score.sum_retrieval)

    def test_msr_sweep_infeasible_budget(self, graph):
        base = min_storage_plan_tree(graph).total_storage
        pts = sweep_msr(graph, ["lmg"], [base * 0.1], processes=1)
        assert not pts[0].feasible

    def test_bmr_sweep(self, graph):
        budgets = [0.0, graph.max_retrieval_cost() * 3]
        pts = sweep_bmr(graph, ["mp", "dp-bmr"], budgets, processes=1)
        for p in pts:
            assert p.feasible
            assert p.score.max_retrieval <= p.budget + 1e-6
        assert all(p.seconds >= 0 for p in pts)

    def test_msr_sweep_matches_independent_solver_runs(self, graph):
        # the trajectory-replay task must be plan-identical to fresh
        # per-budget solves through the registry
        from repro.core.problems import evaluate_plan
        from repro.algorithms.registry import MSR_SOLVERS

        base = min_storage_plan_tree(graph).total_storage
        budgets = [base * f for f in (1.05, 1.4, 2.2)]
        pts = sweep_msr(graph, ["lmg", "lmg-all"], budgets, processes=1)
        for p in pts:
            plan = MSR_SOLVERS[p.solver](graph, p.budget)
            assert p.score == evaluate_plan(graph, plan)

    def test_worker_initializer_under_spawn(self, graph):
        # The initializer ships the graph plus the shared Edmonds start
        # tree; under spawn both are pickled instead of inherited, so
        # exercise that path explicitly (fork-only coverage otherwise).
        from repro.fastgraph.arborescence import min_storage_parent_edges
        from repro.parallel.sweep import _init_worker, _run_task

        base = min_storage_plan_tree(graph).total_storage
        budgets = [base * 1.1, base * 2.0]
        start_edges = min_storage_parent_edges(graph.compile())
        tasks = [("msr", "lmg", budgets), ("msr", "lmg-all", budgets)]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(
            processes=2, initializer=_init_worker, initargs=(graph, start_edges)
        ) as pool:
            chunks = pool.map(_run_task, tasks)
        flat = [p for chunk in chunks for p in chunk]
        serial = sweep_msr(graph, ["lmg", "lmg-all"], budgets, processes=1)
        assert len(flat) == len(serial) == 4
        for a, b in zip(flat, serial):
            assert a.solver == b.solver and a.budget == b.budget
            assert a.score == b.score


class TestParallelDP:
    @pytest.mark.parametrize("n", [15, 30])
    def test_matches_serial_exact(self, n):
        g = random_bidirectional_tree(n, seed=n)
        serial = dp_msr_frontier(g, ticks=None)
        para = dp_msr_frontier_parallel(g, ticks=None, processes=2)
        assert serial.points() == para.points()

    def test_matches_serial_thinned(self):
        g = natural_graph(40, seed=2)
        serial = dp_msr_frontier(g, ticks=32)
        para = dp_msr_frontier_parallel(g, ticks=32, processes=3)
        assert len(serial) == len(para)
        for (s1, r1), (s2, r2) in zip(serial.points(), para.points()):
            assert math.isclose(s1, s2, rel_tol=1e-12)
            assert math.isclose(r1, r2, rel_tol=1e-12)

    def test_single_process_fallback(self):
        g = random_bidirectional_tree(12, seed=3)
        assert dp_msr_frontier_parallel(g, ticks=None, processes=1).points() == \
            dp_msr_frontier(g, ticks=None).points()
