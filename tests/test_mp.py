"""Tests for the MP (Modified Prim) BMR baseline."""

import math

import pytest

from repro.core import BMR, evaluate_plan
from repro.algorithms import brute_force_solve, min_storage_plan_tree, mp
from repro.gen import natural_graph, random_bidirectional_tree, random_digraph


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_feasible(self, seed):
        g = random_digraph(12, extra_edge_prob=0.2, seed=seed)
        for budget in (0, 3, 10, 50):
            tree = mp(g, budget)
            assert tree.max_retrieval() <= budget + 1e-9
            score = evaluate_plan(g, tree.to_plan())
            assert score.feasible_reconstruction
            assert score.max_retrieval <= budget + 1e-9

    def test_zero_budget_materializes_everything(self):
        g = random_digraph(8, seed=1)
        tree = mp(g, 0)
        assert sorted(tree.materialized_versions(), key=str) == sorted(g.versions, key=str)

    def test_infinite_budget_matches_min_storage(self):
        g = random_digraph(10, extra_edge_prob=0.3, seed=2)
        tree = mp(g, math.inf)
        best = min_storage_plan_tree(g).total_storage
        # Prim on a digraph is not Edmonds: allow a small gap but require
        # the same ballpark (exact on graphs without contraction cycles)
        assert tree.total_storage <= best * 1.5 + 1e-9
        assert tree.total_storage >= best - 1e-9


class TestQuality:
    def test_storage_monotone_in_budget(self):
        g = natural_graph(50, seed=3)
        budgets = [0, 1000, 10_000, 100_000, 10**7]
        storages = [mp(g, b).total_storage for b in budgets]
        assert all(a >= b - 1e-6 for a, b in zip(storages, storages[1:]))

    @pytest.mark.parametrize("seed", range(5))
    def test_within_factor_of_optimal_on_small(self, seed):
        g = random_bidirectional_tree(7, seed=seed)
        budget = 15
        opt = brute_force_solve(g, BMR(budget))
        tree = mp(g, budget)
        assert tree.total_storage >= opt[1].storage - 1e-9
        # greedy should stay within a small factor on tiny trees
        assert tree.total_storage <= opt[1].storage * 3 + 1e-9

    def test_deterministic(self):
        g = natural_graph(30, seed=4)
        a = mp(g, 5000).to_plan()
        b = mp(g, 5000).to_plan()
        assert a == b
