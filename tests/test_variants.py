"""Tests for the practical MMR / BSR solvers (Table 3's flipped DPs)."""

import math

import pytest

from repro.core import BSR, MMR
from repro.algorithms import (
    brute_force_solve,
    min_storage_plan_tree,
    solve_bsr,
    solve_mmr,
)
from repro.gen import natural_graph, random_bidirectional_tree, random_digraph


class TestSolveBSR:
    @pytest.mark.parametrize("seed", range(5))
    def test_feasible_and_near_optimal_on_trees(self, seed):
        g = random_bidirectional_tree(7, seed=seed)
        for budget in (0, 10, 40, 200):
            plan, score = solve_bsr(g, budget, ticks=None)
            assert score.sum_retrieval <= budget + 1e-6
            bf = brute_force_solve(g, BSR(budget))
            assert score.storage >= bf[1].storage - 1e-6  # sanity: >= OPT
            # exact on trees with exact ticks
            assert score.storage <= bf[1].storage + 1e-6

    def test_zero_budget_materializes_all(self):
        g = random_bidirectional_tree(6, seed=9)
        plan, score = solve_bsr(g, 0, ticks=None)
        assert score.sum_retrieval == 0
        assert score.storage == pytest.approx(g.total_version_storage())

    def test_general_graph_heuristic_feasible(self):
        g = random_digraph(12, extra_edge_prob=0.25, seed=3)
        plan, score = solve_bsr(g, 50, ticks=48)
        assert score.sum_retrieval <= 50 + 1e-6

    def test_storage_monotone_in_budget(self):
        g = natural_graph(40, seed=4)
        budgets = [0, 1e4, 1e5, 1e6, 1e8]
        storages = [solve_bsr(g, b, ticks=48)[1].storage for b in budgets]
        assert all(a >= b - 1e-6 for a, b in zip(storages, storages[1:]))


class TestSolveMMR:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_on_trees(self, seed):
        g = random_bidirectional_tree(6, seed=100 + seed)
        base = min_storage_plan_tree(g).total_storage
        budget = base * 1.4 + 2
        red = solve_mmr(g, budget)
        assert red.score.storage <= budget + 1e-6
        bf = brute_force_solve(g, MMR(budget))
        # DP-BMR is exact on bidirectional trees, so the reduction is too
        assert red.score.max_retrieval == pytest.approx(bf[1].max_retrieval, abs=1e-5)

    def test_general_graph_feasible(self):
        g = random_digraph(10, extra_edge_prob=0.3, seed=5)
        base = min_storage_plan_tree(g).total_storage
        red = solve_mmr(g, base * 2)
        assert red.score.storage <= base * 2 + 1e-6
        assert math.isfinite(red.score.max_retrieval)

    def test_infeasible_storage_raises(self):
        g = random_bidirectional_tree(6, seed=7)
        base = min_storage_plan_tree(g).total_storage
        with pytest.raises(ValueError):
            solve_mmr(g, base * 0.2)
