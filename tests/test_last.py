"""Tests for the LAST-based balanced baseline."""

import pytest

from repro.core import evaluate_plan
from repro.algorithms import (
    last_sweep,
    last_tree,
    min_storage_plan_tree,
    single_source_retrieval,
)
from repro.algorithms.last import _spanning_root
from repro.gen import natural_graph, random_digraph


def reference_distances(g):
    ext = g.extended()
    r0 = _spanning_root(ext)
    dist, _ = single_source_retrieval(ext, r0)
    return r0, dist


class TestStretchInvariant:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("alpha", [1.0, 1.5, 3.0])
    def test_every_version_within_stretch(self, seed, alpha):
        g = random_digraph(12, extra_edge_prob=0.25, seed=seed)
        _, dist = reference_distances(g)
        tree = last_tree(g, alpha)
        for v in g.versions:
            assert tree.ret[v] <= alpha * dist.get(v, 0.0) + 1e-6

    def test_alpha_one_pins_shortest_paths(self):
        g = random_digraph(10, seed=7)
        _, dist = reference_distances(g)
        tree = last_tree(g, 1.0)
        for v in g.versions:
            assert tree.ret[v] <= dist[v] + 1e-9

    def test_huge_alpha_stays_near_min_storage(self):
        g = random_digraph(10, seed=8)
        ext = g.extended()
        r0 = _spanning_root(ext)
        t = last_tree(g, 1e9)
        base = min_storage_plan_tree(g).total_storage
        # only the root (distance 0) may have been materialized
        assert t.total_storage <= base + g.storage_cost(r0) + 1e-6
        assert t.total_storage >= base - 1e-6

    def test_invalid_alpha(self):
        g = random_digraph(5, seed=9)
        with pytest.raises(ValueError):
            last_tree(g, 0.5)


class TestTradeoff:
    def test_sweep_monotone_tendencies(self):
        g = natural_graph(50, seed=10)
        plans = last_sweep(g)
        storages = [t.total_storage for _, t in plans]
        retrievals = [t.total_retrieval for _, t in plans]
        # growing alpha: storage shrinks (weakly), retrieval grows (weakly)
        assert storages[0] >= storages[-1] - 1e-6
        assert retrievals[0] <= retrievals[-1] + 1e-6

    def test_plans_are_feasible(self):
        g = natural_graph(40, seed=11)
        for _, t in last_sweep(g, alphas=(1.0, 2.0, 4.0)):
            score = evaluate_plan(g, t.to_plan())
            assert score.feasible_reconstruction
            t.check_invariants()

    def test_interpolates_between_extremes(self):
        g = natural_graph(60, seed=12)
        tight = last_tree(g, 1.0)
        loose = last_tree(g, 50.0)
        assert tight.total_retrieval <= loose.total_retrieval + 1e-6
        assert tight.total_storage >= loose.total_storage - 1e-6
