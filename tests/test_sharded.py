"""Sharded multi-writer ingest: routing, journal, cross-shard stitch.

The PR-10 acceptance bar, pinned here:

* the stitched plan is **identical** to what a single engine would
  produce from the same traffic — same plan, same objective — because
  the journal preserves arrival order (the kernels' tie-breaking
  order), including under mixed arrival/retirement streams;
* cross-shard deltas invisible to every per-shard plan are journaled
  and available to the stitch;
* concurrent writers on distinct threads ingest safely and the union
  stays coherent;
* lifecycle: the router shuts down every shard's resolver
  deterministically.
"""

import random
import threading

import pytest

from repro.core.graph import GraphError
from repro.engine import IngestEngine, ShardRouter, default_shard_key


def make_stream(n, seed, *, retire_every=None):
    """A synthetic mixed arrival/retirement stream.

    Yields ``("add", v, storage, deltas)`` / ``("retire", v)`` ops.
    Retired versions are never referenced by later deltas (the same
    contract real traffic obeys: you cannot diff against a version
    that is gone).
    """
    rng = random.Random(seed)
    ops = []
    live = []
    for i in range(n):
        v = f"v{i}"
        storage = float(rng.randint(80, 160))
        deltas = []
        for u in rng.sample(live, min(3, len(live))):
            s = float(rng.randint(5, 60))
            deltas.append((u, v, s, s * 1.5))
            deltas.append((v, u, s * 0.6, s * 0.9))
        ops.append(("add", v, storage, deltas))
        live.append(v)
        if retire_every and i % retire_every == retire_every - 1 and len(live) > 4:
            victim = live.pop(rng.randrange(len(live)))
            ops.append(("retire", victim))
    return ops


def drive(sink, ops):
    for op in ops:
        if op[0] == "add":
            _, v, storage, deltas = op
            sink.ingest_version(v, storage, deltas)
        else:
            sink.retire_version(op[1])


# ----------------------------------------------------------------------
# stitch equality vs a single engine
# ----------------------------------------------------------------------
class TestStitchEquality:
    @pytest.mark.parametrize("problem,factor", [("msr", 2.5), ("msr", 4.0),
                                                ("bmr", 2.0)])
    def test_stitch_matches_single_engine(self, problem, factor):
        ops = make_stream(120, seed=4)
        with IngestEngine(problem=problem, budget_factor=factor) as single:
            drive(single, ops)
            ref_tree = single.resolve()
            ref_plan = ref_tree.to_plan()
            ref_obj = single.spec.tree_objective(ref_tree)
        with ShardRouter(4, problem=problem, budget_factor=factor) as router:
            drive(router, ops)
            plan = router.stitch()
        # identical, not merely within tolerance: the journal preserves
        # the single engine's insertion (= tie-breaking) order
        assert plan == ref_plan
        assert router.stitched_objective == pytest.approx(ref_obj)
        assert ref_obj > 0.0, "trivial instance: budget admitted everything"

    @pytest.mark.parametrize("problem", ["msr", "bmr"])
    def test_stitch_matches_under_retirement(self, problem):
        factor = {"msr": 8.0, "bmr": 3.0}[problem]
        ops = make_stream(150, seed=9, retire_every=6)
        assert any(op[0] == "retire" for op in ops)
        with IngestEngine(problem=problem, budget_factor=factor) as single:
            drive(single, ops)
            ref_plan = single.resolve().to_plan()
        with ShardRouter(4, problem=problem, budget_factor=factor) as router:
            drive(router, ops)
            plan = router.stitch()
        assert plan == ref_plan
        assert plan.is_feasible(router.union_graph())

    def test_fixed_budget_stitch_uses_union_budget(self):
        ops = make_stream(80, seed=1)
        # generous overall so each B/4 shard slice stays feasible
        with IngestEngine(problem="bmr", budget=200.0) as single:
            drive(single, ops)
            ref_plan = single.resolve().to_plan()
        with ShardRouter(4, problem="bmr", budget=800.0) as router:
            drive(router, ops)
            plan = router.stitch()
        # same union instance, but the stitch budget (800) is looser
        # than the single engine's (200): still globally feasible
        assert plan.is_feasible(router.union_graph())
        assert ref_plan.is_feasible(router.union_graph())


# ----------------------------------------------------------------------
# routing + journal
# ----------------------------------------------------------------------
class TestRoutingAndJournal:
    def test_cross_shard_deltas_reach_the_stitch(self):
        ops = make_stream(100, seed=3)
        with ShardRouter(4, problem="msr", budget_factor=4.0) as router:
            drive(router, ops)
            union = router.union_graph()
            total = sum(len(op[3]) for op in ops if op[0] == "add")
            assert union.num_deltas == total
            # per-shard graphs only ever saw the local subset
            shard_deltas = sum(s.graph.num_deltas for s in router.shards)
            assert shard_deltas < total
            # and every shard's standing plan is feasible on its slice
            for shard in router.shards:
                assert shard.plan().is_feasible(shard.graph)

    def test_routing_is_deterministic_and_custom_keys_work(self):
        router = ShardRouter(4, problem="msr", budget_factor=4.0)
        assert router.shard_of("v1") == default_shard_key("v1") % 4
        pinned = ShardRouter(
            3, problem="msr", budget_factor=4.0, shard_key=lambda v: 0
        )
        drive(pinned, make_stream(30, seed=0))
        assert pinned.shards[0].graph.num_versions == 30
        assert all(s.graph.num_versions == 0 for s in pinned.shards[1:])

    def test_auto_stitch_interval(self):
        with ShardRouter(
            4, problem="msr", budget_factor=4.0, stitch_interval=50
        ) as router:
            drive(router, make_stream(120, seed=5))
            assert router.stitches >= 2
            assert router.global_plan() is not None

    def test_failed_ingest_rolls_back_the_journal(self):
        router = ShardRouter(2, problem="msr", budget_factor=4.0)
        router.ingest_version("a", 100.0)
        with pytest.raises(GraphError, match="non-negative"):
            router.ingest_version("b", -1.0)
        # the journal never saw the rejected version: re-ingest works
        # and the stitch replay cannot trip over a phantom entry
        router.ingest_version("b", 90.0, [("a", "b", 5.0, 5.0)])
        assert router.union_graph().num_versions == 2

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter(0, problem="msr", budget_factor=4.0)
        with pytest.raises(ValueError, match="exactly one"):
            ShardRouter(2, problem="msr")
        with pytest.raises(ValueError, match="stitch interval"):
            ShardRouter(2, problem="msr", budget_factor=4.0, stitch_interval=0)
        router = ShardRouter(2, problem="msr", budget_factor=4.0)
        router.ingest_version("a", 100.0)
        with pytest.raises(GraphError, match="already ingested"):
            router.ingest_version("a", 100.0)
        with pytest.raises(GraphError, match="unknown version"):
            router.ingest_version("b", 90.0, [("zzz", "b", 1.0, 1.0)])
        with pytest.raises(GraphError, match="not incident"):
            router.ingest_version("b", 90.0, [("a", "a2", 1.0, 1.0)])
        with pytest.raises(GraphError, match="unknown version"):
            router.retire_version("zzz")


# ----------------------------------------------------------------------
# concurrent writers
# ----------------------------------------------------------------------
class TestConcurrentWriters:
    def test_four_writers_ingest_in_parallel(self):
        n_writers, per_writer = 4, 60
        with ShardRouter(4, problem="msr", budget_factor=4.0) as router:
            errors = []

            def writer(t):
                # each writer diffs only against its own versions, so no
                # cross-writer ordering is needed; CRC32 routing still
                # scatters every writer's stream across all shards
                try:
                    drive(router, make_stream(per_writer, seed=100 + t))
                except Exception as err:  # noqa: BLE001 - surfaced below
                    errors.append(err)

            # distinct namespaces per writer
            streams = []
            for t in range(n_writers):
                ops = [
                    (op[0], f"w{t}{op[1]}", *op[2:3],
                     [(f"w{t}{u}", f"w{t}{w}", s, r) for u, w, s, r in op[3]])
                    if op[0] == "add" else (op[0], f"w{t}{op[1]}")
                    for op in make_stream(per_writer, seed=100 + t)
                ]
                streams.append(ops)

            threads = [
                threading.Thread(target=lambda s=s: (
                    drive(router, s) if not errors else None
                ))
                for s in streams
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert not errors
            assert router.num_versions == n_writers * per_writer
            plan = router.stitch()
            union = router.union_graph()
            assert plan.is_feasible(union)
            assert union.num_versions == n_writers * per_writer
            # the union scattered across every shard
            assert all(s.graph.num_versions > 0 for s in router.shards)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestRouterLifecycle:
    def test_close_shuts_down_every_shard(self):
        with ShardRouter(
            3, problem="msr", budget_factor=4.0, background=True
        ) as router:
            drive(router, make_stream(60, seed=6))
        assert all(s._bg is None for s in router.shards)
        assert not any(
            t.is_alive()
            for t in threading.enumerate()
            if t.name == "repro-bg-resolve"
        )
        router.close()  # idempotent
