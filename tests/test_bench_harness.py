"""Tests for the benchmark harness (series, sweeps, rendering, saving)."""

import json
import math

import pytest

from repro.bench import (
    Series,
    ascii_plot,
    markdown_table,
    msr_budget_grid,
    run_bmr_experiment,
    run_msr_experiment,
)
from repro.gen import natural_graph


@pytest.fixture(scope="module")
def graph():
    return natural_graph(30, seed=13)


class TestSeries:
    def test_add_and_finite(self):
        s = Series("x")
        s.add(1, 2.0)
        s.add(2, math.inf)
        f = s.finite()
        assert f.x == [1.0] and f.y == [2.0]


class TestBudgetGrid:
    def test_grid_spans_feasible_range(self, graph):
        from repro.algorithms import min_storage_plan_tree

        grid = msr_budget_grid(graph, points=5)
        base = min_storage_plan_tree(graph).total_storage
        assert len(grid) == 5
        assert grid[0] >= base
        assert grid[-1] <= graph.total_version_storage() * 1.001
        assert all(a < b for a, b in zip(grid, grid[1:]))


class TestMSRExperiment:
    def test_runs_all_solvers(self, graph):
        res = run_msr_experiment(
            graph, name="t", solvers=["lmg", "lmg-all", "dp-msr"], dp_ticks=24
        )
        assert set(res.objective) == {"lmg", "lmg-all", "dp-msr"}
        for s in res.objective.values():
            assert len(s.x) == len(s.y) > 0
        # dp-msr run time is flat (one run for the whole sweep)
        rt = res.runtime["dp-msr"].y
        assert max(rt) == min(rt)

    def test_objective_monotone(self, graph):
        res = run_msr_experiment(graph, name="t", solvers=["dp-msr"], dp_ticks=24)
        ys = [y for y in res.objective["dp-msr"].y if math.isfinite(y)]
        assert all(a >= b - 1e-9 for a, b in zip(ys, ys[1:]))

    def test_save_round_trip(self, graph, tmp_path):
        res = run_msr_experiment(graph, name="t", solvers=["lmg"], dp_ticks=8)
        path = res.save(tmp_path)
        payload = json.loads(path.read_text())
        assert payload["name"] == "t"
        assert "lmg" in payload["objective"]


class TestBMRExperiment:
    def test_runs_and_respects_budgets(self, graph):
        res = run_bmr_experiment(graph, name="t13")
        for name, s in res.objective.items():
            assert len(s.y) >= 3
        # storage decreases (weakly) for dp-bmr as budget loosens
        dp = res.objective["dp-bmr"].y
        assert all(a >= b - 1e-6 for a, b in zip(dp, dp[1:]))

    def test_infeasible_budget_recorded_not_crashed(self, graph):
        # mp returns None for a negative (infeasible) retrieval budget;
        # the harness must record an inf point instead of raising.
        import math

        res = run_bmr_experiment(graph, name="t13-inf", solvers=["mp"], budgets=[-1.0, 10.0])
        ys = res.objective["mp"].y
        assert math.isinf(ys[0])
        assert math.isfinite(ys[1])


class TestRendering:
    def test_ascii_plot_contains_markers(self, graph):
        res = run_msr_experiment(graph, name="t", solvers=["lmg"], dp_ticks=8)
        art = ascii_plot(res.objective, title="demo")
        assert "demo" in art and "o=lmg" in art

    def test_ascii_plot_empty(self):
        assert "no finite data" in ascii_plot({"a": Series("a")})

    def test_markdown_table(self):
        out = markdown_table(["a", "b"], [[1, 2.34567], ["x", 3]])
        assert out.splitlines()[0] == "| a | b |"
        assert "2.346" in out
