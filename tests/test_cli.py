"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.instances import figure1_graph
from repro.core.problemspec import SPECS


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.json"
    path.write_text(figure1_graph().to_json())
    return str(path)


class TestSolve:
    def test_msr_lmg_all(self, graph_file, capsys):
        rc = main(["solve", "msr", graph_file, "--budget", "21000", "--solver", "lmg-all"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sum_retrieval"] == 1350
        assert payload["storage"] <= 21000
        assert sorted(payload["materialized"]) == ["v1", "v3"]

    def test_msr_infeasible(self, graph_file, capsys):
        rc = main(["solve", "msr", graph_file, "--budget", "100", "--solver", "lmg"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "infeasible" in captured.err
        assert captured.out == ""

    @pytest.mark.parametrize("solver", ["mp", "dp-bmr"])
    def test_bmr_infeasible_exits_1_without_traceback(self, graph_file, capsys, solver):
        # Negative retrieval budgets are infeasible (even materializing
        # everything has max retrieval 0); the solver's ValueError must
        # become an exit code, not a traceback.
        rc = main(["solve", "bmr", graph_file, "--budget", "-5", "--solver", solver])
        assert rc == 1
        captured = capsys.readouterr()
        assert "infeasible" in captured.err
        assert captured.out == ""

    def test_structural_graph_error_exits_2(self, graph_file, capsys, monkeypatch):
        # A GraphError is a problem with the input, not a budget
        # outcome: it must exit 2 with an "error:" line, never be
        # reported as "infeasible".
        from repro.core import GraphError
        from repro.algorithms import registry

        def broken(graph, budget):
            raise GraphError("dp_bmr requires a bidirectional tree input")

        monkeypatch.setitem(registry.SOLVERS, ("bmr", "dp-bmr"), broken)
        rc = main(["solve", "bmr", graph_file, "--budget", "600", "--solver", "dp-bmr"])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "infeasible" not in captured.err

    @pytest.mark.parametrize("backend", ["array", "dict"])
    def test_msr_backend_flag(self, graph_file, capsys, backend):
        rc = main(
            [
                "solve", "msr", graph_file,
                "--budget", "21000",
                "--solver", "lmg-all",
                "--backend", backend,
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sum_retrieval"] == 1350

    def test_bmr_dp(self, graph_file, capsys):
        rc = main(["solve", "bmr", graph_file, "--budget", "600", "--solver", "dp-bmr"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_retrieval"] <= 600

    def test_unknown_solver(self, graph_file):
        with pytest.raises(KeyError):
            main(["solve", "msr", graph_file, "--budget", "21000", "--solver", "nope"])


class TestDataset:
    def test_stats_output(self, capsys):
        rc = main(["dataset", "datasharing", "--scale", "1.0"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 29

    def test_write_graph(self, tmp_path, capsys):
        out = tmp_path / "ds.json"
        rc = main(["dataset", "datasharing", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        from repro.core import VersionGraph

        g = VersionGraph.from_json(out.read_text())
        assert g.num_versions == 29


class TestIngest:
    def test_json_panel_strict(self, capsys):
        rc = main(["ingest", "--commits", "40", "--seed", "3", "--every", "5"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "msr"
        assert payload["mode"] == "online"
        assert payload["budget_kind"] == "storage"
        assert payload["solver"] == "lmg"
        assert payload["summary"]["versions"] == 40
        assert payload["summary"]["resolves"] >= 1
        for entry in payload["entries"]:
            assert entry["storage"] <= entry["budget"] * (1 + 1e-9) + 1e-6
            assert entry["staleness"] >= 0.0
        # strict JSON: re-serializable with allow_nan=False
        json.dumps(payload, allow_nan=False)

    def test_bmr_json_panel(self, capsys):
        rc = main(
            ["ingest", "--problem", "bmr", "--commits", "30", "--seed", "2",
             "--budget", "1500", "--every", "5"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "bmr"
        assert payload["budget_kind"] == "retrieval"
        assert payload["solver"] == "mp-local"  # the BMR default
        # every emitted arrival respects the max-retrieval budget
        for entry in payload["entries"]:
            assert entry["max_retrieval"] <= 1500 * (1 + 1e-9) + 1e-6
        assert payload["summary"]["final_max_retrieval"] <= 1500 * (1 + 1e-9) + 1e-6
        json.dumps(payload, allow_nan=False)

    def test_bmr_budget_factor_dynamic_budget(self, capsys):
        # BMR now has its own online lower bound: --budget-factor works
        # and the emitted budgets stay non-negative multiples of it
        rc = main(
            ["ingest", "--problem", "bmr", "--commits", "25", "--seed", "2",
             "--budget-factor", "3", "--every", "5"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "bmr"
        assert payload["budget_kind"] == "retrieval"
        assert payload["budget"] is None
        assert payload["budget_factor"] == 3.0
        assert payload["summary"]["final_budget"] >= 0.0
        for entry in payload["entries"]:
            assert entry["max_retrieval"] <= entry["budget"] * (1 + 1e-9) + 1e-6

    def test_bmr_defaults_to_budget_factor(self, capsys):
        # neither --budget nor --budget-factor: both families fall back
        # to factor 4.0 over their online lower bound
        rc = main(["ingest", "--problem", "bmr", "--commits", "15", "--seed", "1"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["budget_factor"] == 4.0
        assert payload["budget"] is None

    def test_fixed_budget_and_solver(self, capsys):
        rc = main(
            [
                "ingest",
                "--commits", "30",
                "--seed", "1",
                "--budget", "1000000",
                "--solver", "lmg-all",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["budget"] == 1000000
        assert payload["budget_factor"] is None

    def test_markdown_panel(self, capsys):
        rc = main(
            ["ingest", "--commits", "25", "--seed", "2", "--every", "5",
             "--format", "markdown"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "MSR online ingest" in out
        assert "| index |" in out
        assert "re-solves" in out

    def test_infeasible_budget_exits_1(self, capsys):
        rc = main(["ingest", "--commits", "10", "--seed", "0", "--budget", "1"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "infeasible" in captured.err
        assert captured.out == ""

    def test_conflicting_budget_flags_exit_2(self, capsys):
        rc = main(
            ["ingest", "--commits", "10", "--budget", "5", "--budget-factor", "2"]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_solver_exits_2(self, capsys):
        rc = main(["ingest", "--commits", "10", "--solver", "nope"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_out_file(self, tmp_path, capsys):
        out = tmp_path / "panel.json"
        rc = main(
            ["ingest", "--commits", "20", "--seed", "4", "--out", str(out),
             "--format", "markdown", "--background"]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["background"] is True
        assert payload["summary"]["versions"] == 20


class TestSpecDerivedPanels:
    """Panel ``problem``/``budget_kind`` pairs come from the spec, not
    hand-maintained literals — checked for every registered family."""

    @pytest.mark.parametrize("problem", sorted(SPECS))
    def test_sweep_panel_matches_spec(self, problem, graph_file, capsys):
        spec = SPECS[problem]
        solver = spec.default_panel_solvers[0]
        rc = main(
            ["sweep", problem, graph_file, "--solvers", solver, "--points", "3"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == spec.name
        assert payload["budget_kind"] == spec.budget_kind

    @pytest.mark.parametrize("problem", sorted(SPECS))
    def test_ingest_panel_matches_spec(self, problem, capsys):
        spec = SPECS[problem]
        rc = main(
            ["ingest", "--problem", problem, "--commits", "12", "--seed", "5",
             "--budget-factor", "4", "--every", "4"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == spec.name
        assert payload["budget_kind"] == spec.budget_kind
        assert payload["solver"] == spec.default_engine_solver


class TestFigure:
    def test_unknown_figure(self, capsys):
        rc = main(["figure", "fig99"])
        assert rc == 2

    def test_theorem1(self, capsys):
        rc = main(["figure", "theorem1"])
        assert rc == 0
        assert "gap" in capsys.readouterr().out


class TestStore:
    def materialize(self, tmp_path, capsys, extra=()):
        rc = main([
            "store", "materialize", "--dir", str(tmp_path / "s"),
            "--commits", "30", "--seed", "5", "--budget-factor", "4",
            *extra,
        ])
        assert rc == 0
        return json.loads(capsys.readouterr().out)

    def test_materialize_fsck_checkout_cycle(self, tmp_path, capsys):
        payload = self.materialize(tmp_path, capsys)
        assert payload["versions"] >= 30
        assert payload["stored_bytes"] <= payload["raw_bytes"]
        assert payload["source"]["seed"] == 5

        rc = main(["store", "fsck", "--dir", str(tmp_path / "s")])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["clean"] is True

        out = tmp_path / "wc"
        rc = main([
            "store", "checkout", "--dir", str(tmp_path / "s"),
            "--version", "7", "--out", str(out),
        ])
        assert rc == 0
        co = json.loads(capsys.readouterr().out)
        assert co["version"] == 7
        assert co["files"] == len([p for p in out.rglob("*") if p.is_file()])

    def test_materialize_twice_exits_2(self, tmp_path, capsys):
        self.materialize(tmp_path, capsys)
        rc = main([
            "store", "materialize", "--dir", str(tmp_path / "s"),
            "--commits", "30", "--seed", "5", "--budget-factor", "4",
        ])
        assert rc == 2
        assert "already holds a plan" in capsys.readouterr().err

    def test_materialize_infeasible_budget_exits_1(self, tmp_path, capsys):
        rc = main([
            "store", "materialize", "--dir", str(tmp_path / "s"),
            "--commits", "30", "--seed", "5", "--budget", "1",
        ])
        assert rc == 1
        assert "infeasible" in capsys.readouterr().err

    def test_both_budget_flags_exit_2(self, tmp_path, capsys):
        # passing both flags is a usage error (exit 2, "error:"), not an
        # infeasible-budget outcome (exit 1, "infeasible:")
        rc = main([
            "store", "materialize", "--dir", str(tmp_path / "s"),
            "--commits", "30", "--budget", "1e9", "--budget-factor", "4",
        ])
        assert rc == 2
        captured = capsys.readouterr()
        assert "exactly one" in captured.err
        assert "infeasible" not in captured.err

    @pytest.mark.parametrize("evil", ["../escape.txt", "/tmp/escape.txt"])
    def test_checkout_out_refuses_path_escape(
        self, tmp_path, capsys, monkeypatch, evil
    ):
        # a tampered store whose manifest holds absolute or ..-relative
        # paths must not write outside --out
        self.materialize(tmp_path, capsys)
        from repro.store import MaterializationStore

        monkeypatch.setattr(
            MaterializationStore, "checkout", lambda self, v: {evil: ("pwned",)}
        )
        out = tmp_path / "wc"
        rc = main([
            "store", "checkout", "--dir", str(tmp_path / "s"),
            "--version", "7", "--out", str(out),
        ])
        assert rc == 2
        assert "refusing to write outside" in capsys.readouterr().err
        assert not (tmp_path / "escape.txt").exists()
        assert not Path("/tmp/escape.txt").exists()

    def test_migrate_rewrites_only_diff(self, tmp_path, capsys):
        self.materialize(tmp_path, capsys)
        rc = main([
            "store", "migrate", "--dir", str(tmp_path / "s"),
            "--budget-factor", "8",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["edges_rewritten"] == (
            payload["edges_written"] + payload["edges_deleted"]
        )
        assert payload["edges_rewritten"] < 2 * payload["versions"]
        assert payload["source"]["budget_kind"] == "storage"

        rc = main(["store", "fsck", "--dir", str(tmp_path / "s")])
        assert rc == 0
        capsys.readouterr()

    def test_fsck_detects_on_disk_corruption(self, tmp_path, capsys):
        self.materialize(tmp_path, capsys)
        objects = sorted((tmp_path / "s" / "objects").rglob("*"))
        victim = next(p for p in objects if p.is_file())
        data = victim.read_bytes()
        victim.write_bytes(bytes([data[0] ^ 0xFF]) + data[1:])

        rc = main(["store", "fsck", "--dir", str(tmp_path / "s")])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert any(f["code"] == "object-corrupt" for f in payload["findings"])

    def test_checkout_unknown_version_exits_2(self, tmp_path, capsys):
        self.materialize(tmp_path, capsys)
        rc = main([
            "store", "checkout", "--dir", str(tmp_path / "s"),
            "--version", "999999",
        ])
        assert rc == 2
        assert "error" in capsys.readouterr().err
