"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.instances import figure1_graph


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.json"
    path.write_text(figure1_graph().to_json())
    return str(path)


class TestSolve:
    def test_msr_lmg_all(self, graph_file, capsys):
        rc = main(["solve", "msr", graph_file, "--budget", "21000", "--solver", "lmg-all"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sum_retrieval"] == 1350
        assert payload["storage"] <= 21000
        assert sorted(payload["materialized"]) == ["v1", "v3"]

    def test_msr_infeasible(self, graph_file, capsys):
        rc = main(["solve", "msr", graph_file, "--budget", "100", "--solver", "lmg"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "infeasible" in captured.err
        assert captured.out == ""

    @pytest.mark.parametrize("solver", ["mp", "dp-bmr"])
    def test_bmr_infeasible_exits_1_without_traceback(self, graph_file, capsys, solver):
        # Negative retrieval budgets are infeasible (even materializing
        # everything has max retrieval 0); the solver's ValueError must
        # become an exit code, not a traceback.
        rc = main(["solve", "bmr", graph_file, "--budget", "-5", "--solver", solver])
        assert rc == 1
        captured = capsys.readouterr()
        assert "infeasible" in captured.err
        assert captured.out == ""

    def test_structural_graph_error_exits_2(self, graph_file, capsys, monkeypatch):
        # A GraphError is a problem with the input, not a budget
        # outcome: it must exit 2 with an "error:" line, never be
        # reported as "infeasible".
        from repro.core import GraphError
        from repro.algorithms import registry

        def broken(graph, budget):
            raise GraphError("dp_bmr requires a bidirectional tree input")

        monkeypatch.setitem(registry.BMR_SOLVERS, "dp-bmr", broken)
        rc = main(["solve", "bmr", graph_file, "--budget", "600", "--solver", "dp-bmr"])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "infeasible" not in captured.err

    @pytest.mark.parametrize("backend", ["array", "dict"])
    def test_msr_backend_flag(self, graph_file, capsys, backend):
        rc = main(
            [
                "solve", "msr", graph_file,
                "--budget", "21000",
                "--solver", "lmg-all",
                "--backend", backend,
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sum_retrieval"] == 1350

    def test_bmr_dp(self, graph_file, capsys):
        rc = main(["solve", "bmr", graph_file, "--budget", "600", "--solver", "dp-bmr"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_retrieval"] <= 600

    def test_unknown_solver(self, graph_file):
        with pytest.raises(KeyError):
            main(["solve", "msr", graph_file, "--budget", "21000", "--solver", "nope"])


class TestDataset:
    def test_stats_output(self, capsys):
        rc = main(["dataset", "datasharing", "--scale", "1.0"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 29

    def test_write_graph(self, tmp_path, capsys):
        out = tmp_path / "ds.json"
        rc = main(["dataset", "datasharing", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        from repro.core import VersionGraph

        g = VersionGraph.from_json(out.read_text())
        assert g.num_versions == 29


class TestFigure:
    def test_unknown_figure(self, capsys):
        rc = main(["figure", "fig99"])
        assert rc == 2

    def test_theorem1(self, capsys):
        rc = main(["figure", "theorem1"])
        assert rc == 0
        assert "gap" in capsys.readouterr().out
