"""Shared test helpers: seeded instances and span-based budgets.

One implementation behind both access paths: the conftest fixtures
(``repo_factory`` / ``graph_factory`` / ``storage_budget`` /
``retrieval_budget``) wrap these functions, and test modules that
predate the fixtures import them directly.  All caches are keyed by the
full parameter tuple and generation is deterministic, so a cached
object is indistinguishable from a fresh one — treat everything
returned here as read-only.
"""

from repro.vcs import build_graph_from_repo, random_repository

_repos = {}
_graphs = {}
_natural = {}


def cached_repo(commits, *, seed=0, branch_prob=0.15, merge_prob=0.05):
    """The seeded random repository for this parameter tuple (cached)."""
    key = (commits, seed, branch_prob, merge_prob)
    if key not in _repos:
        _repos[key] = random_repository(
            commits, branch_prob=branch_prob, merge_prob=merge_prob, seed=seed
        )
    return _repos[key]


def cached_graph(commits, *, seed=0, branch_prob=0.15, merge_prob=0.05):
    """The version graph of :func:`cached_repo` (cached)."""
    key = (commits, seed, branch_prob, merge_prob)
    if key not in _graphs:
        _graphs[key] = build_graph_from_repo(
            cached_repo(
                commits, seed=seed, branch_prob=branch_prob, merge_prob=merge_prob
            )
        )
    return _graphs[key]


def cached_natural_graph(n, *, seed=0):
    """A cached ``repro.gen.natural_graph`` instance."""
    from repro.gen import natural_graph

    key = (n, seed)
    if key not in _natural:
        _natural[key] = natural_graph(n, seed=seed)
    return _natural[key]


def storage_span_budget(graph, span=2.0):
    """``span`` x the min-storage arborescence cost: a feasible MSR
    storage budget with known slack."""
    from repro.fastgraph import ArrayPlanTree, CompiledGraph
    from repro.fastgraph.arborescence import min_storage_parent_edges

    cg = CompiledGraph(graph)
    tree = ArrayPlanTree(cg, min_storage_parent_edges(cg))
    return span * tree.total_storage


def retrieval_span_budget(graph, span=2.0):
    """``span`` x the worst single-edge retrieval cost: a feasible BMR
    max-retrieval budget."""
    return graph.max_retrieval_cost() * span


def repo_graph_budget(commits, *, seed=0, span=2.0, problem="msr",
                      branch_prob=0.15, merge_prob=0.05):
    """``(repo, graph, budget)`` — the triplet every engine test opens with."""
    repo = cached_repo(
        commits, seed=seed, branch_prob=branch_prob, merge_prob=merge_prob
    )
    graph = cached_graph(
        commits, seed=seed, branch_prob=branch_prob, merge_prob=merge_prob
    )
    if problem == "msr":
        budget = storage_span_budget(graph, span)
    else:
        budget = retrieval_span_budget(graph, span)
    return repo, graph, budget
