"""Tests for the synthetic generators (commits, natural, ER, compression,
presets, random graphs)."""

import numpy as np
import pytest

from repro.core import validate_graph
from repro.gen import (
    CostModel,
    TABLE4_PAPER,
    er_construction,
    generate_history,
    load_dataset,
    natural_graph,
    random_arborescence,
    random_bidirectional_tree,
    random_compression,
    random_digraph,
    series_parallel_graph,
)


class TestCommitHistory:
    def test_deterministic(self):
        h1 = generate_history(200, seed=1)
        h2 = generate_history(200, seed=1)
        assert [c.parents for c in h1.commits] == [c.parents for c in h2.commits]

    def test_dag_structure(self):
        h = generate_history(300, seed=2)
        h.validate()
        assert h.num_commits == 300

    def test_merges_have_two_parents(self):
        h = generate_history(500, merge_prob=0.2, seed=3)
        merges = h.merge_commits()
        assert merges, "expected some merges at merge_prob=0.2"
        for m in merges:
            assert len(m.parents) == 2
            assert m.parents[0] != m.parents[1]

    def test_no_merges_when_disabled(self):
        h = generate_history(200, merge_prob=0.0, seed=4)
        assert not h.merge_commits()

    def test_parent_link_count(self):
        h = generate_history(100, seed=5)
        assert h.num_parent_links == 99 + len(h.merge_commits())

    def test_single_commit(self):
        h = generate_history(1, seed=6)
        assert h.num_commits == 1
        assert h.commits[0].parents == ()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_history(0)


class TestNaturalGraph:
    def test_structure(self):
        g = natural_graph(120, seed=7)
        validate_graph(g)
        assert g.num_versions == 120
        # bidirectional parent-child edges
        for u, v, _ in list(g.deltas()):
            assert g.has_delta(v, u)

    def test_single_weight_function(self):
        g = natural_graph(50, seed=8, model=CostModel(retrieval_ratio=1.0))
        for _, _, d in g.deltas():
            assert d.retrieval == pytest.approx(d.storage)

    def test_costs_positive_and_versions_dominant(self):
        g = natural_graph(80, seed=9)
        assert g.average_version_storage() > 10 * g.average_delta_storage()

    def test_deterministic(self):
        a = natural_graph(60, seed=10).to_json()
        b = natural_graph(60, seed=10).to_json()
        assert a == b


class TestER:
    def test_full_density_is_complete(self):
        g = natural_graph(15, seed=11)
        er = er_construction(g, 1.0, CostModel(), seed=11)
        assert er.num_deltas == 15 * 14

    def test_density_scales_edges(self):
        g = natural_graph(40, seed=12)
        e1 = er_construction(g, 0.1, CostModel(), seed=1).num_deltas
        e2 = er_construction(g, 0.4, CostModel(), seed=1).num_deltas
        assert e2 > e1 * 2

    def test_natural_costs_preserved(self):
        g = natural_graph(12, seed=13)
        er = er_construction(g, 1.0, CostModel(), seed=2)
        for u, v, d in g.deltas():
            assert er.delta(u, v) == d

    def test_unnatural_deltas_cost_more(self):
        model = CostModel(unnatural_factor=10)
        g = natural_graph(20, seed=14, model=model)
        er = er_construction(g, 1.0, model, seed=3)
        nat = [d.storage for u, v, d in er.deltas() if g.has_delta(u, v)]
        unnat = [d.storage for u, v, d in er.deltas() if not g.has_delta(u, v)]
        assert np.mean(unnat) > 3 * np.mean(nat)

    def test_invalid_p(self):
        g = natural_graph(5, seed=15)
        with pytest.raises(ValueError):
            er_construction(g, 1.5, CostModel())


class TestCompression:
    def test_storage_shrinks_retrieval_grows(self):
        g = natural_graph(60, seed=16)
        c = random_compression(g, seed=17)
        for (u, v, d), (_, _, dc) in zip(g.deltas(), c.deltas()):
            assert dc.storage <= d.storage + 1e-9
            assert dc.retrieval >= d.retrieval - 1e-9

    def test_breaks_single_weight_function(self):
        g = natural_graph(60, seed=18)
        c = random_compression(g, seed=19)
        ratios = {round(d.retrieval / d.storage, 3) for _, _, d in c.deltas()}
        assert len(ratios) > 10

    def test_version_compression_toggle(self):
        g = natural_graph(20, seed=20)
        c = random_compression(g, seed=21, compress_versions=False)
        for v in g.versions:
            assert c.storage_cost(v) == g.storage_cost(v)


class TestPresets:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_datasharing_full_scale_matches_table4(self):
        g = load_dataset("datasharing", scale=1.0)
        n, e, sv, se = TABLE4_PAPER["datasharing"]
        assert g.num_versions == n
        assert abs(g.num_deltas - e) <= 20  # stochastic edge count
        assert 0.3 * sv <= g.average_version_storage() <= 3 * sv
        assert 0.3 * se <= g.average_delta_storage() <= 3 * se

    def test_styleguide_scaled(self):
        g = load_dataset("styleguide", scale=0.2)
        assert 80 <= g.num_versions <= 120

    def test_er_presets(self):
        g = load_dataset("LeetCode (0.05)", scale=0.5)
        n = g.num_versions
        expected = 0.05 * n * (n - 1)
        assert 0.5 * expected <= g.num_deltas <= 2 * expected

    def test_compressed_variant(self):
        a = load_dataset("datasharing", scale=1.0)
        b = load_dataset("datasharing", scale=1.0, compressed=True)
        assert b.average_delta_storage() < a.average_delta_storage()

    def test_deterministic(self):
        a = load_dataset("datasharing")
        b = load_dataset("datasharing")
        assert a.to_json() == b.to_json()


class TestRandomGraphs:
    def test_bidirectional_tree_is_tree(self):
        g = random_bidirectional_tree(25, seed=22)
        assert g.is_bidirectional_tree()

    def test_arborescence_in_degrees(self):
        g = random_arborescence(20, seed=23)
        roots = [v for v in g.versions if g.in_degree(v) == 0]
        assert roots == [0]
        assert all(g.in_degree(v) == 1 for v in g.versions if v != 0)

    def test_digraph_extra_edges(self):
        sparse = random_digraph(15, extra_edge_prob=0.0, seed=24)
        dense = random_digraph(15, extra_edge_prob=0.5, seed=24)
        assert dense.num_deltas > sparse.num_deltas

    def test_series_parallel_validates(self):
        g = series_parallel_graph(30, seed=25)
        validate_graph(g)
        # every undirected edge present in both directions
        for u, v, _ in list(g.deltas()):
            assert g.has_delta(v, u)
