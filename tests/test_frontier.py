"""Unit + property tests for the Pareto frontier machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.frontier import Frontier, ThinningGrid, merge_frontiers

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    min_size=0,
    max_size=40,
)


def build(points, grid=None):
    if not points:
        return Frontier.empty()
    s, r = zip(*points)
    return Frontier.from_points(np.array(s), np.array(r), grid)


class TestBasics:
    def test_empty(self):
        f = Frontier.empty()
        assert f.is_empty
        assert math.isinf(f.best_retrieval_within(1e9))
        assert f.best_point_within(1e9) is None
        assert math.isinf(f.min_storage())

    def test_single(self):
        f = Frontier.single(10, 5)
        assert f.points() == [(10, 5)]
        assert f.best_retrieval_within(10) == 5
        assert math.isinf(f.best_retrieval_within(9))

    def test_dominated_points_removed(self):
        f = build([(10, 5), (12, 5), (11, 7), (15, 3)])
        assert f.points() == [(10, 5), (15, 3)]

    def test_equal_storage_keeps_best(self):
        f = build([(10, 5), (10, 3)])
        assert f.points() == [(10, 3)]

    def test_shift(self):
        f = build([(10, 5), (15, 3)]).shift(2, 1)
        assert f.points() == [(12, 6), (17, 4)]

    def test_combine(self):
        a = build([(1, 10), (3, 4)])
        b = build([(2, 8), (5, 1)])
        c = a.combine(b)
        # candidates: (3,18) (6,11) (5,12) (8,5)
        assert c.points() == [(3, 18), (5, 12), (6, 11), (8, 5)]

    def test_combine_with_empty(self):
        a = build([(1, 1)])
        assert a.combine(Frontier.empty()).is_empty

    def test_union(self):
        a = build([(1, 10)])
        b = build([(2, 3)])
        assert a.union(b).points() == [(1, 10), (2, 3)]

    def test_merge_many(self):
        fs = [build([(i, 10 - i)]) for i in range(1, 5)]
        m = merge_frontiers(fs)
        assert m.points() == [(1, 9), (2, 8), (3, 7), (4, 6)]

    def test_cap_filters(self):
        grid = ThinningGrid(cap=10, max_points=100)
        f = build([(5, 5), (20, 1)], grid)
        assert f.points() == [(5, 5)]

    def test_thinning_respects_max_points(self):
        grid = ThinningGrid(cap=math.inf, max_points=4)
        pts = [(float(i), 1000.0 - i) for i in range(1, 101)]
        f = build(pts, grid)
        assert len(f) <= 5  # max_points buckets + forced min point

    def test_min_storage_point_survives_thinning(self):
        grid = ThinningGrid(cap=math.inf, max_points=2)
        pts = [(float(i), 1000.0 - i) for i in range(1, 50)]
        f = build(pts, grid)
        assert f.min_storage() == 1.0

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            ThinningGrid(cap=1, max_points=0)


class TestProperties:
    @given(points_strategy)
    @settings(max_examples=200, deadline=None)
    def test_canonical_invariants(self, pts):
        f = build(pts)
        f.check_invariants()

    @given(points_strategy)
    @settings(max_examples=100, deadline=None)
    def test_every_input_point_dominated(self, pts):
        f = build(pts)
        for s, r in pts:
            assert f.dominates_point(s, r)

    @given(points_strategy, points_strategy)
    @settings(max_examples=100, deadline=None)
    def test_union_commutative(self, p1, p2):
        a, b = build(p1), build(p2)
        assert a.union(b).points() == b.union(a).points()

    @given(points_strategy, points_strategy)
    @settings(max_examples=100, deadline=None)
    def test_combine_commutative(self, p1, p2):
        a, b = build(p1), build(p2)
        x = a.combine(b).points()
        y = b.combine(a).points()
        assert len(x) == len(y)
        for (s1, r1), (s2, r2) in zip(x, y):
            assert math.isclose(s1, s2, rel_tol=1e-12, abs_tol=1e-9)
            assert math.isclose(r1, r2, rel_tol=1e-12, abs_tol=1e-9)

    @given(points_strategy)
    @settings(max_examples=100, deadline=None)
    def test_thinning_is_sound(self, pts):
        """Thinned frontiers only contain achievable points and never
        improve on the exact frontier."""
        exact = build(pts)
        thinned = build(pts, ThinningGrid(cap=math.inf, max_points=5))
        thinned.check_invariants()
        for s, r in thinned.points():
            assert exact.dominates_point(s, r)
            assert exact.best_retrieval_within(s) <= r + 1e-9

    @given(points_strategy)
    @settings(max_examples=100, deadline=None)
    def test_best_retrieval_monotone_in_budget(self, pts):
        f = build(pts)
        budgets = sorted({s for s, _ in pts} | {0.0, 1e9})
        vals = [f.best_retrieval_within(b) for b in budgets]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    @given(points_strategy, points_strategy, points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_combine_associative_value(self, p1, p2, p3):
        a, b, c = build(p1), build(p2), build(p3)
        left = a.combine(b).combine(c)
        right = a.combine(b.combine(c))
        for budget in (10.0, 1000.0, 1e7):
            lv = left.best_retrieval_within(budget)
            rv = right.best_retrieval_within(budget)
            assert lv == rv or math.isclose(lv, rv, rel_tol=1e-9, abs_tol=1e-9)
