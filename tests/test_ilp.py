"""Tests for the exact ILP solvers (Appendix D, via HiGHS)."""

import math

import pytest

from repro.core import BMR, BSR, MMR, MSR
from repro.core.instances import figure1_graph
from repro.algorithms import (
    bmr_ilp,
    brute_force_solve,
    bsr_ilp,
    min_storage_plan_tree,
    mmr_ilp,
    msr_ilp,
)
from repro.gen import random_bidirectional_tree, random_digraph


class TestMSRILP:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        g = random_digraph(7, extra_edge_prob=0.25, seed=seed)
        base = min_storage_plan_tree(g).total_storage
        for frac in (1.0, 1.4, 2.5):
            budget = base * frac + 1
            res = msr_ilp(g, budget)
            bf = brute_force_solve(g, MSR(budget))
            assert res.optimal
            assert res.score.sum_retrieval == pytest.approx(bf[1].sum_retrieval)
            assert res.score.storage <= budget + 1e-6

    def test_figure1(self):
        g = figure1_graph()
        res = msr_ilp(g, 21_000)
        assert res.optimal
        assert res.objective == pytest.approx(1350)
        assert sorted(res.plan.materialized) == ["v1", "v3"]

    def test_infeasible_budget(self):
        g = figure1_graph()
        res = msr_ilp(g, 100)  # below min storage
        assert res.plan is None
        assert math.isinf(res.objective)


class TestBSRILP:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        g = random_digraph(6, extra_edge_prob=0.25, seed=10 + seed)
        for budget in (10, 40, 200):
            res = bsr_ilp(g, budget)
            bf = brute_force_solve(g, BSR(budget))
            assert res.optimal
            assert res.score.storage == pytest.approx(bf[1].storage)
            assert res.score.sum_retrieval <= budget + 1e-6

    def test_zero_budget(self):
        g = figure1_graph()
        res = bsr_ilp(g, 0)
        assert res.score.storage == pytest.approx(g.total_version_storage())


class TestBMRILP:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        g = random_bidirectional_tree(6, seed=seed)
        for budget in (0, 10, 30):
            res = bmr_ilp(g, budget)
            bf = brute_force_solve(g, BMR(budget))
            assert res.optimal
            assert res.score.storage == pytest.approx(bf[1].storage)
            assert res.score.max_retrieval <= budget + 1e-6


class TestMMRILP:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed):
        g = random_bidirectional_tree(6, seed=20 + seed)
        base = min_storage_plan_tree(g).total_storage
        for frac in (1.0, 1.6):
            budget = base * frac + 1
            res = mmr_ilp(g, budget)
            bf = brute_force_solve(g, MMR(budget))
            assert res.optimal
            assert res.objective == pytest.approx(bf[1].max_retrieval)
            assert res.score.storage <= budget + 1e-6

    def test_huge_budget_gives_zero_max_retrieval(self):
        g = figure1_graph()
        res = mmr_ilp(g, 10**9)
        assert res.objective == pytest.approx(0.0)
