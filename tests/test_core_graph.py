"""Unit tests for :mod:`repro.core.graph`."""

import json

import pytest

from repro.core import AUX, Delta, GraphError, VersionGraph, validate_graph
from repro.core.instances import figure1_graph


def make_chain(n=4, sv=100.0, se=5.0, re=7.0):
    g = VersionGraph(name="chain")
    for i in range(n):
        g.add_version(i, sv)
    for i in range(n - 1):
        g.add_delta(i, i + 1, se, re)
    return g


class TestConstruction:
    def test_add_version_and_lookup(self):
        g = VersionGraph()
        g.add_version("v", 12.5)
        assert "v" in g
        assert g.storage_cost("v") == 12.5
        assert g.num_versions == 1

    def test_re_add_version_updates_cost(self):
        g = VersionGraph()
        g.add_version("v", 1.0)
        g.add_version("v", 2.0)
        assert g.storage_cost("v") == 2.0
        assert g.num_versions == 1

    def test_negative_storage_rejected(self):
        g = VersionGraph()
        with pytest.raises(GraphError):
            g.add_version("v", -1.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(GraphError):
            Delta(-1, 0)
        with pytest.raises(GraphError):
            Delta(0, -1)

    def test_add_delta_requires_versions(self):
        g = VersionGraph()
        g.add_version("u", 1)
        with pytest.raises(GraphError):
            g.add_delta("u", "v", 1, 1)

    def test_self_delta_rejected(self):
        g = VersionGraph()
        g.add_version("u", 1)
        with pytest.raises(GraphError):
            g.add_delta("u", "u", 1, 1)

    def test_duplicate_delta_rejected(self):
        g = make_chain(2)
        with pytest.raises(GraphError):
            g.add_delta(0, 1, 1, 1)

    def test_duplicate_delta_keep_cheapest(self):
        g = make_chain(2, se=5, re=7)
        g.add_delta(0, 1, 3, 9, keep_cheapest=True)
        d = g.delta(0, 1)
        assert (d.storage, d.retrieval) == (3, 7)

    def test_bidirectional_delta_defaults(self):
        g = VersionGraph()
        g.add_version("u", 1)
        g.add_version("v", 1)
        g.add_bidirectional_delta("u", "v", 2, 3)
        assert g.delta("v", "u") == Delta(2, 3)

    def test_bidirectional_delta_asymmetric(self):
        g = VersionGraph()
        g.add_version("u", 1)
        g.add_version("v", 1)
        g.add_bidirectional_delta("u", "v", 2, 3, storage_back=4, retrieval_back=5)
        assert g.delta("u", "v") == Delta(2, 3)
        assert g.delta("v", "u") == Delta(4, 5)

    def test_remove_delta(self):
        g = make_chain(3)
        g.remove_delta(0, 1)
        assert not g.has_delta(0, 1)
        with pytest.raises(GraphError):
            g.remove_delta(0, 1)
        validate_graph(g)

    def test_aux_reserved(self):
        g = VersionGraph()
        with pytest.raises(GraphError):
            g.add_version(AUX, 0)


class TestQueries:
    def test_degrees_and_adjacency(self):
        g = figure1_graph()
        assert g.out_degree("v1") == 2
        assert g.in_degree("v5") == 2
        assert set(g.successors("v2")) == {"v4", "v5"}
        assert set(g.predecessors("v5")) == {"v2", "v3"}

    def test_stats_match_figure1(self):
        g = figure1_graph()
        stats = g.stats()
        assert stats["nodes"] == 5
        assert stats["edges"] == 5
        assert stats["avg_version_storage"] == pytest.approx(
            (10000 + 10100 + 9700 + 9800 + 10120) / 5
        )
        assert stats["avg_delta_storage"] == pytest.approx((200 + 1000 + 50 + 800 + 200) / 5)

    def test_total_version_storage(self):
        g = make_chain(3, sv=10)
        assert g.total_version_storage() == 30

    def test_max_retrieval_cost(self):
        g = figure1_graph()
        assert g.max_retrieval_cost() == 3000

    def test_empty_graph_stats(self):
        g = VersionGraph()
        assert g.average_version_storage() == 0
        assert g.average_delta_storage() == 0
        assert g.max_retrieval_cost() == 0


class TestExtended:
    def test_extended_adds_aux_edges(self):
        g = figure1_graph()
        ext = g.extended()
        assert ext.has_aux
        assert not g.has_aux  # original untouched
        assert ext.num_versions == 6
        for v in g.versions:
            d = ext.delta(AUX, v)
            assert d.storage == g.storage_cost(v)
            assert d.retrieval == 0

    def test_extended_preserves_deltas(self):
        g = figure1_graph()
        ext = g.extended()
        assert ext.delta("v1", "v3") == g.delta("v1", "v3")

    def test_extended_is_consistent(self):
        validate_graph(figure1_graph().extended())


class TestTransforms:
    def test_copy_is_deep_for_structure(self):
        g = make_chain(3)
        h = g.copy()
        h.add_version("x", 1)
        h.remove_delta(0, 1)
        assert "x" not in g
        assert g.has_delta(0, 1)

    def test_map_deltas(self):
        g = make_chain(3, se=10, re=20)
        h = g.map_deltas(lambda u, v, d: d.scaled(0.5, 2.0))
        assert h.delta(0, 1) == Delta(5, 40)
        assert g.delta(0, 1) == Delta(10, 20)

    def test_subgraph(self):
        g = figure1_graph()
        sub = g.subgraph(["v1", "v2", "v4"])
        assert sub.num_versions == 3
        assert sub.has_delta("v1", "v2") and sub.has_delta("v2", "v4")
        assert sub.num_deltas == 2

    def test_undirected_edges_merges_directions(self):
        g = VersionGraph()
        for v in "abc":
            g.add_version(v, 1)
        g.add_bidirectional_delta("a", "b", 1, 1)
        g.add_delta("b", "c", 1, 1)
        assert len(g.undirected_edges()) == 2


class TestBidirectionalTree:
    def test_chain_is_not_bidirectional(self):
        g = make_chain(3)
        assert not g.is_bidirectional_tree()

    def test_bidirectional_chain_is_tree(self):
        g = VersionGraph()
        for i in range(4):
            g.add_version(i, 1)
        for i in range(3):
            g.add_bidirectional_delta(i, i + 1, 1, 1)
        assert g.is_bidirectional_tree()

    def test_cycle_is_not_tree(self):
        g = VersionGraph()
        for i in range(3):
            g.add_version(i, 1)
        for i in range(3):
            g.add_bidirectional_delta(i, (i + 1) % 3, 1, 1)
        assert not g.is_bidirectional_tree()

    def test_disconnected_is_not_tree(self):
        g = VersionGraph()
        for i in range(4):
            g.add_version(i, 1)
        g.add_bidirectional_delta(0, 1, 1, 1)
        g.add_bidirectional_delta(2, 3, 1, 1)
        assert not g.is_bidirectional_tree()

    def test_empty_graph_is_a_tree(self):
        # Regression: the n == 0 early return used to sit after the
        # edge-count check, where len(und) != n - 1 (0 != -1) shadowed it.
        assert VersionGraph().is_bidirectional_tree()

    def test_single_node_is_a_tree(self):
        g = VersionGraph()
        g.add_version("only", 1)
        assert g.is_bidirectional_tree()

    def test_single_node_with_self_history_stays_tree(self):
        g = VersionGraph()
        g.add_version(0, 1)
        g.add_version(1, 1)
        g.add_delta(0, 1, 1, 1)  # one direction only: not bidirectional
        assert not g.is_bidirectional_tree()


class TestTriangleInequality:
    def test_figure1_satisfies_triangle(self):
        # figure 1 has no 2-hop shortcut edges that violate it
        assert figure1_graph().check_triangle_inequality() == []

    def test_violation_detected(self):
        g = VersionGraph()
        for v in "abc":
            g.add_version(v, 10)
        g.add_delta("a", "b", 1, 1)
        g.add_delta("b", "c", 1, 1)
        g.add_delta("a", "c", 1, 5)  # r_ac > r_ab + r_bc
        assert g.check_triangle_inequality() == [("a", "b", "c")]

    def test_generalized_triangle(self):
        g = VersionGraph()
        g.add_version("u", 1)
        g.add_version("v", 100)
        g.add_delta("u", "v", 1, 1)  # 1 + 1 < 100: violation
        assert g.check_generalized_triangle_inequality() == [("u", "v")]
        # Figure 1 itself has one generalized-triangle violation:
        # s_v3 + s_(v3,v5) = 9700 + 200 < s_v5 = 10120 (the paper's costs
        # are illustrative, not metric) — the diagnostic should find it.
        assert figure1_graph().check_generalized_triangle_inequality() == [("v3", "v5")]


class TestSerialization:
    def test_round_trip(self):
        g = figure1_graph()
        h = VersionGraph.from_json(g.to_json())
        assert set(h.versions) == set(g.versions)
        assert {(u, v): d for u, v, d in h.deltas()} == {(u, v): d for u, v, d in g.deltas()}

    def test_json_is_plain(self):
        payload = json.loads(figure1_graph().to_json())
        assert payload["name"] == "figure1"
        assert len(payload["versions"]) == 5

    def test_aux_never_serialized(self):
        ext = figure1_graph().extended()
        payload = ext.to_dict()
        assert len(payload["versions"]) == 5
        assert all(len(row) == 4 for row in payload["deltas"])

    def test_repr(self):
        assert "figure1" in repr(figure1_graph())
