"""Incremental version retirement: tombstones, plan repair, lifecycle.

The PR-10 acceptance bar, pinned here:

* detach events are *absorbed* by the cached :class:`CompiledGraph`
  (tombstoned in place, no wholesale invalidation) and the next
  ``compile()`` refresh compacts to arrays elementwise-equal to a
  fresh compile of the post-retirement graph;
* after any retire sequence the graph — tombstones, compaction and
  all — is indistinguishable from never having ingested the retired
  versions (equality against an insertion-order replay);
* :meth:`IngestEngine.retire_version` repairs the live plan in
  O(depth): the repaired plan stays budget-feasible, covers exactly
  the surviving versions, and the engine's online lower bound matches
  a from-scratch rebuild after every single step;
* lifecycle: the engine is a context manager with deterministic,
  idempotent shutdown — no resolver thread outlives the block.
"""

import random
import threading

import numpy as np
import pytest

from repro.core.graph import AUX, GraphError, VersionGraph
from repro.engine import IngestEngine
from repro.fastgraph import CompiledGraph
from repro.gen import CostModel, er_construction, natural_graph

# shared instance/budget helpers live in tests/helpers.py (see conftest)
from helpers import cached_repo

COMPARED_ARRAYS = (
    "node_storage",
    "edge_src",
    "edge_dst",
    "edge_storage",
    "edge_retrieval",
    "aux_edge",
    "out_indptr",
    "out_edges",
    "in_indptr",
    "in_edges",
)

#: budget factors validated to keep full retire sequences feasible
#: (the MSR lower bound is legitimately loose on post-retirement
#: graphs, where cheap bidirectional deltas cannot all be used)
FACTOR = {"msr": 8.0, "bmr": 3.0}


def assert_compiled_equal(a, b):
    assert a.n == b.n and a.aux == b.aux and a.num_edges == b.num_edges
    assert a.nodes == b.nodes
    assert a.index == b.index
    for name in COMPARED_ARRAYS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


def replay_live(g, name="replay"):
    """Rebuild ``g``'s surviving versions/deltas in insertion order.

    The graph a clairvoyant writer would have built by never ingesting
    the retired versions at all.
    """
    g2 = VersionGraph(name=name)
    for v in g.versions:
        g2.add_version(v, g.storage_cost(v))
    for u, w, d in g.deltas():
        g2.add_delta(u, w, d.storage, d.retrieval)
    return g2


def graphs_for(seed):
    natural = natural_graph(50, seed=seed)
    er = er_construction(natural, 0.25, CostModel(), seed=seed + 1)
    return [natural, er]


# ----------------------------------------------------------------------
# compiled-graph detach contract (graph level, no engine)
# ----------------------------------------------------------------------
class TestCompiledDetach:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_remove_delta_absorbed_and_compacted(self, seed):
        for g in graphs_for(seed):
            cg = g.compile()
            rng = random.Random(seed)
            edges = [(u, w) for u, w, _ in g.deltas()]
            for u, w in rng.sample(edges, min(15, len(edges))):
                g.remove_delta(u, w)
                # absorbed: the cached compiled graph is tombstoned in
                # place, not thrown away
                assert g.compiled_cache is cg
            refreshed = g.compile()
            assert refreshed is cg
            assert_compiled_equal(cg, CompiledGraph(g))

    @pytest.mark.parametrize("seed", [1, 4])
    def test_remove_version_tombstoned_then_compacted(self, seed):
        for g in graphs_for(seed):
            cg = g.compile()
            rng = random.Random(seed)
            for v in rng.sample(g.versions, 10):
                g.remove_version(v)
                assert g.compiled_cache is cg
            refreshed = g.compile()
            assert refreshed is cg
            assert_compiled_equal(cg, CompiledGraph(g))

    def test_detach_equals_never_ingested(self):
        g = natural_graph(40, seed=7)
        g.compile()
        rng = random.Random(7)
        for v in rng.sample(g.versions, 12):
            g.remove_version(v)
        # tombstone + compaction must be indistinguishable from a
        # history where the retired versions never arrived
        assert_compiled_equal(g.compile(), CompiledGraph(replay_live(g)))

    def test_interleaved_adds_and_removes(self):
        g = VersionGraph(name="interleave")
        cg = g.compile()
        rng = random.Random(11)
        live = []
        for i in range(60):
            v = f"v{i}"
            g.add_version(v, float(rng.randint(50, 150)))
            for u in rng.sample(live, min(2, len(live))):
                s = float(rng.randint(1, 40))
                g.add_delta(u, v, s, s)
                g.add_delta(v, u, s * 0.5, s * 0.5)
            live.append(v)
            if i % 5 == 4:
                victim = live.pop(rng.randrange(len(live)))
                g.remove_version(victim)
        assert g.compile() is cg
        assert_compiled_equal(cg, CompiledGraph(g))
        assert_compiled_equal(cg, CompiledGraph(replay_live(g)))


# ----------------------------------------------------------------------
# engine plan repair
# ----------------------------------------------------------------------
def check_engine_coherence(eng):
    """Per-step acceptance: LB, tree invariants, feasibility, coverage."""
    fresh = eng.spec.lower_bound_tracker()
    fresh.rebuild(eng.graph)
    assert abs(fresh.value() - eng._lb.value()) < 1e-6 * max(fresh.value(), 1.0)
    eng.tree.check_invariants()
    plan = eng.plan()
    assert plan.is_feasible(eng.graph)
    assert set(eng.tree.parent_map()) == set(eng.graph.versions)
    return plan


class TestRetirePlanRepair:
    @pytest.mark.parametrize("problem", ["msr", "bmr"])
    @pytest.mark.parametrize("seed", [1, 5])
    def test_retire_sequence_stays_feasible(self, problem, seed):
        repo = cached_repo(60, seed=seed)
        with IngestEngine(
            problem=problem, budget_factor=FACTOR[problem]
        ) as eng:
            for commit in repo.commits:
                eng.ingest_commit(repo, commit)
            rng = random.Random(seed)
            for v in rng.sample(eng.graph.versions, 15):
                eng.retire_version(v)
                check_engine_coherence(eng)
            # after compaction the graph is byte-identical to one where
            # the retired versions never arrived ...
            eng.resolve()
            assert_compiled_equal(
                eng.graph.compile(), CompiledGraph(replay_live(eng.graph))
            )
            # ... so the engine's re-solve equals a scratch solve
            scratch = eng._solver(
                CompiledGraph(replay_live(eng.graph)), eng.current_budget()
            )
            assert eng.plan() == scratch.to_plan()

    @pytest.mark.parametrize("problem", ["msr", "bmr"])
    def test_retire_interleaved_with_arrivals(self, problem):
        repo = cached_repo(80, seed=2)
        # versions later commits diff against must stay: an arrival's
        # delta endpoints have to exist at ingest time
        referenced = {p for c in repo.commits for p in c.parents}
        with IngestEngine(
            problem=problem, budget_factor=FACTOR[problem]
        ) as eng:
            rng = random.Random(2)
            retired = 0
            for i, commit in enumerate(repo.commits):
                eng.ingest_commit(repo, commit)
                if i % 7 == 6:
                    victims = [
                        v for v in eng.graph.versions if v not in referenced
                    ]
                    if victims:
                        eng.retire_version(rng.choice(victims))
                        retired += 1
                        check_engine_coherence(eng)
            assert retired >= 5
            eng.resolve()
            check_engine_coherence(eng)

    def test_background_retirement(self):
        repo = cached_repo(60, seed=3)
        with IngestEngine(
            problem="msr", budget_factor=8.0, background=True
        ) as eng:
            for commit in repo.commits:
                eng.ingest_commit(repo, commit)
            eng.wait()
            rng = random.Random(3)
            for v in rng.sample(eng.graph.versions, 10):
                eng.retire_version(v)
                eng.wait()
                check_engine_coherence(eng)
            eng.resolve()
            assert_compiled_equal(
                eng.graph.compile(), CompiledGraph(replay_live(eng.graph))
            )


# ----------------------------------------------------------------------
# edge cases
# ----------------------------------------------------------------------
class TestRetireEdgeCases:
    def test_unknown_version_raises(self):
        eng = IngestEngine(budget=1000.0)
        eng.ingest_version("a", 10.0)
        with pytest.raises(GraphError, match="unknown"):
            eng.retire_version("zzz")

    def test_retire_without_plan_forces_resolve(self):
        g = VersionGraph(name="pre")
        g.add_version("a", 10.0)
        g.add_version("b", 12.0)
        g.add_delta("a", "b", 2.0, 2.0)
        eng = IngestEngine(g, budget=1000.0)
        assert eng.tree is None
        eng.retire_version("b")  # plain removal, no plan to repair
        assert eng.tree is None and "b" not in eng.graph
        stats = eng.ingest_version("c", 8.0, [("a", "c", 1.0, 1.0)])
        assert stats.resolved
        assert eng.plan().is_feasible(eng.graph)

    def test_out_of_band_removal_forces_resolve(self):
        eng = IngestEngine(budget=1000.0)
        eng.ingest_version("a", 10.0)
        eng.ingest_version("b", 12.0, [("a", "b", 2.0, 2.0)])
        eng.ingest_version("c", 9.0, [("b", "c", 3.0, 3.0)])
        eng.graph.remove_delta("b", "c")  # behind the engine's back
        stats = eng.ingest_version("d", 5.0, [("a", "d", 1.0, 1.0)])
        assert stats.resolved  # dirty bookkeeping -> full re-solve
        assert eng.plan().is_feasible(eng.graph)
        assert_compiled_equal(eng.graph.compile(), CompiledGraph(eng.graph))

    def test_infeasible_retirement_raises(self):
        # a(100) -> b -> c on cheap deltas; retiring b leaves c only the
        # expensive a->c edge (50) or materialization (100): both blow
        # the MSR budget, so repair falls back to a full re-solve that
        # must report infeasibility
        eng = IngestEngine(problem="msr", budget=110.0)
        eng.ingest_version("a", 100.0)
        eng.ingest_version("b", 100.0, [("a", "b", 1.0, 1.0)])
        eng.ingest_version(
            "c", 100.0, [("b", "c", 1.0, 1.0), ("a", "c", 50.0, 50.0)]
        )
        with pytest.raises(ValueError):
            eng.retire_version("b")
        # graph removal stands; the engine is in retry-with-full-solve
        assert "b" not in eng.graph and eng.tree is None

    def test_bmr_retirement_always_repairable(self):
        # BMR: materialization costs zero retrieval, so repair can
        # always fall back to storing the orphan outright
        eng = IngestEngine(problem="bmr", budget=5.0)
        eng.ingest_version("a", 100.0)
        eng.ingest_version("b", 100.0, [("a", "b", 1.0, 4.0)])
        eng.ingest_version("c", 100.0, [("b", "c", 1.0, 4.0)])
        eng.retire_version("b")
        plan = eng.plan()
        assert plan.is_feasible(eng.graph)
        assert set(eng.tree.parent_map()) == {"a", "c"}


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def resolver_threads():
    return [
        t for t in threading.enumerate() if t.name == "repro-bg-resolve"
    ]


class TestLifecycle:
    def test_context_manager_joins_resolver(self):
        repo = cached_repo(60, seed=0)
        with IngestEngine(
            problem="msr", budget_factor=8.0, background=True
        ) as eng:
            for commit in repo.commits:
                eng.ingest_commit(repo, commit)
        assert eng._bg is None
        assert not any(t.is_alive() for t in resolver_threads())

    def test_close_is_idempotent_and_degrades_to_sync(self):
        repo = cached_repo(40, seed=1)
        eng = IngestEngine(problem="msr", budget_factor=8.0, background=True)
        for commit in repo.commits[:20]:
            eng.ingest_commit(repo, commit)
        eng.close()
        eng.close()  # idempotent
        assert eng._bg is None
        # a closed engine keeps working, synchronously
        for commit in repo.commits[20:]:
            eng.ingest_commit(repo, commit)
        assert eng.plan().is_feasible(eng.graph)

    def test_close_without_background_is_noop(self):
        eng = IngestEngine(budget=100.0)
        eng.ingest_version("a", 10.0)
        eng.close()
        eng.ingest_version("b", 10.0, [("a", "b", 1.0, 1.0)])
        assert eng.plan().is_feasible(eng.graph)
