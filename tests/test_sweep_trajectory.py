"""Tests for the trajectory-replay sweep engine and the shared
feasibility tolerance.

The load-bearing guarantee: every grid point of
:func:`repro.fastgraph.sweep_greedy_msr` is *identical* (parent map,
storage, retrieval) to an independent solver run at that budget — on
preset datasets, float-cost graphs, and a hand-built instance that
forces the replay to diverge and resume the live greedy.
"""

import math
from pathlib import Path

import numpy as np
import pytest

from repro.core import VersionGraph, budget_cap, evaluate_plan, within_budget
from repro.core.graph import GraphError
from repro.algorithms import min_storage_plan_tree
from repro.algorithms.registry import MSR_SOLVERS, get_msr_sweep
from repro.bench.harness import run_msr_experiment
from repro.fastgraph import (
    GREEDY_SWEEP_SOLVERS,
    lmg_all_array,
    lmg_array,
    sweep_greedy_msr,
)
from repro.gen import random_digraph

# shared cached instances live in tests/helpers.py (see conftest)
from helpers import cached_natural_graph as natural_graph
from repro.gen.presets import PRESETS

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"

# Small scales keep preset sweeps fast while exercising branch/merge/ER
# structure (same spirit as tests/test_fastgraph.py).
PRESET_SCALES = {
    "datasharing": 1.0,
    "styleguide": 0.15,
    "996.ICU": 0.04,
    "freeCodeCamp": 0.005,
    "LeetCodeAnimation": 0.4,
    "LeetCode (0.05)": 0.3,
    "LeetCode (0.2)": 0.3,
    "LeetCode (1)": 0.1,
}

FRESH = {"lmg": lmg_array, "lmg-all": lmg_all_array}


def grid_for(graph, points=9):
    """A budget grid spanning infeasible, boundary and loose budgets."""
    base = min_storage_plan_tree(graph).total_storage
    return (
        [base * 0.5, base]
        + [float(b) for b in np.geomspace(base * 1.02, base * 4.0, points)]
        + [math.inf]
    )


def assert_sweep_matches_fresh(graph, solver, budgets):
    entries = sweep_greedy_msr(graph, solver, budgets)
    assert [e.budget for e in entries] == [float(b) for b in budgets]
    for e, b in zip(entries, budgets):
        try:
            ref = FRESH[solver](graph, b)
        except ValueError:
            assert e.plan is None and e.score is None and not e.feasible
            continue
        assert e.feasible
        assert e.plan == ref.to_plan(), (solver, b)
        ref_score = evaluate_plan(graph, ref.to_plan())
        assert e.score == ref_score, (solver, b)
    return entries


class TestWithinBudget:
    def test_boundary_exact(self):
        assert within_budget(100.0, 100.0)
        assert within_budget(0.0, 0.0)
        assert within_budget(-5.0, -5.0)

    def test_tolerance_width(self):
        assert within_budget(100.0 + 5e-11, 100.0)  # inside rel+abs slack
        assert not within_budget(100.1, 100.0)
        assert within_budget(5e-10, 0.0)  # absolute term near zero
        assert not within_budget(1e-8, 0.0)

    def test_infinite_budget(self):
        assert within_budget(1e300, math.inf)
        assert budget_cap(math.inf) == math.inf

    def test_elementwise_on_arrays(self):
        vals = np.array([1.0, 2.0, 3.0])
        out = within_budget(vals, 2.0)
        assert out.dtype == bool
        assert out.tolist() == [True, True, False]

    def test_no_inline_tolerance_in_src(self):
        """Inline tolerance arithmetic must not reappear outside
        core/tolerance.py — enforced by the AST rule, which sees every
        spelling of the pattern (not just one regex)."""
        from repro.analysis import get_rule, lint_paths

        findings = lint_paths(
            [SRC_ROOT / "repro"], rules=[get_rule("tolerance-discipline")]
        )
        assert not findings, "inline tolerance expressions:\n" + "\n".join(
            f.render() for f in findings
        )


class TestTrajectorySweep:
    @pytest.mark.parametrize("solver", GREEDY_SWEEP_SOLVERS)
    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, solver, seed):
        g = random_digraph(14, extra_edge_prob=0.3, seed=seed)
        assert_sweep_matches_fresh(g, solver, grid_for(g))

    @pytest.mark.parametrize("solver", GREEDY_SWEEP_SOLVERS)
    @pytest.mark.parametrize("name", sorted(PRESET_SCALES))
    def test_presets(self, solver, name):
        g = PRESETS[name].build(scale=PRESET_SCALES[name])
        assert_sweep_matches_fresh(g, solver, grid_for(g, points=7))

    @pytest.mark.parametrize("solver", GREEDY_SWEEP_SOLVERS)
    @pytest.mark.parametrize("seed", range(3))
    def test_float_costs(self, solver, seed):
        # non-integer costs exercise boundary-budget float decisions
        rng = np.random.default_rng(seed)
        n = 14
        g = VersionGraph()
        for i in range(n):
            g.add_version(i, float(rng.uniform(0.01, 5.0)))
        for i in range(1, n):
            j = int(rng.integers(0, i))
            g.add_bidirectional_delta(
                j, i, float(rng.uniform(0.01, 2.0)), float(rng.uniform(0.01, 2.0))
            )
        assert_sweep_matches_fresh(g, solver, grid_for(g, points=11))

    def test_divergence_resumes_live_greedy(self):
        # Crafted so the loose run's first move (materialize "b", big
        # storage jump, best ratio) is infeasible at the tight budget,
        # where the fresh greedy settles for the cheaper "c" move: the
        # replay must fork and continue live, not emit the bare prefix.
        g = VersionGraph()
        g.add_version("a", 100.0)
        g.add_version("b", 50.0)
        g.add_version("c", 8.0)
        g.add_delta("a", "b", 5.0, 100.0)
        g.add_delta("a", "c", 5.0, 4.0)
        base = min_storage_plan_tree(g).total_storage  # a mat + two deltas
        assert base == 110.0
        tight, loose = 114.0, 160.0
        entries = sweep_greedy_msr(g, "lmg", [tight, loose])
        ref_tight = lmg_array(g, tight)
        ref_loose = lmg_array(g, loose)
        assert entries[0].plan == ref_tight.to_plan()
        assert entries[1].plan == ref_loose.to_plan()
        assert not entries[0].replayed  # forked + continued live
        assert entries[1].replayed
        # the tight plan took the cheap move the loose trajectory skipped
        assert "c" in map(str, ref_tight.to_plan().materialized)
        assert "b" not in map(str, ref_tight.to_plan().materialized)

    @pytest.mark.parametrize("solver", GREEDY_SWEEP_SOLVERS)
    def test_duplicate_and_unsorted_budgets(self, solver):
        g = natural_graph(30, seed=5)
        base = min_storage_plan_tree(g).total_storage
        budgets = [base * 2.0, base * 1.1, base * 2.0, base * 0.5, base * 3.0]
        assert_sweep_matches_fresh(g, solver, budgets)

    def test_all_infeasible(self):
        g = natural_graph(20, seed=6)
        base = min_storage_plan_tree(g).total_storage
        entries = sweep_greedy_msr(g, "lmg", [base * 0.1, base * 0.5])
        assert all(not e.feasible for e in entries)

    def test_empty_grid(self):
        g = natural_graph(20, seed=6)
        assert sweep_greedy_msr(g, "lmg", []) == []

    def test_unknown_solver_raises(self):
        g = natural_graph(20, seed=6)
        with pytest.raises(KeyError):
            sweep_greedy_msr(g, "mp", [1.0])

    def test_start_edges_reuse(self):
        from repro.fastgraph.arborescence import min_storage_parent_edges

        g = natural_graph(30, seed=7)
        cg = g.compile()
        edges = min_storage_parent_edges(cg)
        base = min_storage_plan_tree(g).total_storage
        grid = [base * 1.1, base * 2.0]
        with_edges = sweep_greedy_msr(g, "lmg", grid, start_edges=edges)
        without = sweep_greedy_msr(g, "lmg", grid)
        assert [e.plan for e in with_edges] == [e.plan for e in without]

    def test_registry_sweep_lookup(self):
        assert get_msr_sweep("lmg") is not None
        assert get_msr_sweep("lmg-all") is not None
        assert get_msr_sweep("dp-msr") is None
        assert get_msr_sweep("nope") is None


class TestHarnessUsesSweep:
    def test_msr_experiment_series_match_per_budget_solves(self):
        g = natural_graph(40, seed=8)
        base = min_storage_plan_tree(g).total_storage
        budgets = [float(b) for b in np.geomspace(base * 1.02, base * 3, 6)]
        result = run_msr_experiment(
            g, name="t", solvers=["lmg", "lmg-all"], budgets=budgets
        )
        for name in ("lmg", "lmg-all"):
            series = result.objective[name]
            assert series.x == budgets
            for b, y in zip(series.x, series.y):
                plan = MSR_SOLVERS[name](g, b)
                expect = (
                    math.inf if plan is None else evaluate_plan(g, plan).sum_retrieval
                )
                assert y == expect  # byte-identical, not approx
            # single-run amortization: one flat time across the grid
            assert len(set(result.runtime[name].y)) == 1


class TestIdentitySwap:
    def test_materialize_twice_is_bit_exact_noop(self):
        g = natural_graph(25, seed=9)
        cg = g.compile()
        tree = lmg_array(g, min_storage_plan_tree(g).total_storage * 2.5)
        mats = [i for i in range(cg.n) if tree.parent[i] == cg.aux]
        assert mats
        before_storage = tree.total_storage
        before_retrieval = tree.total_retrieval
        before_ret = tree.ret.copy()
        before_children = [list(c) for c in tree.children]
        for v in mats:
            tree.materialize(v)  # identity swap: must early-return
        assert tree.total_storage == before_storage  # exact, no float churn
        assert tree.total_retrieval == before_retrieval
        assert np.array_equal(tree.ret, before_ret)
        assert tree.children == before_children
        tree.check_invariants()

    @pytest.mark.parametrize("seed", range(5))
    def test_identity_swaps_preserve_invariants_random(self, seed):
        rng = np.random.default_rng(seed)
        g = random_digraph(12, extra_edge_prob=0.4, seed=seed)
        cg = g.compile()
        from repro.fastgraph.arborescence import min_storage_parent_edges
        from repro.fastgraph import ArrayPlanTree

        tree = ArrayPlanTree(cg, min_storage_parent_edges(cg))
        # interleave real swaps with identity swaps of the current
        # parent edge; caches must stay bit-identical to a fresh build
        for _ in range(30):
            v = int(rng.integers(0, cg.n))
            if rng.random() < 0.5:
                tree.apply_swap_edge(int(tree.par_edge[v]))  # identity
            else:
                eid = int(cg.aux_edge[v])
                if eid != int(tree.par_edge[v]):
                    tree.apply_swap_edge(eid)
        tree.check_invariants()

    def test_clone_is_independent(self):
        g = natural_graph(20, seed=10)
        cg = g.compile()
        from repro.fastgraph.arborescence import min_storage_parent_edges
        from repro.fastgraph import ArrayPlanTree

        tree = ArrayPlanTree(cg, min_storage_parent_edges(cg))
        copy = tree.clone()
        assert copy.total_storage == tree.total_storage
        assert copy.parent_map() == tree.parent_map()
        v = int(cg.edge_dst[cg.aux_edge[0]])
        if tree.parent[v] != cg.aux:
            copy.materialize(v)
            assert tree.parent[v] != cg.aux  # original untouched
            tree.check_invariants()
            copy.check_invariants()


class TestBoundaryBudgetMP:
    def test_mp_boundary_budget_no_spurious_infeasible(self):
        # Regression: the relaxation filter and the final feasibility
        # assertion must share one tolerance — a budget exactly equal
        # to an admitted path retrieval must not raise.
        from repro.algorithms import mp
        from repro.fastgraph import mp_array

        g = VersionGraph()
        for name, sto in (("a", 100.0), ("b", 100.0), ("c", 100.0)):
            g.add_version(name, sto)
        g.add_delta("a", "b", 1.0, 1.0)
        g.add_delta("b", "c", 1.0, 1.0)
        for budget in (2.0, 1.0, 0.3 + 0.3 + 0.3 + 0.1 + 1.0):
            ref = mp(g, budget)
            arr = mp_array(g, budget)
            assert ref.parent == arr.parent_map()
            assert ref.max_retrieval() <= budget_cap(budget)

    def test_mp_float_accumulated_boundary(self):
        # budget equal to a float-accumulated path sum (0.1*3 != 0.3)
        from repro.algorithms import mp
        from repro.fastgraph import mp_array

        g = VersionGraph()
        for i in range(5):
            g.add_version(i, 50.0)
        for i in range(4):
            g.add_delta(i, i + 1, 1.0, 0.1)
        exact_path = 0.1 + 0.1 + 0.1 + 0.1  # the deepest retrieval
        ref = mp(g, exact_path)
        arr = mp_array(g, exact_path)
        assert ref.parent == arr.parent_map()
        assert ref.max_retrieval() == arr.max_retrieval()

    def test_mp_negative_budget_still_infeasible(self):
        from repro.algorithms import mp
        from repro.fastgraph import mp_array

        g = random_digraph(6, seed=11)
        with pytest.raises(ValueError):
            mp(g, -1.0)
        with pytest.raises(ValueError):
            mp_array(g, -1.0)


class TestSweepCLI:
    def test_cli_sweep_json_matches_solvers(self, tmp_path, capsys):
        import json

        from repro.cli import main

        g = natural_graph(25, seed=12)
        path = tmp_path / "g.json"
        path.write_text(g.to_json())
        base = min_storage_plan_tree(g).total_storage
        budgets = [base * 1.1, base * 2.0]
        rc = main(
            [
                "sweep",
                "msr",
                str(path),
                "--solvers",
                "lmg,lmg-all",
                "--budgets",
                ",".join(str(b) for b in budgets),
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        g2 = VersionGraph.from_json(path.read_text())
        for name in ("lmg", "lmg-all"):
            assert payload["objective"][name]["x"] == budgets
            for b, y in zip(budgets, payload["objective"][name]["y"]):
                plan = MSR_SOLVERS[name](g2, b)
                assert y == evaluate_plan(g2, plan).sum_retrieval
        assert rc == 0

    def test_cli_sweep_markdown(self, tmp_path, capsys):
        from repro.cli import main

        g = natural_graph(20, seed=13)
        path = tmp_path / "g.json"
        path.write_text(g.to_json())
        rc = main(
            ["sweep", "msr", str(path), "--solvers", "lmg", "--points", "4",
             "--format", "markdown"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "| storage budget |" in out and "lmg" in out

    def test_cli_sweep_requires_one_input(self, capsys):
        from repro.cli import main

        assert main(["sweep", "msr"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_sweep_infinite_budget_strict_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        g = natural_graph(20, seed=17)
        path = tmp_path / "g.json"
        path.write_text(g.to_json())
        rc = main(["sweep", "msr", str(path), "--solvers", "lmg", "--budgets", "inf"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["objective"]["lmg"]["x"] == [None]  # inf budget -> null
        assert payload["objective"]["lmg"]["y"][0] is not None

    def test_cli_sweep_bad_dataset_and_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "msr", "--dataset", "styleguid"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["sweep", "msr", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err
        rc = main(
            ["solve", "msr", str(tmp_path / "missing.json"), "--budget", "1"]
        )
        assert rc == 2  # solve shares the loader's clean error path
        assert "error:" in capsys.readouterr().err

    def test_cli_sweep_unknown_solver(self, tmp_path, capsys):
        from repro.cli import main

        g = natural_graph(20, seed=14)
        path = tmp_path / "g.json"
        path.write_text(g.to_json())
        assert main(["sweep", "msr", str(path), "--solvers", "nope"]) == 2

    def test_cli_sweep_infeasible_points_emit_strict_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        g = natural_graph(20, seed=16)
        path = tmp_path / "g.json"
        path.write_text(g.to_json())
        base = min_storage_plan_tree(g).total_storage
        rc = main(
            ["sweep", "msr", str(path), "--solvers", "lmg",
             "--budgets", f"{base * 0.5},{base * 2.0}"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Infinity" not in out  # strict RFC JSON: null, not Infinity
        payload = json.loads(out)
        assert payload["objective"]["lmg"]["y"][0] is None
        assert payload["objective"]["lmg"]["y"][1] is not None

    def test_cli_sweep_dataset_out(self, tmp_path):
        import json

        from repro.cli import main

        out = tmp_path / "panel.json"
        rc = main(
            ["sweep", "msr", "--dataset", "datasharing", "--solvers", "lmg",
             "--points", "3", "--out", str(out)]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "lmg" in payload["objective"]


def test_graph_error_unused_guard():
    # sweeping a graph mutated after compile still works through the
    # cached-compile hook (cache invalidation, then fresh compile)
    g = natural_graph(15, seed=15)
    g.compile()
    g.add_version("extra", 3.0)
    base = min_storage_plan_tree(g)
    try:
        entries = sweep_greedy_msr(g, "lmg", [base.total_storage * 2])
        assert entries[0].feasible
    except GraphError:  # pragma: no cover - would indicate stale cache
        pytest.fail("stale compiled cache used after mutation")
