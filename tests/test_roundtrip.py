"""JSON round-trip property tests across the solver registry.

``VersionGraph.from_json(g.to_json())`` must be solver-equivalent to
``g`` itself: every registered solver, fed the round-tripped graph, has
to land on a plan with the same cost.  This catches ``repr_node``
node-type coercion drift — e.g. tuple- or object-keyed nodes are
serialized as strings, and a solver whose tie-breaking depends on node
*types* (``sorted(..., key=str)``, heap orderings) could silently pick
a different plan after a round trip.
"""

import math

import pytest

from repro.core import VersionGraph, evaluate_plan
from repro.core.instances import figure1_graph
from repro.algorithms.registry import BMR_SOLVERS, MSR_SOLVERS
from repro.algorithms import min_storage_plan_tree
from repro.gen import natural_graph, random_digraph


class VersionTag:
    """Non-JSON-native node type: serialized through ``repr_node`` as str."""

    def __init__(self, n):
        self.n = n

    def __hash__(self):
        return hash(("VersionTag", self.n))

    def __eq__(self, other):
        return isinstance(other, VersionTag) and self.n == other.n

    def __str__(self):
        return f"rev-{self.n:04d}"

    __repr__ = __str__


def graph_instances():
    yield "figure1-str-nodes", figure1_graph()
    yield "natural-int-nodes", natural_graph(24, seed=5)
    yield "random-int-nodes", random_digraph(10, extra_edge_prob=0.25, seed=3)
    g = random_digraph(9, extra_edge_prob=0.3, seed=8)
    relabeled = VersionGraph(name="tagged")
    for v in g.versions:
        relabeled.add_version(VersionTag(v), g.storage_cost(v))
    for u, v, d in g.deltas():
        relabeled.add_delta(VersionTag(u), VersionTag(v), d.storage, d.retrieval)
    yield "object-nodes", relabeled


def plan_cost(graph, plan):
    score = evaluate_plan(graph, plan)
    return (score.storage, score.sum_retrieval, score.max_retrieval)


@pytest.mark.parametrize("label,graph", list(graph_instances()))
class TestRoundTrip:
    def test_structure_survives(self, label, graph):
        back = VersionGraph.from_json(graph.to_json())
        assert back.num_versions == graph.num_versions
        assert back.num_deltas == graph.num_deltas
        assert back.total_version_storage() == graph.total_version_storage()

    @pytest.mark.parametrize("solver", sorted(MSR_SOLVERS))
    def test_msr_solvers_cost_stable(self, label, graph, solver):
        back = VersionGraph.from_json(graph.to_json())
        base = min_storage_plan_tree(graph).total_storage
        fn = MSR_SOLVERS[solver]
        for frac in (1.05, 2.0):
            budget = base * frac
            plan = fn(graph, budget)
            plan_back = fn(back, budget)
            assert (plan is None) == (plan_back is None)
            if plan is None:
                continue
            a = plan_cost(graph, plan)
            b = plan_cost(back, plan_back)
            assert a == pytest.approx(b, rel=1e-9, abs=1e-9), (label, solver, frac)

    @pytest.mark.parametrize("solver", sorted(BMR_SOLVERS))
    def test_bmr_solvers_cost_stable(self, label, graph, solver):
        back = VersionGraph.from_json(graph.to_json())
        rmax = graph.max_retrieval_cost()
        fn = BMR_SOLVERS[solver]
        for budget in (0.0, rmax * 2):
            plan = fn(graph, budget)
            plan_back = fn(back, budget)
            assert (plan is None) == (plan_back is None)
            if plan is None:
                continue
            a = plan_cost(graph, plan)
            b = plan_cost(back, plan_back)
            assert math.isfinite(a[2])
            assert a == pytest.approx(b, rel=1e-9, abs=1e-9), (label, solver, budget)
