"""VCS edge cases + the single-trace bidirectional delta costs.

Covers what the straight-line-history tests never exercised: empty
files, pure deletions, unicode paths/content, merge commits with two
parents — and pins that :func:`snapshot_delta_bytes_pair` (one Myers
trace per file, reverse script derived) produces byte costs identical
to two independent diff runs on the preset repositories.
"""

import pytest

from repro.core import validate_graph
from helpers import cached_graph, cached_repo
from repro.vcs import (
    Repository,
    build_graph_from_repo,
    compute_delta,
    random_repository,
    snapshot_delta_bytes,
    snapshot_delta_bytes_pair,
)


def legacy_pair(a, b):
    """The pre-refactor behaviour: two independent Myers runs."""
    return snapshot_delta_bytes(a, b), snapshot_delta_bytes(b, a)


class TestPairEqualsTwoRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_repositories(self, seed):
        repo = cached_repo(80, seed=seed)
        for c in repo.commits:
            for p in c.parents:
                a = repo.commits[p].snapshot
                b = c.snapshot
                assert snapshot_delta_bytes_pair(a, b) == legacy_pair(a, b)

    def test_branchy_repository_with_merges(self):
        repo = cached_repo(120, merge_prob=0.15, branch_prob=0.25, seed=7)
        assert any(len(c.parents) == 2 for c in repo.commits)
        for c in repo.commits:
            for p in c.parents:
                a = repo.commits[p].snapshot
                b = c.snapshot
                assert snapshot_delta_bytes_pair(a, b) == legacy_pair(a, b)

    def test_handcrafted_shapes(self):
        cases = [
            ({}, {}),
            ({"f": ("a",)}, {}),  # file deleted
            ({}, {"f": ("a", "b")}),  # file created
            ({"f": ()}, {"f": ("x",)}),  # empty file gains content
            ({"f": ("x",)}, {"f": ()}),  # file emptied (not deleted)
            ({"f": ("a", "b", "c")}, {"f": ("a", "c")}),
            ({"f": ("a",), "g": ("b",)}, {"f": ("a", "z")}),  # edit + delete
        ]
        for a, b in cases:
            assert snapshot_delta_bytes_pair(a, b) == legacy_pair(a, b)

    def test_ambiguous_alignment_divergence_is_pinned(self):
        # with reordered/duplicated lines the file pair admits several
        # LCS alignments; the derived reverse script keeps a different
        # line set than an independent reverse Myers run would, so the
        # byte costs legitimately diverge — both are valid shortest-
        # edit-script costs.  Pin the behaviour so a silent change to
        # either path shows up.
        a = {"f": ("A", "D")}
        b = {"f": ("D", "A", "BB", "CCC")}
        assert legacy_pair(a, b) == (30, 27)
        assert snapshot_delta_bytes_pair(a, b) == (30, 23)

    def test_build_graph_costs_unchanged(self):
        # the graph builder switched to the pair function: costs on a
        # seeded repo must equal the two-run reference edge by edge
        repo = cached_repo(40, seed=9)
        g = cached_graph(40, seed=9)
        for c in repo.commits:
            for p in c.parents:
                fwd, bwd = legacy_pair(repo.commits[p].snapshot, c.snapshot)
                assert g.delta(p, c.id).storage == fwd
                assert g.delta(c.id, p).storage == bwd


class TestEmptyFiles:
    def test_empty_file_round_trip(self):
        script = compute_delta([], [])
        assert script.byte_size() == 0
        assert script.apply([]) == []

    def test_empty_file_creation_costs_the_floor(self):
        # an empty file carries no lines, so in the snapshot model its
        # creation is indistinguishable from its absence: the delta
        # collapses to the 1-byte floor, identically in both paths
        a = {"f": ("x",)}
        b = {"f": ("x",), "empty.txt": ()}
        assert snapshot_delta_bytes_pair(a, b) == legacy_pair(a, b) == (1, 1)

    def test_emptying_a_file_keeps_it(self):
        a = {"f": ("line1", "line2")}
        b = {"f": ()}
        fwd, bwd = snapshot_delta_bytes_pair(a, b)
        # forward: emptying collapses to a deletion (header only);
        # backward re-inserts both lines in one run
        assert fwd == 8 + 1
        assert bwd == 8 + 1 + 4 + len("line1") + 1 + len("line2") + 1


class TestPureDeletions:
    def test_pure_deletion_commit(self):
        repo = Repository()
        repo.commit({"a.txt": ("one",), "b.txt": ("two", "three")})
        repo.commit({"a.txt": ("one",)})  # b.txt deleted, nothing else
        g = build_graph_from_repo(repo)
        validate_graph(g)
        # forward: deletion is header-only; backward must re-insert b.txt
        assert g.delta(0, 1).storage == 8 + len("b.txt")
        assert g.delta(1, 0).storage == 8 + len("b.txt") + 4 + 4 + 6
        # (one insert run: header + "two\0" + "three\0")

    def test_delete_everything(self):
        repo = Repository()
        repo.commit({"only.txt": ("data",)})
        repo.commit({})
        g = build_graph_from_repo(repo)
        assert g.storage_cost(1) == 0.0
        assert g.delta(0, 1).storage == 8 + len("only.txt")
        assert snapshot_delta_bytes({}, {}) == 1  # floor cost


class TestUnicodePaths:
    def test_unicode_paths_and_content_byte_accurate(self):
        a = {"données/mesures.txt": ("héllo wörld",)}
        b = {
            "données/mesures.txt": ("héllo wörld", "καλημέρα"),
            "日本語.txt": ("テスト",),
        }
        fwd, bwd = snapshot_delta_bytes_pair(a, b)
        assert (fwd, bwd) == legacy_pair(a, b)
        # path costs are utf-8 byte lengths, not character counts
        assert fwd > 8 + len("日本語.txt".encode()) + 4
        repo = Repository()
        repo.commit(a)
        repo.commit(b)
        g = build_graph_from_repo(repo)
        validate_graph(g)
        assert g.delta(0, 1).storage == fwd
        assert g.delta(1, 0).storage == bwd

    def test_unicode_insert_payload_bytes(self):
        script = compute_delta([], ["αβ"])
        # one insert run: 4-byte header + utf-8 payload + newline
        assert script.byte_size() == 4 + len("αβ".encode()) + 1


class TestMergeCommits:
    def make_merge_repo(self):
        repo = Repository()
        repo.commit({"f": ("base",)})
        repo.branch_from("dev")
        repo.commit({"f": ("base", "dev-line")}, branch="dev")
        repo.commit({"f": ("base", "main-line")})
        repo.merge("dev")
        return repo

    def test_merge_commit_gets_edges_to_both_parents(self):
        repo = self.make_merge_repo()
        merge = repo.commits[-1]
        assert len(merge.parents) == 2
        g = build_graph_from_repo(repo)
        validate_graph(g)
        for p in merge.parents:
            assert g.has_delta(p, merge.id)
            assert g.has_delta(merge.id, p)
            fwd, bwd = snapshot_delta_bytes_pair(
                repo.commits[p].snapshot, merge.snapshot
            )
            assert g.delta(p, merge.id).storage == fwd
            assert g.delta(merge.id, p).storage == bwd

    def test_octopus_like_sequential_merges(self):
        # three branches merged back one after another: every merge has
        # two parents and every parent pair gets bidirectional edges
        repo = Repository()
        repo.commit({"f": ("base",)})
        for name in ("b1", "b2", "b3"):
            repo.branch_from(name)
            repo.commit({"f": ("base", name)}, branch=name)
        for name in ("b1", "b2", "b3"):
            repo.merge(name)
        g = build_graph_from_repo(repo)
        validate_graph(g)
        merges = [c for c in repo.commits if len(c.parents) == 2]
        assert len(merges) == 3
        links = sum(len(c.parents) for c in repo.commits)
        assert g.num_deltas == 2 * links

    def test_merge_history_solves_end_to_end(self):
        from repro.algorithms import lmg_all, min_storage_plan_tree

        repo = self.make_merge_repo()
        g = build_graph_from_repo(repo)
        base = min_storage_plan_tree(g).total_storage
        tree = lmg_all(g, base * 1.5)
        assert tree.total_storage <= base * 1.5 + 1e-6
