"""Tests for the Chu-Liu/Edmonds arborescence (vs networkx) and SPT."""

import networkx as nx
import pytest

from repro.core import AUX, GraphError, PlanTree
from repro.core.instances import figure1_graph
from repro.algorithms.arborescence import (
    extract_tree_parent_map,
    min_storage_arborescence,
    min_storage_plan_tree,
    minimum_arborescence,
)
from repro.algorithms.spt import shortest_path_plan_tree, single_source_retrieval
from repro.gen import random_digraph


def arborescence_weight(graph, root, parent_map, weight):
    total = 0.0
    for v, u in parent_map.items():
        total += weight(u, v, graph.delta(u, v))
    return total


def networkx_min_arborescence_weight(graph, attr="storage"):
    g = graph.to_networkx()
    # restrict to edges reachable orientation; networkx Edmonds on DiGraph
    arb = nx.algorithms.tree.branchings.minimum_spanning_arborescence(
        g, attr=attr, preserve_attrs=True
    )
    return sum(d[attr] for _, _, d in arb.edges(data=True))


class TestEdmonds:
    def test_figure1_min_storage(self):
        g = figure1_graph()
        pm = min_storage_arborescence(g)
        ext = g.extended()
        total = arborescence_weight(ext, AUX, pm, lambda u, v, d: d.storage)
        # materialize v1, keep all cheap deltas:
        assert total == 10000 + 200 + 1000 + 50 + 200

    def test_structure_is_arborescence(self):
        g = figure1_graph()
        pm = min_storage_arborescence(g)
        assert set(pm) == set(g.versions)
        tree = PlanTree(g.extended(), pm)  # raises on cycles
        assert tree.total_storage == 11450

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx_on_random_digraphs(self, seed):
        g = random_digraph(9, extra_edge_prob=0.3, seed=seed)
        ext = g.extended()
        pm = minimum_arborescence(ext, AUX)
        ours = arborescence_weight(ext, AUX, pm, lambda u, v, d: d.storage)
        theirs = networkx_min_arborescence_weight(ext)
        assert ours == pytest.approx(theirs)

    @pytest.mark.parametrize("seed", [100, 101, 102])
    def test_cycle_heavy_instances(self, seed):
        # dense digraphs exercise repeated contraction
        g = random_digraph(7, extra_edge_prob=0.9, seed=seed)
        ext = g.extended()
        pm = minimum_arborescence(ext, AUX)
        ours = arborescence_weight(ext, AUX, pm, lambda u, v, d: d.storage)
        theirs = networkx_min_arborescence_weight(ext)
        assert ours == pytest.approx(theirs)

    def test_unreachable_raises(self):
        from repro.core import VersionGraph

        g = VersionGraph()
        g.add_version("a", 1)
        g.add_version("b", 1)
        g.add_delta("b", "a", 1, 1)  # nothing reaches b from a
        with pytest.raises(GraphError):
            minimum_arborescence(g, "a")

    def test_deterministic(self):
        g = random_digraph(8, seed=7)
        assert min_storage_arborescence(g) == min_storage_arborescence(g)


class TestMinStoragePlanTree:
    def test_minimum_among_brute_force(self):
        from repro.algorithms.brute_force import enumerate_plan_scores

        g = random_digraph(6, extra_edge_prob=0.25, seed=3)
        tree = min_storage_plan_tree(g)
        best = min(score.storage for _, score in enumerate_plan_scores(g))
        assert tree.total_storage == pytest.approx(best)


class TestExtraction:
    def test_extract_requires_base_graph(self):
        g = figure1_graph()
        with pytest.raises(GraphError):
            extract_tree_parent_map(g.extended())

    def test_extract_defaults_to_cheapest_spanning_root(self):
        g = figure1_graph()
        root, pm = extract_tree_parent_map(g)
        # v3 is cheapest but cannot reach v2/v4 in the directed graph;
        # the fallback picks the cheapest *spanning* root, v1.
        assert root == "v1"
        assert set(pm) == set(g.versions) - {root}

    def test_extract_spanning(self):
        g = random_digraph(12, seed=9)
        root, pm = extract_tree_parent_map(g)
        assert len(pm) == 11
        # walk up from every node reaches root
        for v in pm:
            x, hops = v, 0
            while x != root:
                x = pm[x]
                hops += 1
                assert hops <= 12


class TestShortestPathTree:
    def test_figure1_spt_materializes_when_cheapest(self):
        g = figure1_graph()
        tree = shortest_path_plan_tree(g)
        # zero-retrieval aux edges dominate: everything is materialized
        assert tree.total_retrieval == 0
        assert sorted(tree.materialized_versions()) == sorted(g.versions)

    def test_spt_minimizes_each_retrieval(self):
        g = random_digraph(8, seed=11)
        ext = g.extended()
        dist, _ = single_source_retrieval(ext, AUX)
        tree = shortest_path_plan_tree(g)
        for v in g.versions:
            assert tree.ret[v] == pytest.approx(dist[v])

    def test_spt_retrieval_lower_bounds_all_plans(self):
        from repro.algorithms.brute_force import enumerate_plan_scores

        g = random_digraph(6, seed=13)
        spt = shortest_path_plan_tree(g)
        for _, score in enumerate_plan_scores(g):
            assert score.sum_retrieval >= spt.total_retrieval - 1e-9
