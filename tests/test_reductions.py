"""Tests for the Lemma-7 binary-search reductions."""

import pytest

from repro.core import BMR, MMR, MSR
from repro.algorithms import (
    bmr_ilp,
    brute_force_solve,
    bsr_ilp,
    dp_bmr,
    min_storage_plan_tree,
    mmr_via_bmr,
    msr_via_bsr,
    bmr_via_mmr,
    bsr_via_msr,
    mp,
    msr_ilp,
)
from repro.gen import random_bidirectional_tree, random_digraph


def bmr_exact_solver(graph, budget):
    return dp_bmr(graph, budget).plan


def bsr_exact_solver(graph, budget):
    return bsr_ilp(graph, budget).plan  # None when infeasible


def msr_exact_solver(graph, budget):
    return msr_ilp(graph, budget).plan  # None when infeasible


class TestMMRViaBMR:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_on_trees(self, seed):
        g = random_bidirectional_tree(6, seed=seed)
        base = min_storage_plan_tree(g).total_storage
        budget = base * 1.3 + 2
        red = mmr_via_bmr(g, bmr_exact_solver, budget)
        bf = brute_force_solve(g, MMR(budget))
        assert red.score.storage <= budget + 1e-6
        assert red.score.max_retrieval == pytest.approx(bf[1].max_retrieval)

    def test_heuristic_inner_solver_is_feasible(self):
        g = random_digraph(10, extra_edge_prob=0.2, seed=7)
        base = min_storage_plan_tree(g).total_storage
        red = mmr_via_bmr(g, lambda gr, b: mp(gr, b).to_plan(), base * 1.5)
        assert red.score.storage <= base * 1.5 + 1e-6

    def test_probe_accounting(self):
        g = random_bidirectional_tree(6, seed=9)
        red = mmr_via_bmr(g, bmr_exact_solver, min_storage_plan_tree(g).total_storage * 2)
        assert 1 <= red.probes <= 80


class TestMSRViaBSR:
    @pytest.mark.parametrize("seed", range(3))
    def test_exact(self, seed):
        g = random_digraph(6, extra_edge_prob=0.2, seed=30 + seed)
        base = min_storage_plan_tree(g).total_storage
        budget = base * 1.4 + 2
        red = msr_via_bsr(g, bsr_exact_solver, budget)
        bf = brute_force_solve(g, MSR(budget))
        assert red.score.sum_retrieval == pytest.approx(bf[1].sum_retrieval, abs=1e-5)
        assert red.score.storage <= budget + 1e-6


class TestReverseDirections:
    @pytest.mark.parametrize("seed", range(3))
    def test_bsr_via_msr(self, seed):
        from repro.core import BSR

        g = random_digraph(6, extra_edge_prob=0.2, seed=40 + seed)
        budget = 60
        red = bsr_via_msr(g, msr_exact_solver, budget)
        bf = brute_force_solve(g, BSR(budget))
        assert red.score.sum_retrieval <= budget + 1e-6
        assert red.score.storage == pytest.approx(bf[1].storage, rel=1e-6)

    def test_bmr_via_mmr(self):
        from repro.algorithms import mmr_ilp

        g = random_bidirectional_tree(6, seed=50)

        def mmr_solver(gr, b):
            return mmr_ilp(gr, b).plan  # None when infeasible

        budget = 20
        red = bmr_via_mmr(g, mmr_solver, budget)
        bf = brute_force_solve(g, BMR(budget))
        assert red.score.max_retrieval <= budget + 1e-6
        assert red.score.storage == pytest.approx(bf[1].storage, rel=1e-6)


class TestErrors:
    def test_unreachable_constraint_raises(self):
        g = random_bidirectional_tree(5, seed=60)
        # storage budget below minimum: even infinite retrieval can't fit
        with pytest.raises(ValueError):
            mmr_via_bmr(g, bmr_exact_solver, min_storage_plan_tree(g).total_storage * 0.1)
