"""Tests for DP-MSR: exact frontier, thinning, reconstruction, heuristic."""


import numpy as np
import pytest

from repro.core import MSR, GraphError, evaluate_plan
from repro.algorithms import (
    DPMSRSolver,
    brute_force_frontier,
    brute_force_solve,
    dp_msr,
    dp_msr_frontier,
    lmg,
    lmg_all,
    min_storage_plan_tree,
)
from repro.gen import natural_graph, random_bidirectional_tree, random_digraph


class TestExactFrontier:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_on_trees(self, seed):
        g = random_bidirectional_tree(6, seed=seed)
        f = dp_msr_frontier(g, ticks=None)
        bf = brute_force_frontier(g)
        assert len(f) == len(bf)
        for (s1, r1), (s2, r2) in zip(f.points(), bf):
            assert s1 == pytest.approx(s2)
            assert r1 == pytest.approx(r2)

    def test_frontier_endpoints(self):
        g = random_bidirectional_tree(8, seed=20)
        f = dp_msr_frontier(g, ticks=None)
        # cheapest point is the min-storage plan; most expensive ends at
        # zero retrieval (materialize everything)
        assert f.min_storage() == pytest.approx(min_storage_plan_tree(g).total_storage)
        assert f.ret[-1] == pytest.approx(0.0)
        assert f.sto[-1] <= g.total_version_storage() + 1e-9

    def test_single_node(self):
        from repro.core import VersionGraph

        g = VersionGraph()
        g.add_version("only", 42)
        f = dp_msr_frontier(g, ticks=None)
        assert f.points() == [(42.0, 0.0)]


class TestThinning:
    @pytest.mark.parametrize("seed", range(5))
    def test_thinned_points_are_achievable(self, seed):
        """Thinned frontier must be a subset-quality of the exact one:
        every thinned point is dominated-or-equal by the exact frontier
        and achievable (>= exact at the same budget)."""
        g = random_bidirectional_tree(12, seed=seed)
        fe = dp_msr_frontier(g, ticks=None)
        ft = dp_msr_frontier(g, ticks=16)
        for s, r in ft.points():
            exact_best = fe.best_retrieval_within(s)
            assert r >= exact_best - 1e-9
            # and the point is truly achievable: it appears in the exact set
            assert fe.dominates_point(s, r)

    def test_thinning_bounds_size(self):
        g = random_bidirectional_tree(40, seed=6)
        ft = dp_msr_frontier(g, ticks=16)
        assert len(ft) <= 17

    def test_quality_improves_with_ticks(self):
        g = random_bidirectional_tree(30, seed=7)
        fe = dp_msr_frontier(g, ticks=None)
        budget = (fe.min_storage() + g.total_version_storage()) / 2
        errs = []
        for ticks in (8, 32, 128):
            ft = dp_msr_frontier(g, ticks=ticks)
            errs.append(ft.best_retrieval_within(budget) - fe.best_retrieval_within(budget))
        assert errs[0] >= errs[-1] - 1e-9
        assert errs[-1] <= max(1e-9, 0.1 * max(fe.best_retrieval_within(budget), 1))

    def test_storage_cap_prunes(self):
        g = random_bidirectional_tree(15, seed=8)
        fe = dp_msr_frontier(g, ticks=None)
        cap = (fe.min_storage() + fe.sto[-1]) / 2
        fc = dp_msr_frontier(g, ticks=None, storage_cap=cap)
        assert fc.sto[-1] <= cap + 1e-9
        # below the cap the two frontiers agree
        assert fc.best_retrieval_within(cap) == pytest.approx(fe.best_retrieval_within(cap))


class TestReconstruction:
    @pytest.mark.parametrize("seed", range(8))
    def test_plan_realizes_frontier_point(self, seed):
        g = random_bidirectional_tree(8, seed=seed)
        total = g.total_version_storage()
        for frac in (0.35, 0.6, 1.0):
            budget = total * frac
            try:
                res = dp_msr(g, budget, ticks=None)
            except GraphError:
                continue  # budget below min storage
            assert res.score.storage <= budget + 1e-6
            expected = res.frontier.best_retrieval_within(budget)
            # Dijkstra re-evaluation may only improve on the tree estimate
            assert res.score.sum_retrieval <= expected + 1e-6

    @pytest.mark.parametrize("seed", range(5))
    def test_plan_matches_optimal_on_trees(self, seed):
        g = random_bidirectional_tree(6, seed=50 + seed)
        budget = g.total_version_storage() * 0.5
        opt = brute_force_solve(g, MSR(budget))
        if opt is None:
            return
        res = dp_msr(g, budget, ticks=None)
        assert res.score.sum_retrieval == pytest.approx(opt[1].sum_retrieval)

    def test_budget_below_min_raises(self):
        g = random_bidirectional_tree(6, seed=1)
        with pytest.raises(GraphError):
            dp_msr(g, min_storage_plan_tree(g).total_storage * 0.5, ticks=None)

    def test_reconstruction_with_thinning(self):
        g = random_bidirectional_tree(20, seed=9)
        budget = g.total_version_storage() * 0.7
        res = dp_msr(g, budget, ticks=24)
        assert res.score.storage <= budget + 1e-6
        assert res.plan.is_feasible(g)


class TestHeuristicOnGeneralGraphs:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasible_on_digraphs(self, seed):
        g = random_digraph(10, extra_edge_prob=0.3, seed=seed)
        budget = g.total_version_storage() * 0.8
        res = dp_msr(g, budget, ticks=32)
        assert res.score.storage <= budget + 1e-6
        assert res.score.feasible_reconstruction

    def test_beats_lmg_on_natural_graph_low_budget(self):
        """The Figure-10 regime: tight budgets on natural graphs."""
        g = natural_graph(80, seed=3)
        base = min_storage_plan_tree(g).total_storage
        budget = base * 1.1
        f = dp_msr_frontier(g, ticks=96)
        r_dp = f.best_retrieval_within(budget)
        r_lmg = lmg(g, budget).total_retrieval
        assert r_dp <= r_lmg * 1.1

    def test_frontier_is_pareto(self):
        g = natural_graph(50, seed=4)
        f = dp_msr_frontier(g, ticks=48)
        f.check_invariants()


class TestSolverObject:
    def test_frontier_cached(self):
        g = random_bidirectional_tree(10, seed=11)
        s = DPMSRSolver(g, ticks=None)
        assert s.frontier() is s.frontier()

    def test_plan_requires_tables(self):
        g = random_bidirectional_tree(6, seed=12)
        s = DPMSRSolver(g, ticks=None, keep_tables=False)
        with pytest.raises(GraphError):
            s.plan_for_budget(10**9)

    def test_multiple_budgets_one_solver(self):
        g = random_bidirectional_tree(12, seed=13)
        s = DPMSRSolver(g, ticks=None, keep_tables=True)
        f = s.frontier()
        budgets = np.linspace(f.min_storage(), f.sto[-1], 5)
        rets = []
        for b in budgets:
            plan = s.plan_for_budget(float(b))
            score = evaluate_plan(g, plan)
            assert score.storage <= b + 1e-6
            rets.append(score.sum_retrieval)
        assert all(a >= b - 1e-9 for a, b in zip(rets, rets[1:]))
