"""Fault injection against the store's integrity checker.

Each corruption class — flipped byte, truncated object, deleted object,
stray object, tampered digest, broken tree — must be detected by
``fsck`` under its stable finding code, and ``checkout`` through the
damaged chain must raise a clean :class:`StoreError` (never return
wrong bytes).
"""

import pytest

from repro.algorithms.registry import get_solver
from repro.store import FSCK_CODES, StoreError, materialize
from repro.store.codec import decode_manifest


@pytest.fixture()
def store_and_repo(repo_factory, graph_factory, storage_budget):
    """A freshly materialized in-memory store over a 40-commit repo."""
    repo = repo_factory(40, seed=3)
    graph = graph_factory(40, seed=3)
    plan = get_solver("msr", "lmg")(graph, storage_budget(graph))
    assert plan is not None
    return materialize(repo, plan), repo


def classify_keys(store):
    """``(manifest_keys, delta_keys, blob_keys_of_root)`` by version kind."""
    manifests, deltas = [], []
    root_blobs = []
    for v in store.versions:
        rec = store._records[v]
        if store.is_materialized(v):
            manifests.append((v, rec.obj))
            if not root_blobs:
                manifest = decode_manifest(store.objects.get(rec.obj))
                root_blobs = [(v, bh) for bh in manifest.values()]
        else:
            deltas.append((v, rec.obj))
    assert manifests and deltas and root_blobs
    return manifests, deltas, root_blobs


def delta_descendant(store, v):
    """Some version whose checkout chain passes through ``v``."""
    for w in store.versions:
        u = w
        while u is not None:
            if u == v:
                return w
            u = store._records[u].parent
    raise AssertionError(f"no chain passes through {v!r}")


def codes(findings):
    return {f.code for f in findings}


def test_clean_store_has_no_findings(store_and_repo):
    store, _ = store_and_repo
    assert store.fsck() == []


def test_all_finding_codes_are_stable(store_and_repo):
    """Every code fsck can emit is in the published FSCK_CODES set."""
    store, _ = store_and_repo
    manifests, deltas, root_blobs = classify_keys(store)
    # inflict every corruption class at once
    _, blob_key = root_blobs[0]
    data = store.objects.get(blob_key)
    store.objects.poke(blob_key, bytes([data[0] ^ 0xFF]) + data[1:])
    store.objects.delete(deltas[0][1])
    store.objects.poke("0" * 64, b"stray")
    findings = store.fsck()
    assert findings
    assert codes(findings) <= set(FSCK_CODES)


def test_flipped_byte_in_blob_detected(store_and_repo):
    store, _ = store_and_repo
    _, _, root_blobs = classify_keys(store)
    root, blob_key = root_blobs[0]
    data = store.objects.get(blob_key)
    store.objects.poke(blob_key, bytes([data[0] ^ 0xFF]) + data[1:])

    findings = store.fsck()
    assert any(
        f.code == "object-corrupt" and f.subject == blob_key for f in findings
    )
    with pytest.raises(StoreError) as exc:
        store.checkout(root)
    assert exc.value.code == "object-corrupt"


def test_truncated_delta_detected(store_and_repo):
    store, _ = store_and_repo
    _, deltas, _ = classify_keys(store)
    v, delta_key = deltas[0]
    data = store.objects.get(delta_key)
    store.objects.poke(delta_key, data[: len(data) // 2])

    findings = store.fsck()
    assert any(
        f.code == "object-corrupt" and f.subject == delta_key for f in findings
    )
    with pytest.raises(StoreError) as exc:
        store.checkout(delta_descendant(store, v))
    assert exc.value.code == "object-corrupt"


def test_truncated_manifest_detected(store_and_repo):
    store, _ = store_and_repo
    manifests, _, _ = classify_keys(store)
    v, manifest_key = manifests[0]
    data = store.objects.get(manifest_key)
    store.objects.poke(manifest_key, data[:-3])

    assert any(
        f.code == "object-corrupt" and f.subject == manifest_key
        for f in store.fsck()
    )
    with pytest.raises(StoreError) as exc:
        store.checkout(v)
    assert exc.value.code == "object-corrupt"


def test_deleted_delta_detected(store_and_repo):
    store, _ = store_and_repo
    _, deltas, _ = classify_keys(store)
    v, delta_key = deltas[0]
    store.objects.delete(delta_key)

    findings = store.fsck()
    assert any(
        f.code == "object-missing" and f.subject == delta_key for f in findings
    )
    with pytest.raises(StoreError) as exc:
        store.checkout(delta_descendant(store, v))
    assert exc.value.code == "object-missing"


def test_deleted_blob_detected(store_and_repo):
    store, _ = store_and_repo
    _, _, root_blobs = classify_keys(store)
    root, blob_key = root_blobs[0]
    store.objects.delete(blob_key)

    findings = store.fsck()
    assert any(
        f.code == "object-missing" and f.subject == blob_key for f in findings
    )
    with pytest.raises(StoreError) as exc:
        store.checkout(root)
    assert exc.value.code == "object-missing"


def test_stray_object_detected(store_and_repo):
    store, _ = store_and_repo
    store.objects.poke("f" * 64, b"not part of any record")
    findings = store.fsck()
    assert any(
        f.code == "object-unreferenced" and f.subject == "f" * 64
        for f in findings
    )


def test_tampered_digest_detected(store_and_repo):
    store, _ = store_and_repo
    v = store.versions[0]
    store._digests[v] = "0" * 64
    findings = store.fsck()
    assert any(f.code == "digest-mismatch" for f in findings)
    with pytest.raises(StoreError) as exc:
        store.checkout(v)
    assert exc.value.code == "digest-mismatch"


def test_dangling_parent_detected(store_and_repo):
    store, _ = store_and_repo
    _, deltas, _ = classify_keys(store)
    v, _ = deltas[0]
    rec = store._records[v]
    store._records[v] = type(rec)(10**9, rec.kind, rec.obj)
    assert any(f.code == "tree-structure" for f in store.fsck())


def test_corruption_never_returns_wrong_bytes(store_and_repo):
    """Every version either checks out byte-identically or raises."""
    store, repo = store_and_repo
    _, deltas, _ = classify_keys(store)
    v, delta_key = deltas[len(deltas) // 2]
    data = store.objects.get(delta_key)
    store.objects.poke(delta_key, data[: len(data) - 1])

    snapshots = {c.id: c.snapshot for c in repo.commits}
    for w in store.versions:
        try:
            snap = store.checkout(w)
        except StoreError as err:
            assert err.code in FSCK_CODES
        else:
            assert snap == snapshots[w]
