"""Three-way plan identity for the incremental greedy kernels.

The incremental kernels (:mod:`repro.fastgraph.solvers`), the frozen
rescan baselines (:mod:`repro.fastgraph.rescan`) and the optional
native kernels (:mod:`repro.fastgraph.native`, exercised through the
pure-python ``njit`` fallback when numba is absent) are three
independent implementations of the same greedy loops.  All must
produce *bit-identical* plans to each other and to the dict reference,
across presets, random graphs and budget regimes — this is the
non-negotiable acceptance bar for the incremental rewrite.

Also covered here: the fresh-path (vectorized, Euler-maintaining) swap
application agreeing with the python-walk path on arbitrary admissible
move sequences, and the incrementally-refreshed range-max table of
:meth:`~repro.fastgraph.plantree.ArrayPlanTree.subtree_max_retrieval`
agreeing with a cold rebuild.
"""

import numpy as np
import pytest

from repro.algorithms.bmr_greedy import bmr_lmg
from repro.algorithms.lmg import lmg
from repro.algorithms.lmg_all import lmg_all
from repro.fastgraph import native, rescan
from repro.fastgraph import solvers as solvers_mod
from repro.fastgraph.solvers import (
    _materialized_array_tree,
    _min_storage_array_tree,
    bmr_lmg_array,
    lmg_all_array,
    lmg_array,
)
from repro.gen import natural_graph, random_digraph
from repro.gen.presets import PRESETS

PRESET_CASES = [
    ("datasharing", 1.0),
    ("996.ICU", 0.03),
    ("LeetCodeAnimation", 0.3),
]


def graphs():
    for name, scale in PRESET_CASES:
        yield f"{name}", PRESETS[name].build(scale=scale)
    yield "random", random_digraph(150, extra_edge_prob=0.15, seed=11)
    yield "natural", natural_graph(120, seed=7)


def msr_budgets(graph):
    base = _min_storage_array_tree(graph.compile()).total_storage
    return [base * 1.02, base * 1.5, base * 4.0]


def bmr_budgets(graph):
    cg = graph.compile()
    tree = _materialized_array_tree(cg)
    # loose cap from the spread of single-edge retrievals
    top = float(cg.edge_retrieval.max()) if cg.num_edges else 1.0
    del tree
    return [top * 2.0, top * 8.0]


def assert_same_tree(a, b):
    assert a.parent_map() == b.parent_map()
    assert a.total_storage == b.total_storage
    assert a.total_retrieval == b.total_retrieval


class TestThreeWayIdentity:
    @pytest.mark.parametrize("name,graph", list(graphs()))
    def test_lmg_variants_match_dict(self, name, graph):
        for budget in msr_budgets(graph):
            ref = lmg(graph, budget)
            arr = lmg_array(graph, budget)
            assert ref.parent == arr.parent_map(), (name, budget)
            res = rescan.lmg_array_rescan(graph, budget)
            assert_same_tree(arr, res)
            cg = graph.compile()
            nat = native._lmg_native_tree(
                cg, budget, solvers_mod._lmg_default_rounds(cg)
            )
            assert_same_tree(arr, nat)

    @pytest.mark.parametrize("name,graph", list(graphs()))
    def test_lmg_all_variants_match_dict(self, name, graph):
        for budget in msr_budgets(graph):
            ref = lmg_all(graph, budget)
            arr = lmg_all_array(graph, budget)
            assert ref.parent == arr.parent_map(), (name, budget)
            res = rescan.lmg_all_array_rescan(graph, budget)
            assert_same_tree(arr, res)
            cg = graph.compile()
            nat = native._lmg_all_native_tree(
                cg, budget, solvers_mod._lmg_all_default_rounds(cg)
            )
            assert_same_tree(arr, nat)

    @pytest.mark.parametrize("name,graph", list(graphs()))
    def test_bmr_lmg_variants_match_dict(self, name, graph):
        for budget in bmr_budgets(graph):
            ref = bmr_lmg(graph, budget)
            arr = bmr_lmg_array(graph, budget)
            assert ref.parent == arr.parent_map(), (name, budget)
            res = rescan.bmr_lmg_array_rescan(graph, budget)
            assert_same_tree(arr, res)
            cg = graph.compile()
            nat = native._bmr_native_tree(
                cg, budget, solvers_mod._bmr_default_rounds(cg)
            )
            assert_same_tree(arr, nat)

    def test_infeasible_budgets_raise_everywhere(self):
        graph = random_digraph(30, seed=3)
        cg = graph.compile()
        low = _min_storage_array_tree(cg).total_storage * 0.5
        for solver in (
            lmg_array,
            rescan.lmg_array_rescan,
            lmg_all_array,
            rescan.lmg_all_array_rescan,
        ):
            with pytest.raises(ValueError, match="MSR infeasible"):
                solver(graph, low)
        for solver in (bmr_lmg_array, rescan.bmr_lmg_array_rescan):
            with pytest.raises(ValueError, match="infeasible"):
                solver(graph, -1.0)


class TestSwapPathEquivalence:
    """Fresh-path (vectorized Euler-maintaining) vs python-walk swaps."""

    def admissible_edges(self, tree, rng):
        """A random admissible non-tree edge id, or None."""
        cg = tree.cg
        ids = rng.permutation(cg.num_edges)  # real deltas + aux edges
        for eid in ids[:200]:
            eid = int(eid)
            u, v = int(cg.edge_src[eid]), int(cg.edge_dst[eid])
            if v == cg.aux or int(tree.par_edge[v]) == eid:
                continue
            if u != cg.aux and tree.is_ancestor(v, u):
                continue
            return eid
        return None

    def test_random_swap_sequences_agree(self):
        graph = random_digraph(80, extra_edge_prob=0.25, seed=21)
        cg = graph.compile()
        rng = np.random.default_rng(5)
        fresh = _materialized_array_tree(cg)
        walk = _materialized_array_tree(cg)
        fresh.ensure_euler()  # arm the vectorized path
        for _ in range(60):
            eid = self.admissible_edges(fresh, rng)
            if eid is None:
                break
            fresh.apply_swap_edge(eid)
            walk._apply_swap_rescan(eid)
            assert not fresh._order_dirty  # stayed on the fresh path
        assert np.array_equal(fresh.parent, walk.parent)
        assert np.array_equal(fresh.par_edge, walk.par_edge)
        assert np.array_equal(fresh.size, walk.size)
        assert np.array_equal(fresh.ret, walk.ret)  # bit-identical floats
        assert fresh.total_storage == walk.total_storage
        assert fresh.total_retrieval == walk.total_retrieval
        fresh.check_invariants()

    def test_fresh_euler_is_a_valid_preorder(self):
        graph = random_digraph(60, extra_edge_prob=0.3, seed=8)
        cg = graph.compile()
        rng = np.random.default_rng(9)
        tree = _materialized_array_tree(cg)
        tree.ensure_euler()
        for _ in range(40):
            eid = self.admissible_edges(tree, rng)
            if eid is None:
                break
            tree.apply_swap_edge(eid)
            tin, tout, pre = tree._tin, tree._tout, tree._preorder
            n1 = len(tree.parent)
            # tin is a permutation and preorder is its inverse
            assert sorted(tin.tolist()) == list(range(n1))
            assert np.array_equal(pre[tin], np.arange(n1))
            # every node sits inside its parent's interval
            for v in range(n1 - 1):
                p = int(tree.parent[v])
                assert tin[p] < tin[v] <= tout[v] <= tout[p]

    def test_subtree_max_retrieval_incremental_refresh(self):
        graph = random_digraph(70, extra_edge_prob=0.25, seed=13)
        cg = graph.compile()
        rng = np.random.default_rng(17)
        tree = _materialized_array_tree(cg)
        tree.ensure_euler()
        tree.subtree_max_retrieval()  # build the cached table once
        for _ in range(30):
            eid = self.admissible_edges(tree, rng)
            if eid is None:
                break
            tree.apply_swap_edge(eid)
            got = tree.subtree_max_retrieval()  # partial refresh
            cold = tree.clone().subtree_max_retrieval()  # cold rebuild
            assert np.array_equal(got, cold)


class TestNativeBackendSeam:
    def test_missing_numba_raises_clearly(self):
        if native.HAVE_NUMBA:
            pytest.skip("numba installed: the guard never fires")
        graph = random_digraph(10, seed=1)
        with pytest.raises(Exception, match="requires the optional numba"):
            native.lmg_native(graph, 1e9)

    @pytest.mark.skipif(not native.HAVE_NUMBA, reason="numba not installed")
    def test_public_native_solvers_match_array(self):
        graph = random_digraph(80, extra_edge_prob=0.2, seed=4)
        budget = _min_storage_array_tree(graph.compile()).total_storage * 2.0
        assert_same_tree(native.lmg_native(graph, budget), lmg_array(graph, budget))
        assert_same_tree(
            native.lmg_all_native(graph, budget), lmg_all_array(graph, budget)
        )
        cg = graph.compile()
        top = float(cg.edge_retrieval.max()) * 4.0
        assert_same_tree(native.bmr_lmg_native(graph, top), bmr_lmg_array(graph, top))

    def test_registry_exposes_numba_backend(self):
        from repro.algorithms.registry import BACKENDS

        for key in (("msr", "lmg"), ("msr", "lmg-all"), ("bmr", "bmr-lmg")):
            assert "numba" in BACKENDS[key]
