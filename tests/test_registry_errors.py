"""Error-path tests for the solver registry (messages pinned).

Every entry point that resolves solvers by name must fail with a
message that names the family, echoes the bad input, and lists the
valid options — these strings are part of the CLI's user experience
(they surface verbatim behind ``error:`` lines), so the exact wording
is pinned here.
"""

import pytest

from repro.algorithms.registry import (
    BMR_ENGINE_SOLVERS,
    BMR_SOLVERS,
    ENGINE_SOLVERS,
    MSR_SOLVERS,
    get_bmr_solver,
    get_bmr_sweep,
    get_engine_solver,
    get_msr_solver,
    get_msr_sweep,
)


class TestUnknownSolverNames:
    def test_unknown_msr_solver(self):
        with pytest.raises(KeyError) as exc:
            get_msr_solver("nope")
        assert (
            "unknown MSR solver 'nope'; options: "
            "['dp-msr', 'ilp', 'lmg', 'lmg-all']" in str(exc.value)
        )

    def test_unknown_bmr_solver(self):
        with pytest.raises(KeyError) as exc:
            get_bmr_solver("nope")
        assert (
            "unknown BMR solver 'nope'; options: "
            "['bmr-lmg', 'dp-bmr', 'ilp', 'mp', 'mp-local']" in str(exc.value)
        )


class TestCrossFamilyNames:
    """A name from the *other* family gets a redirecting hint."""

    @pytest.mark.parametrize("name", ["mp", "mp-local", "bmr-lmg", "dp-bmr"])
    def test_bmr_name_passed_to_msr_getter(self, name):
        with pytest.raises(KeyError) as exc:
            get_msr_solver(name)
        msg = str(exc.value)
        assert f"unknown MSR solver {name!r}" in msg
        assert f"({name!r} is a BMR solver; use get_bmr_solver)" in msg

    @pytest.mark.parametrize("name", ["lmg", "lmg-all", "dp-msr"])
    def test_msr_name_passed_to_bmr_getter(self, name):
        with pytest.raises(KeyError) as exc:
            get_bmr_solver(name)
        msg = str(exc.value)
        assert f"unknown BMR solver {name!r}" in msg
        assert f"({name!r} is a MSR solver; use get_msr_solver)" in msg

    def test_ilp_resolves_in_both_families(self):
        # "ilp" legitimately exists on both sides: no error, no hint
        assert get_msr_solver("ilp") is MSR_SOLVERS["ilp"]
        assert get_bmr_solver("ilp") is BMR_SOLVERS["ilp"]


class TestInvalidBackends:
    @pytest.mark.parametrize("getter", [get_msr_solver, get_bmr_solver])
    def test_unknown_backend(self, getter):
        name = "lmg" if getter is get_msr_solver else "mp"
        with pytest.raises(KeyError) as exc:
            getter(name, backend="gpu")
        assert "unknown backend 'gpu'; options: ['array', 'dict', 'numba']" in str(
            exc.value
        )

    def test_backend_error_beats_silent_fallback(self):
        # even for solvers without an array variant, a bogus backend
        # name is a caller bug and must raise, not silently resolve
        with pytest.raises(KeyError, match="unknown backend"):
            get_msr_solver("dp-msr", backend="gpu")


class TestEngineSolverResolution:
    def test_unknown_engine_solver(self):
        with pytest.raises(KeyError) as exc:
            get_engine_solver("nope")
        assert (
            "unknown MSR engine solver 'nope'; options: ['lmg', 'lmg-all']"
            in str(exc.value)
        )

    def test_bmr_engine_solver_table(self):
        with pytest.raises(KeyError) as exc:
            get_engine_solver("nope", "bmr")
        assert (
            "unknown BMR engine solver 'nope'; options: "
            "['bmr-lmg', 'mp', 'mp-local']" in str(exc.value)
        )

    def test_cross_family_engine_hint(self):
        with pytest.raises(KeyError) as exc:
            get_engine_solver("mp", "msr")
        assert "('mp' is a BMR engine solver)" in str(exc.value)
        with pytest.raises(KeyError) as exc:
            get_engine_solver("lmg", "bmr")
        assert "('lmg' is a MSR engine solver)" in str(exc.value)

    def test_unknown_problem(self):
        with pytest.raises(ValueError) as exc:
            get_engine_solver("lmg", "mmr")
        assert "unknown engine problem 'mmr'; options: ['bmr', 'msr']" in str(
            exc.value
        )

    def test_tables_resolve_their_own_names(self):
        for name in ENGINE_SOLVERS:
            assert get_engine_solver(name) is ENGINE_SOLVERS[name]
        for name in BMR_ENGINE_SOLVERS:
            assert get_engine_solver(name, "bmr") is BMR_ENGINE_SOLVERS[name]


class TestSweepResolution:
    def test_non_sweep_solvers_return_none(self):
        assert get_msr_sweep("dp-msr") is None
        assert get_msr_sweep("nope") is None
        assert get_bmr_sweep("mp") is None
        assert get_bmr_sweep("mp-local") is None
        assert get_bmr_sweep("nope") is None

    def test_sweep_capable_names(self):
        assert get_msr_sweep("lmg") is not None
        assert get_msr_sweep("lmg-all") is not None
        assert get_bmr_sweep("bmr-lmg") is not None
