"""Tests for the fastgraph subsystem (compiled graphs + array kernels).

The load-bearing guarantee: every array kernel produces a plan
*identical* to its dict reference — same parent map, same storage, same
retrieval — on random graphs, natural graphs, and every
``repro.gen.presets`` dataset (the ISSUE-1 acceptance bar is
cost-identity; we assert the stronger structural identity).
"""

import pickle

import numpy as np
import pytest

from repro.core.graph import AUX, GraphError, VersionGraph
from repro.core.solution import PlanTree
from repro.algorithms import lmg, lmg_all, mp, min_storage_plan_tree
from repro.algorithms.arborescence import min_storage_arborescence
from repro.algorithms.registry import get_bmr_solver, get_msr_solver
from repro.fastgraph import ArrayPlanTree, CompiledGraph, lmg_all_array, lmg_array, mp_array
from repro.fastgraph.arborescence import min_storage_parent_edges
from repro.gen import natural_graph, random_digraph
from repro.gen.presets import PRESETS

# Scales keep each preset at a size where the dict reference is fast
# enough for CI while still exercising branches/merges/ER densification.
PRESET_SCALES = {
    "datasharing": 1.0,
    "styleguide": 0.2,
    "996.ICU": 0.05,
    "freeCodeCamp": 0.008,
    "LeetCodeAnimation": 0.5,
    "LeetCode (0.05)": 0.35,
    "LeetCode (0.2)": 0.35,
    "LeetCode (1)": 0.1,
}


def preset_graph(name):
    return PRESETS[name].build(scale=PRESET_SCALES[name])


def assert_tree_equal(ref: PlanTree, arr: ArrayPlanTree):
    assert ref.parent == arr.parent_map()
    assert ref.total_storage == arr.total_storage
    assert ref.total_retrieval == pytest.approx(arr.total_retrieval, rel=1e-12, abs=1e-9)


class TestCompiledGraph:
    def test_interning_and_arrays(self):
        g = random_digraph(10, seed=1)
        cg = g.compile()
        assert cg.n == 10
        assert cg.aux == 10
        ext = cg.graph
        assert cg.num_edges == ext.num_deltas
        # every edge of the extended graph is represented, costs intact
        for eid, (u, v, d) in enumerate(ext.deltas()):
            assert cg.edge_src[eid] == cg.index[u]
            assert cg.edge_dst[eid] == cg.index[v]
            assert cg.edge_storage[eid] == d.storage
            assert cg.edge_retrieval[eid] == d.retrieval
        for i, v in enumerate(cg.nodes):
            assert cg.node_storage[i] == g.storage_cost(v)
        assert cg.node_storage[cg.aux] == 0.0

    def test_aux_edges(self):
        g = random_digraph(8, seed=2)
        cg = g.compile()
        for i, v in enumerate(cg.nodes):
            eid = int(cg.aux_edge[i])
            assert cg.edge_src[eid] == cg.aux
            assert cg.edge_dst[eid] == i
            assert cg.edge_storage[eid] == g.storage_cost(v)
            assert cg.edge_retrieval[eid] == 0.0

    def test_csr_matches_adjacency(self):
        g = random_digraph(12, extra_edge_prob=0.3, seed=3)
        cg = g.compile()
        ext = cg.graph
        for u in ext.versions:
            ui = cg.index[u]
            succ = [cg.nodes[cg.edge_dst[e]] if cg.edge_dst[e] != cg.aux else AUX
                    for e in cg.out_slice(ui)]
            assert succ == list(ext.successors(u))
            pred = [cg.node_of(int(cg.edge_src[e])) for e in cg.in_slice(ui)]
            assert pred == list(ext.predecessors(u))

    def test_compile_is_cached_and_extended_on_append(self):
        g = random_digraph(6, seed=4)
        cg1 = g.compile()
        assert g.compile() is cg1
        # pure appends extend the cached compiled graph in place ...
        g.add_version("fresh", 5.0)
        cg2 = g.compile()
        assert cg2 is cg1
        assert cg2.n == 7
        assert np.array_equal(cg2.node_storage, CompiledGraph(g).node_storage)

    def test_compile_absorbs_removals_as_tombstones(self):
        g = random_digraph(6, seed=4)
        cg1 = g.compile()
        before = cg1.num_edges
        u, v, _ = next(g.deltas())
        g.remove_delta(u, v)  # a detach: tombstoned, compacted on compile
        cg2 = g.compile()
        assert cg2 is cg1
        assert cg2.num_edges == before - 1
        fresh = CompiledGraph(g)
        assert np.array_equal(cg2.edge_storage, fresh.edge_storage)
        assert np.array_equal(cg2.edge_retrieval, fresh.edge_retrieval)

    def test_compile_invalidated_on_cost_update(self):
        g = random_digraph(6, seed=4)
        cg1 = g.compile()
        g.add_version(g.versions[0], 123.0)  # storage update, same node
        cg2 = g.compile()
        assert cg2 is not cg1
        assert cg2.node_storage[0] == 123.0

    def test_compiled_graph_pickles(self):
        g = random_digraph(6, seed=5)
        cg = g.compile()
        g2 = pickle.loads(pickle.dumps(g))
        cg2 = g2.compile()  # cache rides along through pickle
        assert cg2.n == cg.n
        assert np.array_equal(cg2.edge_storage, cg.edge_storage)

    def test_accepts_extended_graph(self):
        g = random_digraph(5, seed=6)
        cg = CompiledGraph(g.extended())
        assert cg.n == 5
        assert int(cg.aux_edge.min()) >= 0


class TestArrayPlanTree:
    def make_pair(self, seed=7):
        g = random_digraph(12, extra_edge_prob=0.3, seed=seed)
        cg = g.compile()
        parent = min_storage_arborescence(cg.graph)
        return cg, PlanTree(cg.graph, parent), ArrayPlanTree.from_parent_map(cg, parent)

    def test_construction_matches_plantree(self):
        cg, ref, arr = self.make_pair()
        assert_tree_equal(ref, arr)
        for i, v in enumerate(cg.nodes):
            assert ref.ret[v] == arr.ret[i]
            assert ref.subtree_size[v] == arr.size[i]

    def test_swap_contract_matches(self):
        cg, ref, arr = self.make_pair(seed=8)
        ref.refresh_euler()
        for eid in range(cg.num_edges):
            u = int(cg.edge_src[eid])
            v = int(cg.edge_dst[eid])
            nu = cg.node_of(u)
            nv = cg.nodes[v]
            if ref.parent[nv] is nu or ref.is_ancestor(nv, nu):
                continue
            ds_ref, dr_ref = ref.swap_deltas(nu, nv)
            ds_arr, dr_arr = arr.swap_deltas_edge(eid)
            assert ds_ref == ds_arr
            assert dr_ref == dr_arr

    def test_apply_swap_matches(self):
        cg, ref, arr = self.make_pair(seed=9)
        applied = 0
        for eid in range(cg.num_edges):
            u = int(cg.edge_src[eid])
            v = int(cg.edge_dst[eid])
            nu = cg.node_of(u)
            nv = cg.nodes[v]
            if ref.parent[nv] is nu or ref.is_ancestor(nv, nu):
                continue
            ref.apply_swap(nu, nv)
            arr.apply_swap_edge(eid)
            applied += 1
            if applied >= 5:
                break
        assert applied > 0
        assert_tree_equal(ref, arr)
        arr.check_invariants()

    def test_cycle_swap_rejected(self):
        cg, ref, arr = self.make_pair(seed=10)
        for eid in range(cg.num_edges):
            u = int(cg.edge_src[eid])
            v = int(cg.edge_dst[eid])
            if u != cg.aux and arr.is_ancestor(v, u) and u != v:
                with pytest.raises(GraphError):
                    arr.apply_swap_edge(eid)
                return
        pytest.skip("no cycle-creating edge in this instance")

    def test_exports(self):
        cg, ref, arr = self.make_pair(seed=11)
        assert ref.to_plan() == arr.to_plan()
        assert sorted(map(str, ref.materialized_versions())) == sorted(
            map(str, arr.materialized_versions())
        )
        assert arr.max_retrieval() == ref.max_retrieval()
        back = arr.to_plan_tree()
        assert back.parent == ref.parent


class TestArrayArborescence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_dict_edmonds_random(self, seed):
        g = random_digraph(14, extra_edge_prob=0.4, seed=seed)
        cg = g.compile()
        ref = min_storage_arborescence(cg.graph)
        pairs = min_storage_parent_edges(cg)
        arr = {cg.nodes[v]: cg.node_of(int(cg.edge_src[e])) for v, e in pairs}
        assert ref == arr

    def test_matches_dict_edmonds_natural(self):
        g = natural_graph(60, seed=12)
        cg = g.compile()
        ref = min_storage_arborescence(cg.graph)
        pairs = min_storage_parent_edges(cg)
        arr = {cg.nodes[v]: cg.node_of(int(cg.edge_src[e])) for v, e in pairs}
        assert ref == arr

    def test_directed_chain_spans_via_aux(self):
        g = VersionGraph()
        g.add_version("a", 5)
        g.add_version("b", 5)
        g.add_delta("a", "b", 1, 1)
        cg = g.compile()  # extends internally: reachable via AUX
        assert len(min_storage_parent_edges(cg)) == 2


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = random_digraph(12, extra_edge_prob=0.3, seed=seed)
        base = min_storage_plan_tree(g).total_storage
        for frac in (1.0, 1.4, 2.5):
            budget = base * frac + 1
            assert_tree_equal(lmg(g, budget), lmg_array(g, budget))
            assert_tree_equal(lmg_all(g, budget), lmg_all_array(g, budget))
        rmax = g.max_retrieval_cost()
        for rb in (0.0, rmax, 3 * rmax, float("inf")):
            assert_tree_equal(mp(g, rb), mp_array(g, rb))

    @pytest.mark.parametrize("name", sorted(PRESET_SCALES))
    def test_presets(self, name):
        g = preset_graph(name)
        base = min_storage_plan_tree(g).total_storage
        for frac in (1.02, 1.5, 3.0):
            budget = base * frac
            assert_tree_equal(lmg(g, budget), lmg_array(g, budget))
            assert_tree_equal(lmg_all(g, budget), lmg_all_array(g, budget))
        rb = g.max_retrieval_cost() * 2
        assert_tree_equal(mp(g, rb), mp_array(g, rb))

    @pytest.mark.parametrize("seed", range(4))
    def test_float_costs_bitwise_equivalent(self, seed):
        # Non-integer costs exercise the float accumulation ordering:
        # both backends must agree bitwise on storage totals so budget
        # boundary decisions can never diverge by an ulp.
        rng = np.random.default_rng(seed)
        n = 12
        g = VersionGraph()
        for i in range(n):
            g.add_version(i, float(rng.uniform(0.01, 5.0)))
        for i in range(1, n):
            j = int(rng.integers(0, i))
            g.add_bidirectional_delta(
                j, i, float(rng.uniform(0.01, 2.0)), float(rng.uniform(0.01, 2.0))
            )
        ref = min_storage_plan_tree(g)
        arr = lmg_array(g, ref.total_storage)
        assert ref.total_storage == arr.total_storage  # exact, not approx
        base = ref.total_storage
        for frac in (1.01, 1.7):
            assert_tree_equal(lmg(g, base * frac), lmg_array(g, base * frac))
            assert_tree_equal(lmg_all(g, base * frac), lmg_all_array(g, base * frac))

    def test_infeasible_budget_raises_like_reference(self):
        g = random_digraph(8, seed=20)
        base = min_storage_plan_tree(g).total_storage
        with pytest.raises(ValueError):
            lmg_array(g, base - 1)
        with pytest.raises(ValueError):
            lmg_all_array(g, base - 1)
        with pytest.raises(ValueError):
            mp_array(g, -1.0)

    def test_max_iterations_cap(self):
        g = natural_graph(30, seed=4)
        budget = g.total_version_storage()
        ref = lmg(g, budget, max_iterations=2)
        arr = lmg_array(g, budget, max_iterations=2)
        assert_tree_equal(ref, arr)
        ref = lmg_all(g, budget, max_iterations=3)
        arr = lmg_all_array(g, budget, max_iterations=3)
        assert_tree_equal(ref, arr)


class TestRegistryBackends:
    def test_default_is_array(self):
        from repro.algorithms import registry

        assert get_msr_solver("lmg") is registry.MSR_SOLVERS["lmg"]
        assert get_msr_solver("lmg") is registry.BACKENDS[("msr", "lmg")]["array"]
        assert get_bmr_solver("mp") is registry.BACKENDS[("bmr", "mp")]["array"]

    def test_backends_agree_through_registry(self):
        g = random_digraph(10, seed=30)
        base = min_storage_plan_tree(g).total_storage
        for name in ("lmg", "lmg-all"):
            fast = get_msr_solver(name)
            ref = get_msr_solver(name, backend="dict")
            assert fast(g, base * 2) == ref(g, base * 2)
            assert fast(g, base - 1) is None and ref(g, base - 1) is None
        fast = get_bmr_solver("mp")
        ref = get_bmr_solver("mp", backend="dict")
        rb = g.max_retrieval_cost()
        assert fast(g, rb) == ref(g, rb)

    def test_backend_ignored_for_non_greedy(self):
        assert get_msr_solver("dp-msr", backend="dict") is get_msr_solver("dp-msr")
        assert get_msr_solver("dp-msr", backend="array") is get_msr_solver("dp-msr")

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_msr_solver("lmg", backend="gpu")

    def test_solvers_accept_compiled_graph(self):
        g = random_digraph(9, seed=31)
        cg = g.compile()
        base = min_storage_plan_tree(g).total_storage
        assert_tree_equal(lmg(g, base * 2), lmg_array(cg, base * 2))
        assert_tree_equal(mp(g, 1e9), mp_array(cg, 1e9))
