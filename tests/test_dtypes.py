"""Index-dtype diet: int32 below the 2^31 span, int64 above.

:class:`~repro.fastgraph.compiled.CompiledGraph` parameterizes every
index-valued array (edge endpoints, CSR adjacency, ``aux_edge``) on an
``index_dtype`` chosen automatically from the graph's span — int32 for
everything that fits (halving index memory at XL scale), int64 beyond.
These tests pin the selection rule, the overflow guard, the elementwise
equality of int32 vs int64 compiles, dtype inheritance into
:class:`~repro.fastgraph.plantree.ArrayPlanTree` (clone included), and
the in-place upcast when a tree outgrows its narrow dtype.
"""

import numpy as np
import pytest

from repro.core.graph import GraphError
from repro.fastgraph import solvers as solvers_mod
from repro.fastgraph.compiled import (
    _INT32_CAPACITY,
    CompiledGraph,
    _auto_index_dtype,
    _check_index_capacity,
    _index_span,
)
from repro.fastgraph.solvers import (
    _lmg_candidates,
    _lmg_run,
    _materialized_array_tree,
    _min_storage_array_tree,
)
from repro.gen import random_digraph

INDEX_ATTRS = [
    "edge_src",
    "edge_dst",
    "aux_edge",
    "out_indptr",
    "out_edges",
    "in_indptr",
    "in_edges",
]
FLOAT_ATTRS = ["edge_storage", "edge_retrieval"]


class TestDtypeSelection:
    def test_small_graphs_compile_to_int32(self):
        cg = random_digraph(40, seed=2).compile()
        assert cg.index_dtype == np.dtype(np.int32)
        for attr in INDEX_ATTRS:
            assert getattr(cg, attr).dtype == np.dtype(np.int32), attr

    def test_auto_dtype_boundary(self):
        # span = max(nodes + 1, edges); int32 holds spans up to 2^31 - 1
        assert _auto_index_dtype(10, 20) == np.dtype(np.int32)
        assert _auto_index_dtype(_INT32_CAPACITY - 1, 0) == np.dtype(np.int32)
        assert _auto_index_dtype(_INT32_CAPACITY, 0) == np.dtype(np.int64)
        assert _auto_index_dtype(0, _INT32_CAPACITY + 1) == np.dtype(np.int64)
        assert _index_span(10, 3) == 11
        assert _index_span(10, 30) == 30

    def test_overflow_guard_message(self):
        with pytest.raises(GraphError, match="index dtype int32 cannot address"):
            _check_index_capacity(_INT32_CAPACITY, 0, np.dtype(np.int32))
        with pytest.raises(GraphError, match="cannot address"):
            _check_index_capacity(200, 5, np.dtype(np.int8))
        # and through the constructor
        with pytest.raises(GraphError, match="cannot address"):
            CompiledGraph(random_digraph(300, seed=1), index_dtype=np.int8)
        # int64 always fits
        _check_index_capacity(_INT32_CAPACITY + 7, 0, np.dtype(np.int64))


class TestDtypeEquivalence:
    def test_int32_and_int64_compiles_elementwise_equal(self):
        graph = random_digraph(120, extra_edge_prob=0.2, seed=6)
        cg32 = CompiledGraph(graph, index_dtype=np.int32)
        cg64 = CompiledGraph(graph, index_dtype=np.int64)
        assert cg32.index_dtype == np.dtype(np.int32)
        assert cg64.index_dtype == np.dtype(np.int64)
        assert cg32.n == cg64.n and cg32.num_edges == cg64.num_edges
        for attr in INDEX_ATTRS:
            a32, a64 = getattr(cg32, attr), getattr(cg64, attr)
            assert a32.dtype == np.dtype(np.int32), attr
            assert a64.dtype == np.dtype(np.int64), attr
            assert np.array_equal(a32, a64), attr
        for attr in FLOAT_ATTRS:
            assert np.array_equal(getattr(cg32, attr), getattr(cg64, attr)), attr

    def test_kernel_plans_identical_across_dtypes(self):
        graph = random_digraph(100, extra_edge_prob=0.2, seed=9)
        trees = {}
        for dtype in (np.int32, np.int64):
            cg = CompiledGraph(graph, index_dtype=dtype)
            tree = _min_storage_array_tree(cg)
            budget = tree.total_storage * 2.0
            _lmg_run(
                cg,
                tree,
                _lmg_candidates(cg, tree),
                budget,
                solvers_mod._lmg_default_rounds(cg),
            )
            trees[np.dtype(dtype).name] = tree
        t32, t64 = trees["int32"], trees["int64"]
        assert np.array_equal(t32.parent, t64.parent)
        assert np.array_equal(t32.ret, t64.ret)  # bit-identical floats
        assert t32.total_storage == t64.total_storage
        assert t32.total_retrieval == t64.total_retrieval


class TestTreeDtypeInheritance:
    def test_tree_arrays_inherit_index_dtype(self):
        graph = random_digraph(60, seed=3)
        for dtype in (np.int32, np.int64):
            cg = CompiledGraph(graph, index_dtype=dtype)
            tree = _materialized_array_tree(cg)
            tree.ensure_euler()
            for attr in ("parent", "par_edge", "size", "_tin", "_tout", "_preorder"):
                assert getattr(tree, attr).dtype == np.dtype(dtype), (attr, dtype)
            assert tree.ret.dtype == np.dtype(np.float64)

    def test_clone_preserves_dtypes(self):
        graph = random_digraph(50, seed=4)
        cg = CompiledGraph(graph, index_dtype=np.int32)
        tree = _materialized_array_tree(cg)
        tree.ensure_euler()
        new = tree.clone()
        for attr in ("parent", "par_edge", "size", "_tin", "_tout", "_preorder"):
            assert getattr(new, attr).dtype == np.dtype(np.int32), attr
        assert new.parent_map() == tree.parent_map()

    def test_append_version_upcasts_on_overflow(self):
        graph = random_digraph(30, seed=5)
        cg = CompiledGraph(graph, index_dtype=np.int32)
        tree = _materialized_array_tree(cg)
        tree.ensure_euler()
        before = tree.parent.copy()
        old_aux = len(before) - 1
        assert tree.parent.dtype == np.dtype(np.int32)
        # an edge id beyond int32 forces the in-place int64 upgrade
        # (par_eid is bookkeeping only, so a synthetic id is fine here)
        big_eid = _INT32_CAPACITY + 10
        new_v = tree.append_version(tree.cg.aux, big_eid, 5.0, 1.0)
        for attr in ("parent", "par_edge", "size", "_tin", "_tout", "_preorder"):
            assert getattr(tree, attr).dtype == np.dtype(np.int64), attr
        assert int(tree.par_edge[new_v]) == big_eid
        new_aux = len(tree.parent) - 1
        assert int(tree.parent[new_v]) == new_aux
        # pre-existing structure survived the AUX renumber + upcast
        # (the tree only is appended here, so compare raw indices, not
        # the node-keyed views that consult the compiled graph)
        for v in range(old_aux):
            p = int(before[v])
            assert int(tree.parent[v]) == (new_aux if p == old_aux else p)
