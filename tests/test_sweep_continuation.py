"""Divergence-continuation sharing in the unified trajectory sweep.

The load-bearing guarantee of :func:`repro.fastgraph.sweep_greedy` is
unchanged by the sharing optimization: every grid point's plan is
*identical* (parent map, storage, retrieval) to an independent solver
run at that budget — for both problem families, on natural and ER
graph structure, across dense grids engineered to produce divergence
bands.  On top of that, the sharing itself is observable: within one
divergence band only the loosest member runs live kernel moves
(``replayed=False``); the tighter members replay its recorded
continuation (``replayed=True``), where the pre-sharing engine re-ran
live moves for every one of them.
"""

import numpy as np
import pytest

from repro.algorithms import min_storage_plan_tree
from repro.core import VersionGraph, evaluate_plan
from repro.fastgraph import (
    bmr_lmg_array,
    lmg_all_array,
    lmg_array,
    sweep_greedy,
)
# shared cached instances live in tests/helpers.py (see conftest)
from helpers import cached_natural_graph as natural_graph
from repro.gen.presets import PRESETS

FRESH = {
    ("msr", "lmg"): lmg_array,
    ("msr", "lmg-all"): lmg_all_array,
    ("bmr", "bmr-lmg"): bmr_lmg_array,
}


def dense_grid(graph, problem, points=24):
    """A deliberately fine budget grid: adjacent budgets routinely land
    in the same divergence band, which is what the sharing serves."""
    if problem == "msr":
        base = min_storage_plan_tree(graph).total_storage
        return [float(b) for b in np.linspace(base * 1.001, base * 3.0, points)]
    hi = graph.max_retrieval_cost() * 4.0
    return [float(b) for b in np.linspace(0.0, hi, points)]


def assert_plan_identity(graph, problem, solver, budgets):
    entries = sweep_greedy(graph, problem, solver, budgets)
    assert [e.budget for e in entries] == [float(b) for b in budgets]
    fresh = FRESH[(problem, solver)]
    for e, b in zip(entries, budgets):
        try:
            ref = fresh(graph, b)
        except ValueError:
            assert e.plan is None and not e.feasible
            continue
        assert e.feasible
        assert e.plan == ref.to_plan(), (problem, solver, b)
        assert e.score == evaluate_plan(graph, ref.to_plan()), (problem, solver, b)
    return entries


class TestSharedContinuationPlanIdentity:
    @pytest.mark.parametrize(
        "problem,solver",
        [("msr", "lmg"), ("msr", "lmg-all"), ("bmr", "bmr-lmg")],
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_natural_graphs(self, problem, solver, seed):
        g = natural_graph(40, seed=seed)
        assert_plan_identity(g, problem, solver, dense_grid(g, problem))

    @pytest.mark.parametrize(
        "problem,solver",
        [("msr", "lmg"), ("msr", "lmg-all"), ("bmr", "bmr-lmg")],
    )
    @pytest.mark.parametrize("preset", ["LeetCode (0.05)", "LeetCode (0.2)"])
    def test_er_graphs(self, problem, solver, preset):
        # the LeetCode presets are the paper's ER-construction graphs
        g = PRESETS[preset].build(scale=0.3)
        assert_plan_identity(g, problem, solver, dense_grid(g, problem))

    @pytest.mark.parametrize(
        "problem,solver",
        [("msr", "lmg-all"), ("bmr", "bmr-lmg")],
    )
    def test_divergence_bands_are_exercised(self, problem, solver):
        # the sharing path must actually run in this suite: across the
        # seeds above at least one dense grid produces a diverged band
        diverged = 0
        for seed in range(3):
            g = natural_graph(40, seed=seed)
            entries = sweep_greedy(g, problem, solver, dense_grid(g, problem))
            diverged += sum(1 for e in entries if e.feasible and not e.replayed)
        assert diverged > 0


class TestBandSharingObservable:
    def test_one_live_continuation_per_band(self):
        # Same instance as TestTrajectorySweep's divergence test, but
        # with a BAND of tight budgets all diverging at recorded step 0:
        #   loose (160) run: materialize b (-> storage 155), then c (158)
        #   tight band: 112 (no move fits), 113.5 and 114 (c fits, b not)
        # Pre-sharing, 113.5 and 114 each re-ran the live kernel; with
        # continuation sharing only the band's loosest member (114) runs
        # live, 113.5 replays its recording, 112 replays-and-stops.
        g = VersionGraph()
        g.add_version("a", 100.0)
        g.add_version("b", 50.0)
        g.add_version("c", 8.0)
        g.add_delta("a", "b", 5.0, 100.0)
        g.add_delta("a", "c", 5.0, 4.0)
        assert min_storage_plan_tree(g).total_storage == 110.0
        budgets = [112.0, 113.5, 114.0, 160.0]
        entries = sweep_greedy(g, "msr", "lmg", budgets)
        for e, b in zip(entries, budgets):
            ref = lmg_array(g, b)
            assert e.plan == ref.to_plan()
        assert [e.replayed for e in entries] == [True, True, False, True]
        # the tight plans took the cheap move the loose trajectory skipped
        assert "c" in map(str, entries[1].plan.materialized)
        assert "b" not in map(str, entries[1].plan.materialized)

    def test_nested_band_recursion(self):
        # a band inside a band: 112 sub-diverges from the 114 band
        # continuation (its recorded c-move overshoots 112) and resolves
        # through a second-level recursion with zero live moves — its
        # plan is the untouched minimum-storage start
        g = VersionGraph()
        g.add_version("a", 100.0)
        g.add_version("b", 50.0)
        g.add_version("c", 8.0)
        g.add_delta("a", "b", 5.0, 100.0)
        g.add_delta("a", "c", 5.0, 4.0)
        entries = sweep_greedy(g, "msr", "lmg", [112.0, 113.5, 114.0, 160.0])
        assert entries[0].plan == lmg_array(g, 112.0).to_plan()
        assert entries[0].plan.materialized == frozenset({"a"})
        assert entries[0].replayed  # sub-band, zero live moves
        assert entries[1].plan.materialized == frozenset({"a", "c"})
        assert entries[1].replayed  # served from 114's continuation
        assert entries[2].plan.materialized == frozenset({"a", "c"})
        assert not entries[2].replayed  # the band's one live run

    def test_duplicate_budgets_inside_a_band(self):
        g = natural_graph(30, seed=11)
        base = min_storage_plan_tree(g).total_storage
        budgets = [base * 1.2, base * 1.2, base * 2.0, base * 1.2]
        entries = sweep_greedy(g, "msr", "lmg-all", budgets)
        assert entries[0].plan == entries[1].plan == entries[3].plan
        for e, b in zip(entries, budgets):
            assert e.plan == lmg_all_array(g, b).to_plan()

    def test_bmr_band_replays_continuation(self):
        # two retrieval budgets below the recorded move's subtree max:
        # the looser one records the (empty) continuation, the tighter
        # replays it — both emit the all-materialized plan
        g = VersionGraph()
        g.add_version("a", 100.0)
        g.add_version("b", 60.0)
        g.add_delta("a", "b", 5.0, 10.0)
        budgets = [5.0, 8.0, 20.0]
        entries = sweep_greedy(g, "bmr", "bmr-lmg", budgets)
        for e, b in zip(entries, budgets):
            assert e.plan == bmr_lmg_array(g, b).to_plan()
        assert [e.replayed for e in entries] == [True, True, True]
        assert entries[0].plan.materialized == frozenset({"a", "b"})
        assert entries[2].plan.materialized == frozenset({"a"})
