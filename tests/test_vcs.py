"""Tests for the VCS substrate: Myers diff, deltas, repository, graph build."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import validate_graph
from helpers import cached_graph, cached_repo
from repro.vcs import (
    DeltaScript,
    Repository,
    build_graph_from_repo,
    compute_delta,
    diff_stats,
    myers_diff,
    random_repository,
    snapshot_delta_bytes,
)

lines_strategy = st.lists(
    st.sampled_from(["a", "b", "c", "dd", "ee", "hello world", ""]), max_size=30
)


def edit_distance(a, b):
    """Reference Levenshtein (insert/delete only) via DP."""
    n, m = len(a), len(b)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if a[i - 1] == b[j - 1]:
                dp[i][j] = dp[i - 1][j - 1]
            else:
                dp[i][j] = 1 + min(dp[i - 1][j], dp[i][j - 1])
    return dp[n][m]


class TestMyers:
    def test_identical(self):
        a = ["x", "y", "z"]
        assert myers_diff(a, a) == [("keep", l) for l in a]

    def test_empty_cases(self):
        assert myers_diff([], ["a"]) == [("insert", "a")]
        assert myers_diff(["a"], []) == [("delete", "a")]
        assert myers_diff([], []) == []

    def test_simple_replace(self):
        ops = myers_diff(["a", "b", "c"], ["a", "x", "c"])
        non_keep = [op for op, _ in ops if op != "keep"]
        assert sorted(non_keep) == ["delete", "insert"]

    @given(lines_strategy, lines_strategy)
    @settings(max_examples=150, deadline=None)
    def test_reconstruction(self, a, b):
        """Applying the script's inserts/keeps reproduces b."""
        out = []
        consumed = 0
        for op, line in myers_diff(a, b):
            if op == "keep":
                assert a[consumed] == line
                out.append(line)
                consumed += 1
            elif op == "delete":
                assert a[consumed] == line
                consumed += 1
            else:
                out.append(line)
        assert consumed == len(a)
        assert out == b

    @given(lines_strategy, lines_strategy)
    @settings(max_examples=80, deadline=None)
    def test_script_is_shortest(self, a, b):
        _, deleted, inserted = diff_stats(a, b)
        assert deleted + inserted == edit_distance(a, b)


class TestDeltaScript:
    @given(lines_strategy, lines_strategy)
    @settings(max_examples=100, deadline=None)
    def test_apply_round_trip(self, a, b):
        script = compute_delta(a, b)
        assert script.apply(a) == b

    def test_identity_script(self):
        script = compute_delta(["a", "b"], ["a", "b"])
        assert script.is_identity
        assert script.byte_size() == 4  # single keep-run header

    def test_size_scales_with_change(self):
        base = [f"line {i}" for i in range(50)]
        small = compute_delta(base, base[:49] + ["changed"])
        big = compute_delta(base, [f"other {i}" for i in range(50)])
        assert small.byte_size() < big.byte_size()

    def test_apply_wrong_base_raises(self):
        script = compute_delta(["a", "b", "c"], ["a", "c"])
        with pytest.raises(ValueError):
            script.apply(["a"])


class TestRepository:
    def test_linear_commits(self):
        repo = Repository()
        repo.commit({"f": ("a",)})
        repo.commit({"f": ("a", "b")})
        assert repo.num_commits == 2
        assert repo.commits[1].parents == (0,)

    def test_branch_and_merge(self):
        repo = Repository()
        repo.commit({"f": ("a",)})
        repo.branch_from("dev")
        repo.commit({"f": ("a", "dev")}, branch="dev")
        repo.commit({"f": ("a", "main")})
        m = repo.merge("dev")
        assert len(m.parents) == 2
        assert "dev" not in repo.heads
        # "into" side wins conflicts
        assert m.snapshot["f"] == ("a", "main")

    def test_duplicate_branch_rejected(self):
        repo = Repository()
        repo.commit({"f": ("a",)})
        repo.branch_from("dev")
        with pytest.raises(ValueError):
            repo.branch_from("dev")

    def test_commit_to_unknown_branch_rejected(self):
        repo = Repository()
        repo.commit({"f": ("a",)})
        with pytest.raises(ValueError):
            repo.commit({"f": ("b",)}, branch="ghost")

    def test_total_bytes_positive(self):
        repo = cached_repo(10, seed=1)
        for c in repo.commits:
            assert c.total_bytes() > 0


class TestRandomRepository:
    def test_deterministic(self):
        a = random_repository(30, seed=5)
        b = random_repository(30, seed=5)
        assert [c.snapshot for c in a.commits] == [c.snapshot for c in b.commits]

    def test_size_and_parents(self):
        repo = cached_repo(40, seed=6)
        assert repo.num_commits >= 40
        for c in repo.commits[1:]:
            assert c.parents
            for p in c.parents:
                assert p < c.id

    def test_merges_occur(self):
        repo = cached_repo(120, merge_prob=0.15, branch_prob=0.25, seed=7)
        assert any(len(c.parents) == 2 for c in repo.commits)


class TestBuildGraph:
    def test_structure_matches_history(self):
        repo = cached_repo(25, seed=8)
        g = cached_graph(25, seed=8)
        validate_graph(g)
        assert g.num_versions == repo.num_commits
        links = sum(len(c.parents) for c in repo.commits)
        assert g.num_deltas == 2 * links

    def test_costs_are_diff_bytes(self):
        repo = Repository()
        repo.commit({"f": ("a", "b", "c")})
        repo.commit({"f": ("a", "b", "c", "d")})
        g = build_graph_from_repo(repo)
        fwd = snapshot_delta_bytes(repo.commits[0].snapshot, repo.commits[1].snapshot)
        assert g.delta(0, 1).storage == fwd
        assert g.delta(0, 1).retrieval == fwd  # single weight function

    def test_identical_snapshots_cost_minimum(self):
        a = {"f": ("x",)}
        assert snapshot_delta_bytes(a, dict(a)) == 1

    def test_deltas_cheaper_than_materialization(self):
        g = cached_graph(30, seed=9)
        assert g.average_delta_storage() < g.average_version_storage()

    def test_end_to_end_with_solver(self):
        from repro.algorithms import lmg_all, min_storage_plan_tree

        g = cached_graph(25, seed=10)
        base = min_storage_plan_tree(g).total_storage
        tree = lmg_all(g, base * 1.5)
        assert tree.total_storage <= base * 1.5 + 1e-6
