"""Public-docstring gate for ``src/repro`` (local mirror of ruff D1).

CI runs ``ruff check --select D1 src/repro`` (configured in
``pyproject.toml``); this test enforces the same contract from the
tier-1 suite so environments without ruff still catch regressions.
Matching the ruff config, magic methods (D105) and ``__init__`` (D107)
are exempt — constructors are documented in their class docstring —
and anything underscore-private is out of scope.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def _missing_docstrings() -> list[str]:
    missing: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text())
        rel = path.relative_to(SRC.parents[1])
        if ast.get_docstring(tree) is None:
            missing.append(f"{rel}:1 module")

        def walk(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    if not child.name.startswith("_"):
                        if ast.get_docstring(child) is None:
                            missing.append(
                                f"{rel}:{child.lineno} {prefix}{child.name}"
                            )
                    if isinstance(child, ast.ClassDef):
                        # public methods of private classes still count
                        walk(child, prefix + child.name + ".")
                # defs nested inside functions are not public API

        walk(tree, "")
    return missing


def test_every_public_name_has_a_docstring():
    missing = _missing_docstrings()
    assert not missing, (
        "public API without docstrings (see pyproject [tool.ruff.lint]):\n"
        + "\n".join(missing)
    )
