"""Edge-case and failure-injection tests across the solver stack.

Degenerate inputs the benchmarks never produce but users will: single
versions, zero-cost deltas, float costs, duplicate-cost ties,
disconnected delta graphs (always feasible through materialization),
and budgets at exact boundaries.
"""


import pytest

from repro.core import VersionGraph, evaluate_plan
from repro.algorithms import (
    dp_bmr_heuristic,
    dp_msr,
    dp_msr_frontier,
    lmg,
    lmg_all,
    min_storage_plan_tree,
    mp,
    msr_ilp,
)


def single_version_graph():
    g = VersionGraph(name="one")
    g.add_version("only", 7.5)
    return g


def disconnected_graph():
    g = VersionGraph(name="disc")
    for i in range(4):
        g.add_version(i, 10 + i)
    g.add_delta(0, 1, 2, 3)  # island {0,1}; {2,3} have no deltas at all
    return g


def zero_cost_graph():
    g = VersionGraph(name="zero")
    g.add_version("a", 5)
    g.add_version("b", 5)
    g.add_version("c", 5)
    g.add_delta("a", "b", 0, 0)
    g.add_delta("b", "c", 0, 0)
    return g


class TestSingleVersion:
    def test_all_solvers_handle_one_node(self):
        g = single_version_graph()
        assert min_storage_plan_tree(g).total_storage == 7.5
        assert lmg(g, 10).total_retrieval == 0
        assert lmg_all(g, 10).total_retrieval == 0
        assert mp(g, 0).total_storage == 7.5
        res = dp_msr(g, 10, ticks=None)
        assert res.score.storage == 7.5
        ilp = msr_ilp(g, 10)
        assert ilp.objective == 0

    def test_budget_exactly_at_minimum(self):
        g = single_version_graph()
        assert lmg(g, 7.5).total_storage == 7.5
        with pytest.raises(ValueError):
            lmg(g, 7.4)


class TestDisconnected:
    def test_materialization_keeps_feasibility(self):
        g = disconnected_graph()
        tree = min_storage_plan_tree(g)
        score = evaluate_plan(g, tree.to_plan())
        assert score.feasible_reconstruction
        # islands without in-deltas must be materialized
        mats = set(tree.materialized_versions())
        assert {2, 3} <= mats

    def test_dp_and_greedy_agree_on_feasibility(self):
        g = disconnected_graph()
        budget = g.total_version_storage()
        for solver in (lambda: lmg_all(g, budget).to_plan(), lambda: dp_msr(g, budget, ticks=16).plan):
            assert evaluate_plan(g, solver()).feasible_reconstruction

    def test_bmr_heuristic_on_disconnected(self):
        g = disconnected_graph()
        res = dp_bmr_heuristic(g, 10)
        assert evaluate_plan(g, res.plan).max_retrieval <= 10


class TestZeroCosts:
    def test_zero_deltas_allow_free_chains(self):
        g = zero_cost_graph()
        tree = min_storage_plan_tree(g)
        assert tree.total_storage == 5  # one materialization, free deltas
        assert tree.total_retrieval == 0

    def test_dp_msr_frontier_with_zero_costs(self):
        g = zero_cost_graph()
        f = dp_msr_frontier(g, ticks=None)
        assert f.min_storage() == 5
        assert f.best_retrieval_within(5) == 0

    def test_mp_zero_budget_zero_deltas(self):
        g = zero_cost_graph()
        tree = mp(g, 0)
        # zero-retrieval deltas satisfy R=0 without materializing all
        assert tree.total_storage == 5


class TestFloatCosts:
    def test_fractional_costs_round_trip(self):
        g = VersionGraph()
        g.add_version("x", 1.25)
        g.add_version("y", 2.75)
        g.add_delta("x", "y", 0.5, 0.125)
        res = dp_msr(g, 2.0, ticks=None)
        assert res.score.storage == pytest.approx(1.75)
        assert res.score.sum_retrieval == pytest.approx(0.125)

    def test_budget_boundary_tolerance(self):
        g = VersionGraph()
        g.add_version("x", 0.1 + 0.2)  # the classic 0.30000000000000004
        tree = lmg(g, 0.3)
        assert tree.total_storage <= 0.3 + 1e-9


class TestTieBreaking:
    def test_equal_cost_edges_deterministic(self):
        g = VersionGraph()
        for v in "abcd":
            g.add_version(v, 10)
        for u in "abc":
            g.add_delta(u, "d", 1, 1)  # three identical in-edges for d
        pm1 = min_storage_plan_tree(g).parent
        pm2 = min_storage_plan_tree(g).parent
        assert pm1 == pm2

    def test_lmg_all_deterministic_with_ties(self):
        g = VersionGraph()
        for i in range(6):
            g.add_version(i, 20)
        for i in range(5):
            g.add_delta(i, i + 1, 2, 2)
            g.add_delta(i + 1, i, 2, 2)
        a = lmg_all(g, 60).to_plan()
        b = lmg_all(g, 60).to_plan()
        assert a == b
