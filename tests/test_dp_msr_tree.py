"""Tests for the Section-5.1 reference (k, γ, ρ) DP.

The reference implementation is cross-validated against the exact
production DP (`dp_msr_frontier(ticks=None)`) and brute force at every
budget regime, including trees requiring Appendix-C binarization
(nodes with 3+ children).
"""

import math

import numpy as np
import pytest

from repro.core import GraphError, VersionGraph
from repro.algorithms import brute_force_frontier, dp_msr_frontier, dp_msr_tree_reference
from repro.gen import random_bidirectional_tree


def star_tree(n_leaves: int, seed: int = 0) -> VersionGraph:
    """A root with many children — exercises vertex splitting."""
    rng = np.random.default_rng(seed)
    g = VersionGraph(name="star")
    g.add_version("hub", int(rng.integers(20, 60)))
    for i in range(n_leaves):
        g.add_version(i, int(rng.integers(5, 40)))
        g.add_delta("hub", i, int(rng.integers(1, 15)), int(rng.integers(1, 15)))
        g.add_delta(i, "hub", int(rng.integers(1, 15)), int(rng.integers(1, 15)))
    return g


class TestExactness:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_production_dp(self, seed):
        g = random_bidirectional_tree(6, seed=seed)
        f = dp_msr_frontier(g, ticks=None)
        total = g.total_version_storage()
        for frac in (0.35, 0.55, 0.8, 1.0):
            budget = total * frac
            expect = f.best_retrieval_within(budget)
            if math.isinf(expect):
                with pytest.raises(GraphError):
                    dp_msr_tree_reference(g, budget)
            else:
                got = dp_msr_tree_reference(g, budget).retrieval
                assert got == pytest.approx(expect), f"budget frac {frac}"

    @pytest.mark.parametrize("n_leaves", [3, 5])
    def test_binarization_on_stars(self, n_leaves):
        g = star_tree(n_leaves, seed=n_leaves)
        f = dp_msr_frontier(g, ticks=None)
        total = g.total_version_storage()
        for frac in (0.5, 0.75, 1.0):
            budget = total * frac
            expect = f.best_retrieval_within(budget)
            if math.isinf(expect):
                continue
            got = dp_msr_tree_reference(g, budget).retrieval
            assert got == pytest.approx(expect)

    def test_matches_brute_force_directly(self):
        g = random_bidirectional_tree(5, seed=99)
        bf = brute_force_frontier(g)
        for storage, retrieval in bf:
            got = dp_msr_tree_reference(g, storage).retrieval
            assert got == pytest.approx(retrieval)

    def test_rejects_non_tree(self):
        from repro.gen import random_digraph

        g = random_digraph(6, extra_edge_prob=0.4, seed=1)
        with pytest.raises(GraphError):
            dp_msr_tree_reference(g, 1e9)


class TestDiscretization:
    @pytest.mark.parametrize("seed", range(4))
    def test_lemma9_additive_guarantee(self, seed):
        """With epsilon, the result is within OPT + eps*r_max and never
        below OPT (discretization rounds retrievals up)."""
        g = random_bidirectional_tree(6, seed=40 + seed)
        f = dp_msr_frontier(g, ticks=None)
        total = g.total_version_storage()
        budget = total * 0.6
        opt = f.best_retrieval_within(budget)
        if math.isinf(opt):
            return
        eps = 0.5
        rmax = g.max_retrieval_cost()
        got = dp_msr_tree_reference(g, budget, epsilon=eps).retrieval
        assert got <= opt + eps * rmax + 1e-6
        assert got >= opt - 1e-9

    def test_finer_epsilon_tightens(self):
        g = random_bidirectional_tree(7, seed=77)
        budget = g.total_version_storage() * 0.6
        coarse = dp_msr_tree_reference(g, budget, epsilon=1.0).retrieval
        fine = dp_msr_tree_reference(g, budget, epsilon=0.01).retrieval
        exact = dp_msr_tree_reference(g, budget).retrieval
        assert fine <= coarse + 1e-9
        assert abs(fine - exact) <= 0.02 * max(exact, g.max_retrieval_cost())


class TestStateAccounting:
    def test_state_counts_reported(self):
        g = random_bidirectional_tree(6, seed=5)
        res = dp_msr_tree_reference(g, g.total_version_storage())
        assert res.states > 0
        assert res.scale == 1.0

    def test_budget_pruning_keeps_refundable_states(self):
        """Regression: a subtree-root materialization over budget must
        survive pruning because a parent steal refunds it (§5.1.1)."""
        g = random_bidirectional_tree(6, seed=8)
        budget = g.total_version_storage() * 0.4
        exact = dp_msr_frontier(g, ticks=None).best_retrieval_within(budget)
        assert dp_msr_tree_reference(g, budget).retrieval == pytest.approx(exact)
