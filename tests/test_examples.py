"""Smoke tests for the example scripts.

The two fast examples run end-to-end; the longer ones are compiled and
import-checked (their components are exercised by the unit tests and
benchmarks).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "OPT (ILP)" in out
    assert "sum_retrieval=   1350" in out  # matches the known optimum


def test_adversarial_lmg_runs():
    out = run_example("adversarial_lmg.py")
    assert "10000.0x" in out  # the gap at c/b = 10^4


def test_git_history_optimizer_runs_small():
    out = run_example("git_history_optimizer.py", "25", "3")
    assert "Materialization schedule" in out
    assert "DP-BMR" in out


def test_retrieval_budget_serving_runs_small():
    out = run_example("retrieval_budget_serving.py", "40", "5")
    assert "Max-retrieval SLA" in out
    assert "post-re-solve plan == from-scratch mp-local solve" in out
    assert "batch BMR solvers" in out
    assert "bmr-lmg" in out


@pytest.mark.parametrize(
    "name", ["datalake_snapshots.py", "ml_pipeline_versions.py"]
)
def test_long_examples_compile(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)
