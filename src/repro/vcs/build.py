"""Repository -> version graph (the paper's Section-7.1 pipeline).

"Each commit corresponds to a node with its storage cost equal to its
size in bytes.  Between each pair of parent and child commits, we
construct bidirectional edges.  The storage and retrieval costs of the
edges are calculated, in bytes, based on the actions required to change
one version to the other in the direction of the edge."

Delta costs come from :mod:`repro.vcs.delta` (Myers diff): for the edge
``u -> v`` we diff every file of ``u`` against ``v`` (including file
additions/removals), sum the script byte sizes, and use that as both
storage and retrieval cost — the single-weight-function regime of
``simple diff`` (optionally scaled by ``retrieval_ratio``).

Both directions of a parent/child edge pair come from **one** Myers
trace per file (:func:`snapshot_delta_bytes_pair`): the reverse edit
script of a shortest ``a -> b`` script — inserts and deletes swapped,
insert payloads drawn from the lines the forward script deletes — is
itself a *shortest* ``b -> a`` script with the same run structure, so
its byte size is a legitimate shortest-edit-script cost at half the
diff work.  When a file pair admits several LCS alignments (duplicated
or reordered lines), an independent second Myers run may pick a
different alignment with different insert payloads, so the two-run and
single-trace byte costs can legitimately differ on such inputs; on the
edit histories this package generates (fresh random lines per edit) the
alignment is unambiguous and ``tests/test_vcs_edges.py`` pins byte-cost
equality against the two-run path, alongside a pinned divergence
example for the ambiguous case.
"""

from __future__ import annotations

from .delta import OP_HEADER_BYTES, compute_delta, insert_payload_bytes
from .repo import Repository, Snapshot
from ..core.graph import VersionGraph

__all__ = [
    "snapshot_delta_bytes",
    "snapshot_delta_bytes_pair",
    "build_graph_from_repo",
]

_FILE_HEADER = 8  # per-file delta header (path table entry)


def snapshot_delta_bytes(a: Snapshot, b: Snapshot) -> int:
    """Byte size of the delta transforming snapshot ``a`` into ``b``."""
    total = 0
    paths = set(a) | set(b)
    for path in sorted(paths):
        la = list(a.get(path, ()))
        lb = list(b.get(path, ()))
        if la == lb:
            continue
        total += _FILE_HEADER + len(path.encode())
        if not lb:
            continue  # deletion: header only
        script = compute_delta(la, lb)
        total += script.byte_size()
    return max(total, 1)


def snapshot_delta_bytes_pair(a: Snapshot, b: Snapshot) -> tuple[int, int]:
    """Byte sizes ``(a -> b, b -> a)`` from one Myers trace per file.

    The reverse direction's size is derived from the forward script —
    keep runs keep their header, delete runs become inserts carrying
    the deleted ``a`` lines, insert runs become header-only deletes —
    which is a shortest ``b -> a`` script with the same run count.
    Matches ``(snapshot_delta_bytes(a, b), snapshot_delta_bytes(b, a))``
    whenever the LCS alignment is unambiguous; with duplicated or
    reordered lines the independent reverse Myers run may keep a
    different (byte-wise cheaper or dearer) line set, in which case the
    two contracts diverge — both are valid shortest-edit-script costs
    (see the module docstring).
    """
    fwd = bwd = 0
    paths = set(a) | set(b)
    for path in sorted(paths):
        la = list(a.get(path, ()))
        lb = list(b.get(path, ()))
        if la == lb:
            continue
        hdr = _FILE_HEADER + len(path.encode())
        fwd += hdr
        bwd += hdr
        if not lb:
            # forward deletes the file (header only); the reverse
            # re-creates it with a single insert run
            bwd += OP_HEADER_BYTES + insert_payload_bytes(la)
            continue
        if not la:
            fwd += OP_HEADER_BYTES + insert_payload_bytes(lb)
            continue  # reverse deletes the file: header only
        script = compute_delta(la, lb)
        fwd += script.byte_size()
        pos = 0  # cursor into ``la`` to recover deleted-run payloads
        for op in script.ops:
            bwd += OP_HEADER_BYTES
            if op.kind == "keep":
                pos += op.count
            elif op.kind == "delete":
                bwd += insert_payload_bytes(la[pos : pos + op.count])
                pos += op.count
    return max(fwd, 1), max(bwd, 1)


def build_graph_from_repo(
    repo: Repository, *, retrieval_ratio: float = 1.0, name: str = "repo"
) -> VersionGraph:
    """Natural version graph of ``repo`` with byte-accurate diff costs."""
    g = VersionGraph(name=name)
    for c in repo.commits:
        g.add_version(c.id, float(c.total_bytes()))
    for c in repo.commits:
        for p in c.parents:
            fwd, bwd = snapshot_delta_bytes_pair(
                repo.commits[p].snapshot, c.snapshot
            )
            g.add_delta(p, c.id, float(fwd), float(fwd) * retrieval_ratio)
            g.add_delta(c.id, p, float(bwd), float(bwd) * retrieval_ratio)
    return g
