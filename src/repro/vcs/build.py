"""Repository -> version graph (the paper's Section-7.1 pipeline).

"Each commit corresponds to a node with its storage cost equal to its
size in bytes.  Between each pair of parent and child commits, we
construct bidirectional edges.  The storage and retrieval costs of the
edges are calculated, in bytes, based on the actions required to change
one version to the other in the direction of the edge."

Delta costs come from :mod:`repro.vcs.delta` (Myers diff): for the edge
``u -> v`` we diff every file of ``u`` against ``v`` (including file
additions/removals), sum the script byte sizes, and use that as both
storage and retrieval cost — the single-weight-function regime of
``simple diff`` (optionally scaled by ``retrieval_ratio``).
"""

from __future__ import annotations

from .delta import compute_delta
from .repo import Repository, Snapshot
from ..core.graph import VersionGraph

__all__ = ["snapshot_delta_bytes", "build_graph_from_repo"]

_FILE_HEADER = 8  # per-file delta header (path table entry)


def snapshot_delta_bytes(a: Snapshot, b: Snapshot) -> int:
    """Byte size of the delta transforming snapshot ``a`` into ``b``."""
    total = 0
    paths = set(a) | set(b)
    for path in sorted(paths):
        la = list(a.get(path, ()))
        lb = list(b.get(path, ()))
        if la == lb:
            continue
        total += _FILE_HEADER + len(path.encode())
        if not lb:
            continue  # deletion: header only
        script = compute_delta(la, lb)
        total += script.byte_size()
    return max(total, 1)


def build_graph_from_repo(
    repo: Repository, *, retrieval_ratio: float = 1.0, name: str = "repo"
) -> VersionGraph:
    """Natural version graph of ``repo`` with byte-accurate diff costs."""
    g = VersionGraph(name=name)
    for c in repo.commits:
        g.add_version(c.id, float(c.total_bytes()))
    for c in repo.commits:
        for p in c.parents:
            fwd = snapshot_delta_bytes(repo.commits[p].snapshot, c.snapshot)
            bwd = snapshot_delta_bytes(c.snapshot, repo.commits[p].snapshot)
            g.add_delta(p, c.id, float(fwd), float(fwd) * retrieval_ratio)
            g.add_delta(c.id, p, float(bwd), float(bwd) * retrieval_ratio)
    return g
