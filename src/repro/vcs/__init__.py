"""Miniature version-control substrate: Myers diff, deltas, repositories."""

from .build import (
    build_graph_from_repo,
    snapshot_delta_bytes,
    snapshot_delta_bytes_pair,
)
from .delta import DeltaOp, DeltaScript, compute_delta
from .myers import diff_stats, myers_diff
from .repo import RandomEditor, RepoCommit, Repository, random_repository

__all__ = [
    "myers_diff",
    "diff_stats",
    "DeltaOp",
    "DeltaScript",
    "compute_delta",
    "Repository",
    "RepoCommit",
    "RandomEditor",
    "random_repository",
    "build_graph_from_repo",
    "snapshot_delta_bytes",
    "snapshot_delta_bytes_pair",
]
