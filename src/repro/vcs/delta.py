"""Delta scripts: run-length encoded edit scripts with byte sizes.

A :class:`DeltaScript` is the storable artifact between two versions of
one file: ``keep``/``delete`` runs reference the base version by line
counts, ``insert`` runs carry literal lines.  Sizes are byte-accurate
for a simple binary encoding (4-byte op headers + literal payload), so
version-graph costs derived from these deltas behave like the paper's
``diff``-based byte costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .myers import myers_diff

__all__ = [
    "DeltaOp",
    "DeltaScript",
    "compute_delta",
    "OP_HEADER_BYTES",
    "insert_payload_bytes",
]

#: Per-run header size: opcode byte + 3-byte run length.  The single
#: source of truth for the binary encoding — derived costs elsewhere
#: (e.g. the single-trace reverse sizes in :mod:`repro.vcs.build`)
#: import it rather than restating the number.
OP_HEADER_BYTES = 4


def insert_payload_bytes(lines) -> int:
    """Byte size of an insert run's literal payload (newline per line)."""
    return sum(len(line.encode()) + 1 for line in lines)


@dataclass(frozen=True)
class DeltaOp:
    """One run: ``kind`` in {"keep", "delete", "insert"}.

    ``count`` lines for keep/delete; ``lines`` payload for insert.
    """

    kind: str
    count: int = 0
    lines: tuple[str, ...] = ()

    def byte_size(self) -> int:
        """Wire size of this op (header plus insert payload)."""
        if self.kind == "insert":
            return OP_HEADER_BYTES + insert_payload_bytes(self.lines)
        return OP_HEADER_BYTES


@dataclass(frozen=True)
class DeltaScript:
    """An ordered list of runs transforming a base file into a target."""

    ops: tuple[DeltaOp, ...]

    def byte_size(self) -> int:
        """Serialized size — the delta's storage cost in bytes."""
        return sum(op.byte_size() for op in self.ops)

    def apply(self, base: list[str]) -> list[str]:
        """Replay the script against ``base``; raises on length mismatch."""
        out: list[str] = []
        i = 0
        for op in self.ops:
            if op.kind == "keep":
                if i + op.count > len(base):
                    raise ValueError("keep run exceeds base length")
                out.extend(base[i : i + op.count])
                i += op.count
            elif op.kind == "delete":
                if i + op.count > len(base):
                    raise ValueError("delete run exceeds base length")
                i += op.count
            elif op.kind == "insert":
                out.extend(op.lines)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown op {op.kind!r}")
        if i != len(base):
            raise ValueError(f"script consumed {i} of {len(base)} base lines")
        return out

    @property
    def is_identity(self) -> bool:
        """True when the script only keeps lines (source == target)."""
        return all(op.kind == "keep" for op in self.ops)


def compute_delta(base: list[str], target: list[str]) -> DeltaScript:
    """Myers diff folded into run-length ops."""
    raw = myers_diff(base, target)
    ops: list[DeltaOp] = []
    i = 0
    while i < len(raw):
        kind = raw[i][0]
        j = i
        while j < len(raw) and raw[j][0] == kind:
            j += 1
        run = raw[i:j]
        if kind == "insert":
            ops.append(DeltaOp("insert", lines=tuple(line for _, line in run)))
        else:
            ops.append(DeltaOp(kind, count=len(run)))
        i = j
    return DeltaScript(tuple(ops))
