"""Myers O(ND) line diff, implemented from scratch.

The paper derives delta costs from unix ``diff``; this module is the
offline stand-in.  It implements the forward variant of Myers' greedy
LCS/SES algorithm (E. Myers, "An O(ND) Difference Algorithm and Its
Variations", Algorithmica 1986): find the shortest edit script (SES)
between two line sequences by walking furthest-reaching D-paths on the
edit graph diagonals.

The output is a minimal list of ``(op, line)`` pairs with
``op ∈ {"keep", "delete", "insert"}``; :mod:`repro.vcs.delta` folds it
into run-length encoded delta scripts with byte-accurate sizes.
"""

from __future__ import annotations

__all__ = ["myers_diff", "diff_stats"]


def myers_diff(a: list[str], b: list[str]) -> list[tuple[str, str]]:
    """Shortest edit script between line lists ``a`` and ``b``.

    Returns ``(op, line)`` pairs such that applying deletes/keeps to
    ``a`` and inserts yields ``b``.  O((N+M)·D) time and memory, where D
    is the edit distance — fast for the similar files version control
    deals with.
    """
    n, m = len(a), len(b)
    if n == 0:
        return [("insert", line) for line in b]
    if m == 0:
        return [("delete", line) for line in a]

    max_d = n + m
    # v[k] = furthest x on diagonal k (offset by max_d); store a trace of
    # v snapshots for backtracking.
    v = {1: 0}
    trace: list[dict[int, int]] = []
    found = False
    for d in range(max_d + 1):
        v_snapshot = dict(v)
        trace.append(v_snapshot)
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
                x = v.get(k + 1, 0)  # move down (insert from b)
            else:
                x = v.get(k - 1, 0) + 1  # move right (delete from a)
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                found = True
                break
        if found:
            break
    assert found, "Myers diff must terminate within N+M steps"

    # backtrack
    ops_rev: list[tuple[str, str]] = []
    x, y = n, m
    for d in range(len(trace) - 1, 0, -1):
        vprev = trace[d]
        k = x - y
        if k == -d or (k != d and vprev.get(k - 1, -1) < vprev.get(k + 1, -1)):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = vprev.get(prev_k, 0)
        prev_y = prev_x - prev_k
        # snake back
        while x > prev_x and y > prev_y:
            x -= 1
            y -= 1
            ops_rev.append(("keep", a[x]))
        if d > 0:
            if x == prev_x:
                y -= 1
                ops_rev.append(("insert", b[y]))
            else:
                x -= 1
                ops_rev.append(("delete", a[x]))
    # initial snake (d=0 prefix)
    while x > 0 and y > 0:
        x -= 1
        y -= 1
        ops_rev.append(("keep", a[x]))
    assert x == 0 and y == 0
    ops_rev.reverse()
    return ops_rev


def diff_stats(a: list[str], b: list[str]) -> tuple[int, int, int]:
    """(kept, deleted, inserted) line counts of the shortest edit script."""
    kept = deleted = inserted = 0
    for op, _ in myers_diff(a, b):
        if op == "keep":
            kept += 1
        elif op == "delete":
            deleted += 1
        else:
            inserted += 1
    return kept, deleted, inserted
