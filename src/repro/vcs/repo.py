"""A miniature in-memory version-control repository.

This is the content-backed substrate replacing "real GitHub
repositories" in the paper's pipeline: commits hold full file
snapshots, a deterministic :class:`RandomEditor` simulates developer
activity (edits, file additions/deletions, branches, merges), and
:mod:`repro.vcs.build` turns the history into a natural version graph
with byte-accurate diff costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Snapshot", "RepoCommit", "Repository", "RandomEditor", "random_repository"]

Snapshot = dict[str, tuple[str, ...]]  # path -> lines


@dataclass(frozen=True)
class RepoCommit:
    """A committed snapshot with 0, 1 or 2 parents."""

    id: int
    parents: tuple[int, ...]
    snapshot: Snapshot
    message: str = ""

    def total_bytes(self) -> int:
        """Materialization cost of this version, in bytes."""
        return sum(
            len(path.encode()) + sum(len(line.encode()) + 1 for line in lines)
            for path, lines in self.snapshot.items()
        )


class Repository:
    """An append-only commit store with branch heads."""

    def __init__(self) -> None:
        self.commits: list[RepoCommit] = []
        self.heads: dict[str, int] = {}

    # ------------------------------------------------------------------
    def commit(
        self, snapshot: Snapshot, *, branch: str = "main", message: str = ""
    ) -> RepoCommit:
        """Record ``snapshot`` as the new head of ``branch``."""
        parents: tuple[int, ...]
        if branch in self.heads:
            parents = (self.heads[branch],)
        elif self.commits and branch != "main":
            raise ValueError(f"unknown branch {branch!r}; use branch_from first")
        else:
            parents = ()
        c = RepoCommit(len(self.commits), parents, dict(snapshot), message)
        self.commits.append(c)
        self.heads[branch] = c.id
        return c

    def branch_from(self, new_branch: str, at: str = "main") -> None:
        """Create ``new_branch`` pointing at ``at``'s current head."""
        if new_branch in self.heads:
            raise ValueError(f"branch {new_branch!r} already exists")
        self.heads[new_branch] = self.heads[at]

    def merge(
        self, source: str, into: str = "main", *, message: str = ""
    ) -> RepoCommit:
        """Two-parent merge commit: union of files, ``into`` side wins
        conflicting paths (a deliberately simple merge strategy — merge
        resolution quality is irrelevant to the version-graph shape)."""
        a = self.commits[self.heads[into]]
        b = self.commits[self.heads[source]]
        merged: Snapshot = dict(b.snapshot)
        merged.update(a.snapshot)
        c = RepoCommit(
            len(self.commits), (a.id, b.id), merged, message or f"merge {source}"
        )
        self.commits.append(c)
        self.heads[into] = c.id
        del self.heads[source]
        return c

    def snapshot_at(self, commit_id: int) -> Snapshot:
        """Copy of the snapshot recorded by ``commit_id``."""
        return dict(self.commits[commit_id].snapshot)

    @property
    def num_commits(self) -> int:
        """Number of commits."""
        return len(self.commits)


class RandomEditor:
    """Deterministic simulated developer.

    Edits are word-level random but structurally realistic: most commits
    touch a few lines of one or two files; occasional commits add or
    remove whole files (the heavy-tailed deltas real repositories show).
    """

    VOCAB = (
        "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu "
        "nu xi omicron pi rho sigma tau upsilon phi chi psi omega data model "
        "index table row column commit version delta storage retrieval"
    ).split()

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def random_line(self, width: int = 8) -> str:
        """One random line of 3 to ``width`` vocabulary words."""
        k = int(self.rng.integers(3, width + 1))
        return " ".join(self.rng.choice(self.VOCAB) for _ in range(k))

    def random_file(self, n_lines: int) -> tuple[str, ...]:
        """A file of ``n_lines`` random lines."""
        return tuple(self.random_line() for _ in range(n_lines))

    def initial_snapshot(self, n_files: int = 3, lines_per_file: int = 30) -> Snapshot:
        """A starting snapshot of a few random files."""
        return {
            f"file_{i}.txt": self.random_file(
                int(self.rng.integers(lines_per_file // 2, lines_per_file * 2))
            )
            for i in range(n_files)
        }

    def edit(self, snapshot: Snapshot) -> Snapshot:
        """One commit's worth of changes."""
        snap = dict(snapshot)
        roll = self.rng.random()
        if roll < 0.08 or not snap:
            # add a file
            snap[f"file_{int(self.rng.integers(10**6))}.txt"] = self.random_file(
                int(self.rng.integers(5, 40))
            )
            return snap
        if roll < 0.12 and len(snap) > 1:
            # remove a file
            victim = sorted(snap)[int(self.rng.integers(0, len(snap)))]
            del snap[victim]
            return snap
        # edit 1-2 files
        for path in self._pick_files(snap, int(self.rng.integers(1, 3))):
            snap[path] = self._edit_lines(list(snap[path]))
        return snap

    def _pick_files(self, snap: Snapshot, k: int) -> list[str]:
        paths = sorted(snap)
        idx = self.rng.permutation(len(paths))[: min(k, len(paths))]
        return [paths[i] for i in idx]

    def _edit_lines(self, lines: list[str]) -> tuple[str, ...]:
        n_edits = int(self.rng.integers(1, 6))
        for _ in range(n_edits):
            action = self.rng.random()
            if action < 0.4 and lines:
                # modify
                i = int(self.rng.integers(0, len(lines)))
                lines[i] = self.random_line()
            elif action < 0.7:
                # insert
                i = int(self.rng.integers(0, len(lines) + 1))
                lines.insert(i, self.random_line())
            elif lines:
                # delete
                i = int(self.rng.integers(0, len(lines)))
                del lines[i]
        return tuple(lines)


def random_repository(
    n_commits: int,
    *,
    branch_prob: float = 0.12,
    merge_prob: float = 0.06,
    seed: int | None = None,
) -> Repository:
    """Generate a repository with simulated activity.

    Branch/merge frequencies mirror :func:`repro.gen.commits.generate_history`;
    here the commits carry real file content so the derived version
    graph has genuine diff costs.
    """
    rng = np.random.default_rng(seed)
    editor = RandomEditor(rng)
    repo = Repository()
    repo.commit(editor.initial_snapshot(), message="root")
    branch_count = 0
    active: list[str] = ["main"]

    while repo.num_commits < n_commits:
        roll = rng.random()
        if roll < merge_prob and len(active) >= 2:
            src = active[int(rng.integers(1, len(active)))]
            repo.merge(src, into="main")
            active.remove(src)
        elif roll < merge_prob + branch_prob:
            branch_count += 1
            name = f"branch-{branch_count}"
            base = active[int(rng.integers(0, len(active)))]
            repo.branch_from(name, at=base)
            snap = editor.edit(repo.snapshot_at(repo.heads[name]))
            repo.commit(snap, branch=name, message=f"start {name}")
            active.append(name)
        else:
            branch = active[0] if rng.random() < 0.6 else active[int(rng.integers(0, len(active)))]
            snap = editor.edit(repo.snapshot_at(repo.heads[branch]))
            repo.commit(snap, branch=branch, message="edit")
    return repo
