"""Statistical commit-history generator.

Emulates the *shape* of real GitHub histories — a dominant main line,
short-lived side branches, occasional merges — without generating file
content (see :mod:`repro.vcs` for the content-backed pipeline).  The
paper's natural version graphs have exactly this structure: "Between
each pair of parent and child commits, we construct bidirectional
edges" (Section 7.1), and their low treewidth (footnote 7) comes from
the branch/merge pattern.

The process, per new commit:

* with probability ``merge_prob`` (when >= 2 heads exist): merge a
  non-main head into a uniformly chosen other head (two parents) —
  merged branches retire, which keeps the active-branch count small and
  the treewidth low, exactly like real repositories;
* with probability ``branch_prob``: fork a new branch off a random
  recent commit;
* otherwise: extend an active head (the main head with probability
  ``main_bias``, otherwise a uniform head).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Commit", "CommitHistory", "generate_history"]


@dataclass(frozen=True)
class Commit:
    """One commit: ``parents`` lists 0 (root), 1 (normal) or 2 (merge) ids."""

    id: int
    parents: tuple[int, ...]
    branch: int


@dataclass
class CommitHistory:
    """An ordered commit DAG (ids are 0..n-1, parents have smaller ids)."""

    commits: list[Commit] = field(default_factory=list)

    @property
    def num_commits(self) -> int:
        """Number of commits."""
        return len(self.commits)

    @property
    def num_parent_links(self) -> int:
        """Total number of ``(parent, child)`` links."""
        return sum(len(c.parents) for c in self.commits)

    def parent_pairs(self) -> list[tuple[int, int]]:
        """All (parent, child) pairs in id order."""
        return [(p, c.id) for c in self.commits for p in c.parents]

    def merge_commits(self) -> list[Commit]:
        """All two-parent commits."""
        return [c for c in self.commits if len(c.parents) == 2]

    def validate(self) -> None:
        """Assert dense ids and parent-before-child ordering."""
        for i, c in enumerate(self.commits):
            assert c.id == i, "ids must be dense"
            for p in c.parents:
                assert 0 <= p < i, f"parent {p} not before child {i}"


def generate_history(
    n_commits: int,
    *,
    branch_prob: float = 0.12,
    merge_prob: float = 0.06,
    main_bias: float = 0.6,
    fork_window: int = 30,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> CommitHistory:
    """Generate a commit DAG with ``n_commits`` nodes.

    ``fork_window`` bounds how far back a new branch may fork (recent
    commits are the realistic fork points).  Deterministic given
    ``seed`` (or an explicit ``rng``).
    """
    if n_commits < 1:
        raise ValueError("need at least one commit")
    if rng is None:
        rng = np.random.default_rng(seed)
    history = CommitHistory()
    history.commits.append(Commit(0, (), 0))
    heads: list[int] = [0]  # commit id of each active head; index 0 = main
    branch_of_head: list[int] = [0]
    next_branch = 1

    for cid in range(1, n_commits):
        roll = rng.random()
        if roll < merge_prob and len(heads) >= 2:
            # merge a random non-main head into another head
            src_i = int(rng.integers(1, len(heads)))
            dst_i = int(rng.integers(0, len(heads) - 1))
            if dst_i >= src_i:
                dst_i += 1
            commit = Commit(cid, (heads[dst_i], heads[src_i]), branch_of_head[dst_i])
            heads[dst_i] = cid
            del heads[src_i]
            del branch_of_head[src_i]
        elif roll < merge_prob + branch_prob:
            lo = max(0, cid - fork_window)
            base = int(rng.integers(lo, cid))
            commit = Commit(cid, (base,), next_branch)
            heads.append(cid)
            branch_of_head.append(next_branch)
            next_branch += 1
        else:
            if len(heads) == 1 or rng.random() < main_bias:
                head_i = 0
            else:
                head_i = int(rng.integers(1, len(heads)))
            commit = Commit(cid, (heads[head_i],), branch_of_head[head_i])
            heads[head_i] = cid
        history.commits.append(commit)

    history.validate()
    return history
