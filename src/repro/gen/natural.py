"""Natural version-graph construction (Section 7.1).

"Each commit corresponds to a node with its storage cost equal to its
size in bytes.  Between each pair of parent and child commits, we
construct bidirectional edges" — this module applies exactly that to a
:class:`~repro.gen.commits.CommitHistory` under a
:class:`~repro.gen.costs.CostModel`.

Version sizes follow a random walk along the history (each commit
changes its parent's size by the delta magnitude), which reproduces the
paper's regime where materialization costs dwarf natural delta costs
(Table 4: e.g. styleguide avg ``s_v`` 1.4e6 vs avg ``s_e`` 8659).
"""

from __future__ import annotations

import numpy as np

from ..core.graph import VersionGraph
from .commits import CommitHistory, generate_history
from .costs import CostModel

__all__ = ["build_natural_graph", "natural_graph"]


def build_natural_graph(
    history: CommitHistory,
    model: CostModel,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    name: str = "natural",
) -> VersionGraph:
    """Annotate ``history`` with costs, returning a version graph.

    Every (parent, child) link becomes a bidirectional delta pair:
    forward costs from :meth:`CostModel.delta_pair`, reverse costs from
    :meth:`CostModel.backward_pair` (deletions are cheaper).  A commit's
    size drifts from its (first) parent's size by the forward delta
    scaled by a drift sign, floored at 5% of the model mean.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    g = VersionGraph(name=name)
    sizes: dict[int, float] = {}
    pending_edges: list[tuple[int, int, float, float]] = []

    for commit in history.commits:
        if not commit.parents:
            size = model.draw_version_size(rng)
        else:
            base = sizes[commit.parents[0]]
            drift = 0.0
            for _ in commit.parents:
                s, _ = model.delta_pair(rng)
                drift += s * float(rng.choice([-0.5, 1.0]))
            size = max(base + drift, model.version_mean * 0.05)
        size = float(int(round(size))) if model.integral else size
        sizes[commit.id] = size
        g.add_version(commit.id, size)
        for p in commit.parents:
            fs, fr = model.delta_pair(rng)
            pending_edges.append((p, commit.id, fs, fr))

    for p, c, fs, fr in pending_edges:
        bs, br = model.backward_pair(rng, fs)
        g.add_delta(p, c, fs, fr)
        g.add_delta(c, p, bs, br)
    return g


def natural_graph(
    n_commits: int,
    *,
    model: CostModel | None = None,
    seed: int | None = None,
    branch_prob: float = 0.12,
    merge_prob: float = 0.06,
    name: str = "natural",
) -> VersionGraph:
    """One-call helper: history + costs with a single seed."""
    rng = np.random.default_rng(seed)
    history = generate_history(
        n_commits, branch_prob=branch_prob, merge_prob=merge_prob, rng=rng
    )
    return build_natural_graph(history, model or CostModel(), rng=rng, name=name)
