"""Synthetic workload generators emulating the paper's datasets."""

from .commits import Commit, CommitHistory, generate_history
from .compression import random_compression
from .costs import CostModel
from .er import er_construction
from .natural import build_natural_graph, natural_graph
from .presets import PRESETS, TABLE4_PAPER, DatasetPreset, dataset_names, load_dataset
from .random_graphs import (
    random_arborescence,
    random_bidirectional_tree,
    random_digraph,
    series_parallel_graph,
)

__all__ = [
    "Commit",
    "CommitHistory",
    "generate_history",
    "CostModel",
    "build_natural_graph",
    "natural_graph",
    "er_construction",
    "random_compression",
    "DatasetPreset",
    "PRESETS",
    "TABLE4_PAPER",
    "dataset_names",
    "load_dataset",
    "random_bidirectional_tree",
    "random_arborescence",
    "random_digraph",
    "series_parallel_graph",
]
