"""Random-compression transform (Section 7.1).

"We simulate compression of data by scaling storage cost with a random
factor between 0.3 and 1, and increasing the retrieval cost by 20% (to
simulate decompression).  The resulting storage and retrieval costs are
potentially very different."

We apply the storage factor independently per delta *and* per version
(materialized versions are compressed too) and the retrieval surcharge
per delta; this breaks the single-weight-function coupling, which is
the point of the experiment (Figure 11).
"""

from __future__ import annotations

import numpy as np

from ..core.graph import VersionGraph

__all__ = ["random_compression"]


def random_compression(
    graph: VersionGraph,
    *,
    storage_range: tuple[float, float] = (0.3, 1.0),
    retrieval_factor: float = 1.2,
    compress_versions: bool = True,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> VersionGraph:
    """Return a compressed copy of ``graph``.

    Deterministic given ``seed``; node iteration order is insertion
    order, so identical inputs give identical outputs.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    lo, hi = storage_range
    out = VersionGraph(name=f"{graph.name}-compressed")
    for v in graph.versions:
        s = graph.storage_cost(v)
        if compress_versions:
            s = max(1.0, round(s * float(rng.uniform(lo, hi))))
        out.add_version(v, s)
    for u, v, d in graph.deltas():
        s = max(1.0, round(d.storage * float(rng.uniform(lo, hi))))
        r = max(1.0, round(d.retrieval * retrieval_factor))
        out.add_delta(u, v, s, r)
    return out
