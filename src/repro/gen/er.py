"""Erdős–Rényi delta construction (Section 7.1).

"Instead of naturally constructing edges between each pair of parent
and child commits, we construct the edges as in an Erdős–Rényi random
graph: between each pair (u, v) of versions, with probability p both
deltas (u, v) and (v, u) are constructed, and with probability 1-p
neither are constructed."

Pairs that *were* parent/child in the source graph keep their natural
delta costs; all other pairs draw "unnatural" deltas, which the paper
measured to be ~10x costlier on LeetCode (footnote 19).  The resulting
graphs are far from tree-like — ER graphs have treewidth Θ(n) whp —
which is exactly the stress regime of Figure 12.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import VersionGraph
from .costs import CostModel

__all__ = ["er_construction"]


def er_construction(
    natural: VersionGraph,
    p: float,
    model: CostModel,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    name: str | None = None,
) -> VersionGraph:
    """Rebuild ``natural``'s edge set with the ER process at density ``p``.

    Node set and storage costs are preserved.  ``p = 1`` yields the
    complete bidirectional graph (LeetCode (1) in Table 4: exactly
    ``n(n-1)`` directed edges).
    """
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be a probability, got {p}")
    if rng is None:
        rng = np.random.default_rng(seed)
    g = VersionGraph(name=name or f"{natural.name}-er{p}")
    versions = natural.versions
    for v in versions:
        g.add_version(v, natural.storage_cost(v))
    for i, u in enumerate(versions):
        for v in versions[i + 1:]:
            if rng.random() >= p:
                continue
            if natural.has_delta(u, v):
                d_uv = natural.delta(u, v)
                d_vu = natural.delta(v, u)
                g.add_delta(u, v, d_uv.storage, d_uv.retrieval)
                g.add_delta(v, u, d_vu.storage, d_vu.retrieval)
            else:
                s, r = model.unnatural_pair(rng)
                g.add_delta(u, v, s, r)
                s2, r2 = model.unnatural_pair(rng)
                g.add_delta(v, u, s2, r2)
    return g
