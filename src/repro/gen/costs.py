"""Cost models for synthetic version graphs.

The paper's natural graphs measure costs in bytes: a version's storage
cost is its full size, a delta's cost is the size of the ``diff`` between
the two versions, and — because plain ``diff`` output must be both
stored and replayed — storage and retrieval costs of deltas are
proportional (the "single weight function" regime of Section 2.2).

:class:`CostModel` captures that structure with lognormal size
distributions (file/commit sizes are famously heavy-tailed), plus a
``retrieval_ratio`` to decouple the two weights when emulating
compressed graphs or asymmetric deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Distributional parameters for node and edge costs.

    Attributes
    ----------
    version_mean:
        Mean materialization cost (bytes) of a version.
    version_sigma:
        Lognormal sigma of version sizes.
    delta_mean:
        Mean storage cost (bytes) of a *natural* delta.
    delta_sigma:
        Lognormal sigma of delta sizes.
    retrieval_ratio:
        ``r_e = retrieval_ratio * s_e`` before any asymmetry; 1.0 gives
        the single-weight-function regime of natural graphs.
    backward_factor_range:
        Reverse deltas (child -> parent, i.e. undoing an edit) sample a
        uniform factor from this range — deletions are cheaper to store
        than additions (Section 2.2 "Directedness").
    unnatural_factor:
        Cost multiplier for deltas between versions that are not
        parent/child (the ER construction); the paper measured ~10x on
        LeetCode (footnote 19).
    integral:
        Round all costs to integers (the paper assumes integral costs).
    """

    version_mean: float = 1_000_000.0
    version_sigma: float = 0.25
    delta_mean: float = 10_000.0
    delta_sigma: float = 0.6
    retrieval_ratio: float = 1.0
    backward_factor_range: tuple[float, float] = (0.5, 1.0)
    unnatural_factor: float = 10.0
    integral: bool = True

    # ------------------------------------------------------------------
    def _lognormal(self, rng: np.random.Generator, mean: float, sigma: float) -> float:
        """Lognormal sample with the requested *arithmetic* mean."""
        mu = np.log(mean) - 0.5 * sigma * sigma
        return float(rng.lognormal(mu, sigma))

    def _round(self, x: float) -> float:
        x = max(x, 1.0)
        return float(int(round(x))) if self.integral else x

    # ------------------------------------------------------------------
    def draw_version_size(self, rng: np.random.Generator) -> float:
        """Sample a full-version materialization cost."""
        return self._round(self._lognormal(rng, self.version_mean, self.version_sigma))

    def draw_delta_storage(self, rng: np.random.Generator) -> float:
        """Sample a forward-delta storage cost."""
        return self._round(self._lognormal(rng, self.delta_mean, self.delta_sigma))

    def delta_pair(self, rng: np.random.Generator) -> tuple[float, float]:
        """(storage, retrieval) for a natural forward delta."""
        s = self.draw_delta_storage(rng)
        return s, self._round(s * self.retrieval_ratio)

    def backward_pair(
        self, rng: np.random.Generator, forward_storage: float
    ) -> tuple[float, float]:
        """(storage, retrieval) for the reverse of a natural delta."""
        lo, hi = self.backward_factor_range
        f = float(rng.uniform(lo, hi))
        s = self._round(forward_storage * f)
        return s, self._round(s * self.retrieval_ratio)

    def unnatural_pair(self, rng: np.random.Generator) -> tuple[float, float]:
        """(storage, retrieval) for an ER-construction delta."""
        s = self._round(
            self._lognormal(rng, self.delta_mean * self.unnatural_factor, self.delta_sigma)
        )
        return s, self._round(s * self.retrieval_ratio)

    # ------------------------------------------------------------------
    def with_means(self, version_mean: float, delta_mean: float) -> "CostModel":
        """Copy with rescaled magnitudes (used by the dataset presets)."""
        return replace(self, version_mean=version_mean, delta_mean=delta_mean)
