"""Dataset presets emulating Table 4 of the paper.

The paper evaluates on six GitHub repositories.  Offline we regenerate
synthetic graphs whose Table-4 statistics — node count, edge count,
average version size ``s_v``, average delta size ``s_e`` — match the
originals, using the commit-process generator (shape) and the cost
model (magnitudes):

======================  =======  =======  ==========  ==========
dataset                 #nodes   #edges   avg ``s_v``  avg ``s_e``
======================  =======  =======  ==========  ==========
datasharing                  29       74      7672          395
styleguide                  493     1250     1.4e6         8659
996.ICU                    3189     9210     1.5e7       337038
freeCodeCamp              31270    71534     2.5e7        14800
LeetCodeAnimation           246      628     1.7e8        1.2e7
LeetCode (ER p=.05/.2/1)    246     3032/11932/60270  1.7e8  ~1.0e8
======================  =======  =======  ==========  ==========

``scale`` shrinks node counts proportionally (min 20) so that the
pure-Python benchmark suite finishes in minutes; ``scale=1.0``
regenerates full-size graphs.  EXPERIMENTS.md records the scales used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.graph import VersionGraph
from .commits import generate_history
from .compression import random_compression
from .costs import CostModel
from .er import er_construction
from .natural import build_natural_graph

__all__ = ["DatasetPreset", "PRESETS", "load_dataset", "dataset_names", "TABLE4_PAPER"]


@dataclass(frozen=True)
class DatasetPreset:
    """Generator configuration emulating one Table-4 repository."""

    name: str
    n_commits: int
    avg_version_storage: float
    avg_delta_storage: float
    branch_prob: float
    merge_prob: float
    er_p: float | None = None  # ER construction density (LeetCode rows)
    seed: int = 2024

    def edge_target(self) -> int:
        """Directed edge count the paper reports (for reporting only)."""
        return {
            "datasharing": 74,
            "styleguide": 1250,
            "996.ICU": 9210,
            "freeCodeCamp": 71534,
            "LeetCodeAnimation": 628,
            "LeetCode": 628,
        }.get(self.name.split(" ")[0], 0)

    def build(self, scale: float = 1.0, *, compressed: bool = False) -> VersionGraph:
        """Generate the graph at the requested scale.

        ``compressed=True`` applies the Section-7.1 random-compression
        transform (Figure 11/12 inputs).
        """
        n = max(20, int(round(self.n_commits * scale)))
        rng = np.random.default_rng(self.seed)
        history = generate_history(
            n, branch_prob=self.branch_prob, merge_prob=self.merge_prob, rng=rng
        )
        model = CostModel().with_means(self.avg_version_storage, self.avg_delta_storage)
        g = build_natural_graph(history, model, rng=rng, name=self.name)
        if self.er_p is not None:
            g = er_construction(g, self.er_p, model, rng=rng, name=self.name)
        if compressed:
            g = random_compression(g, seed=self.seed + 17)
        return g


# branch/merge probabilities chosen so that the directed edge count
# (2 * parent links) lands near the Table-4 value at scale 1.0:
# links = (n - 1) + merges, so merge_prob ~ (edges/2 - n + 1) / n.
PRESETS: dict[str, DatasetPreset] = {
    p.name: p
    for p in [
        DatasetPreset("datasharing", 29, 7672, 395, branch_prob=0.15, merge_prob=0.28),
        DatasetPreset("styleguide", 493, 1.4e6, 8659, branch_prob=0.15, merge_prob=0.26),
        DatasetPreset("996.ICU", 3189, 1.5e7, 337038, branch_prob=0.2, merge_prob=0.4),
        DatasetPreset("freeCodeCamp", 31270, 2.5e7, 14800, branch_prob=0.1, merge_prob=0.14),
        DatasetPreset("LeetCodeAnimation", 246, 1.7e8, 1.2e7, branch_prob=0.14, merge_prob=0.26),
        DatasetPreset(
            "LeetCode (0.05)", 246, 1.7e8, 1.2e7, branch_prob=0.14, merge_prob=0.26, er_p=0.05
        ),
        DatasetPreset(
            "LeetCode (0.2)", 246, 1.7e8, 1.2e7, branch_prob=0.14, merge_prob=0.26, er_p=0.2
        ),
        DatasetPreset(
            "LeetCode (1)", 246, 1.7e8, 1.2e7, branch_prob=0.14, merge_prob=0.26, er_p=1.0
        ),
    ]
}

#: Paper-reported Table 4 rows, for EXPERIMENTS.md comparisons.
TABLE4_PAPER: dict[str, tuple[int, int, float, float]] = {
    "datasharing": (29, 74, 7672, 395),
    "styleguide": (493, 1250, 1.4e6, 8659),
    "996.ICU": (3189, 9210, 1.5e7, 337038),
    "freeCodeCamp": (31270, 71534, 2.5e7, 14800),
    "LeetCodeAnimation": (246, 628, 1.7e8, 1.2e7),
    "LeetCode (0.05)": (246, 3032, 1.7e8, 1.0e8),
    "LeetCode (0.2)": (246, 11932, 1.7e8, 1.0e8),
    "LeetCode (1)": (246, 60270, 1.7e8, 1.0e8),
}


def dataset_names() -> list[str]:
    """Names of every available dataset preset."""
    return list(PRESETS)


def load_dataset(
    name: str, scale: float = 1.0, *, compressed: bool = False
) -> VersionGraph:
    """Build the named preset (see :data:`PRESETS`) at ``scale``."""
    try:
        preset = PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(PRESETS)}") from None
    return preset.build(scale, compressed=compressed)
