"""Small random instances for tests and ablations.

Unlike :mod:`repro.gen.natural` (which emulates the paper's datasets),
these generators produce *adversarially varied* small graphs — random
trees, arborescences, DAGs, series-parallel graphs — with integral
costs, for brute-force cross-validation and hypothesis-driven property
tests.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import VersionGraph

__all__ = [
    "random_bidirectional_tree",
    "random_arborescence",
    "random_digraph",
    "series_parallel_graph",
]


def _rng(rng: np.random.Generator | None, seed: int | None) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)


def random_bidirectional_tree(
    n: int,
    *,
    max_storage: int = 50,
    max_delta: int = 20,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> VersionGraph:
    """Random recursive tree with independent per-direction integer costs."""
    r = _rng(rng, seed)
    g = VersionGraph(name=f"rtree{n}")
    for i in range(n):
        g.add_version(i, int(r.integers(1, max_storage + 1)))
    for i in range(1, n):
        p = int(r.integers(0, i))
        g.add_delta(p, i, int(r.integers(1, max_delta + 1)), int(r.integers(1, max_delta + 1)))
        g.add_delta(i, p, int(r.integers(1, max_delta + 1)), int(r.integers(1, max_delta + 1)))
    return g


def random_arborescence(
    n: int,
    *,
    max_storage: int = 50,
    max_delta: int = 20,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> VersionGraph:
    """Random recursive tree with downward deltas only."""
    r = _rng(rng, seed)
    g = VersionGraph(name=f"rarb{n}")
    for i in range(n):
        g.add_version(i, int(r.integers(1, max_storage + 1)))
    for i in range(1, n):
        p = int(r.integers(0, i))
        g.add_delta(p, i, int(r.integers(1, max_delta + 1)), int(r.integers(1, max_delta + 1)))
    return g


def random_digraph(
    n: int,
    extra_edge_prob: float = 0.2,
    *,
    max_storage: int = 50,
    max_delta: int = 20,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> VersionGraph:
    """Random tree skeleton plus random extra directed deltas."""
    r = _rng(rng, seed)
    g = random_bidirectional_tree(
        n, max_storage=max_storage, max_delta=max_delta, rng=r
    )
    g.name = f"rdig{n}"
    for u in range(n):
        for v in range(n):
            if u == v or g.has_delta(u, v):
                continue
            if r.random() < extra_edge_prob:
                g.add_delta(
                    u, v, int(r.integers(1, max_delta + 1)), int(r.integers(1, max_delta + 1))
                )
    return g


def series_parallel_graph(
    n_operations: int,
    *,
    max_storage: int = 50,
    max_delta: int = 20,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> VersionGraph:
    """Random series-parallel (treewidth <= 2) bidirectional graph.

    Built by repeated series/parallel expansion of edges, the class the
    paper singles out as "highly resembling the version graphs we
    derive from real-world repositories" (Section 2.2).
    """
    r = _rng(rng, seed)
    g = VersionGraph(name=f"sp{n_operations}")
    g.add_version(0, int(r.integers(1, max_storage + 1)))
    g.add_version(1, int(r.integers(1, max_storage + 1)))
    und_edges: list[tuple[int, int]] = [(0, 1)]
    next_id = 2
    for _ in range(n_operations):
        u, v = und_edges[int(r.integers(0, len(und_edges)))]
        w = next_id
        next_id += 1
        g.add_version(w, int(r.integers(1, max_storage + 1)))
        if r.random() < 0.5:
            # series: subdivide (u, v) into (u, w), (w, v)
            und_edges.remove((u, v))
            und_edges.extend([(u, w), (w, v)])
        else:
            # parallel-ish: attach w to both endpoints
            und_edges.extend([(u, w), (w, v)])
    for u, v in und_edges:
        if not g.has_delta(u, v):
            g.add_delta(u, v, int(r.integers(1, max_delta + 1)), int(r.integers(1, max_delta + 1)))
        if not g.has_delta(v, u):
            g.add_delta(v, u, int(r.integers(1, max_delta + 1)), int(r.integers(1, max_delta + 1)))
    return g
