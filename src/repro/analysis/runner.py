"""File collection, rule execution and the ``python -m repro.analysis`` CLI."""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Iterable, Sequence

from .core import Finding, Module, Rule, all_rules
from .reporters import render_json, render_text

__all__ = ["iter_python_files", "lint_module", "lint_paths", "main"]

#: Directories never descended into when collecting files.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".pytest_cache"}
)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(sub.parts):
                    out.add(sub)
        else:
            out.add(path)
    return sorted(out)


def lint_module(module: Module, rules: Iterable[Rule]) -> list[Finding]:
    """Run ``rules`` over one parsed module."""
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(module))
    return sorted(findings)


def lint_paths(
    paths: Iterable[Path], rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Run rules over every Python file under ``paths``.

    Unparseable files surface as findings of the pseudo-rule
    ``parse-error`` rather than aborting the run.
    """
    chosen = list(rules) if rules is not None else list(all_rules().values())
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            module = Module.load(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            lineno = getattr(exc, "lineno", None)
            findings.append(
                Finding(
                    path=str(path),
                    line=lineno if isinstance(lineno, int) else 1,
                    col=1,
                    rule="parse-error",
                    message=f"could not parse: {exc.__class__.__name__}: {exc}",
                )
            )
            continue
        findings.extend(lint_module(module, chosen))
    return sorted(findings)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: exit 0 when clean, 1 on findings, 2 on bad usage."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST invariant linter for this repository",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    table = all_rules()
    if args.list_rules:
        for name, rule in table.items():
            print(f"{name}: {rule.description}")
        return 0

    if args.select is not None:
        names = [n.strip() for n in args.select.split(",") if n.strip()]
        unknown = [n for n in names if n not in table]
        if unknown:
            parser.error(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"options: {', '.join(table)}"
            )
        rules: list[Rule] = [table[n] for n in names]
    else:
        rules = list(table.values())

    roots = [Path(p) for p in args.paths]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    findings = lint_paths(roots, rules)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0
