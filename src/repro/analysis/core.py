"""Lint-framework core: findings, rules, suppressions, module loading.

The framework is deliberately tiny and stdlib-only: a rule is a class
with a ``check(module)`` generator, a module is a parsed source file
plus its raw lines (rules need both — AST for structure, lines for the
annotation comments), and a finding is a sortable value object the
reporters render.  Rules register themselves into a process-wide
registry via the :func:`register` decorator; the runner instantiates
every registered rule unless a selection is given.

Suppressions
------------
A finding is suppressed by a ``# lint-ignore`` comment:

* ``# lint-ignore: rule-name`` on the offending line suppresses that
  rule there; ``# lint-ignore: a, b`` suppresses several rules; a bare
  ``# lint-ignore`` suppresses every rule on the line.
* On a line that holds *only* a comment, the marker applies to the next
  following code line — use this when the offending line has no room.

Suppressions are per-line and per-rule by design: a violation the team
decides to tolerate stays visible (and greppable) at the exact spot it
occurs, with the justification in the surrounding comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "Finding",
    "Module",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
]

_IGNORE_RE = re.compile(
    r"#\s*lint-ignore(?::\s*(?P<rules>[\w-]+(?:\s*,\s*[\w-]+)*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: rule: message`` (the human reporter row)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload for the machine reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _module_name(path: Path) -> str | None:
    """Dotted module name from the ``__init__.py`` package chain.

    ``src/repro/core/tolerance.py`` resolves to ``repro.core.tolerance``
    regardless of the working directory; files outside any package
    (tests, examples) resolve to their bare stem.
    """
    path = path.resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    d = path.parent
    while (d / "__init__.py").exists():
        parts.insert(0, d.name)
        parent = d.parent
        if parent == d:
            break
        d = parent
    return ".".join(parts) if parts else None


class Module:
    """A parsed source file: AST, raw lines, module name, suppressions."""

    def __init__(
        self,
        path: Path,
        text: str,
        name: str | None = None,
        is_package: bool | None = None,
    ) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self.name = name if name is not None else _module_name(path)
        self.is_package = (
            is_package if is_package is not None else path.name == "__init__.py"
        )
        self._suppressed = _suppressed_lines(self.lines)

    @classmethod
    def load(cls, path: Path) -> "Module":
        """Read and parse ``path`` (raises ``SyntaxError`` on bad source)."""
        return cls(path, path.read_text())

    @classmethod
    def from_source(
        cls,
        text: str,
        *,
        name: str | None = None,
        path: str = "<snippet>",
        is_package: bool = False,
    ) -> "Module":
        """Build from an in-memory snippet (fixture tests)."""
        return cls(Path(path), text, name=name, is_package=is_package)

    def line_text(self, lineno: int) -> str:
        """The 1-indexed source line, or ``""`` past EOF."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def def_region(self, node: ast.AST) -> Iterator[str]:
        """The source lines of a ``def``'s signature (header through the
        line before its first body statement) — where method-level
        annotation comments like ``# holds: <guard>`` live."""
        body = getattr(node, "body", None)
        start = getattr(node, "lineno", 1)
        stop = body[0].lineno if body else start + 1
        for lineno in range(start, stop):
            yield self.line_text(lineno)

    def is_suppressed(self, lineno: int, rule: str) -> bool:
        """True when ``rule`` is lint-ignored on ``lineno``."""
        rules = self._suppressed.get(lineno)
        if rules is None:
            return False
        return not rules or rule in rules


def _suppressed_lines(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed rule names (empty set = all rules).

    Markers on pure-comment lines forward to the next code line, so a
    long offending line can carry its justification just above.
    """
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(lines, 1):
        m = _IGNORE_RE.search(line)
        if m is None:
            continue
        names = m.group("rules")
        rules = frozenset(
            n.strip() for n in names.split(",")
        ) if names else frozenset()
        target = lineno
        if line.lstrip().startswith("#"):
            # pure-comment line: apply to the next code line
            for nxt in range(lineno + 1, len(lines) + 1):
                stripped = lines[nxt - 1].strip()
                if stripped and not stripped.startswith("#"):
                    target = nxt
                    break
        out[target] = out.get(target, frozenset()) | rules if names else frozenset()
    return out


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` / ``description`` and implement
    :meth:`check` as a generator of findings; :func:`register` puts the
    class into the process-wide registry the runner instantiates from.
    """

    #: Registry / suppression / ``--select`` identifier.
    name: str = ""

    #: One-line summary shown by ``--list-rules``.
    description: str = ""

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the process-wide registry."""
    if not rule_cls.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if rule_cls.name in _REGISTRY and _REGISTRY[rule_cls.name] is not rule_cls:
        raise ValueError(f"duplicate rule name {rule_cls.name!r}")
    _REGISTRY[rule_cls.name] = rule_cls
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """Fresh instances of every registered rule, by name."""
    from . import rules  # noqa: F401 - importing registers the built-ins

    return {name: cls() for name, cls in sorted(_REGISTRY.items())}


def get_rule(name: str) -> Rule:
    """One rule instance by name (raises ``KeyError`` with options)."""
    table = all_rules()
    try:
        return table[name]
    except KeyError:
        raise KeyError(
            f"unknown rule {name!r}; options: {sorted(table)}"
        ) from None
