"""repro.analysis — AST invariant linter for this repository.

A tiny stdlib-only lint framework plus five repo-specific rules
(tolerance-discipline, spec-routing, registry-discipline, layering,
lock-discipline) that turn the architectural decisions of earlier PRs
into CI-enforced invariants.  Run it with ``python -m repro.analysis``
or ``repro lint``; see ``docs/static_analysis.md`` for the rule
catalogue, the ``# lint-ignore`` suppression syntax and the
``# guarded-by`` / ``# holds`` lock annotations.
"""

from __future__ import annotations

from .core import Finding, Module, Rule, all_rules, get_rule, register
from .reporters import render_json, render_text
from .runner import iter_python_files, lint_module, lint_paths, main

__all__ = [
    "Finding",
    "Module",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "render_json",
    "render_text",
    "iter_python_files",
    "lint_module",
    "lint_paths",
    "main",
]
