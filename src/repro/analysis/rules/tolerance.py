"""tolerance-discipline: float-tolerance arithmetic stays in one module.

The repo's feasibility and self-check tolerances are unified in
:mod:`repro.core.tolerance` (``FEAS_REL``/``FEAS_ABS`` for budget
feasibility, ``RECOMP_REL``/``RECOMP_ABS`` for recomputation drift).
Inline expressions like ``value <= budget * (1 + 1e-12) + 1e-9`` or
``math.isclose(a, b, rel_tol=1e-9)`` silently fork the tolerance
policy, so this rule flags them anywhere outside the tolerance module:

* ``math.isclose`` calls passing a literal ``rel_tol``/``abs_tol``;
* comparisons whose operands contain one of the canonical tolerance
  literals (``1e-12``, ``1e-9``, ``1e-6``);
* arithmetic combining two or more tolerance literals (the classic
  ``x * (1 + rel) + abs`` shape), even outside a comparison.

Deliberately *not* flagged: default parameter values (``tol: float =
1e-9`` defines a knob, it doesn't hard-code policy), clamp floors like
``max(y, 1e-12)``, and single-literal scaling outside comparisons.
Genuine non-budget epsilons (DP dominance pruning, strict-improvement
checks) carry ``# lint-ignore: tolerance-discipline`` with a one-line
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule, register

__all__ = ["ToleranceDiscipline", "TOLERANCE_LITERALS", "ALLOWED_MODULE"]

#: The canonical tolerance magnitudes owned by ``repro.core.tolerance``.
TOLERANCE_LITERALS: tuple[float, ...] = (1e-12, 1e-9, 1e-6)

#: The one module allowed to spell these literals in tolerance logic.
ALLOWED_MODULE = "repro.core.tolerance"


def _is_tolerance_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value in TOLERANCE_LITERALS
    )


def _count_literals(node: ast.AST) -> int:
    return sum(1 for n in ast.walk(node) if _is_tolerance_literal(n))


def _isclose_with_literal_tol(node: ast.Call) -> bool:
    func = node.func
    called_isclose = (isinstance(func, ast.Attribute) and func.attr == "isclose") or (
        isinstance(func, ast.Name) and func.id == "isclose"
    )
    if not called_isclose:
        return False
    return any(
        kw.arg in ("rel_tol", "abs_tol")
        and isinstance(kw.value, ast.Constant)
        and isinstance(kw.value.value, (int, float))
        for kw in node.keywords
    )


@register
class ToleranceDiscipline(Rule):
    """Flag inline float-tolerance arithmetic outside ``core/tolerance``."""

    name = "tolerance-discipline"
    description = (
        "tolerance comparisons/isclose calls belong in repro.core.tolerance"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield one finding per offending source line."""
        if module.name == ALLOWED_MODULE:
            return
        flagged: set[int] = set()
        for node in ast.walk(module.tree):
            message: str | None = None
            if isinstance(node, ast.Call) and _isclose_with_literal_tol(node):
                message = (
                    "isclose with a literal tolerance; use the helpers in "
                    "repro.core.tolerance (close_enough, within_budget, ...)"
                )
            elif isinstance(node, ast.Compare) and any(
                _count_literals(side) for side in (node.left, *node.comparators)
            ):
                message = (
                    "comparison against an inline tolerance literal; use "
                    "repro.core.tolerance (within_budget, close_enough, ...)"
                )
            elif isinstance(node, ast.BinOp) and _count_literals(node) >= 2:
                message = (
                    "arithmetic combining tolerance literals; centralize the "
                    "expression in repro.core.tolerance"
                )
            if message is None:
                continue
            lineno = node.lineno
            if lineno in flagged or module.is_suppressed(lineno, self.name):
                continue
            flagged.add(lineno)
            yield self.finding(module, node, message)
