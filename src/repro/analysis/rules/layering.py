"""layering: the package import DAG only points downward.

The repo is layered so the mathematical core stays runnable (and
testable) without the performance and orchestration machinery above it:

====================================  ====
layer                                 rank
====================================  ====
``repro.core``                           0
``repro.gen`` / ``repro.vcs`` /         10
``repro.treewidth``
``repro.store``                         15
``repro.algorithms``                    20
``repro.fastgraph``                     30
``repro.algorithms.registry``           35
``repro.parallel``                      40
``repro.engine``                        45
``repro.analysis`` / ``repro.bench``    50
``repro.cli``                           60
``repro`` (root facade)                100
====================================  ====

A module may import from layers with a strictly smaller rank, or from
anywhere inside its own subpackage (intra-package imports are the
package's own business).  ``repro.algorithms.registry`` is the one
sanctioned exception to ``algorithms < fastgraph``: it is the wiring
hub that binds accelerated implementations into the solver tables, so
it sits *above* fastgraph while the rest of ``repro.algorithms`` stays
below.  Modules under ``repro`` that match no layer are flagged too —
new subpackages must be added to the table deliberately.

Imports inside ``if TYPE_CHECKING:`` blocks are exempt: they never
execute, so they create no runtime dependency — annotations may name
types from any layer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule, register

__all__ = ["Layering", "LAYERS", "rank_of"]

#: Longest-dotted-prefix-match table of layer ranks.
LAYERS: dict[str, int] = {
    "repro.core": 0,
    "repro.gen": 10,
    "repro.vcs": 10,
    "repro.treewidth": 10,
    "repro.store": 15,
    "repro.algorithms": 20,
    "repro.fastgraph": 30,
    "repro.algorithms.registry": 35,
    "repro.parallel": 40,
    "repro.engine": 45,
    "repro.analysis": 50,
    "repro.bench": 50,
    "repro.cli": 60,
    "repro": 100,
}


def rank_of(module_name: str) -> int | None:
    """Layer rank by longest dotted-prefix match, or None if unmapped."""
    parts = module_name.split(".")
    for i in range(len(parts), 0, -1):
        prefix = ".".join(parts[:i])
        if prefix in LAYERS:
            return LAYERS[prefix]
    return None


def _family(module_name: str) -> str:
    """The subpackage identity (first two components) intra-package
    imports are judged by — ``repro.algorithms.lmg`` ->
    ``repro.algorithms``."""
    return ".".join(module_name.split(".")[:2])


def _type_checking_lines(tree: ast.Module) -> set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` bodies (exempt imports)."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        named = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if not named:
            continue
        end = node.end_lineno if node.end_lineno is not None else node.lineno
        lines.update(range(node.lineno, end + 1))
    return lines


def _resolve_relative(module: Module, node: ast.ImportFrom) -> str | None:
    """Absolute target of a relative ``from ... import``."""
    if module.name is None:
        return None
    base = module.name.split(".")
    # level 1 = current package, 2 = parent, ...; a plain module's
    # package is base[:-1], a package __init__'s package is base itself
    up = len(base) - node.level + (1 if module.is_package else 0)
    if up < 0:
        return None
    prefix = base[:up]
    if node.module:
        prefix = prefix + node.module.split(".")
    return ".".join(prefix) if prefix else None


@register
class Layering(Rule):
    """Flag imports that point up the layer DAG."""

    name = "layering"
    description = "imports must follow core -> algorithms -> fastgraph -> engine -> cli"

    @staticmethod
    def _worst_candidate(
        name: str,
        own_rank: int,
        own_family: str,
        candidates: tuple[str, ...],
    ) -> str:
        """The candidate target to report, or ``""`` when any reading of
        the import is layering-clean."""
        worst = ""
        for target in candidates:
            if not (target == "repro" or target.startswith("repro.")):
                return ""
            if _family(target) == own_family:
                return ""
            rank = rank_of(target)
            if rank is not None and rank < own_rank:
                return ""
            if not worst:
                worst = target
        return worst

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield one finding per upward (or unmapped) ``repro`` import."""
        name = module.name
        if name is None or not (name == "repro" or name.startswith("repro.")):
            return
        own_rank = rank_of(name)
        if own_rank is None:
            yield Finding(
                path=str(module.path),
                line=1,
                col=1,
                rule=self.name,
                message=(
                    f"module {name} matches no layer; add its subpackage "
                    "to repro.analysis.rules.layering.LAYERS"
                ),
            )
            return
        own_family = _family(name)
        exempt = _type_checking_lines(module.tree)
        for node in ast.walk(module.tree):
            if getattr(node, "lineno", 0) in exempt:
                continue
            targets: list[str] = []
            if isinstance(node, ast.Import):
                targets = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                resolved: str | None
                if node.level:
                    resolved = _resolve_relative(module, node)
                else:
                    resolved = node.module
                if resolved is not None:
                    # ``from pkg import x``: x may be a submodule
                    # (the effective target is pkg.x) or an attribute
                    # (the target is pkg); only flag when *every*
                    # reading is an upward import
                    targets = [
                        self._worst_candidate(
                            name, own_rank, own_family,
                            (f"{resolved}.{a.name}", resolved),
                        )
                        for a in node.names
                    ]
                    targets = [t for t in targets if t]
            for target in targets:
                if not (target == "repro" or target.startswith("repro.")):
                    continue
                if _family(target) == own_family:
                    continue
                target_rank = rank_of(target)
                if module.is_suppressed(node.lineno, self.name):
                    continue
                if target_rank is None:
                    yield self.finding(
                        module,
                        node,
                        f"import of unmapped module {target}; add its "
                        "subpackage to LAYERS",
                    )
                elif target_rank >= own_rank:
                    yield self.finding(
                        module,
                        node,
                        f"upward import: {name} (rank {own_rank}) must not "
                        f"import {target} (rank {target_rank})",
                    )
