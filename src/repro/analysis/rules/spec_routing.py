"""spec-routing: no ``problem == "msr"`` string branches in the stack.

PR 5 unified MSR/BMR dispatch behind :class:`repro.core.problemspec.ProblemSpec`;
problem-specific behaviour belongs in the spec object (budget axis,
lower-bound tracker, sweep policy), not in string comparisons scattered
through solver and engine code.  This rule flags equality / membership
tests against the problem-kind literals ``"msr"`` / ``"bmr"`` anywhere
outside ``repro.core.problemspec`` — the one module that owns the
mapping from kind strings to spec objects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule, register

__all__ = ["SpecRouting", "PROBLEM_LITERALS", "ALLOWED_MODULE"]

#: The problem-kind strings only ``problemspec`` may branch on.
PROBLEM_LITERALS = frozenset({"msr", "bmr"})

#: The module that owns kind-string dispatch.
ALLOWED_MODULE = "repro.core.problemspec"


def _is_problem_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in PROBLEM_LITERALS
    )


def _is_literal_container(node: ast.AST) -> bool:
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return False
    return bool(node.elts) and all(_is_problem_literal(e) for e in node.elts)


@register
class SpecRouting(Rule):
    """Flag ``== "msr"`` / ``in ("msr", "bmr")`` dispatch outside problemspec."""

    name = "spec-routing"
    description = 'problem-kind branching ("msr"/"bmr") belongs in ProblemSpec'

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield one finding per offending comparison."""
        if module.name == ALLOWED_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            hit = False
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    if _is_problem_literal(right) or _is_problem_literal(node.left):
                        hit = True
                elif isinstance(op, (ast.In, ast.NotIn)):
                    if _is_literal_container(right):
                        hit = True
            if not hit or module.is_suppressed(node.lineno, self.name):
                continue
            yield self.finding(
                module,
                node,
                "problem-kind string branch; route through "
                "repro.core.problemspec.get_spec() instead",
            )
