"""Built-in lint rules for this repository.

Importing this package registers every rule with
:mod:`repro.analysis.core`'s registry; each rule lives in its own
module and documents the invariant it enforces.  See
``docs/static_analysis.md`` for the catalogue and the how-to for
adding a rule.
"""

from __future__ import annotations

from . import layering, locks, registry_discipline, spec_routing, tolerance

__all__ = [
    "layering",
    "locks",
    "registry_discipline",
    "spec_routing",
    "tolerance",
]
