"""registry-discipline: go through the registry getters, not its tables.

:mod:`repro.algorithms.registry` exposes ``get_solver`` / ``get_sweep``
/ ``get_engine_solver`` / ``get_backend`` accessors that validate keys
and produce helpful errors.  Subscripting the underlying ``SOLVERS`` /
``SWEEPS`` / ``ENGINE_KERNELS`` / ``BACKENDS`` tables directly skips
that validation (iterating the tables for discovery is fine, and is
what the CI registry smoke does).  The pre-refactor twin getters and
twin tables (``get_msr_solver``, ``MSR_SOLVERS``, ...) survive only as
``DeprecationWarning`` shims for external callers — internal code must
not use them, or the shims can never be deleted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Module, Rule, register

__all__ = ["RegistryDiscipline", "TABLES", "DEPRECATED", "ALLOWED_MODULE"]

#: Registry tables that must not be subscripted outside the registry.
TABLES = frozenset({"SOLVERS", "SWEEPS", "ENGINE_KERNELS", "BACKENDS"})

#: Deprecated twin-getter / twin-table shims kept for external callers.
DEPRECATED = frozenset(
    {
        "get_msr_solver",
        "get_bmr_solver",
        "get_msr_sweep",
        "get_bmr_sweep",
        "msr_sweep_start_edges",
        "MSR_SOLVERS",
        "BMR_SOLVERS",
        "MSR_SWEEPS",
        "BMR_SWEEPS",
        "ENGINE_SOLVERS",
        "BMR_ENGINE_SOLVERS",
    }
)

#: The registry module itself, exempt from both checks.
ALLOWED_MODULE = "repro.algorithms.registry"


def _subscripted_table(node: ast.Subscript) -> str | None:
    value = node.value
    if isinstance(value, ast.Name) and value.id in TABLES:
        return value.id
    if isinstance(value, ast.Attribute) and value.attr in TABLES:
        return value.attr
    return None


@register
class RegistryDiscipline(Rule):
    """Flag raw table subscripts and deprecated-shim use outside registry."""

    name = "registry-discipline"
    description = (
        "use registry getters, not raw table subscripts or deprecated shims"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield one finding per offending subscript / shim reference."""
        if module.name == ALLOWED_MODULE:
            return
        for node in ast.walk(module.tree):
            message: str | None = None
            if isinstance(node, ast.Subscript):
                table = _subscripted_table(node)
                if table is not None:
                    message = (
                        f"direct subscript of registry table {table}; use "
                        "the registry getters (get_solver, get_sweep, ...)"
                    )
            elif isinstance(node, ast.Name) and node.id in DEPRECATED:
                message = (
                    f"deprecated registry shim {node.id}; use the unified "
                    "(problem, name) getters instead"
                )
            elif isinstance(node, ast.Attribute) and node.attr in DEPRECATED:
                message = (
                    f"deprecated registry shim {node.attr}; use the unified "
                    "(problem, name) getters instead"
                )
            elif isinstance(node, ast.ImportFrom):
                bad = sorted(
                    a.name for a in node.names if a.name in DEPRECATED
                )
                if bad:
                    message = (
                        f"import of deprecated registry shim(s) "
                        f"{', '.join(bad)}; use the unified getters instead"
                    )
            if message is None or module.is_suppressed(node.lineno, self.name):
                continue
            yield self.finding(module, node, message)
