"""lock-discipline: guarded fields are only touched with the guard held.

Shared mutable state is annotated at its declaration site::

    self._outcome = None  # guarded-by: _lock
    self._log = []        # guarded-by: ingest-thread

and every other attribute access to a guarded field must be covered by
its guard.  Two coverage forms exist, matching the two guard kinds in
this repo:

* a real lock — the access is lexically inside ``with self._lock:``
  (any ``with`` whose context expression ends in the guard token);
* an owner-thread token (e.g. ``ingest-thread``) — the enclosing
  ``def`` declares it holds the guard with a ``# holds: <token>``
  comment in its signature region, meaning the method only ever runs
  on that owning thread.

``# holds:`` also works for real locks (a helper called with the lock
already held).  Nested ``def``s do **not** inherit coverage from the
enclosing function or ``with`` block: a closure may execute on another
thread long after the lock is released, so each function body must
establish its own coverage.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import Finding, Module, Rule, register

__all__ = ["LockDiscipline", "DECL_RE", "HOLDS_RE"]

#: Declaration marker on a ``self.<field> = ...`` line.
DECL_RE = re.compile(r"#\s*guarded-by:\s*(?P<guard>[\w.-]+)")

#: Method-level marker: this def runs with the guard(s) held.
HOLDS_RE = re.compile(r"#\s*holds:\s*(?P<guards>[\w.-]+(?:\s*,\s*[\w.-]+)*)")

_FuncNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _declared_guards(
    cls_node: ast.ClassDef, module: Module
) -> tuple[dict[str, str], set[int]]:
    """Map guarded field name -> guard token, plus declaration lines."""
    guards: dict[str, str] = {}
    decl_lines: set[int] = set()
    for node in ast.walk(cls_node):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        fields = [
            t.attr
            for t in targets
            if isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
        ]
        if not fields:
            continue
        end = node.end_lineno if node.end_lineno is not None else node.lineno
        for lineno in range(node.lineno, end + 1):
            m = DECL_RE.search(module.line_text(lineno))
            if m is None:
                continue
            for field in fields:
                guards[field] = m.group("guard")
            decl_lines.update(range(node.lineno, end + 1))
            break
    return guards, decl_lines


def _holds_tokens(module: Module, func: ast.AST) -> frozenset[str]:
    """Guard tokens a ``def``'s signature region declares it holds."""
    held: set[str] = set()
    for line in module.def_region(func):
        m = HOLDS_RE.search(line)
        if m is not None:
            held.update(t.strip() for t in m.group("guards").split(","))
    return frozenset(held)


def _with_exprs(node: ast.With | ast.AsyncWith) -> frozenset[str]:
    """Unparsed context expressions of a ``with`` statement."""
    return frozenset(ast.unparse(item.context_expr) for item in node.items)


def _covers(held: frozenset[str], token: str) -> bool:
    """True when any held expression / token satisfies ``token``."""
    return any(h == token or h.endswith("." + token) for h in held)


@register
class LockDiscipline(Rule):
    """Flag guarded-field access outside its lock / owner-thread method."""

    name = "lock-discipline"
    description = "# guarded-by fields need `with <lock>:` or a `# holds:` method"

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield one finding per uncovered guarded-field access."""
        for cls_node in ast.walk(module.tree):
            if not isinstance(cls_node, ast.ClassDef):
                continue
            guards, decl_lines = _declared_guards(cls_node, module)
            if not guards:
                continue
            for stmt in cls_node.body:
                yield from self._scan(
                    module, stmt, guards, decl_lines, frozenset()
                )

    def _scan(
        self,
        module: Module,
        node: ast.AST,
        guards: dict[str, str],
        decl_lines: set[int],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(node, _FuncNode):
            # a nested def runs on its own schedule: coverage resets to
            # whatever the def itself declares
            held = _holds_tokens(module, node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            held = held | _with_exprs(node)
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guards
        ):
            token = guards[node.attr]
            if (
                not _covers(held, token)
                and node.lineno not in decl_lines
                and not module.is_suppressed(node.lineno, self.name)
            ):
                yield self.finding(
                    module,
                    node,
                    f"access to self.{node.attr} (guarded-by: {token}) "
                    f"outside `with ...{token}:` or a `# holds: {token}` "
                    "method",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan(module, child, guards, decl_lines, held)
