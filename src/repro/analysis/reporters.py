"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from .core import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: list[Finding]) -> str:
    """One ``path:line:col: rule: message`` row per finding + a summary."""
    if not findings:
        return "no findings"
    rows = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    rows.append(f"{len(findings)} {noun}")
    return "\n".join(rows)


def render_json(findings: list[Finding]) -> str:
    """A JSON document: ``{"count": N, "findings": [...]}``."""
    payload = {
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
