"""Treewidth substrate: elimination orderings, (nice) tree decompositions,
and the Section-5.3 bounded-treewidth DP."""

from .decomposition import TreeDecomposition, decompose, from_elimination_order
from .elimination import (
    exact_treewidth,
    min_degree_order,
    min_fill_order,
    treewidth_upper_bound,
    undirected_adjacency,
    width_of_order,
)
from .nice import NiceDecomposition, NiceNode, make_nice

__all__ = [
    "undirected_adjacency",
    "min_degree_order",
    "min_fill_order",
    "width_of_order",
    "treewidth_upper_bound",
    "exact_treewidth",
    "TreeDecomposition",
    "from_elimination_order",
    "decompose",
    "NiceDecomposition",
    "NiceNode",
    "make_nice",
]
