"""Elimination orderings: min-degree / min-fill heuristics + exact B&B.

Treewidth enters the paper twice: the FPTAS of Section 5.3 runs on
bounded-treewidth graphs, and footnote 7 reports the (heuristic)
treewidths of the evaluation repositories (datasharing 2, styleguide 3,
leetcode 6).  This module computes elimination orderings over the
*underlying undirected* version graph:

* :func:`min_degree_order` / :func:`min_fill_order` — the two classic
  upper-bound heuristics;
* :func:`treewidth_upper_bound` — best of both;
* :func:`exact_treewidth` — branch-and-bound over elimination orderings
  with simplicial-vertex shortcuts, exact for small graphs (<= ~20
  nodes); the test-suite validates the heuristics against it.

Graphs are plain ``dict[node, set[node]]`` adjacencies; use
:func:`undirected_adjacency` to derive one from a version graph.
"""

from __future__ import annotations

from ..core.graph import AUX, Node, VersionGraph

__all__ = [
    "undirected_adjacency",
    "min_degree_order",
    "min_fill_order",
    "width_of_order",
    "treewidth_upper_bound",
    "exact_treewidth",
]

Adjacency = dict[Node, set[Node]]


def undirected_adjacency(graph: VersionGraph) -> Adjacency:
    """Underlying undirected adjacency of a version graph (AUX excluded)."""
    adj: Adjacency = {v: set() for v in graph.versions if v is not AUX}
    for u, v, _ in graph.deltas():
        if u is AUX or v is AUX:
            continue
        adj[u].add(v)
        adj[v].add(u)
    return adj


def _copy(adj: Adjacency) -> Adjacency:
    return {v: set(nbrs) for v, nbrs in adj.items()}


def _eliminate(adj: Adjacency, v: Node) -> int:
    """Remove ``v``, connecting its neighborhood into a clique.

    Returns the degree of ``v`` at elimination time (its bag size - 1).
    """
    nbrs = adj.pop(v)
    for x in nbrs:
        adj[x].discard(v)
    nbrs_list = sorted(nbrs, key=str)
    for i, x in enumerate(nbrs_list):
        for y in nbrs_list[i + 1:]:
            adj[x].add(y)
            adj[y].add(x)
    return len(nbrs_list)


def min_degree_order(adj: Adjacency) -> list[Node]:
    """Eliminate the minimum-degree vertex first (ties by name)."""
    work = _copy(adj)
    order: list[Node] = []
    while work:
        v = min(work, key=lambda x: (len(work[x]), str(x)))
        _eliminate(work, v)
        order.append(v)
    return order


def _fill_in(work: Adjacency, v: Node) -> int:
    """Number of missing edges in N(v) — the fill of eliminating v."""
    nbrs = sorted(work[v], key=str)
    fill = 0
    for i, x in enumerate(nbrs):
        for y in nbrs[i + 1:]:
            if y not in work[x]:
                fill += 1
    return fill


def min_fill_order(adj: Adjacency) -> list[Node]:
    """Eliminate the vertex creating the fewest fill edges first."""
    work = _copy(adj)
    order: list[Node] = []
    while work:
        v = min(work, key=lambda x: (_fill_in(work, x), len(work[x]), str(x)))
        _eliminate(work, v)
        order.append(v)
    return order


def width_of_order(adj: Adjacency, order: list[Node]) -> int:
    """Width of the tree decomposition induced by ``order``."""
    work = _copy(adj)
    width = 0
    for v in order:
        width = max(width, _eliminate(work, v))
    return width


def treewidth_upper_bound(adj: Adjacency) -> tuple[int, list[Node]]:
    """Best width over the min-degree and min-fill heuristics."""
    if not adj:
        return 0, []
    candidates = [min_degree_order(adj), min_fill_order(adj)]
    best_order = min(candidates, key=lambda o: width_of_order(adj, o))
    return width_of_order(adj, best_order), best_order


def exact_treewidth(adj: Adjacency, max_nodes: int = 22) -> int:
    """Exact treewidth via branch-and-bound over elimination orderings.

    Uses the simplicial-vertex rule (a vertex whose neighborhood is a
    clique can always be eliminated first without loss) and prunes
    branches that cannot beat the incumbent.  Exponential — guarded by
    ``max_nodes``.
    """
    if len(adj) > max_nodes:
        raise ValueError(f"exact treewidth limited to {max_nodes} nodes")
    if not adj:
        return 0
    ub, _ = treewidth_upper_bound(adj)
    best = ub

    def bb(work: Adjacency, current: int) -> None:
        nonlocal best
        if current >= best:
            return
        if len(work) <= current + 1:
            best = min(best, current)
            return
        # simplicial shortcut: eliminating a simplicial vertex is safe
        for v in sorted(work, key=str):
            if _fill_in(work, v) == 0:
                nxt = _copy(work)
                d = _eliminate(nxt, v)
                bb(nxt, max(current, d))
                return
        for v in sorted(work, key=lambda x: (len(work[x]), str(x))):
            d = len(work[v])
            if max(current, d) >= best:
                continue
            nxt = _copy(work)
            _eliminate(nxt, v)
            bb(nxt, max(current, d))

    bb(_copy(adj), 0)
    return best
