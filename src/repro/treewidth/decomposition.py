"""Tree decompositions (Definition 11) built from elimination orderings.

A tree decomposition of an undirected graph is a tree of "bags"
(vertex subsets) satisfying (i) vertex coverage, (ii) edge coverage and
(iii) the running-intersection property.  The standard construction
from an elimination ordering gives width = max elimination degree:
eliminating ``v`` creates the bag ``{v} ∪ N(v)``, attached to the bag
of the earliest-eliminated vertex of ``N(v)``.

:meth:`TreeDecomposition.validate` checks all three properties — the
hypothesis tests feed it random graphs and orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.graph import Node
from .elimination import Adjacency, _copy, _eliminate, treewidth_upper_bound

__all__ = ["TreeDecomposition", "from_elimination_order", "decompose"]


@dataclass
class TreeDecomposition:
    """Bags indexed by dense ids; ``tree`` lists undirected bag edges."""

    bags: list[frozenset[Node]] = field(default_factory=list)
    tree: list[tuple[int, int]] = field(default_factory=list)

    @property
    def width(self) -> int:
        """Decomposition width: ``max bag size - 1``."""
        return max((len(b) for b in self.bags), default=1) - 1

    @property
    def num_bags(self) -> int:
        """Number of bags."""
        return len(self.bags)

    def neighbors(self, i: int) -> list[int]:
        """Bag ids adjacent to bag ``i`` in the decomposition tree."""
        out = []
        for a, b in self.tree:
            if a == i:
                out.append(b)
            elif b == i:
                out.append(a)
        return out

    # ------------------------------------------------------------------
    def validate(self, adj: Adjacency) -> None:
        """Raise AssertionError when any decomposition property fails."""
        nodes = set(adj)
        covered: set[Node] = set()
        for bag in self.bags:
            covered |= bag
        assert covered == nodes, "vertex coverage violated"

        for u in adj:
            for v in adj[u]:
                if str(u) <= str(v):
                    assert any(
                        u in bag and v in bag for bag in self.bags
                    ), f"edge {u!r}-{v!r} uncovered"

        # tree-ness: |edges| = |bags| - 1 and connected
        if self.num_bags:
            assert len(self.tree) == self.num_bags - 1, "bag tree must be a tree"
            seen = {0}
            frontier = [0]
            while frontier:
                x = frontier.pop()
                for y in self.neighbors(x):
                    if y not in seen:
                        seen.add(y)
                        frontier.append(y)
            assert len(seen) == self.num_bags, "bag tree disconnected"

        # running intersection: bags containing v form a subtree
        for v in nodes:
            holding = [i for i, bag in enumerate(self.bags) if v in bag]
            assert holding, f"{v!r} in no bag"
            hold = set(holding)
            seen = {holding[0]}
            frontier = [holding[0]]
            while frontier:
                x = frontier.pop()
                for y in self.neighbors(x):
                    if y in hold and y not in seen:
                        seen.add(y)
                        frontier.append(y)
            assert seen == hold, f"bags containing {v!r} are disconnected"


def from_elimination_order(adj: Adjacency, order: list[Node]) -> TreeDecomposition:
    """Standard bag construction along an elimination ordering."""
    if not adj:
        return TreeDecomposition()
    position = {v: i for i, v in enumerate(order)}
    work = _copy(adj)
    bags: list[frozenset[Node]] = []
    bag_of: dict[Node, int] = {}
    parents: list[tuple[int, int]] = []
    for v in order:
        nbrs = set(work[v])
        bags.append(frozenset({v} | nbrs))
        bag_of[v] = len(bags) - 1
        _eliminate(work, v)
    for v in order:
        i = bag_of[v]
        later = [u for u in bags[i] if u != v and position[u] > position[v]]
        if later:
            anchor = min(later, key=lambda u: position[u])
            parents.append((i, bag_of[anchor]))
    return TreeDecomposition(bags=bags, tree=parents)


def decompose(adj: Adjacency) -> TreeDecomposition:
    """Decomposition from the best available heuristic ordering."""
    _, order = treewidth_upper_bound(adj)
    return from_elimination_order(adj, order)
