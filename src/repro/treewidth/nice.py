"""Nice tree decompositions (Definition 12).

Normalizes an arbitrary tree decomposition into one whose nodes are

* **leaf** — bag of size 1, no children;
* **introduce** — one child, bag = child's bag + one vertex;
* **forget** — one child, bag = child's bag - one vertex;
* **join** — two children, all three bags equal,

the shape the Section-5.3 DP recurses on.  The transformation is the
textbook one (root the tree, binarize high-degree nodes into join
chains, bridge adjacent bags with forget-then-introduce chains, unwind
leaves down to singletons) and keeps O(k·|bags|) nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..core.graph import Node
from .decomposition import TreeDecomposition

__all__ = ["NiceNode", "NiceDecomposition", "make_nice"]

Kind = Literal["leaf", "introduce", "forget", "join"]


@dataclass
class NiceNode:
    """One node of a nice decomposition (children by index)."""

    kind: Kind
    bag: frozenset[Node]
    children: list[int] = field(default_factory=list)
    special: Node | None = None  # introduced / forgotten vertex


@dataclass
class NiceDecomposition:
    """Node list (root last) over which DPs recurse bottom-up."""

    nodes: list[NiceNode] = field(default_factory=list)

    @property
    def root(self) -> int:
        """Index of the root node (always last)."""
        return len(self.nodes) - 1

    def add(self, node: NiceNode) -> int:
        """Append ``node`` and return its index."""
        self.nodes.append(node)
        return len(self.nodes) - 1

    def postorder(self) -> list[int]:
        """Children-before-parent traversal order over all node ids."""
        order: list[int] = []
        stack = [self.root]
        visited = set()
        while stack:
            x = stack.pop()
            if x in visited:
                order.append(x)
                continue
            visited.add(x)
            stack.append(x)
            stack.extend(self.nodes[x].children)
        return order

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the per-kind nice-decomposition structural invariants."""
        for node in self.nodes:
            if node.kind == "leaf":
                assert not node.children and len(node.bag) == 1
            elif node.kind == "introduce":
                (c,) = node.children
                child = self.nodes[c]
                assert node.special is not None
                assert node.bag == child.bag | {node.special}
                assert node.special not in child.bag
            elif node.kind == "forget":
                (c,) = node.children
                child = self.nodes[c]
                assert node.special is not None
                assert node.bag == child.bag - {node.special}
                assert node.special in child.bag
            else:
                a, b = node.children
                assert self.nodes[a].bag == self.nodes[b].bag == node.bag

    @property
    def width(self) -> int:
        """Decomposition width: ``max bag size - 1``."""
        return max((len(n.bag) for n in self.nodes), default=1) - 1


def _chain(nd: NiceDecomposition, child: int, from_bag: frozenset, to_bag: frozenset) -> int:
    """Forget down to the intersection, then introduce up to ``to_bag``."""
    cur = child
    cur_bag = from_bag
    for v in sorted(from_bag - to_bag, key=str):
        cur_bag = cur_bag - {v}
        cur = nd.add(NiceNode("forget", cur_bag, [cur], special=v))
    for v in sorted(to_bag - from_bag, key=str):
        cur_bag = cur_bag | {v}
        cur = nd.add(NiceNode("introduce", cur_bag, [cur], special=v))
    return cur


def _build_leaf_chain(nd: NiceDecomposition, bag: frozenset) -> int:
    """A leaf bag expanded from a singleton by introduces."""
    vs = sorted(bag, key=str)
    cur = nd.add(NiceNode("leaf", frozenset({vs[0]})))
    cur_bag = frozenset({vs[0]})
    for v in vs[1:]:
        cur_bag = cur_bag | {v}
        cur = nd.add(NiceNode("introduce", cur_bag, [cur], special=v))
    return cur


def make_nice(td: TreeDecomposition, root_bag: int = 0) -> NiceDecomposition:
    """Convert ``td`` into a validated nice decomposition.

    The final root is forgotten down to a single-vertex bag so DPs can
    read their answer off one node.
    """
    nd = NiceDecomposition()
    if not td.bags:
        raise ValueError("empty decomposition")

    children_of: dict[int, list[int]] = {i: [] for i in range(td.num_bags)}
    parent: dict[int, int | None] = {root_bag: None}
    order = [root_bag]
    stack = [root_bag]
    seen = {root_bag}
    while stack:
        x = stack.pop()
        for y in td.neighbors(x):
            if y not in seen:
                seen.add(y)
                parent[y] = x
                children_of[x].append(y)
                order.append(y)
                stack.append(y)

    built: dict[int, int] = {}
    for x in reversed(order):
        bag = td.bags[x]
        kids = children_of[x]
        if not kids:
            built[x] = _build_leaf_chain(nd, bag)
            continue
        # bring each child to this bag via forget/introduce chains
        lifted = [_chain(nd, built[k], td.bags[k], bag) for k in kids]
        cur = lifted[0]
        for other in lifted[1:]:
            cur = nd.add(NiceNode("join", bag, [cur, other]))
        built[x] = cur

    # forget the root down to one vertex
    cur = built[root_bag]
    bag = td.bags[root_bag]
    for v in sorted(bag, key=str)[:-1]:
        bag = bag - {v}
        cur = nd.add(NiceNode("forget", bag, [cur], special=v))
    nd.validate()
    return nd
