"""Core data model: version graphs, storage plans, problem variants."""

from .graph import AUX, AuxRoot, Delta, GraphError, VersionGraph, validate_graph
from .problems import BMR, BSR, MMR, MSR, Objective, PlanScore, Problem, evaluate_plan
from .solution import INFEASIBLE, PlanTree, RetrievalSummary, StoragePlan
from .tolerance import budget_cap, within_budget

__all__ = [
    "AUX",
    "AuxRoot",
    "Delta",
    "GraphError",
    "VersionGraph",
    "validate_graph",
    "StoragePlan",
    "PlanTree",
    "RetrievalSummary",
    "INFEASIBLE",
    "Problem",
    "Objective",
    "PlanScore",
    "MSR",
    "MMR",
    "BSR",
    "BMR",
    "evaluate_plan",
    "budget_cap",
    "within_budget",
]
