"""Core data model: version graphs, storage plans, problem variants."""

from .graph import AUX, AuxRoot, Delta, GraphError, VersionGraph, validate_graph
from .problems import BMR, BSR, MMR, MSR, Objective, PlanScore, Problem, evaluate_plan
from .problemspec import BMR_SPEC, MSR_SPEC, SPECS, ProblemSpec, get_spec
from .solution import INFEASIBLE, PlanTree, RetrievalSummary, StoragePlan
from .tolerance import budget_cap, within_budget

__all__ = [
    "ProblemSpec",
    "MSR_SPEC",
    "BMR_SPEC",
    "SPECS",
    "get_spec",
    "AUX",
    "AuxRoot",
    "Delta",
    "GraphError",
    "VersionGraph",
    "validate_graph",
    "StoragePlan",
    "PlanTree",
    "RetrievalSummary",
    "INFEASIBLE",
    "Problem",
    "Objective",
    "PlanScore",
    "MSR",
    "MMR",
    "BSR",
    "BMR",
    "evaluate_plan",
    "budget_cap",
    "within_budget",
]
