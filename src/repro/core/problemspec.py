"""Problem families as first-class objects: the :class:`ProblemSpec`.

The paper's MSR (storage budget, minimize total retrieval) and BMR
(retrieval budget, minimize total storage) are two faces of one
bicriteria storage/recreation tradeoff.  Before this module existed the
codebase served them through parallel, copy-adjacent tracks — twin
registry tables, twin sweep engines, ``if problem == "bmr"`` branches
in the ingest engine and the CLI — so every new feature had to be built
twice.  A :class:`ProblemSpec` captures everything that actually
differs between the families:

* which aggregate the **budget** caps (``budget_kind``) and which one
  the solver **minimizes** (``objective_kind``), with extraction
  helpers for plan trees and :class:`~repro.core.problems.PlanScore`;
* the **feasibility predicate**, routed through the shared
  :mod:`repro.core.tolerance` helpers so every layer keeps bit-equal
  admission semantics;
* the **attach-feasibility rule** and **staleness metric** the online
  ingest engine applies per arrival;
* the trajectory-replay semantics budget-grid sweeps need (what value
  a recorded move is checked against, whether the greedy loop halts
  once the budget is reached);
* an **online lower bound** on the budget scale, maintained
  incrementally from the mutation-event stream, which is what makes
  ``budget_factor`` work for both families.

Every layer — registry, trajectory sweeps, ingest engine, parallel
sweeps, bench harness, CLI — is parameterized by the spec.  Adding a
new problem family means writing one spec subclass plus its kernels
and registering them; no layer grows a new branch (see
``docs/algorithms.md`` for the how-to).

This module is deliberately the **only** place in ``src/repro`` where
per-problem behavior is defined by problem identity; a repo-level grep
for ``problem == "bmr"`` outside it (and the registry's deprecation
shims) must come back empty.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Protocol

from .graph import Node, VersionGraph
from .tolerance import within_budget

__all__ = [
    "ProblemSpec",
    "LowerBoundTracker",
    "MSR_SPEC",
    "BMR_SPEC",
    "SPECS",
    "get_spec",
]


class LowerBoundTracker(Protocol):
    """Online lower bound on a problem family's natural budget scale.

    Fed from the :class:`~repro.core.graph.GraphMutation` event stream;
    ``value()`` must stay O(log) amortized so the ingest engine can
    evaluate ``budget_factor`` budgets per arrival.
    """

    def add_version(self, v: Node, storage: float) -> None:
        """Account a brand-new version."""

    def add_delta(
        self, v: Node, storage: float, retrieval: float, node_storage: float
    ) -> None:
        """Account a new delta into ``v`` (``node_storage`` = ``s_v``)."""

    def remove_delta(
        self, v: Node, storage: float, retrieval: float, graph: VersionGraph
    ) -> None:
        """Un-account the removed delta into ``v`` with the given old costs.

        ``graph`` is the post-removal graph, consulted only when the
        removed edge was the one backing ``v``'s tracked aggregate (a
        bounded rescan of ``v``'s surviving predecessors).
        """

    def remove_version(self, v: Node) -> None:
        """Un-account retired version ``v`` (its deltas already removed)."""

    def rebuild(self, graph: VersionGraph) -> None:
        """Recompute from scratch (after cost updates)."""

    def value(self) -> float:
        """The current lower bound."""


class _StorageLowerBound:
    """Online lower bound on the minimum-storage arborescence (MSR).

    ``LB = sum_v min_in(v) + min_v (s_v - min_in(v))`` where
    ``min_in(v)`` is the cheapest incoming edge storage of ``v``
    (materialization included): every node pays at least its cheapest
    in-edge, and at least one node must materialize.  The sum is kept
    incrementally; the materialization-gap term lives in an
    authoritative dict plus a lazy-deletion min-heap (gaps only grow as
    cheaper deltas arrive, so the first heap top matching the dict is
    the true minimum).
    """

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._min_in: dict[Node, float] = {}
        self._min_in_sum = 0.0
        self._gap: dict[Node, float] = {}
        self._heap: list[tuple[float, int, Node]] = []
        self._seq = 0

    def _push_gap(self, v: Node, gap: float) -> None:
        self._gap[v] = gap
        heapq.heappush(self._heap, (gap, self._seq, v))
        self._seq += 1

    def add_version(self, v: Node, storage: float) -> None:
        """Account a brand-new version (cheapest in-edge = materialize)."""
        self._min_in[v] = storage
        self._min_in_sum += storage
        self._push_gap(v, 0.0)  # min_in == s_v on arrival

    def add_delta(
        self, v: Node, storage: float, retrieval: float, node_storage: float
    ) -> None:
        """Account a new delta into ``v`` (``node_storage`` = ``s_v``)."""
        cur = self._min_in.get(v)
        if cur is not None and storage < cur:
            self._min_in_sum += storage - cur
            self._min_in[v] = storage
            self._push_gap(v, node_storage - storage)

    def remove_delta(
        self, v: Node, storage: float, retrieval: float, graph: VersionGraph
    ) -> None:
        """Un-account a removed delta into ``v`` (old costs supplied).

        Only a removal of the *current* cheapest in-edge can move the
        bound; then ``v``'s surviving predecessors are rescanned
        (bounded by ``in_degree(v)``, not the graph).
        """
        cur = self._min_in.get(v)
        if cur is None or storage > cur:
            return  # removed edge was not the tracked minimum
        s_v = graph.storage_cost(v)
        new_min = min(
            (d.storage for d in graph.predecessors(v).values()),
            default=math.inf,
        )
        new_min = min(new_min, s_v)
        if new_min != cur:
            self._min_in_sum += new_min - cur
            self._min_in[v] = new_min
            self._push_gap(v, s_v - new_min)

    def remove_version(self, v: Node) -> None:
        """Un-account retired version ``v`` (its deltas already removed)."""
        cur = self._min_in.pop(v, None)
        if cur is not None:
            self._min_in_sum -= cur
        self._gap.pop(v, None)  # heap entries go stale; value() skips them

    def rebuild(self, graph: VersionGraph) -> None:
        """Recompute from scratch (after cost updates)."""
        self._reset()
        for v in graph.versions:
            min_in = min(
                (d.storage for d in graph.predecessors(v).values()),
                default=float("inf"),
            )
            min_in = min(min_in, graph.storage_cost(v))
            self._min_in[v] = min_in
            self._min_in_sum += min_in
            self._push_gap(v, graph.storage_cost(v) - min_in)

    def value(self) -> float:
        """Current ``sum_v min_in(v) + min_v (s_v - min_in(v))``."""
        heap, gaps = self._heap, self._gap
        gap = 0.0
        while heap:
            g, _, v = heap[0]
            if gaps.get(v) == g:
                gap = g
                break
            heapq.heappop(heap)  # stale: this node's gap has grown since
        return self._min_in_sum + gap


class _RetrievalLowerBound:
    """Online lower bound on the useful retrieval-budget scale (BMR).

    ``LB = max_v min{ r(e) : e is a delta into v with s(e) < s_v }``
    (0 for versions whose cheapest storage option is materialization).
    Any plan serving a retrieval budget below ``bound(v)`` cannot reach
    ``v`` through a strictly-cheaper-than-materialization delta — a
    delta parent edge already contributes its own retrieval to ``v`` —
    so ``v`` is forced to pay its full materialization storage.  ``LB``
    is therefore the smallest retrieval budget at which every version
    *could* take its cheapest-storage in-edge; ``budget_factor``
    multiples of it open progressively deeper delta chains.

    Per-version bounds move non-monotonically (0 until the first
    qualifying delta, then a shrinking minimum), so the maximum is kept
    as an authoritative dict plus a lazy-deletion max-heap.
    """

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._bound: dict[Node, float] = {}  # only versions with a qualifying delta
        self._heap: list[tuple[float, int, Node]] = []
        self._seq = 0

    def add_version(self, v: Node, storage: float) -> None:
        """Account a brand-new version (no qualifying deltas yet)."""
        # nothing to track until a strictly-cheaper delta arrives

    def add_delta(
        self, v: Node, storage: float, retrieval: float, node_storage: float
    ) -> None:
        """Account a new delta into ``v`` (``node_storage`` = ``s_v``)."""
        if storage >= node_storage:
            return  # not cheaper than materializing: never forces retrieval
        cur = self._bound.get(v, math.inf)
        if retrieval < cur:
            self._bound[v] = retrieval
            heapq.heappush(self._heap, (-retrieval, self._seq, v))
            self._seq += 1

    def remove_delta(
        self, v: Node, storage: float, retrieval: float, graph: VersionGraph
    ) -> None:
        """Un-account a removed delta into ``v`` (old costs supplied).

        Only a removal matching ``v``'s tracked minimum can move the
        bound; then the surviving qualifying predecessors are rescanned
        (bounded by ``in_degree(v)``).
        """
        if self._bound.get(v) != retrieval:
            return  # removed edge was not (tied with) the tracked minimum
        s_v = graph.storage_cost(v)
        bound = min(
            (
                d.retrieval
                for d in graph.predecessors(v).values()
                if d.storage < s_v
            ),
            default=math.inf,
        )
        if math.isfinite(bound):
            if bound != self._bound[v]:
                self._bound[v] = bound
                heapq.heappush(self._heap, (-bound, self._seq, v))
                self._seq += 1
        else:
            del self._bound[v]  # heap entries go stale; value() skips them

    def remove_version(self, v: Node) -> None:
        """Un-account retired version ``v`` (its deltas already removed)."""
        self._bound.pop(v, None)  # heap entries go stale; value() skips them

    def rebuild(self, graph: VersionGraph) -> None:
        """Recompute from scratch (after cost updates)."""
        self._reset()
        for v in graph.versions:
            s_v = graph.storage_cost(v)
            bound = min(
                (
                    d.retrieval
                    for d in graph.predecessors(v).values()
                    if d.storage < s_v
                ),
                default=math.inf,
            )
            if math.isfinite(bound):
                self._bound[v] = bound
                heapq.heappush(self._heap, (-bound, self._seq, v))
                self._seq += 1

    def value(self) -> float:
        """Current ``max_v bound(v)`` via lazy heap deletion."""
        heap, bounds = self._heap, self._bound
        while heap:
            neg, _, v = heap[0]
            if bounds.get(v) == -neg:
                return -neg
            heapq.heappop(heap)  # stale: this node's bound has shrunk since
        return 0.0


class ProblemSpec:
    """One problem family of the bicriteria storage/retrieval tradeoff.

    Subclasses define the per-family policies; the two shipped
    instances are :data:`MSR_SPEC` and :data:`BMR_SPEC`, addressed by
    name through :func:`get_spec`.  All comparisons route through
    :mod:`repro.core.tolerance`, so every layer parameterized by a spec
    inherits the shared admission semantics.
    """

    #: Problem name — the registry / CLI / engine identifier.
    name: str

    #: Which aggregate the budget caps: ``"storage"`` or ``"retrieval"``.
    budget_kind: str

    #: Which aggregate the solvers minimize.
    objective_kind: str

    #: Human label for objective panels (Markdown tables, plots).
    objective_label: str

    #: Default solver for :class:`repro.engine.IngestEngine`.
    default_engine_solver: str

    #: Default solver list for CLI / harness sweep panels.
    default_panel_solvers: tuple[str, ...]

    #: Default auto-grid span factor for budget grids.
    default_grid_span: float

    #: True when the greedy loop stops scanning once the constrained
    #: accumulator reaches the budget (MSR's storage accumulator);
    #: trajectory replay mirrors the same early stop.
    replay_halts_on_budget: bool

    #: True when trajectory sweeps start from the minimum-storage
    #: arborescence and can reuse one shared Edmonds run across tasks.
    sweep_uses_start_tree: bool

    def tree_objective(self, tree: Any) -> float:
        """The objective value of a plan tree (``ArrayPlanTree``-like)."""
        raise NotImplementedError

    def score_objective(self, score: Any) -> float:
        """The objective component of a :class:`~repro.core.problems.PlanScore`."""
        raise NotImplementedError

    def score_constrained(self, score: Any) -> float:
        """The budget-capped component of a ``PlanScore``."""
        raise NotImplementedError

    def replay_feasible(self, value: float, budget: float) -> bool:
        """Admission check replayed against a recorded per-move value.

        The trajectory sweep records, for every applied greedy move,
        exactly the quantity the live kernel checked against its budget
        (MSR: plan storage after the move; BMR: the moved subtree's
        post-move max retrieval).  Replaying that value through the
        shared tolerance is bit-equal to the fresh run's own check.
        """
        return within_budget(value, budget)

    def sweep_floor(self, tree: Any) -> float:
        """Smallest constrained value reachable from ``tree``'s state.

        Grid budgets that fail ``replay_feasible(sweep_floor(start), b)``
        are infeasible for the whole family (MSR: budget below the
        minimum-storage arborescence; BMR: negative retrieval budget).
        """
        raise NotImplementedError

    def attach_feasible(
        self, tree: Any, budget: float, new_retrieval: float, edge_storage: float
    ) -> bool:
        """Whether greedy-attaching an arrival through an edge is feasible.

        ``new_retrieval`` is the arrival's own resulting retrieval cost
        and ``edge_storage`` the candidate edge's storage.  Arrivals are
        leaves, so no other version's retrieval changes.
        """
        raise NotImplementedError

    def attach_cost(self, edge_storage: float, new_retrieval: float) -> float:
        """Objective cost a greedy attach adds (the staleness increment)."""
        raise NotImplementedError

    def lower_bound_tracker(self) -> LowerBoundTracker:
        """A fresh online lower-bound tracker for ``budget_factor`` mode.

        The returned object maintains a lower bound on the family's
        natural budget scale from the mutation-event stream:
        ``add_version(v, storage)``, ``add_delta(v, storage, retrieval,
        node_storage)``, ``rebuild(graph)``, ``value()``.
        """
        raise NotImplementedError


class _MSRSpec(ProblemSpec):
    """MinSum Retrieval: storage budget, minimize total retrieval."""

    name = "msr"
    budget_kind = "storage"
    objective_kind = "retrieval"
    objective_label = "sum retrieval"
    default_engine_solver = "lmg"
    default_panel_solvers = ("lmg", "lmg-all", "dp-msr")
    default_grid_span = 4.0
    replay_halts_on_budget = True
    sweep_uses_start_tree = True

    def tree_objective(self, tree: Any) -> float:
        """Total retrieval of the plan tree."""
        return tree.total_retrieval

    def score_objective(self, score: Any) -> float:
        """``score.sum_retrieval``."""
        return score.sum_retrieval

    def score_constrained(self, score: Any) -> float:
        """``score.storage`` (what the MSR budget caps)."""
        return score.storage

    def sweep_floor(self, tree: Any) -> float:
        """The start tree's total storage (the minimum-storage start)."""
        return tree.total_storage

    def attach_feasible(
        self, tree: Any, budget: float, new_retrieval: float, edge_storage: float
    ) -> bool:
        """Plan storage after the attach must stay within the budget."""
        return within_budget(tree.total_storage + edge_storage, budget)

    def attach_cost(self, edge_storage: float, new_retrieval: float) -> float:
        """Attaches add the arrival's retrieval to the MSR objective."""
        return new_retrieval

    def lower_bound_tracker(self) -> _StorageLowerBound:
        """Online min-storage lower bound (cheapest in-edges + gap)."""
        return _StorageLowerBound()


class _BMRSpec(ProblemSpec):
    """BoundedMax Retrieval: retrieval budget, minimize total storage."""

    name = "bmr"
    budget_kind = "retrieval"
    objective_kind = "storage"
    objective_label = "storage"
    default_engine_solver = "mp-local"
    default_panel_solvers = ("mp", "mp-local", "bmr-lmg", "dp-bmr")
    default_grid_span = 6.0
    replay_halts_on_budget = False
    sweep_uses_start_tree = False

    def tree_objective(self, tree: Any) -> float:
        """Total storage of the plan tree."""
        return tree.total_storage

    def score_objective(self, score: Any) -> float:
        """``score.storage``."""
        return score.storage

    def score_constrained(self, score: Any) -> float:
        """``score.max_retrieval`` (what the BMR budget caps)."""
        return score.max_retrieval

    def sweep_floor(self, tree: Any) -> float:
        """0.0 — the all-materialized start has max retrieval zero."""
        return 0.0

    def attach_feasible(
        self, tree: Any, budget: float, new_retrieval: float, edge_storage: float
    ) -> bool:
        """The arrival's own retrieval must stay within the budget.

        The arrival is a leaf, so no other version's retrieval moves;
        materialization (retrieval 0) is always feasible for
        non-negative budgets.
        """
        return within_budget(new_retrieval, budget)

    def attach_cost(self, edge_storage: float, new_retrieval: float) -> float:
        """Attaches add the chosen edge's storage to the BMR objective."""
        return edge_storage

    def lower_bound_tracker(self) -> _RetrievalLowerBound:
        """Online retrieval-scale lower bound (see the tracker docs)."""
        return _RetrievalLowerBound()


#: The MSR family singleton.
MSR_SPEC = _MSRSpec()

#: The BMR family singleton.
BMR_SPEC = _BMRSpec()

#: Registered problem families by name.
SPECS: dict[str, ProblemSpec] = {"msr": MSR_SPEC, "bmr": BMR_SPEC}


def get_spec(problem: str | ProblemSpec) -> ProblemSpec:
    """Resolve a problem name (or pass a spec through) to its spec.

    Raises ``ValueError`` with the valid options for unknown names —
    the same message the ingest engine has always pinned.
    """
    if isinstance(problem, ProblemSpec):
        return problem
    try:
        return SPECS[problem]
    except KeyError:
        raise ValueError(
            f"unknown problem {problem!r}; options: {sorted(SPECS)}"
        ) from None
