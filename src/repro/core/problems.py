"""Problem descriptors for the four constrained variants (Table 1).

The two easy problems (minimum spanning storage and shortest-path tree)
are exposed as baseline solvers in :mod:`repro.algorithms`; the four
NP-hard variants are described here so that solvers, benchmarks and the
CLI can share feasibility/objective logic:

==========  =======================  =========================
name        constraint               objective
==========  =======================  =========================
``MSR``     total storage <= S       minimize sum_v R(v)
``MMR``     total storage <= S       minimize max_v R(v)
``BSR``     sum_v R(v) <= R          minimize total storage
``BMR``     max_v R(v) <= R          minimize total storage
==========  =======================  =========================
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .graph import VersionGraph
from .solution import StoragePlan
from .tolerance import within_budget_recomputed

__all__ = ["Objective", "Problem", "MSR", "MMR", "BSR", "BMR", "evaluate_plan", "PlanScore"]


class Objective(enum.Enum):
    """What a problem minimizes."""

    SUM_RETRIEVAL = "sum_retrieval"
    MAX_RETRIEVAL = "max_retrieval"
    STORAGE = "storage"


@dataclass(frozen=True)
class PlanScore:
    """All three cost aggregates of a plan, used for scoring any variant."""

    storage: float
    sum_retrieval: float
    max_retrieval: float

    @property
    def feasible_reconstruction(self) -> bool:
        """True when every version is reconstructible (finite max retrieval)."""
        return math.isfinite(self.max_retrieval)

    def objective(self, objective: Objective) -> float:
        """The aggregate selected by this ``objective`` kind."""
        if objective is Objective.SUM_RETRIEVAL:
            return self.sum_retrieval
        if objective is Objective.MAX_RETRIEVAL:
            return self.max_retrieval
        return self.storage


def evaluate_plan(graph: VersionGraph, plan: StoragePlan) -> PlanScore:
    """Score ``plan`` on ``graph`` (storage + retrieval aggregates)."""
    summary = plan.retrieval(graph)
    return PlanScore(
        storage=plan.storage_cost(graph),
        sum_retrieval=summary.total,
        max_retrieval=summary.maximum,
    )


@dataclass(frozen=True)
class Problem:
    """A constrained variant: minimize ``objective`` subject to
    ``constrained_quantity <= budget``.

    Instances are created through the :func:`MSR`, :func:`MMR`,
    :func:`BSR` and :func:`BMR` constructors.
    """

    name: str
    objective: Objective
    constrained: Objective
    budget: float

    def is_feasible(self, score: PlanScore) -> bool:
        """Constraint + reconstructability check.

        Scores come from :func:`evaluate_plan` re-summation, so the
        comparison uses the shared recomputation-slack tolerance.
        """
        if not score.feasible_reconstruction:
            return False
        return within_budget_recomputed(
            score.objective(self.constrained), self.budget
        )

    def objective_value(self, score: PlanScore) -> float:
        """The score's value of this problem's objective."""
        return score.objective(self.objective)

    def check(self, graph: VersionGraph, plan: StoragePlan) -> PlanScore:
        """Evaluate and assert feasibility; returns the score."""
        score = evaluate_plan(graph, plan)
        if not self.is_feasible(score):
            raise ValueError(
                f"{self.name}: infeasible plan "
                f"({self.constrained.value}={score.objective(self.constrained)!r} "
                f"> budget={self.budget!r})"
            )
        return score

    def __str__(self) -> str:
        return f"{self.name}(budget={self.budget})"


def MSR(storage_budget: float) -> Problem:
    """MinSum Retrieval: ``min sum_v R(v)`` s.t. ``storage <= S``."""
    return Problem("MSR", Objective.SUM_RETRIEVAL, Objective.STORAGE, storage_budget)


def MMR(storage_budget: float) -> Problem:
    """MinMax Retrieval: ``min max_v R(v)`` s.t. ``storage <= S``."""
    return Problem("MMR", Objective.MAX_RETRIEVAL, Objective.STORAGE, storage_budget)


def BSR(retrieval_budget: float) -> Problem:
    """BoundedSum Retrieval: ``min storage`` s.t. ``sum_v R(v) <= R``."""
    return Problem("BSR", Objective.STORAGE, Objective.SUM_RETRIEVAL, retrieval_budget)


def BMR(retrieval_budget: float) -> Problem:
    """BoundedMax Retrieval: ``min storage`` s.t. ``max_v R(v) <= R``."""
    return Problem("BMR", Objective.STORAGE, Objective.MAX_RETRIEVAL, retrieval_budget)
