"""Version graphs: the central data structure of the library.

A *version graph* ``G = (V, E)`` (Bhattacherjee et al., VLDB'15; Guo et al.,
IPPS 2024, Section 2.1) is a directed graph where

* each node ``v`` is a dataset *version* carrying a materialization
  (storage) cost ``s_v`` — the cost of storing the version in full, and
* each directed edge ``e = (u, v)`` is a *delta* carrying a storage cost
  ``s_e`` (cost of keeping the delta on disk) and a retrieval cost ``r_e``
  (cost of applying the delta to ``u`` to obtain ``v``).

All optimization problems in this library (MSR / MMR / BSR / BMR, see
:mod:`repro.core.problems`) operate on the *extended* graph which adds an
auxiliary root :data:`AUX` with an edge ``(AUX, v)`` per version.  Storing
that edge models materializing ``v``: its storage cost is ``s_v`` and its
retrieval cost is ``0`` (Algorithm 1 of the paper, lines 1-6).

Costs are non-negative numbers.  The paper assumes integral costs ("there
is usually a smallest unit of cost in the real world"); we accept floats
but keep everything exactly representable where possible.
"""

from __future__ import annotations

import json
import math
from collections.abc import Callable, Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..fastgraph.compiled import CompiledGraph

__all__ = [
    "AUX",
    "AuxRoot",
    "Delta",
    "GraphMutation",
    "VersionGraph",
    "GraphError",
]


class GraphError(ValueError):
    """Raised for structurally invalid version-graph operations."""


class AuxRoot:
    """Singleton sentinel for the auxiliary root of the extended graph.

    The auxiliary root is *not* a version: it has no storage cost of its
    own, and the edge ``(AUX, v)`` represents the decision to materialize
    ``v``.  A single module-level instance :data:`AUX` is used everywhere
    so that identity comparison (``node is AUX``) works.
    """

    _instance: "AuxRoot | None" = None

    def __new__(cls) -> "AuxRoot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<aux>"

    def __lt__(self, other: Any) -> bool:
        # Sort before every real node so deterministic orderings that sort
        # mixed node lists keep working.
        return True

    def __gt__(self, other: Any) -> bool:
        return False


AUX = AuxRoot()

Node = Hashable


@dataclass(frozen=True)
class Delta:
    """An edge payload: the pair of storage and retrieval costs.

    Attributes
    ----------
    storage:
        Cost ``s_e`` of keeping this delta in the storage plan.
    retrieval:
        Cost ``r_e`` of applying this delta during version reconstruction.
    """

    storage: float
    retrieval: float

    def __post_init__(self) -> None:
        if self.storage < 0 or self.retrieval < 0:
            raise GraphError(
                f"delta costs must be non-negative, got {self.storage!r}/"
                f"{self.retrieval!r}"
            )

    def scaled(self, storage_factor: float = 1.0, retrieval_factor: float = 1.0) -> "Delta":
        """Return a copy with both costs scaled (used by compression models)."""
        return Delta(self.storage * storage_factor, self.retrieval * retrieval_factor)


@dataclass(frozen=True)
class GraphMutation:
    """One structural change to a :class:`VersionGraph`.

    The mutation-event stream is how online consumers stay coherent with
    a graph that keeps growing: the cached
    :class:`~repro.fastgraph.compiled.CompiledGraph` extends itself in
    place on pure *append* events instead of being thrown away, and
    engine-level listeners (see :mod:`repro.engine`) track per-node
    quantities (e.g. cheapest incoming delta) without rescanning.

    Attributes
    ----------
    kind:
        ``"add_version"`` (a brand-new version), ``"update_version"``
        (storage cost of an existing version changed), ``"add_delta"``
        (a brand-new edge), ``"update_delta"`` (an existing edge's costs
        changed, e.g. ``keep_cheapest`` merges), ``"remove_delta"`` or
        ``"remove_version"`` (retirement; only emitted once every
        incident delta has already been removed).
    u:
        Edge source for delta events; ``None`` for version events.
    v:
        The version added/updated/removed, or the edge destination.
    storage / retrieval:
        The costs now in effect (``retrieval`` is 0.0 for version
        events).  Detach events carry the costs that *were* in effect so
        incremental listeners (online lower bounds, compiled tombstones)
        can undo per-node aggregates without rescanning the graph.
    """

    kind: str
    u: Node | None
    v: Node
    storage: float = 0.0
    retrieval: float = 0.0

    #: Event kinds that only ever *append* state (never touch existing
    #: nodes/edges) — the kinds an incremental compile can absorb.
    APPEND_KINDS = frozenset({"add_version", "add_delta"})

    #: Event kinds that *remove* state.  The compiled cache absorbs
    #: these too (tombstone + lazy compaction); only in-place cost
    #: updates still invalidate it wholesale.
    DETACH_KINDS = frozenset({"remove_version", "remove_delta"})


class VersionGraph:
    """A directed version graph with storage/retrieval edge weights.

    The graph is deliberately a plain adjacency-dict structure (no
    networkx dependency on the hot paths): the greedy heuristics touch
    edges millions of times and attribute-dict lookups dominate profile
    traces otherwise — per the optimization guide, the algorithmic hot
    loop works on plain dicts and NumPy arrays.

    Nodes may be any hashable value.  Parallel edges are not supported
    (the cheaper delta should be kept by the caller); self-loops are
    rejected.

    Mutation events
    ---------------
    Every mutation emits a :class:`GraphMutation` to subscribed
    listeners (:meth:`subscribe`).  The compiled-array cache is the
    built-in consumer: pure append events (new versions, new deltas) are
    applied to the cached :class:`~repro.fastgraph.compiled.
    CompiledGraph` *in place*, and detach events (retired versions,
    removed deltas) are absorbed as tombstones compacted lazily at the
    next :meth:`compile`, so online ingest keeps one compiled snapshot
    alive across thousands of arrivals and retirements; in-place cost
    updates still invalidate the cache.
    """

    __slots__ = ("_storage", "_edges", "_succ", "_pred", "_compiled", "_listeners", "name")

    def __init__(self, name: str = "") -> None:
        self._storage: dict[Node, float] = {}
        self._edges: dict[tuple[Node, Node], Delta] = {}
        self._succ: dict[Node, dict[Node, Delta]] = {}
        self._pred: dict[Node, dict[Node, Delta]] = {}
        self._compiled: CompiledGraph | None = None  # cached compiled arrays
        self._listeners: list[Callable[[GraphMutation], None]] = []
        self.name = name

    # ------------------------------------------------------------------
    # mutation events
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[GraphMutation], None]) -> None:
        """Register ``listener(event: GraphMutation)`` for every mutation.

        Listeners are *not* pickled with the graph (worker processes get
        a listener-free copy) and are invoked after the mutation has
        been applied to the adjacency structure and the compiled cache.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[GraphMutation], None]) -> None:
        """Remove a mutation listener registered by :meth:`subscribe`."""
        self._listeners.remove(listener)

    def _mutated(self, event: GraphMutation) -> None:
        compiled = self._compiled
        if compiled is not None and not compiled.apply_mutation(event):
            self._compiled = None
        for fn in tuple(self._listeners):
            fn(event)

    def __getstate__(self) -> dict[str, Any]:
        # bound-method listeners (e.g. an IngestEngine) are unpicklable
        # and meaningless in another process; everything else round-trips
        state: dict[str, Any] = {s: getattr(self, s) for s in self.__slots__}
        state["_listeners"] = []
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        for s in self.__slots__:
            object.__setattr__(self, s, state[s])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_version(self, v: Node, storage: float) -> None:
        """Add version ``v`` with materialization cost ``storage``.

        Re-adding an existing version updates its storage cost.
        """
        if v is AUX:
            raise GraphError("AUX is reserved for the extended graph root")
        if storage < 0:
            raise GraphError(f"storage cost must be non-negative, got {storage!r}")
        new = v not in self._storage
        if new:
            self._succ[v] = {}
            self._pred[v] = {}
        self._storage[v] = storage
        self._mutated(
            GraphMutation("add_version" if new else "update_version", None, v, storage)
        )

    def add_delta(
        self,
        u: Node,
        v: Node,
        storage: float,
        retrieval: float,
        *,
        keep_cheapest: bool = False,
    ) -> None:
        """Add the delta edge ``(u, v)``.

        Parameters
        ----------
        keep_cheapest:
            When True and the edge already exists, keep the elementwise
            minimum of the two cost pairs instead of raising.
        """
        if u == v:
            raise GraphError(f"self-delta {u!r}->{v!r} not allowed")
        for x in (u, v):
            if x not in self._storage:
                raise GraphError(f"unknown version {x!r}; add_version first")
        delta = Delta(storage, retrieval)
        key = (u, v)
        new = key not in self._edges
        if not new:
            if not keep_cheapest:
                raise GraphError(f"duplicate delta {u!r}->{v!r}")
            old = self._edges[key]
            delta = Delta(min(old.storage, storage), min(old.retrieval, retrieval))
        self._edges[key] = delta
        self._succ[u][v] = delta
        self._pred[v][u] = delta
        self._mutated(
            GraphMutation(
                "add_delta" if new else "update_delta",
                u,
                v,
                delta.storage,
                delta.retrieval,
            )
        )

    def add_bidirectional_delta(
        self,
        u: Node,
        v: Node,
        storage: float,
        retrieval: float,
        storage_back: float | None = None,
        retrieval_back: float | None = None,
    ) -> None:
        """Add ``(u, v)`` and ``(v, u)``; the reverse defaults to the same costs."""
        self.add_delta(u, v, storage, retrieval)
        self.add_delta(
            v,
            u,
            storage if storage_back is None else storage_back,
            retrieval if retrieval_back is None else retrieval_back,
        )

    def remove_delta(self, u: Node, v: Node) -> None:
        """Delete the delta ``u -> v``; raises :class:`GraphError` when absent.

        The emitted event carries the removed edge's old costs so
        incremental listeners can undo per-node aggregates.
        """
        try:
            old = self._edges.pop((u, v))
        except KeyError:
            raise GraphError(f"no delta {u!r}->{v!r}") from None
        del self._succ[u][v]
        del self._pred[v][u]
        self._mutated(GraphMutation("remove_delta", u, v, old.storage, old.retrieval))

    def remove_version(self, v: Node) -> None:
        """Retire version ``v``: drop its incident deltas, then the node.

        Incident deltas are removed first through :meth:`remove_delta`
        (each emitting its own event with the old costs), then a final
        ``"remove_version"`` event is emitted carrying the retired
        node's storage cost.  Raises :class:`GraphError` when ``v`` is
        unknown or is :data:`AUX`.
        """
        if v is AUX:
            raise GraphError("cannot remove the auxiliary root")
        if v not in self._storage:
            raise GraphError(f"unknown version {v!r}")
        for u in list(self._pred[v]):
            self.remove_delta(u, v)
        for w in list(self._succ[v]):
            self.remove_delta(v, w)
        old_storage = self._storage.pop(v)
        del self._succ[v]
        del self._pred[v]
        self._mutated(GraphMutation("remove_version", None, v, old_storage))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def versions(self) -> list[Node]:
        """All versions, in insertion order."""
        return list(self._storage)

    @property
    def num_versions(self) -> int:
        """Number of versions currently in the graph."""
        return len(self._storage)

    @property
    def num_deltas(self) -> int:
        """Number of stored deltas (directed edges)."""
        return len(self._edges)

    def __contains__(self, v: Node) -> bool:
        return v in self._storage

    def __len__(self) -> int:
        return len(self._storage)

    def has_delta(self, u: Node, v: Node) -> bool:
        """True when the delta ``u -> v`` exists."""
        return (u, v) in self._edges

    def storage_cost(self, v: Node) -> float:
        """Materialization cost ``s_v``."""
        return self._storage[v]

    def delta(self, u: Node, v: Node) -> Delta:
        """The :class:`Delta` on ``u -> v``; raises :class:`GraphError` when absent."""
        try:
            return self._edges[(u, v)]
        except KeyError:
            raise GraphError(f"no delta {u!r}->{v!r}") from None

    def deltas(self) -> Iterator[tuple[Node, Node, Delta]]:
        """Iterate ``(u, v, delta)`` triples in insertion order."""
        for (u, v), d in self._edges.items():
            yield u, v, d

    def successors(self, u: Node) -> Mapping[Node, Delta]:
        """Outgoing neighbors of ``u`` as a ``{node: delta}`` mapping."""
        return self._succ[u]

    def predecessors(self, v: Node) -> Mapping[Node, Delta]:
        """Incoming neighbors of ``v`` as a ``{node: delta}`` mapping."""
        return self._pred[v]

    def out_degree(self, u: Node) -> int:
        """Number of outgoing deltas of ``u``."""
        return len(self._succ[u])

    def in_degree(self, v: Node) -> int:
        """Number of incoming deltas of ``v``."""
        return len(self._pred[v])

    # ------------------------------------------------------------------
    # aggregate statistics (Table 4 of the paper)
    # ------------------------------------------------------------------
    def total_version_storage(self) -> float:
        """Storage cost of materializing everything (Figure 1(ii))."""
        return sum(self._storage.values())

    def average_version_storage(self) -> float:
        """Mean materialization cost over versions (Table 4 column)."""
        return self.total_version_storage() / max(1, self.num_versions)

    def average_delta_storage(self) -> float:
        """Mean delta storage cost (0.0 when there are no deltas)."""
        if not self._edges:
            return 0.0
        return sum(d.storage for d in self._edges.values()) / len(self._edges)

    def max_retrieval_cost(self) -> float:
        """``r_max`` over edges — the FPTAS discretization scale (§5.1)."""
        if not self._edges:
            return 0.0
        return max(d.retrieval for d in self._edges.values())

    def stats(self) -> dict[str, float]:
        """Summary row matching Table 4 ("#nodes #edges avg sv avg se")."""
        return {
            "nodes": self.num_versions,
            "edges": self.num_deltas,
            "avg_version_storage": self.average_version_storage(),
            "avg_delta_storage": self.average_delta_storage(),
        }

    # ------------------------------------------------------------------
    # the extended graph (auxiliary root)
    # ------------------------------------------------------------------
    def extended(self) -> "VersionGraph":
        """Return the extended graph ``G_aux`` with the auxiliary root.

        Following Algorithm 1 lines 1-6: a node :data:`AUX` is added with
        an edge ``(AUX, v)`` per version, where ``s_(AUX,v) = s_v`` and
        ``r_(AUX,v) = 0``.  The auxiliary root itself carries zero
        storage cost and cannot be materialized.
        """
        ext = VersionGraph(name=self.name)
        ext._storage = dict(self._storage)
        ext._edges = dict(self._edges)
        ext._succ = {u: dict(nbrs) for u, nbrs in self._succ.items()}
        ext._pred = {v: dict(nbrs) for v, nbrs in self._pred.items()}
        ext._storage[AUX] = 0.0
        ext._succ[AUX] = {}
        ext._pred[AUX] = {}
        for v in self._storage:
            d = Delta(self._storage[v], 0.0)
            ext._edges[(AUX, v)] = d
            ext._succ[AUX][v] = d
            ext._pred[v][AUX] = d
        return ext

    @property
    def has_aux(self) -> bool:
        """True when this is an extended graph (AUX present)."""
        return AUX in self._storage

    def compile(self) -> "CompiledGraph":
        """Compile into flat arrays for the fastgraph solver kernels.

        Returns a :class:`repro.fastgraph.CompiledGraph` — node→int
        interning plus CSR adjacency over the *extended* graph (the
        extension happens internally when this graph lacks AUX).  The
        result is cached until the next mutation, so budget sweeps and
        repeated solver calls reuse one compiled snapshot instead of
        re-extending and re-indexing per call.

        Append mutations (new versions / new deltas) do **not** discard
        the cache: the compiled graph absorbs them and this call folds
        any pending appends into the flat arrays
        (:meth:`~repro.fastgraph.compiled.CompiledGraph.refresh`) before
        returning, so online ingest pays an amortized array extension
        instead of a from-scratch recompile per arrival.
        """
        if self._compiled is None:
            # runtime-lazy bridge: core stays importable without the
            # accelerated layer; compile() is the one sanctioned hop up
            # lint-ignore: layering
            from ..fastgraph.compiled import CompiledGraph

            self._compiled = CompiledGraph(self)
        else:
            self._compiled.refresh()
        return self._compiled

    @property
    def compiled_cache(self) -> "CompiledGraph | None":
        """The cached compiled graph *without* refreshing it.

        Mid-stream consumers (the ingest engine's plan repair) read
        pending-state accessors off the live compiled object between
        re-solves; calling :meth:`compile` there would compact slot
        numbering under the live plan tree.  ``None`` when no compile
        has happened or the cache was invalidated.
        """
        return self._compiled

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def copy(self) -> "VersionGraph":
        """Independent copy (listeners and compile cache not carried over)."""
        g = VersionGraph(name=self.name)
        g._storage = dict(self._storage)
        g._edges = dict(self._edges)
        g._succ = {u: dict(nbrs) for u, nbrs in self._succ.items()}
        g._pred = {v: dict(nbrs) for v, nbrs in self._pred.items()}
        return g

    def map_deltas(self, fn: Callable[[Node, Node, Delta], Delta]) -> "VersionGraph":
        """Return a copy with every delta replaced by ``fn(u, v, delta)``."""
        g = VersionGraph(name=self.name)
        for v, s in self._storage.items():
            g.add_version(v, s)
        for (u, v), d in self._edges.items():
            nd = fn(u, v, d)
            g.add_delta(u, v, nd.storage, nd.retrieval)
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "VersionGraph":
        """Induced subgraph on ``nodes`` (same costs, same name)."""
        keep = set(nodes)
        g = VersionGraph(name=self.name)
        for v in self._storage:
            if v in keep:
                g.add_version(v, self._storage[v])
        for (u, v), d in self._edges.items():
            if u in keep and v in keep:
                g.add_delta(u, v, d.storage, d.retrieval)
        return g

    def undirected_edges(self) -> set[tuple[Node, Node]]:
        """Underlying undirected edge set (paper footnote 5), as sorted pairs."""
        seen: set[tuple[Node, Node]] = set()
        for u, v in self._edges:
            key = (u, v) if _node_key(u) <= _node_key(v) else (v, u)
            seen.add(key)
        return seen

    def is_bidirectional_tree(self) -> bool:
        """True iff the underlying undirected graph is a tree and every
        undirected edge is present in both directions (Section 2.2)."""
        n = self.num_versions
        if n == 0:
            return True  # vacuously a tree; checked before the edge count
        und = self.undirected_edges()
        if len(und) != n - 1:
            return False
        for u, v in und:
            if (u, v) not in self._edges or (v, u) not in self._edges:
                return False
        # connectivity check over the undirected structure
        adj: dict[Node, list[Node]] = {v: [] for v in self._storage}
        for u, v in und:
            adj[u].append(v)
            adj[v].append(u)
        start = next(iter(self._storage))
        seen = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return len(seen) == n

    # ------------------------------------------------------------------
    # triangle-inequality diagnostics (Section 2.2)
    # ------------------------------------------------------------------
    def check_triangle_inequality(self, tol: float = 1e-9) -> list[tuple[Node, Node, Node]]:
        """Return violations ``(u, w, v)`` where ``r_uv > r_uw + r_wv``.

        Only triples with all three edges present are considered.  An
        empty list means the retrieval costs satisfy the (edge-wise)
        triangle inequality.  O(sum of degree products); intended for
        tests and small graphs.
        """
        bad: list[tuple[Node, Node, Node]] = []
        for (u, v), d in self._edges.items():
            for w, d_uw in self._succ[u].items():
                if w == v:
                    continue
                d_wv = self._succ[w].get(v)
                if d_wv is None:
                    continue
                if d.retrieval > d_uw.retrieval + d_wv.retrieval + tol:
                    bad.append((u, w, v))
        return bad

    def check_generalized_triangle_inequality(self, tol: float = 1e-9) -> list[tuple[Node, Node]]:
        """Violations of ``s_u + s_(u,v) >= s_v`` (Section 2.2)."""
        bad: list[tuple[Node, Node]] = []
        for (u, v), d in self._edges.items():
            if self._storage[u] + d.storage + tol < self._storage[v]:
                bad.append((u, v))
        return bad

    # ------------------------------------------------------------------
    # interop / io
    # ------------------------------------------------------------------
    def to_networkx(self) -> Any:
        """Export to a ``networkx.DiGraph`` (attributes: storage/retrieval)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for v, s in self._storage.items():
            g.add_node(v, storage=s)
        for (u, v), d in self._edges.items():
            g.add_edge(u, v, storage=d.storage, retrieval=d.retrieval)
        return g

    def to_undirected_networkx(self) -> Any:
        """Underlying undirected graph (for treewidth computations)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(v for v in self._storage if v is not AUX)
        for u, v in self.undirected_edges():
            if u is AUX or v is AUX:
                continue
            g.add_edge(u, v)
        return g

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (AUX artifacts are never serialized)."""
        return {
            "name": self.name,
            "versions": [[repr_node(v), s] for v, s in self._storage.items() if v is not AUX],
            "deltas": [
                [repr_node(u), repr_node(v), d.storage, d.retrieval]
                for (u, v), d in self._edges.items()
                if u is not AUX and v is not AUX
            ],
        }

    def to_json(self) -> str:
        """Serialize via :meth:`to_dict`."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "VersionGraph":
        """Rebuild a graph from a :meth:`to_dict` payload."""
        g = cls(name=payload.get("name", ""))
        for v, s in payload["versions"]:
            g.add_version(v, s)
        for u, v, s, r in payload["deltas"]:
            g.add_delta(u, v, s, r)
        return g

    @classmethod
    def from_json(cls, text: str) -> "VersionGraph":
        """Rebuild a graph from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<VersionGraph{label}: {self.num_versions} versions, "
            f"{self.num_deltas} deltas>"
        )


def repr_node(v: Node) -> Any:
    """JSON-safe node representation (AUX is never serialized)."""
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


def _node_key(v: Node) -> tuple[str, str]:
    """Total order over heterogeneous nodes for canonical undirected pairs."""
    return (type(v).__name__, str(v))


def validate_graph(graph: VersionGraph) -> None:
    """Raise :class:`GraphError` when internal adjacency is inconsistent.

    Used in tests and after deserialization; O(V + E).
    """
    for (u, v), d in graph._edges.items():
        if graph._succ[u].get(v) is not d or graph._pred[v].get(u) is not d:
            raise GraphError(f"inconsistent adjacency at {u!r}->{v!r}")
        if not math.isfinite(d.storage) or not math.isfinite(d.retrieval):
            raise GraphError(f"non-finite delta costs at {u!r}->{v!r}")
    for u, nbrs in graph._succ.items():
        for v in nbrs:
            if (u, v) not in graph._edges:
                raise GraphError(f"stray successor {u!r}->{v!r}")
    for v, nbrs in graph._pred.items():
        for u in nbrs:
            if (u, v) not in graph._edges:
                raise GraphError(f"stray predecessor {u!r}->{v!r}")
