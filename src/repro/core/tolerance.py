"""The one budget-feasibility tolerance used across every solver.

Budget constraints are compared against float-accumulated costs, so
every feasibility check needs a tolerance: a relative term (accumulated
rounding scales with the budget magnitude) plus an absolute term (for
budgets near zero).  The expression used to be copy-pasted at every
call site, which let backends drift on boundary budgets — a plan
accepted by one solver could be rejected by another for the same
budget.  It now lives here, and **only** here:

* :func:`budget_cap` — the largest cost accepted for a budget (use it
  when a raw threshold is needed, e.g. ``np.searchsorted``);
* :func:`within_budget` — the comparison itself; works elementwise on
  NumPy arrays, so vectorized kernels share the scalar solvers' exact
  semantics;
* :func:`self_check_tol` / :func:`close_enough` — the drift tolerance
  for *self-checks* that re-derive a cached aggregate in a different
  summation order (``check_invariants``, DP frontier matching).

The ``tolerance-discipline`` rule of :mod:`repro.analysis` enforces
that no inline copy of any of these expressions reappears
(``python -m repro.analysis src/repro``; see docs/static_analysis.md).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "FEAS_REL",
    "FEAS_ABS",
    "RECOMP_REL",
    "RECOMP_ABS",
    "budget_cap",
    "within_budget",
    "within_budget_recomputed",
    "self_check_tol",
    "close_enough",
]

#: Relative feasibility slack (scales with the budget magnitude).
FEAS_REL = 1e-12

#: Absolute feasibility slack (covers budgets near zero).
FEAS_ABS = 1e-9

#: Extra slack for validating *re-accumulated* costs: summing the same
#: plan's costs in a different association order than the solver's own
#: accumulator drifts by more than the tight admission slack.
RECOMP_REL = 1e-9
RECOMP_ABS = 1e-6


def budget_cap(budget: float) -> float:
    """Largest value still considered within ``budget``."""
    return budget * (1 + FEAS_REL) + FEAS_ABS


def self_check_tol(reference: float) -> float:
    """Absolute drift allowed when re-deriving ``reference``.

    The recomputation slack as a raw threshold: use it where a
    comparison needs the tolerance itself (``np.searchsorted`` windows,
    elementwise ``np.abs(a - b) <= self_check_tol(b)`` masks).
    """
    return RECOMP_ABS + RECOMP_REL * abs(reference)


def close_enough(value: Any, reference: float) -> Any:
    """``value == reference`` up to the recomputation drift tolerance.

    For cache self-checks (``check_invariants``) and DP frontier
    matching, where ``reference`` was re-accumulated in a different
    association order than ``value``.  ``value`` may be a scalar or a
    NumPy array (the comparison broadcasts); the returned type mirrors
    the input.
    """
    return abs(value - reference) <= self_check_tol(reference)


def within_budget(value: Any, budget: float) -> Any:
    """``value <= budget`` up to the shared tolerance.

    ``value`` may be a scalar or a NumPy array (the comparison
    broadcasts); the returned type mirrors the input.  Use this for
    *admission* decisions — comparing the solver's own accumulator
    against the budget.
    """
    return value <= budget_cap(budget)


def within_budget_recomputed(value: Any, budget: float) -> Any:
    """``value <= budget`` allowing for cost re-accumulation drift.

    For *validation* checks on costs that were re-derived in a
    different summation order than the accumulator that made the
    admission decision (e.g. ``evaluate_plan`` re-scoring a solver's
    plan, or DP plan reconstruction matching frontier points within its
    own tolerance): the re-sum can legitimately land past the tight
    :func:`within_budget` cap, so validation adds the looser
    recomputation slack instead of spuriously rejecting the plan.
    """
    return value <= budget_cap(budget) + RECOMP_ABS + RECOMP_REL * abs(budget)
