"""Canonical instances from the paper: worked examples and hardness gadgets.

Contents
--------
* :func:`figure1_graph` — the 5-version example of Figure 1.
* :func:`lmg_adversarial_chain` — the Theorem-1 chain where LMG's
  approximation factor is unbounded.
* :func:`set_cover_to_bmr` / :func:`set_cover_to_bsr` — the Section 3.2.2
  reduction graph (Theorem 3).
* :func:`subset_sum_to_msr` — the Theorem-6 arborescence gadget.
* :func:`k_median_to_msr` — the Section 3.2.1 AP reduction.

These are executable versions of the paper's proofs: the tests in
``tests/test_hardness_gadgets.py`` run solvers on the gadgets and map the
answers back to the source problems, checking the structural lemmas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .graph import VersionGraph

__all__ = [
    "figure1_graph",
    "lmg_adversarial_chain",
    "SetCoverInstance",
    "set_cover_to_bmr",
    "set_cover_to_bsr",
    "subset_sum_to_msr",
    "k_median_to_msr",
]


def figure1_graph() -> VersionGraph:
    """The version graph of Figure 1(i).

    Five versions; annotation ``<a, b>`` in the figure is
    ``storage=a, retrieval=b``.  Edges are directed parent->child as
    drawn.
    """
    g = VersionGraph(name="figure1")
    g.add_version("v1", 10000)
    g.add_version("v2", 10100)
    g.add_version("v3", 9700)
    g.add_version("v4", 9800)
    g.add_version("v5", 10120)
    g.add_delta("v1", "v2", 200, 200)
    g.add_delta("v1", "v3", 1000, 3000)
    g.add_delta("v2", "v4", 50, 400)
    g.add_delta("v2", "v5", 800, 2500)
    g.add_delta("v3", "v5", 200, 550)
    return g


def lmg_adversarial_chain(
    a: float = 10_000.0, b: float = 100.0, c: float = 10_000.0
) -> VersionGraph:
    """The Theorem-1 chain ``A -> B -> C`` (Figure 2).

    Node storage costs are ``a``, ``b``, ``c``; both edges carry a single
    weight function: ``(A,B)`` costs ``(1 - b/c) * b`` and ``(B,C)``
    costs ``(1 - b/c) * c`` for storage *and* retrieval.  With a storage
    budget in ``[a + (1-eps)b + c, a + b + c)`` where ``eps = b/c``, LMG
    materializes ``B`` (retrieval left: ``(1-eps)c``) while the optimal
    move is materializing ``C`` (retrieval left: ``(1-eps)b``) — a gap of
    ``c/b``, arbitrarily large.

    Requires ``b < c`` so that ``eps < 1``.
    """
    if not (0 < b < c):
        raise ValueError("need 0 < b < c for the adversarial chain")
    eps = b / c
    g = VersionGraph(name="lmg-adversarial")
    g.add_version("A", a)
    g.add_version("B", b)
    g.add_version("C", c)
    g.add_delta("A", "B", (1 - eps) * b, (1 - eps) * b)
    g.add_delta("B", "C", (1 - eps) * c, (1 - eps) * c)
    return g


@dataclass(frozen=True)
class SetCoverInstance:
    """A Set-Cover instance: ``sets[i]`` is a collection of element ids."""

    num_elements: int
    sets: tuple[frozenset[int], ...]

    @classmethod
    def of(cls, num_elements: int, sets: Sequence[Sequence[int]]) -> "SetCoverInstance":
        """Validated constructor from an element count plus set collections."""
        fs = tuple(frozenset(s) for s in sets)
        for s in fs:
            for o in s:
                if not (0 <= o < num_elements):
                    raise ValueError(f"element {o} out of range")
        return cls(num_elements, fs)

    def covers(self, chosen: Sequence[int]) -> bool:
        """True when the chosen set ids cover every element."""
        covered: set[int] = set()
        for i in chosen:
            covered |= self.sets[i]
        return len(covered) == self.num_elements

    def greedy_cover(self) -> list[int]:
        """Classic ln(n)-approximate greedy cover (baseline for tests)."""
        uncovered = set(range(self.num_elements))
        chosen: list[int] = []
        while uncovered:
            best = max(range(len(self.sets)), key=lambda i: len(self.sets[i] & uncovered))
            if not (self.sets[best] & uncovered):
                raise ValueError("instance is not coverable")
            chosen.append(best)
            uncovered -= self.sets[best]
        return chosen


def _set_cover_graph(inst: SetCoverInstance, big_n: float) -> VersionGraph:
    """Shared construction of Section 3.2.2.

    Set versions ``('a', i)`` and element versions ``('b', j)``, all of
    storage cost ``big_n``; symmetric unit deltas between every pair of
    set versions and between ``a_i`` and each element it covers.
    """
    g = VersionGraph(name="set-cover-gadget")
    m = len(inst.sets)
    for i in range(m):
        g.add_version(("a", i), big_n)
    for j in range(inst.num_elements):
        g.add_version(("b", j), big_n)
    for i in range(m):
        for i2 in range(i + 1, m):
            g.add_bidirectional_delta(("a", i), ("a", i2), 1, 1)
    for i, s in enumerate(inst.sets):
        for j in s:
            g.add_bidirectional_delta(("a", i), ("b", j), 1, 1)
    return g


def set_cover_to_bmr(inst: SetCoverInstance, big_n: float = 10_000.0) -> tuple[VersionGraph, float]:
    """Theorem 3(ii) reduction. Returns ``(graph, retrieval_budget=1)``.

    Under ``max_v R(v) <= 1`` an (improved) solution materializes only
    set versions, and the materialized sets form a set cover.
    """
    return _set_cover_graph(inst, big_n), 1.0


def set_cover_to_bsr(
    inst: SetCoverInstance, optimum_size: int, big_n: float = 10_000.0
) -> tuple[VersionGraph, float]:
    """Theorem 3(i) reduction with known optimum ``m_OPT``.

    The total-retrieval budget is ``R = m - m_OPT + n``: the non-
    materialized ``m - m_OPT`` set versions retrieve in one hop (cost 1
    each) and each element version retrieves in one hop (cost 1 each).
    """
    m = len(inst.sets)
    budget = m - optimum_size + inst.num_elements
    return _set_cover_graph(inst, big_n), float(budget)


def subset_sum_to_msr(
    values: Sequence[float], target: float
) -> tuple[VersionGraph, float]:
    """Theorem 6: Subset-Sum -> MSR on a depth-1 arborescence.

    Root ``r`` with children ``0..n-1``; child ``i`` materializes for
    ``values[i] + 1`` and its edge costs ``(1, 1)``.  With storage budget
    ``S = N + n + target``, an optimal MSR plan materializes a subset of
    children whose value sum is the best subset-sum ``<= target``.
    """
    n = len(values)
    big_n = sum(values) + 2 * n + 2  # keeps the generalized triangle inequality
    g = VersionGraph(name="subset-sum-gadget")
    g.add_version("r", big_n)
    for i, a in enumerate(values):
        g.add_version(i, a + 1)
        g.add_delta("r", i, 1, 1)
    return g, big_n + n + target


def k_median_to_msr(
    distances: Sequence[Sequence[float]], k: int, big_n: float | None = None
) -> tuple[VersionGraph, float]:
    """Section 3.2.1: (asymmetric) k-median -> MSR.

    ``s_uv = r_uv = d(u, v)``; every version costs ``N`` to materialize;
    storage budget ``S = k*N + n`` restricts plans to ``<= k``
    materialized versions (for ``N`` large), so the materialized set of
    an optimal MSR plan is an optimal k-median set.
    """
    n = len(distances)
    if big_n is None:
        big_n = sum(sum(row) for row in distances) + n + 1
    g = VersionGraph(name="k-median-gadget")
    for v in range(n):
        g.add_version(v, big_n)
    for u in range(n):
        if len(distances[u]) != n:
            raise ValueError("distance matrix must be square")
        for v in range(n):
            if u != v:
                d = distances[u][v]
                g.add_delta(u, v, d, d)
    return g, k * big_n + n
