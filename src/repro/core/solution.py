"""Storage plans and their evaluation.

A *storage plan* decides, for every version, whether to materialize it or
to reconstruct it through a chain of stored deltas (Section 2.1 of the
paper).  Two representations are provided:

:class:`StoragePlan`
    The general form: a set of materialized versions plus a set of stored
    deltas.  Retrieval costs are evaluated by a multi-source Dijkstra
    over the stored deltas.  Any solver output can be expressed this way
    and cross-validated.

:class:`PlanTree`
    A spanning arborescence of the *extended* graph rooted at
    :data:`~repro.core.graph.AUX`.  W.l.o.g. optimal plans have this
    shape (extra stored edges only add storage, they never reduce the
    chosen retrieval paths below shortest-path values on the kept
    forest).  The greedy heuristics (LMG, LMG-All, MP) mutate a
    ``PlanTree`` and need O(1) evaluation of "replace ``v``'s parent
    edge" moves, which is supported through cached per-node retrieval
    costs and subtree sizes.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .graph import AUX, GraphError, Node, VersionGraph
from .tolerance import close_enough

__all__ = [
    "StoragePlan",
    "PlanTree",
    "RetrievalSummary",
    "INFEASIBLE",
]

INFEASIBLE = math.inf


@dataclass(frozen=True)
class RetrievalSummary:
    """Aggregate retrieval statistics of a plan.

    Attributes
    ----------
    total:
        ``sum_v R(v)`` — the MSR/BSR objective.
    maximum:
        ``max_v R(v)`` — the MMR/BMR objective.
    per_version:
        Mapping from version to its retrieval cost ``R(v)``.
    """

    total: float
    maximum: float
    per_version: dict[Node, float] = field(repr=False)

    @property
    def feasible(self) -> bool:
        """True when every version is reconstructible."""
        return math.isfinite(self.maximum)


@dataclass(frozen=True)
class StoragePlan:
    """A set of materialized versions and stored deltas.

    The plan is *feasible* when every version is reachable from some
    materialized version through stored deltas (equivalently: reachable
    from AUX in the extended graph restricted to the plan).
    """

    materialized: frozenset[Node]
    stored_deltas: frozenset[tuple[Node, Node]]

    @classmethod
    def of(
        cls,
        materialized: Iterable[Node],
        stored_deltas: Iterable[tuple[Node, Node]] = (),
    ) -> "StoragePlan":
        """Build a plan from iterables of versions and delta pairs."""
        return cls(frozenset(materialized), frozenset(stored_deltas))

    # -- costs ---------------------------------------------------------
    def storage_cost(self, graph: VersionGraph) -> float:
        """Total storage: ``sum_{v in M} s_v + sum_{e in F} s_e``."""
        total = sum(graph.storage_cost(v) for v in self.materialized)
        total += sum(graph.delta(u, v).storage for u, v in self.stored_deltas)
        return total

    def retrieval(self, graph: VersionGraph) -> RetrievalSummary:
        """Per-version retrieval costs via multi-source Dijkstra.

        ``R(v)`` is the cheapest retrieval-cost path from any
        materialized version to ``v`` that uses only stored deltas.
        Versions unreachable that way get ``inf`` (the plan is then
        infeasible for every problem variant).
        """
        dist: dict[Node, float] = {v: INFEASIBLE for v in graph.versions if v is not AUX}
        heap: list[tuple[float, int, Node]] = []
        counter = 0
        for v in self.materialized:
            if v is AUX:
                continue
            dist[v] = 0.0
            heap.append((0.0, counter, v))
            counter += 1
        heapq.heapify(heap)
        stored = self.stored_deltas
        while heap:
            d, _, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for w, delta in graph.successors(u).items():
                if w is AUX or (u, w) not in stored:
                    continue
                nd = d + delta.retrieval
                if nd < dist[w]:
                    dist[w] = nd
                    counter += 1
                    heapq.heappush(heap, (nd, counter, w))
        total = 0.0
        maximum = 0.0
        for v, d in dist.items():
            total += d
            if d > maximum:
                maximum = d
        return RetrievalSummary(total=total, maximum=maximum, per_version=dist)

    def is_feasible(self, graph: VersionGraph) -> bool:
        """True when every version is reachable through stored deltas."""
        return self.retrieval(graph).feasible

    def validate(self, graph: VersionGraph) -> None:
        """Raise :class:`GraphError` if the plan references unknown items."""
        for v in self.materialized:
            if v not in graph:
                raise GraphError(f"materialized unknown version {v!r}")
        for u, v in self.stored_deltas:
            if not graph.has_delta(u, v):
                raise GraphError(f"stored unknown delta {u!r}->{v!r}")

    def __or__(self, other: "StoragePlan") -> "StoragePlan":
        return StoragePlan(
            self.materialized | other.materialized,
            self.stored_deltas | other.stored_deltas,
        )


class PlanTree:
    """A spanning arborescence of the extended graph, rooted at AUX.

    Every version has exactly one parent (AUX = materialized); retrieval
    cost ``R(v)`` is the sum of retrieval costs along the unique
    AUX-to-``v`` path.  The structure caches:

    * ``R(v)`` per node,
    * subtree sizes (number of versions retrieved *through* each node,
      including itself — the paper's "dependency number"),
    * total storage / total retrieval / children lists,
    * Euler-tour intervals for O(1) ancestor tests (recomputed lazily
      after mutations).

    An edge swap "make ``u`` the parent of ``v``" changes the retrieval
    cost of every node in ``v``'s subtree by the same amount, hence the
    O(1) evaluation used by LMG / LMG-All:

    ``delta_total_retrieval = (R(u) + r_uv - R(v)) * subtree_size(v)``.
    """

    __slots__ = (
        "graph",
        "parent",
        "children",
        "ret",
        "subtree_size",
        "total_storage",
        "total_retrieval",
        "_tin",
        "_tout",
        "_order_dirty",
    )

    def __init__(
        self, extended_graph: VersionGraph, parent: dict[Node, Node]
    ) -> None:
        """Build from a parent map over the *extended* graph.

        ``parent[v]`` must be a node with an existing delta
        ``(parent[v], v)``; AUX parents represent materialization.
        """
        if not extended_graph.has_aux:
            raise GraphError("PlanTree requires the extended graph (call .extended())")
        self.graph = extended_graph
        self.parent: dict[Node, Node] = {}
        self.children: dict[Node, list[Node]] = {v: [] for v in extended_graph.versions}
        self.ret: dict[Node, float] = {AUX: 0.0}
        self.subtree_size: dict[Node, int] = {}
        self.total_storage = 0.0
        self.total_retrieval = 0.0
        self._tin: dict[Node, int] = {}
        self._tout: dict[Node, int] = {}
        self._order_dirty = True

        for v, p in parent.items():
            if v is AUX:
                continue
            if not extended_graph.has_delta(p, v):
                raise GraphError(f"no delta {p!r}->{v!r} for parent map")
            self.parent[v] = p
            self.children[p].append(v)
            self.total_storage += extended_graph.delta(p, v).storage
        missing = [v for v in extended_graph.versions if v is not AUX and v not in self.parent]
        if missing:
            raise GraphError(f"parent map misses versions: {missing[:5]!r}...")

        self._recompute_all()

    # ------------------------------------------------------------------
    def _recompute_all(self) -> None:
        """Recompute R, subtree sizes and totals in O(V)."""
        order = self._topo_order()
        if order is None:
            raise GraphError("parent map contains a cycle")
        self.total_retrieval = 0.0
        for v in order:
            if v is AUX:
                self.ret[v] = 0.0
                continue
            p = self.parent[v]
            self.ret[v] = self.ret[p] + self.graph.delta(p, v).retrieval
            self.total_retrieval += self.ret[v]
        self.subtree_size = {v: 1 for v in self.parent}
        self.subtree_size[AUX] = 1
        for v in reversed(order):
            if v is AUX:
                continue
            self.subtree_size[self.parent[v]] += self.subtree_size[v]
        self._order_dirty = True

    def _topo_order(self) -> list[Node] | None:
        """Root-first ordering (iterative DFS); None when a cycle exists."""
        order: list[Node] = []
        stack: list[Node] = [AUX]
        while stack:
            x = stack.pop()
            order.append(x)
            stack.extend(self.children[x])
        if len(order) != len(self.children):
            return None
        return order

    def refresh_euler(self) -> None:
        """Recompute Euler intervals used by :meth:`is_ancestor`."""
        timer = 0
        stack: list[tuple[Node, bool]] = [(AUX, False)]
        while stack:
            x, done = stack.pop()
            if done:
                self._tout[x] = timer
                timer += 1
                continue
            self._tin[x] = timer
            timer += 1
            stack.append((x, True))
            for c in self.children[x]:
                stack.append((c, False))
        self._order_dirty = False

    def is_ancestor(self, a: Node, b: Node) -> bool:
        """True when ``a`` is an ancestor of ``b`` (or equal), O(1)."""
        if self._order_dirty:
            self.refresh_euler()
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def swap_deltas(self, u: Node, v: Node) -> tuple[float, float]:
        """Evaluate replacing ``(parent(v), v)`` by ``(u, v)``.

        Returns ``(delta_storage, delta_total_retrieval)``.  ``u`` must
        not be in ``v``'s subtree (the caller checks with
        :meth:`is_ancestor`), otherwise the result is meaningless.
        """
        p = self.parent[v]
        new_d = self.graph.delta(u, v)
        old_d = self.graph.delta(p, v)
        dr = (self.ret[u] + new_d.retrieval - self.ret[v]) * self.subtree_size[v]
        ds = new_d.storage - old_d.storage
        return ds, dr

    def apply_swap(self, u: Node, v: Node) -> None:
        """Apply the move evaluated by :meth:`swap_deltas`.

        O(|subtree(v)| + depth) per move: retrieval shifts uniformly over
        ``v``'s subtree and subtree sizes change along both ancestor
        paths.
        """
        if self.is_ancestor(v, u):
            raise GraphError(f"swap would create a cycle: {u!r} is in subtree({v!r})")
        p = self.parent[v]
        ds, dr = self.swap_deltas(u, v)
        shift = self.ret[u] + self.graph.delta(u, v).retrieval - self.ret[v]

        # detach / attach
        self.children[p].remove(v)
        self.children[u].append(v)
        self.parent[v] = u

        # subtree sizes along old and new ancestor chains
        size = self.subtree_size[v]
        x = p
        while True:
            self.subtree_size[x] -= size
            if x is AUX:
                break
            x = self.parent[x]
        x = u
        while True:
            self.subtree_size[x] += size
            if x is AUX:
                break
            x = self.parent[x]

        # retrieval costs shift uniformly over the moved subtree
        if shift != 0.0:
            stack: list[Node] = [v]
            while stack:
                y = stack.pop()
                self.ret[y] += shift
                stack.extend(self.children[y])
        self.total_storage += ds
        self.total_retrieval += dr
        self._order_dirty = True

    def materialize(self, v: Node) -> None:
        """Shortcut: make AUX the parent of ``v``."""
        self.apply_swap(AUX, v)

    # ------------------------------------------------------------------
    # conversions / inspection
    # ------------------------------------------------------------------
    def max_retrieval(self) -> float:
        """``max_v R(v)`` over the tree (0.0 for an empty graph)."""
        return max((r for v, r in self.ret.items() if v is not AUX), default=0.0)

    def retrieval_summary(self) -> RetrievalSummary:
        """Aggregate retrieval statistics of the current tree."""
        per = {v: r for v, r in self.ret.items() if v is not AUX}
        return RetrievalSummary(
            total=self.total_retrieval,
            maximum=max(per.values(), default=0.0),
            per_version=per,
        )

    def materialized_versions(self) -> list[Node]:
        """Versions stored in full (children of AUX)."""
        return list(self.children[AUX])

    def to_plan(self) -> StoragePlan:
        """Export as a general :class:`StoragePlan` over the base graph."""
        mats: list[Node] = []
        deltas: list[tuple[Node, Node]] = []
        for v, p in self.parent.items():
            if p is AUX:
                mats.append(v)
            else:
                deltas.append((p, v))
        return StoragePlan.of(mats, deltas)

    def iter_nodes_topological(self) -> Iterator[Node]:
        """Yield versions root-first (parents before children)."""
        order = self._topo_order()
        assert order is not None
        for v in order:
            if v is not AUX:
                yield v

    def copy(self) -> "PlanTree":
        """Independent tree with the same parent map."""
        return PlanTree(self.graph, dict(self.parent))

    def check_invariants(self) -> None:
        """Validate cached values against a fresh recomputation (tests)."""
        fresh = PlanTree(self.graph, dict(self.parent))
        if not close_enough(self.total_storage, fresh.total_storage):
            raise GraphError(
                f"storage cache drift: {self.total_storage} vs {fresh.total_storage}"
            )
        if not close_enough(self.total_retrieval, fresh.total_retrieval):
            raise GraphError(
                f"retrieval cache drift: {self.total_retrieval} vs {fresh.total_retrieval}"
            )
        for v in self.parent:
            if not close_enough(self.ret[v], fresh.ret[v]):
                raise GraphError(f"retrieval cache drift at {v!r}")
            if fresh.subtree_size[v] != self.subtree_size[v]:
                raise GraphError(f"subtree size drift at {v!r}")
