"""The plan executor: materialize / checkout / migrate / fsck.

A :class:`MaterializationStore` turns a solver's
:class:`~repro.core.solution.StoragePlan` into actual bytes on a
content-addressed :class:`~repro.store.objects.ObjectStore`:

* versions whose plan parent is AUX become **full objects** — one blob
  per file plus a manifest, all sha256-addressed and deduplicated;
* every other plan-tree edge ``(u, v)`` becomes a **delta object**
  (run-length Myers ops per changed file, created files stored as
  shared blobs);
* ``checkout(v)`` walks from ``v``'s nearest materialized ancestor
  down the recorded chain, verifying every object hash on load and the
  reconstructed snapshot's digest before returning — it raises
  :class:`~repro.store.codec.StoreError` rather than ever handing back
  wrong bytes;
* ``migrate(old_plan, new_plan)`` rewrites exactly the edges in the
  symmetric difference of the two trees (pinned by the
  :class:`StoreOps` counter) and garbage-collects unreferenced
  objects, leaving the store object-for-object equal to a from-scratch
  materialization of ``new_plan``;
* ``fsck()`` re-hashes every object and walks every delta chain,
  reporting findings with the stable codes of :data:`FSCK_CODES`.

The store records, per version, its plan parent, the object realizing
the edge, and the snapshot digest — nothing else.  All dedup falls out
of content addressing; all integrity falls out of re-hashing on read.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..core.graph import Node
from ..core.solution import StoragePlan
from ..vcs.repo import Repository, Snapshot
from .codec import (
    StoreError,
    apply_delta,
    blob_bytes,
    blob_lines,
    decode_delta,
    decode_manifest,
    encode_delta,
    encode_manifest,
    hash_object,
    snapshot_digest,
)
from .objects import FileObjectStore, MemoryObjectStore, ObjectStore

__all__ = [
    "MaterializationStore",
    "StoreOps",
    "MigrationReport",
    "FsckFinding",
    "FSCK_CODES",
    "plan_parent_map",
    "materialize",
]

META_NAME = "META.json"

#: The stable fsck finding codes (tests and the CLI rely on these).
FSCK_CODES = (
    "object-missing",
    "object-corrupt",
    "digest-mismatch",
    "delta-apply-failed",
    "tree-structure",
    "object-unreferenced",
)


@dataclass
class StoreOps:
    """Cumulative operation counters (the migration-cost odometer)."""

    edges_written: int = 0
    edges_deleted: int = 0
    objects_written: int = 0
    objects_deleted: int = 0
    bytes_written: int = 0

    def snapshot(self) -> "StoreOps":
        """An independent copy of the current counters."""
        return StoreOps(
            self.edges_written,
            self.edges_deleted,
            self.objects_written,
            self.objects_deleted,
            self.bytes_written,
        )


@dataclass(frozen=True)
class MigrationReport:
    """What one ``migrate``/``sync`` actually touched."""

    edges_written: int
    edges_deleted: int
    objects_written: int
    objects_deleted: int

    @property
    def edges_rewritten(self) -> int:
        """Total edge churn — equals ``|old tree edges ^ new tree edges|``."""
        return self.edges_written + self.edges_deleted


@dataclass(frozen=True)
class FsckFinding:
    """One integrity problem: a stable ``code`` plus human detail."""

    code: str
    subject: str
    detail: str


@dataclass(frozen=True)
class _Record:
    """One version's realization: parent (None = materialized), object."""

    parent: Node | None
    kind: str  # "full" | "delta"
    obj: str

    @property
    def obj_kind(self) -> str:
        """The hash-tag kind of ``obj``: full records point at manifests."""
        return "manifest" if self.kind == "full" else "delta"

    def to_json(self, v: Node) -> list:
        """JSON row ``[v, parent, kind, obj]`` for META persistence."""
        return [v, self.parent, self.kind, self.obj]


def plan_parent_map(plan: StoragePlan) -> dict[Node, Node | None]:
    """The tree shape of ``plan``: ``v -> parent`` (None = materialized).

    Raises :class:`StoreError` unless the plan is an arborescence —
    every version has exactly one incoming realization and every delta
    source is itself in the plan.  Solver output always qualifies
    (optimal plans are w.l.o.g. trees); hand-built general plans with
    redundant stored deltas do not.
    """
    parent: dict[Node, Node | None] = {v: None for v in plan.materialized}
    for u, v in sorted(plan.stored_deltas, key=repr):
        if v in plan.materialized:
            raise StoreError(
                f"plan is not a tree: {v!r} is materialized and delta-target"
            )
        if v in parent:
            raise StoreError(f"plan is not a tree: {v!r} has two stored deltas in")
        parent[v] = u
    for u, v in plan.stored_deltas:
        if u not in parent:
            raise StoreError(f"delta source {u!r} is not in the plan")
    return parent


def _topo_order(parent: dict[Node, Node | None]) -> list[Node]:
    """Root-first order of the plan tree; raises on cycles."""
    children: dict[Node | None, list[Node]] = {}
    for v, p in parent.items():
        children.setdefault(p, []).append(v)
    order: list[Node] = []
    stack = sorted(children.get(None, ()), key=repr, reverse=True)
    while stack:
        x = stack.pop()
        order.append(x)
        stack.extend(sorted(children.get(x, ()), key=repr, reverse=True))
    if len(order) != len(parent):
        unreached = sorted((set(parent) - set(order)), key=repr)
        raise StoreError(
            f"plan tree has a cycle or unreachable versions: {unreached[:5]!r}"
        )
    return order


class MaterializationStore:
    """A content-addressed store executing one storage plan.

    Parameters
    ----------
    objects:
        Backend object store; defaults to a fresh
        :class:`~repro.store.objects.MemoryObjectStore`.  Pass a
        :class:`~repro.store.objects.FileObjectStore` (or use
        :meth:`open`) for a store that persists across processes.
    """

    def __init__(
        self,
        objects: ObjectStore | None = None,
        *,
        checkout_cache: int = 64,
    ) -> None:
        self.objects: ObjectStore = (
            objects if objects is not None else MemoryObjectStore()
        )
        self.ops = StoreOps()
        self.source: dict | None = None  # CLI provenance (seed, params)
        self._records: dict[Node, _Record] = {}
        self._digests: dict[Node, str] = {}
        self._meta_path: Path | None = None
        # LRU of digest-verified snapshots: repeated checkouts of nearby
        # versions replay only the chain suffix below the nearest cached
        # ancestor instead of re-decoding from the materialized root.
        # 0 disables.  Every mutating op (materialize/sync/migrate)
        # clears it — records and digests may change underneath.
        self._cache_slots = int(checkout_cache)
        self._snap_cache: OrderedDict[Node, Snapshot] = OrderedDict()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str | Path) -> "MaterializationStore":
        """A directory-backed store at ``root``, loading META if present."""
        root = Path(root)
        store = cls(FileObjectStore(root))
        store._meta_path = root / META_NAME
        if store._meta_path.exists():
            meta = json.loads(store._meta_path.read_text())
            store._records = {
                v: _Record(p, kind, obj)
                for v, p, kind, obj in meta["records"]
            }
            store._digests = {v: d for v, d in meta["digests"]}
            store.source = meta.get("source")
        return store

    def flush(self) -> None:
        """Write META (records, digests, provenance) for directory stores."""
        if self._meta_path is None:
            return
        meta = {
            "records": [r.to_json(v) for v, r in sorted(
                self._records.items(), key=lambda kv: repr(kv[0])
            )],
            "digests": [
                [v, d] for v, d in sorted(
                    self._digests.items(), key=lambda kv: repr(kv[0])
                )
            ],
            "source": self.source,
        }
        self._meta_path.write_text(json.dumps(meta, indent=1))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def versions(self) -> list[Node]:
        """Every version the store can check out."""
        return sorted(self._records, key=repr)

    def contains(self, v: Node) -> bool:
        """True when ``v`` is realized by the current plan."""
        return v in self._records

    def is_materialized(self, v: Node) -> bool:
        """True when ``v`` is stored in full (a plan-tree root)."""
        return self._records[v].parent is None

    def chain_depth(self, v: Node) -> int:
        """Number of deltas applied by ``checkout(v)`` (0 = materialized)."""
        depth = 0
        seen: set[Node] = set()
        x = v
        while True:
            rec = self._get_record(x)
            if rec.parent is None:
                return depth
            if x in seen:
                raise StoreError(f"parent chain of {v!r} contains a cycle")
            seen.add(x)
            x = rec.parent
            depth += 1

    def edge_set(self) -> set[tuple[Node | None, Node]]:
        """The realized tree edges as ``(parent or None, version)`` pairs."""
        return {(r.parent, v) for v, r in self._records.items()}

    def digest(self, v: Node) -> str:
        """The snapshot digest recorded for ``v`` at materialization."""
        self._get_record(v)
        return self._digests[v]

    def total_bytes(self) -> int:
        """Object-store footprint in bytes."""
        return self.objects.total_bytes()

    # ------------------------------------------------------------------
    # materialize
    # ------------------------------------------------------------------
    def materialize(self, repo: Repository | Callable[[Node], Snapshot],
                    plan: StoragePlan) -> None:
        """Execute ``plan``: store full objects and deltas for every version.

        ``repo`` is a :class:`~repro.vcs.repo.Repository` (versions are
        commit ids) or any ``version -> Snapshot`` callable.  The store
        must be empty — an existing store migrates instead.
        """
        if self._records:
            raise StoreError("store already holds a plan; use migrate()/sync()")
        fetch = _fetcher(repo)
        parent = plan_parent_map(plan)
        order = _topo_order(parent)
        snaps: dict[Node, Snapshot] = {}
        for v in order:
            snaps[v] = fetch(v)
        for v in order:
            p = parent[v]
            snap = snaps[v]
            self._digests[v] = snapshot_digest(snap)
            if p is None:
                self._records[v] = self._write_full(snap)
            else:
                self._records[v] = self._write_delta(p, snaps[p], snap)
            self.ops.edges_written += 1
        self.flush()

    def _put(self, key: str, data: bytes) -> str:
        if self.objects.put(key, data):
            self.ops.objects_written += 1
            self.ops.bytes_written += len(data)
        return key

    def _write_full(self, snap: Snapshot) -> _Record:
        manifest: dict[str, str] = {}
        for path, lines in snap.items():
            data = blob_bytes(tuple(lines))
            manifest[path] = self._put(hash_object("blob", data), data)
        payload = encode_manifest(manifest)
        return _Record(None, "full", self._put(
            hash_object("manifest", payload), payload
        ))

    def _write_delta(self, p: Node, base: Snapshot, snap: Snapshot) -> _Record:
        def blob_hash_of(path: str) -> str:
            data = blob_bytes(tuple(snap[path]))
            return self._put(hash_object("blob", data), data)

        payload = encode_delta(base, snap, blob_hash_of=blob_hash_of)
        return _Record(p, "delta", self._put(
            hash_object("delta", payload), payload
        ))

    # ------------------------------------------------------------------
    # checkout
    # ------------------------------------------------------------------
    def _get_record(self, v: Node) -> _Record:
        try:
            return self._records[v]
        except KeyError:
            raise StoreError(f"version {v!r} is not in the store") from None

    def _load_object(self, kind: str, key: str) -> bytes:
        data = self.objects.get(key)
        if data is None:
            raise StoreError(
                f"missing {kind} object {key[:12]}…", code="object-missing"
            )
        if hash_object(kind, data) != key:
            raise StoreError(
                f"corrupt {kind} object {key[:12]}…", code="object-corrupt"
            )
        return data

    def _load_full(self, rec: _Record) -> Snapshot:
        manifest = decode_manifest(self._load_object("manifest", rec.obj))
        return {
            path: blob_lines(self._load_object("blob", bh))
            for path, bh in manifest.items()
        }

    def _apply_delta_record(self, rec: _Record, base: Snapshot) -> Snapshot:
        entries = decode_delta(self._load_object("delta", rec.obj))
        return apply_delta(
            base, entries,
            load_blob=lambda bh: self._load_object("blob", bh),
        )

    def _cache_get(self, v: Node) -> Snapshot | None:
        snap = self._snap_cache.get(v)
        if snap is not None:
            self._snap_cache.move_to_end(v)
        return snap

    def _cache_put(self, v: Node, snap: Snapshot) -> None:
        if self._cache_slots <= 0:
            return
        # a private copy: callers may mutate the snapshot they receive
        # (values are immutable line tuples, so shallow is enough)
        self._snap_cache[v] = dict(snap)
        self._snap_cache.move_to_end(v)
        while len(self._snap_cache) > self._cache_slots:
            self._snap_cache.popitem(last=False)

    def checkout(self, v: Node) -> Snapshot:
        """Reconstruct ``v``'s snapshot, verifying every byte on the way.

        Walks up to the nearest materialized — or LRU-cached — ancestor,
        loads/reuses its snapshot, replays the delta chain down to
        ``v``, and compares the result's digest against the one recorded
        at materialization.  Any missing object, hash mismatch,
        unreplayable delta or digest mismatch raises :class:`StoreError`
        — wrong bytes are never returned.

        Only digest-verified snapshots enter the cache (sized by the
        ``checkout_cache`` constructor argument), so a cached base is
        exactly as trustworthy as a freshly replayed one; repeated
        checkouts of nearby versions replay only the chain suffix
        instead of re-decoding from the materialized root.
        """
        cached = self._cache_get(v)
        if cached is not None:
            return dict(cached)
        chain: list[tuple[Node, _Record]] = []
        x = v
        seen: set[Node] = set()
        rec = self._get_record(x)
        base: Snapshot | None = None
        while rec.parent is not None:
            if x in seen:
                raise StoreError(f"parent chain of {v!r} contains a cycle")
            seen.add(x)
            chain.append((x, rec))
            x = rec.parent
            hit = self._cache_get(x)
            if hit is not None:
                base = dict(hit)  # verified when it entered the cache
                break
            rec = self._get_record(x)
        caching = self._cache_slots > 0
        if base is None:
            base = self._load_full(rec)
            d = self._digests.get(x) if caching else None
            if d is not None and snapshot_digest(base) == d:
                self._cache_put(x, base)
        snap = base
        for y, rec in reversed(chain):
            snap = self._apply_delta_record(rec, snap)
            if y == v:
                break  # the final digest check below gates caching v
            d = self._digests.get(y) if caching else None
            if d is not None and snapshot_digest(snap) == d:
                self._cache_put(y, snap)
        if snapshot_digest(snap) != self._digests[v]:
            raise StoreError(
                f"checkout of {v!r} does not match its recorded digest",
                code="digest-mismatch",
            )
        self._cache_put(v, snap)
        return snap

    # ------------------------------------------------------------------
    # migrate
    # ------------------------------------------------------------------
    def sync(
        self,
        plan: StoragePlan,
        *,
        fetch: Callable[[Node], Snapshot] | None = None,
    ) -> MigrationReport:
        """Migrate the store from its current tree to ``plan``'s tree.

        Only edges in the symmetric difference of the two edge sets are
        touched: new edges are written (snapshots reconstructed from the
        *current* store state, or ``fetch``-ed for versions the store
        has never seen), stale edges are dropped, and unreferenced
        objects are garbage-collected.  The result is object-for-object
        identical to materializing ``plan`` from scratch.
        """
        new_parent = plan_parent_map(plan)
        _topo_order(new_parent)  # validates acyclicity up front
        old_edges = self.edge_set()
        new_edges = {(p, v) for v, p in new_parent.items()}
        added = new_edges - old_edges
        removed = old_edges - new_edges

        # resolve every snapshot an added edge needs BEFORE rewriting
        # records: reconstruction must run against the old tree
        need: set[Node] = set()
        for p, v in added:
            need.add(v)
            if p is not None:
                need.add(p)
        snaps: dict[Node, Snapshot] = {}
        for x in sorted(need, key=repr):
            if x in self._records:
                snaps[x] = self.checkout(x)
            elif fetch is not None:
                snaps[x] = fetch(x)
            else:
                raise StoreError(
                    f"version {x!r} is new to the store; pass fetch= to sync()"
                )

        objects_before = self.ops.objects_written
        records: dict[Node, _Record] = {}
        for v, p in new_parent.items():
            if (p, v) in added:
                if v not in self._digests or v not in self._records:
                    self._digests[v] = snapshot_digest(snaps[v])
                if p is None:
                    records[v] = self._write_full(snaps[v])
                else:
                    records[v] = self._write_delta(p, snaps[p], snaps[v])
            else:
                records[v] = self._records[v]
        self._records = records
        self._digests = {v: self._digests[v] for v in new_parent}
        # drop cached snapshots: versions may have left the plan, and a
        # cache hit must never resurrect a version the store dropped
        self._snap_cache.clear()
        self.ops.edges_written += len(added)
        self.ops.edges_deleted += len(removed)
        deleted = self._gc()
        self.flush()
        return MigrationReport(
            edges_written=len(added),
            edges_deleted=len(removed),
            objects_written=self.ops.objects_written - objects_before,
            objects_deleted=deleted,
        )

    def migrate(
        self,
        old_plan: StoragePlan,
        new_plan: StoragePlan,
        *,
        fetch: Callable[[Node], Snapshot] | None = None,
    ) -> MigrationReport:
        """Rewrite the store from ``old_plan``'s tree to ``new_plan``'s.

        ``old_plan`` must match the store's current state exactly (the
        explicit two-plan form of :meth:`sync`, mirroring a background
        re-solve handing over old and new trees).
        """
        expected = {(p, v) for v, p in plan_parent_map(old_plan).items()}
        if expected != self.edge_set():
            raise StoreError("old_plan does not match the store's current tree")
        return self.sync(new_plan, fetch=fetch)

    def _live_objects(self) -> tuple[set[str], list[FsckFinding]]:
        """Transitively referenced object keys + reference problems."""
        live: set[str] = set()
        findings: list[FsckFinding] = []
        for v, rec in sorted(self._records.items(), key=lambda kv: repr(kv[0])):
            live.add(rec.obj)
            data = self.objects.get(rec.obj)
            if data is None:
                findings.append(FsckFinding(
                    "object-missing", rec.obj,
                    f"{rec.kind} object of version {v!r} is absent",
                ))
                continue
            if hash_object(rec.obj_kind, data) != rec.obj:
                # referenced blobs are unknowable from a corrupt payload
                continue
            if rec.kind == "full":
                live.update(decode_manifest(data).values())
            else:
                for entry in decode_delta(data).values():
                    if entry.get("op") == "create":
                        live.add(entry["blob"])
        return live, findings

    def _gc(self) -> int:
        """Delete objects unreachable from the records; returns count."""
        live, _ = self._live_objects()
        dead = [k for k in self.objects.keys() if k not in live]
        for k in dead:
            self.objects.delete(k)
        self.ops.objects_deleted += len(dead)
        return len(dead)

    # ------------------------------------------------------------------
    # fsck
    # ------------------------------------------------------------------
    def fsck(self) -> list[FsckFinding]:
        """Full integrity walk; an empty list means the store is sound.

        Three passes: (1) every referenced object present and re-hashing
        to its key, plus unreferenced strays; (2) the record tree is
        acyclic with no dangling parents; (3) every delta chain replays
        from its materialized root and every version's reconstruction
        matches its recorded digest.  Finding codes are the stable
        :data:`FSCK_CODES` set.
        """
        findings: list[FsckFinding] = []

        # pass 1: object presence + hashes
        live, ref_findings = self._live_objects()
        findings.extend(ref_findings)
        for v, rec in sorted(self._records.items(), key=lambda kv: repr(kv[0])):
            data = self.objects.get(rec.obj)
            if data is None:
                continue  # already reported by _live_objects
            if hash_object(rec.obj_kind, data) != rec.obj:
                findings.append(FsckFinding(
                    "object-corrupt", rec.obj,
                    f"{rec.kind} object of version {v!r} fails its hash",
                ))
                continue
            blob_refs = (
                decode_manifest(data).values() if rec.kind == "full"
                else [
                    e["blob"] for e in decode_delta(data).values()
                    if e.get("op") == "create"
                ]
            )
            for bh in blob_refs:
                blob = self.objects.get(bh)
                if blob is None:
                    findings.append(FsckFinding(
                        "object-missing", bh,
                        f"blob referenced by version {v!r} is absent",
                    ))
                elif hash_object("blob", blob) != bh:
                    findings.append(FsckFinding(
                        "object-corrupt", bh,
                        f"blob referenced by version {v!r} fails its hash",
                    ))
        for key in self.objects.keys():
            if key not in live:
                findings.append(FsckFinding(
                    "object-unreferenced", key,
                    "object is not referenced by any record",
                ))

        # pass 2: tree structure
        parent = {v: r.parent for v, r in self._records.items()}
        for v, p in parent.items():
            if p is not None and p not in parent:
                findings.append(FsckFinding(
                    "tree-structure", repr(v),
                    f"parent {p!r} of version {v!r} has no record",
                ))
        try:
            order = _topo_order(parent)
        except StoreError as err:
            findings.append(FsckFinding("tree-structure", "<tree>", str(err)))
            return findings

        # pass 3: replay every chain root-first, verify digests
        snaps: dict[Node, Snapshot | None] = {}
        for v in order:
            rec = self._records[v]
            try:
                if rec.parent is None:
                    snap = self._load_full(rec)
                else:
                    base = snaps.get(rec.parent)
                    if base is None:
                        snaps[v] = None  # ancestor already failed
                        continue
                    snap = self._apply_delta_record(rec, base)
            except StoreError as err:
                code = err.code or "delta-apply-failed"
                findings.append(FsckFinding(code, repr(v), str(err)))
                snaps[v] = None
                continue
            snaps[v] = snap
            if snapshot_digest(snap) != self._digests.get(v):
                findings.append(FsckFinding(
                    "digest-mismatch", repr(v),
                    f"reconstruction of {v!r} does not match its digest",
                ))
        return findings


def _fetcher(repo: Repository | Callable[[Node], Snapshot]):
    """Normalize a Repository or callable into ``v -> Snapshot``."""
    if isinstance(repo, Repository):
        return lambda v: repo.commits[v].snapshot
    return repo


def materialize(
    repo: Repository | Callable[[Node], Snapshot],
    plan: StoragePlan,
    *,
    objects: ObjectStore | None = None,
) -> MaterializationStore:
    """Build a fresh store executing ``plan`` over ``repo``'s bytes."""
    store = MaterializationStore(objects)
    store.materialize(repo, plan)
    return store
