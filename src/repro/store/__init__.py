"""Content-addressed materialization store — the plan *executor*.

Everything below :mod:`repro.algorithms` decides *which* versions to
materialize; this package stores and reconstructs the actual bytes.  A
:class:`MaterializationStore` executes a
:class:`~repro.core.solution.StoragePlan` over a
:class:`~repro.vcs.repo.Repository`: materialized versions become
sha256-addressed, deduplicated full objects (blobs + manifest),
plan-tree edges become Myers delta objects, ``checkout`` reconstructs
any version byte-identically (verified against recorded digests),
``migrate``/``sync`` move between plans touching only the tree-diff
edges, and ``fsck`` detects corruption with stable finding codes.

See ``docs/storage.md`` for the layout and migration workflow, and
:meth:`repro.engine.IngestEngine.attach_store` for keeping a store
current while commits stream in.
"""

from .codec import StoreError, snapshot_digest
from .objects import FileObjectStore, MemoryObjectStore, ObjectStore
from .store import (
    FSCK_CODES,
    FsckFinding,
    MaterializationStore,
    MigrationReport,
    StoreOps,
    materialize,
    plan_parent_map,
)

__all__ = [
    "StoreError",
    "snapshot_digest",
    "ObjectStore",
    "MemoryObjectStore",
    "FileObjectStore",
    "MaterializationStore",
    "MigrationReport",
    "StoreOps",
    "FsckFinding",
    "FSCK_CODES",
    "materialize",
    "plan_parent_map",
]
