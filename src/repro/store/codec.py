"""Canonical byte encodings for the content-addressed store.

Three object kinds exist, each hashed as ``sha256(kind || NUL ||
payload)`` so payloads of different kinds can never collide:

``blob``
    One file's raw content: every line followed by ``\\n`` — the exact
    byte layout :meth:`repro.vcs.repo.RepoCommit.total_bytes` counts,
    so stored-vs-raw byte comparisons are apples to apples.  Lines must
    be newline-free for the encoding to round-trip; the store rejects
    snapshots that are not.

``manifest``
    A full snapshot: canonical JSON mapping each path to its blob
    hash.  The manifest hash doubles as the *snapshot digest* — two
    snapshots have equal digests iff they are byte-identical — which is
    what ``checkout`` verifies before ever returning bytes.

``delta``
    One plan-tree edge: canonical JSON mapping each changed path to a
    ``delete`` / ``create`` / ``patch`` entry.  ``create`` entries
    reference the new file's *blob* (stored separately, so a file
    added on one branch deduplicates against every materialized
    snapshot containing it); ``patch`` entries inline the run-length
    Myers ops of :class:`repro.vcs.delta.DeltaScript`.

Canonical JSON means ``sort_keys=True`` + compact separators: the same
logical object always serializes to the same bytes, which is what makes
"object-for-object equal to materializing from scratch" a meaningful
migration invariant.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable

from ..vcs.delta import DeltaOp, DeltaScript, compute_delta
from ..vcs.repo import Snapshot

__all__ = [
    "StoreError",
    "hash_object",
    "blob_bytes",
    "blob_lines",
    "encode_manifest",
    "decode_manifest",
    "snapshot_digest",
    "encode_delta",
    "decode_delta",
    "apply_delta",
]


class StoreError(Exception):
    """Any materialization-store failure: bad plans, corrupt or missing
    objects, digest mismatches, unsatisfiable checkouts.

    ``code`` carries the stable fsck finding code when the failure maps
    to one (see :data:`repro.store.store.FSCK_CODES`); ``fsck`` uses it
    to classify chain-walk failures without parsing messages.
    """

    def __init__(self, message: str, *, code: str | None = None) -> None:
        super().__init__(message)
        self.code = code


def hash_object(kind: str, payload: bytes) -> str:
    """Type-tagged sha256 key of ``payload`` (hex)."""
    h = hashlib.sha256()
    h.update(kind.encode())
    h.update(b"\0")
    h.update(payload)
    return h.hexdigest()


def _canonical_json(obj: object) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


# ----------------------------------------------------------------------
# blobs
# ----------------------------------------------------------------------
def blob_bytes(lines: tuple[str, ...]) -> bytes:
    """One file's canonical content bytes (newline-terminated lines)."""
    for line in lines:
        if "\n" in line:
            raise StoreError("blob lines must be newline-free to round-trip")
    return b"".join(line.encode() + b"\n" for line in lines)


def blob_lines(data: bytes) -> tuple[str, ...]:
    """Inverse of :func:`blob_bytes`."""
    if not data:
        return ()
    return tuple(data.decode()[:-1].split("\n"))


# ----------------------------------------------------------------------
# manifests / digests
# ----------------------------------------------------------------------
def encode_manifest(blob_hashes: dict[str, str]) -> bytes:
    """Canonical manifest payload from a ``path -> blob hash`` map."""
    return _canonical_json({"files": blob_hashes})


def decode_manifest(payload: bytes) -> dict[str, str]:
    """``path -> blob hash`` map of a manifest payload."""
    return dict(json.loads(payload.decode())["files"])


def snapshot_digest(snapshot: Snapshot) -> str:
    """The manifest hash a snapshot *would* have — its byte identity.

    Computable without storing anything; ``checkout`` compares the
    reconstructed snapshot's digest against the one recorded at
    materialization time before returning.
    """
    blob_hashes = {
        path: hash_object("blob", blob_bytes(tuple(lines)))
        for path, lines in snapshot.items()
    }
    return hash_object("manifest", encode_manifest(blob_hashes))


# ----------------------------------------------------------------------
# deltas
# ----------------------------------------------------------------------
def encode_delta(
    base: Snapshot, target: Snapshot, *, blob_hash_of: Callable[[str], str]
) -> bytes:
    """Canonical delta payload transforming ``base`` into ``target``.

    ``blob_hash_of(path)`` supplies the blob hash for paths the delta
    *creates* — the caller stores those blobs alongside the delta so
    creation payloads deduplicate against materialized snapshots.
    """
    entries: dict[str, object] = {}
    for path in sorted(set(base) | set(target)):
        # Presence decides create/delete before content is compared:
        # an empty file appearing or vanishing has old == new == (), and
        # a content-first check would silently drop the change.
        if path not in target:
            entries[path] = {"op": "delete"}
        elif path not in base:
            entries[path] = {"op": "create", "blob": blob_hash_of(path)}
        else:
            old = tuple(base[path])
            new = tuple(target[path])
            if old == new:
                continue
            script = compute_delta(list(old), list(new))
            ops: list[object] = []
            for op in script.ops:
                if op.kind == "insert":
                    ops.append(["insert", list(op.lines)])
                else:
                    ops.append([op.kind, op.count])
            entries[path] = {"op": "patch", "ops": ops}
    return _canonical_json({"files": entries})


def decode_delta(payload: bytes) -> dict[str, dict]:
    """``path -> entry`` map of a delta payload."""
    return dict(json.loads(payload.decode())["files"])


def apply_delta(
    base: Snapshot,
    entries: dict[str, dict],
    *,
    load_blob: Callable[[str], bytes],
) -> Snapshot:
    """Replay a decoded delta against ``base``.

    ``load_blob`` resolves ``create`` entries' blob hashes to verified
    payload bytes.  Raises :class:`StoreError` on malformed entries or
    patch scripts that do not fit the base (the corruption surface
    ``fsck`` reports as ``delta-apply-failed``).
    """
    out: Snapshot = dict(base)
    for path, entry in entries.items():
        op = entry.get("op")
        if op == "delete":
            if path not in out:
                raise StoreError(
                    f"delta deletes absent path {path!r}",
                    code="delta-apply-failed",
                )
            del out[path]
        elif op == "create":
            out[path] = blob_lines(load_blob(entry["blob"]))
        elif op == "patch":
            if path not in out:
                raise StoreError(
                    f"delta patches absent path {path!r}",
                    code="delta-apply-failed",
                )
            ops = []
            for item in entry["ops"]:
                kind = item[0]
                if kind == "insert":
                    ops.append(DeltaOp("insert", lines=tuple(item[1])))
                elif kind in ("keep", "delete"):
                    ops.append(DeltaOp(kind, count=int(item[1])))
                else:
                    raise StoreError(
                        f"unknown patch op {kind!r}", code="delta-apply-failed"
                    )
            try:
                out[path] = tuple(
                    DeltaScript(tuple(ops)).apply(list(out[path]))
                )
            except ValueError as err:
                raise StoreError(
                    f"patch does not fit base for {path!r}: {err}",
                    code="delta-apply-failed",
                ) from err
        else:
            raise StoreError(
                f"unknown delta entry op {op!r}", code="delta-apply-failed"
            )
    return out
