"""Content-addressed object backends for the materialization store.

An *object store* is a flat ``key -> bytes`` map whose keys are the
sha256 of a type-tagged payload (:func:`repro.store.codec.hash_object`).
Writing the same payload twice is a no-op — that single property is
where all deduplication in :mod:`repro.store` comes from: identical
file contents across versions, identical manifests, identical deltas
all collapse to one stored object.

Two backends ship:

:class:`MemoryObjectStore`
    A dict.  The default for tests, benchmarks and the engine-attached
    store.

:class:`FileObjectStore`
    A git-style fan-out directory (``objects/ab/cdef…``) used by the
    ``repro-versioning store`` CLI so a store survives across
    invocations.

Both expose the same five operations (``put`` / ``get`` / ``delete`` /
``keys`` / ``total_bytes``); :class:`~repro.store.store.
MaterializationStore` never cares which one it is driving.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator

__all__ = ["ObjectStore", "MemoryObjectStore", "FileObjectStore"]


class ObjectStore:
    """Abstract ``key -> bytes`` map with content-addressed semantics.

    Subclasses implement the five primitives; ``put`` must be an
    idempotent no-op when the key already exists (returning False), so
    byte-identical objects are stored exactly once.
    """

    def put(self, key: str, data: bytes) -> bool:
        """Store ``data`` under ``key``; True when the key was new."""
        raise NotImplementedError

    def get(self, key: str) -> bytes | None:
        """The stored payload, or None when the key is absent."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Drop ``key``; True when it existed."""
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        """Iterate over every stored key (no order guarantee)."""
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def size_of(self, key: str) -> int:
        """Payload size in bytes (0 for absent keys)."""
        data = self.get(key)
        return 0 if data is None else len(data)

    def total_bytes(self) -> int:
        """Sum of all stored payload sizes — the store's footprint."""
        return sum(self.size_of(k) for k in self.keys())

    def count(self) -> int:
        """Number of stored objects."""
        return sum(1 for _ in self.keys())


class MemoryObjectStore(ObjectStore):
    """In-process object store backed by a plain dict."""

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> bool:
        """Store ``data`` under ``key``; no-op when already present."""
        if key in self._objects:
            return False
        self._objects[key] = bytes(data)
        return True

    def get(self, key: str) -> bytes | None:
        """The stored payload, or None."""
        return self._objects.get(key)

    def delete(self, key: str) -> bool:
        """Drop ``key``; True when it existed."""
        return self._objects.pop(key, None) is not None

    def keys(self) -> Iterator[str]:
        """Iterate over stored keys."""
        return iter(list(self._objects))

    def total_bytes(self) -> int:
        """Sum of stored payload sizes."""
        return sum(len(v) for v in self._objects.values())

    def count(self) -> int:
        """Number of stored objects."""
        return len(self._objects)

    # test hook: fault injection needs raw access to corrupt payloads
    def poke(self, key: str, data: bytes) -> None:
        """Write ``key``'s payload *without* hashing (tests only).

        Unlike ``put`` this overwrites existing payloads and plants
        keys that do not hash to their content — exactly the corrupt
        states ``fsck`` exists to detect.
        """
        self._objects[key] = bytes(data)


class FileObjectStore(ObjectStore):
    """Fan-out directory store: ``<root>/objects/<k[:2]>/<k[2:]>``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._objects_dir = self.root / "objects"
        self._objects_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self._objects_dir / key[:2] / key[2:]

    def put(self, key: str, data: bytes) -> bool:
        """Store ``data`` under ``key``; no-op when the file exists.

        Writes go to a dot-prefixed temp file in the final bucket and
        are ``os.replace``d into place, so a crash mid-write can never
        leave a truncated object at its content-addressed key (which
        the exists-check would otherwise freeze in forever).
        """
        path = self._path(key)
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    def get(self, key: str) -> bytes | None:
        """The stored payload, or None."""
        path = self._path(key)
        try:
            return path.read_bytes()
        except OSError:
            return None

    def delete(self, key: str) -> bool:
        """Drop ``key``; True when it existed."""
        path = self._path(key)
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def keys(self) -> Iterator[str]:
        """Iterate over stored keys by walking the fan-out directory."""
        if not self._objects_dir.is_dir():
            return
        for bucket in sorted(self._objects_dir.iterdir()):
            if not bucket.is_dir():
                continue
            for obj in sorted(bucket.iterdir()):
                if obj.name.startswith("."):  # orphaned temp write
                    continue
                yield bucket.name + obj.name
