"""One entry point per paper table/figure (the experiment index).

Each ``fig*``/``table*`` function builds the dataset(s) at a benchmark-
friendly scale, runs the corresponding experiment, prints the rendered
panel, saves ``results/*.json`` and returns the structured result so
the pytest benchmarks can assert the paper's qualitative shape.

Default scales (recorded in EXPERIMENTS.md):

=================  =====  ==========================================
dataset            scale  note
=================  =====  ==========================================
datasharing        1.00   full size (29 nodes) — ILP runs here too
styleguide         0.50   ~246 nodes
996.ICU            0.08   ~255 nodes
freeCodeCamp       0.012  ~375 nodes
LeetCode family    1.00   full size (246 nodes), ER p ∈ {.05,.2,1}
=================  =====  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import VersionGraph
from ..gen.presets import PRESETS, TABLE4_PAPER, load_dataset
from .harness import (
    ExperimentResult,
    ascii_plot,
    markdown_table,
    run_bmr_experiment,
    run_msr_experiment,
)

__all__ = [
    "DEFAULT_SCALES",
    "build",
    "table4",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "theorem1",
    "footnote7_treewidth",
]

DEFAULT_SCALES: dict[str, float] = {
    "datasharing": 1.0,
    "styleguide": 0.5,
    "996.ICU": 0.08,
    "freeCodeCamp": 0.012,
    "LeetCodeAnimation": 1.0,
    "LeetCode (0.05)": 1.0,
    "LeetCode (0.2)": 1.0,
    "LeetCode (1)": 1.0,
}


def build(name: str, *, compressed: bool = False, scale: float | None = None) -> VersionGraph:
    """Dataset at its benchmark scale (see DEFAULT_SCALES)."""
    return load_dataset(
        name, scale if scale is not None else DEFAULT_SCALES[name], compressed=compressed
    )


# ----------------------------------------------------------------------
def table4(verbose: bool = True) -> list[list]:
    """Table 4: dataset overview (ours vs paper)."""
    rows = []
    for name in PRESETS:
        g = build(name)
        paper_n, paper_e, paper_sv, paper_se = TABLE4_PAPER[name]
        rows.append(
            [
                name,
                g.num_versions,
                g.num_deltas,
                g.average_version_storage(),
                g.average_delta_storage(),
                f"paper: {paper_n}/{paper_e}/{paper_sv:.2g}/{paper_se:.2g}",
            ]
        )
    if verbose:
        print(
            markdown_table(
                ["dataset", "#nodes", "#edges", "avg s_v", "avg s_e", "paper row"], rows
            )
        )
    return rows


def _msr_panel(
    name: str, *, compressed: bool, include_ilp: bool, panel: str, verbose: bool = True
) -> ExperimentResult:
    g = build(name, compressed=compressed)
    res = run_msr_experiment(
        g,
        name=panel,
        solvers=["lmg", "lmg-all", "dp-msr"],
        include_ilp=include_ilp,
    )
    if verbose:
        print()
        print(ascii_plot(res.objective, title=f"{panel} / {name}: total retrieval vs storage budget"))
        print(ascii_plot(res.runtime, title=f"{panel} / {name}: run time (s) vs storage budget"))
    res.save()
    return res


def fig10(dataset: str = "datasharing", verbose: bool = True) -> ExperimentResult:
    """Figure 10: MSR on natural graphs (OPT via ILP on datasharing)."""
    return _msr_panel(
        dataset,
        compressed=False,
        include_ilp=(dataset == "datasharing"),
        panel="fig10",
        verbose=verbose,
    )


def fig11(dataset: str = "styleguide", verbose: bool = True) -> ExperimentResult:
    """Figure 11: MSR on randomly-compressed natural graphs + run time."""
    return _msr_panel(
        dataset, compressed=True, include_ilp=(dataset == "datasharing"), panel="fig11",
        verbose=verbose,
    )


def fig12(dataset: str = "LeetCode (0.2)", verbose: bool = True) -> ExperimentResult:
    """Figure 12: MSR on compressed ER graphs + run time."""
    return _msr_panel(dataset, compressed=True, include_ilp=False, panel="fig12", verbose=verbose)


def fig13(dataset: str = "styleguide", verbose: bool = True) -> ExperimentResult:
    """Figure 13: BMR on natural graphs (MP vs DP-BMR) + run time."""
    g = build(dataset)
    res = run_bmr_experiment(g, name="fig13")
    if verbose:
        print()
        print(ascii_plot(res.objective, title=f"fig13 / {dataset}: storage vs max-retrieval budget"))
        print(ascii_plot(res.runtime, title=f"fig13 / {dataset}: run time (s)"))
    res.save()
    return res


@dataclass
class Theorem1Row:
    """One adversarial-chain measurement (LMG vs OPT at ``c/b``)."""
    c_over_b: float
    lmg_retrieval: float
    opt_retrieval: float

    @property
    def gap(self) -> float:
        """LMG's retrieval divided by the optimum's."""
        return self.lmg_retrieval / self.opt_retrieval


def theorem1(verbose: bool = True) -> list[Theorem1Row]:
    """Theorem 1: LMG's gap on the adversarial chain grows like c/b."""
    from ..core.instances import lmg_adversarial_chain
    from ..algorithms import brute_force_solve, lmg
    from ..core.problems import MSR

    rows = []
    b = 100.0
    for c in (1e3, 1e4, 1e5, 1e6):
        g = lmg_adversarial_chain(a=c, b=b, c=c)
        eps = b / c
        budget = c + (1 - eps) * b + c
        r_lmg = lmg(g, budget).total_retrieval
        r_opt = brute_force_solve(g, MSR(budget))[1].sum_retrieval
        rows.append(Theorem1Row(c / b, r_lmg, r_opt))
    if verbose:
        print(
            markdown_table(
                ["c/b", "LMG retrieval", "OPT retrieval", "gap"],
                [[r.c_over_b, r.lmg_retrieval, r.opt_retrieval, r.gap] for r in rows],
            )
        )
    return rows


def footnote7_treewidth(verbose: bool = True) -> list[list]:
    """Footnote 7: heuristic treewidth of the (emulated) repositories.

    Paper: datasharing 2, styleguide 3, leetcode 6 — natural graphs are
    tree-like, ER graphs are not.
    """
    from ..treewidth import treewidth_upper_bound, undirected_adjacency

    rows = []
    for name in ("datasharing", "styleguide", "LeetCodeAnimation", "LeetCode (0.05)"):
        g = build(name)
        w, _ = treewidth_upper_bound(undirected_adjacency(g))
        rows.append([name, g.num_versions, g.num_deltas, w])
    if verbose:
        print(markdown_table(["dataset", "#nodes", "#edges", "treewidth (ub)"], rows))
    return rows
