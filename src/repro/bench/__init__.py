"""Benchmark harness regenerating every Section-7 table and figure."""

from .harness import (
    ExperimentResult,
    Series,
    ascii_plot,
    budget_grid,
    markdown_table,
    msr_budget_grid,
    results_dir,
    run_bmr_experiment,
    run_experiment,
    run_msr_experiment,
)
from .figures import (
    DEFAULT_SCALES,
    build,
    fig10,
    fig11,
    fig12,
    fig13,
    footnote7_treewidth,
    table4,
    theorem1,
)

__all__ = [
    "Series",
    "ExperimentResult",
    "msr_budget_grid",
    "budget_grid",
    "run_experiment",
    "run_msr_experiment",
    "run_bmr_experiment",
    "ascii_plot",
    "markdown_table",
    "results_dir",
    "DEFAULT_SCALES",
    "build",
    "table4",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "theorem1",
    "footnote7_treewidth",
]
