"""Experiment harness: sweeps, series, reports.

Every Section-7 artifact is a set of *series* — objective (log scale)
against a constraint grid, per algorithm — plus run-time panels.  This
module runs the sweeps and renders results as Markdown tables and ASCII
log-plots so benchmark output is self-contained in the terminal and in
``results/*.json``.

Single-run sweep amortization
-----------------------------
Two solver classes produce their whole budget series from **one** run,
both registered per ``(problem, name)``:

* DP-style solvers (:data:`SINGLE_RUN_PANELS`: ``dp-msr``'s frontier
  is read at every budget — "the DP algorithm returns a whole spectrum
  of solutions at once", exactly as the paper does — and ``dp-bmr``
  reuses one extracted tree index across budgets);
* greedy solvers with a trajectory sweep in
  :data:`repro.algorithms.registry.SWEEPS` replay one recorded run
  across the grid through the unified
  :func:`repro.fastgraph.sweep_greedy` engine — valid because the
  greedy move sequence is budget-monotone, with band-shared live
  continuations on divergence, so each grid point's plan is identical
  to an independent solve at that budget.  The MP family has no
  replayable trajectory (its Prim growth is budget-dependent at every
  relaxation) and keeps per-budget runs.

For single-run families the run-time series records the one shared
wall-clock time, shown flat across the grid, as in the paper's panels.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.graph import VersionGraph
from ..core.problems import evaluate_plan
from ..core.problemspec import get_spec
from ..core.tolerance import within_budget_recomputed
from ..algorithms.dp_bmr import extract_index
from ..algorithms.dp_msr import DPMSRSolver
from ..algorithms.ilp import msr_ilp
from ..algorithms.registry import get_solver, get_sweep, sweep_start_edges
from ..algorithms.arborescence import min_storage_plan_tree

__all__ = [
    "Series",
    "ExperimentResult",
    "budget_grid",
    "msr_budget_grid",
    "bmr_budget_grid",
    "run_experiment",
    "run_msr_experiment",
    "run_bmr_experiment",
    "ascii_plot",
    "markdown_table",
    "results_dir",
]


@dataclass
class Series:
    """One labeled line of a figure: x (budgets) vs y (objective)."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one ``(x, y)`` measurement."""
        self.x.append(float(x))
        self.y.append(float(y))

    def finite(self) -> "Series":
        """Copy with non-finite (infeasible) points dropped."""
        pts = [(a, b) for a, b in zip(self.x, self.y) if math.isfinite(b)]
        return Series(self.label, [a for a, _ in pts], [b for _, b in pts])


@dataclass
class ExperimentResult:
    """All series of one panel plus metadata for EXPERIMENTS.md."""

    name: str
    dataset: str
    problem: str = ""  # "msr" | "bmr" (set by the run_* entry points)
    objective: dict[str, Series] = field(default_factory=dict)
    runtime: dict[str, Series] = field(default_factory=dict)
    notes: dict[str, float | str] = field(default_factory=dict)

    @property
    def budget_kind(self) -> str:
        """What the x-axis budgets constrain, from the problem's spec
        (storage for the MSR family, retrieval for the BMR family);
        empty when the problem is unset."""
        from ..core.problemspec import SPECS

        spec = SPECS.get(self.problem)
        return spec.budget_kind if spec is not None else ""

    def to_json_dict(self) -> dict:
        """Strict-JSON payload: non-finite values (infeasible grid
        points, infinite budgets) become ``None``, since ``json.dumps``
        would emit the non-RFC ``Infinity`` literal that jq/JSON.parse
        reject.  ``problem`` / ``budget_kind`` let downstream parsers
        distinguish the MSR family (storage budgets) from the BMR
        family (retrieval budgets)."""

        def series(s: Series) -> dict:
            safe = lambda vals: [v if math.isfinite(v) else None for v in vals]  # noqa: E731
            return {"x": safe(s.x), "y": safe(s.y)}

        return {
            "name": self.name,
            "dataset": self.dataset,
            "problem": self.problem,
            "budget_kind": self.budget_kind,
            "objective": {k: series(s) for k, s in self.objective.items()},
            "runtime": {k: series(s) for k, s in self.runtime.items()},
            "notes": self.notes,
        }

    def save(self, directory: Path | None = None) -> Path:
        """Write the JSON payload under ``results/``; returns the path."""
        directory = directory or results_dir()
        directory.mkdir(parents=True, exist_ok=True)
        safe = f"{self.name}_{self.dataset}".replace(" ", "_").replace("(", "").replace(")", "")
        path = directory / f"{safe}.json"
        path.write_text(json.dumps(self.to_json_dict(), indent=1, allow_nan=False))
        return path


def results_dir() -> Path:
    """The repository-level ``results/`` directory."""
    return Path(__file__).resolve().parents[3] / "results"


def msr_budget_grid(
    graph: VersionGraph, points: int = 7, span: float = 4.0
) -> list[float]:
    """Storage budgets from just-feasible to ``span`` × minimum storage,
    capped at the materialize-everything cost (the useful range)."""
    base = min_storage_plan_tree(graph).total_storage
    hi = min(base * span, graph.total_version_storage() * 1.0)
    hi = max(hi, base * 1.05)
    return list(np.geomspace(base * 1.02, hi, points))


def bmr_budget_grid(
    graph: VersionGraph, points: int = 7, span: float = 6.0
) -> list[float]:
    """Retrieval budgets from zero to ``span`` × the costliest delta:
    a zero point (materialize everything) plus a geometric ramp."""
    hi = graph.max_retrieval_cost() * span
    return [0.0] + list(np.geomspace(max(hi / 64, 1.0), hi, points - 1))


#: Problem name -> grid builder.  A new problem family registers its
#: budget-grid policy here (the spec carries the default span).
GRID_BUILDERS = {"msr": msr_budget_grid, "bmr": bmr_budget_grid}


def budget_grid(
    graph: VersionGraph,
    problem: str,
    *,
    points: int = 7,
    span: float | None = None,
) -> list[float]:
    """Build ``problem``'s default budget grid for ``graph``.

    Dispatches to the family's registered builder
    (:data:`GRID_BUILDERS`); ``span`` defaults to the spec's
    ``default_grid_span`` (4× minimum storage for MSR, 6× the
    costliest delta for BMR).
    """
    spec = get_spec(problem)
    if span is None:
        span = spec.default_grid_span
    return GRID_BUILDERS[spec.name](graph, points=points, span=span)


def _bmr_ilp_panel(graph, budget, *, time_limit, mip_rel_gap):
    """BMR OPT panel adapter (the multicommodity ILP has no gap knob)."""
    from ..algorithms.ilp import bmr_ilp

    return bmr_ilp(graph, budget, time_limit=time_limit)


#: Problem name -> ILP panel runner for ``include_ilp``; a new family
#: registers its OPT series here (or leaves it out, in which case
#: ``include_ilp`` raises instead of silently skipping).
_ILP_PANELS = {"msr": msr_ilp, "bmr": _bmr_ilp_panel}


def _dp_msr_series(graph, budgets, ctx):
    """Single-run DP-MSR panel: one frontier, read at every budget."""
    t0 = time.perf_counter()
    frontier = DPMSRSolver(graph, ticks=ctx["dp_ticks"]).frontier()
    dt = time.perf_counter() - t0
    ys = [frontier.best_retrieval_within(b) for b in budgets]
    return ys, [dt] * len(budgets)


def _dp_bmr_series(graph, budgets, ctx):
    """Shared-index DP-BMR panel: one extracted tree index, reused
    across per-budget DP runs (the paper's O(n²) amortization)."""
    from ..algorithms.dp_bmr import dp_bmr_heuristic

    spec, index = ctx["spec"], ctx["dp_bmr_index"]
    ys, ts = [], []
    for b in budgets:
        t0 = time.perf_counter()
        plan = dp_bmr_heuristic(graph, b, index=index).plan
        ts.append(time.perf_counter() - t0)
        if plan is None:  # infeasible retrieval budget
            ys.append(math.inf)
            continue
        score = evaluate_plan(graph, plan)
        assert within_budget_recomputed(spec.score_constrained(score), b)
        ys.append(spec.score_objective(score))
    return ys, ts


#: ``(problem, name)`` -> single-run panel adapter ``f(graph, budgets,
#: ctx) -> (objective_ys, seconds)`` for solvers that amortize one
#: expensive precomputation across the whole grid without a trajectory
#: sweep.  A new family's DP-style solver registers here; the shared
#: ``run_experiment`` loop stays branch-free.
SINGLE_RUN_PANELS = {
    ("msr", "dp-msr"): _dp_msr_series,
    ("bmr", "dp-bmr"): _dp_bmr_series,
}


def run_experiment(
    graph: VersionGraph,
    *,
    problem: str,
    name: str,
    solvers: list[str] | None = None,
    budgets: list[float] | None = None,
    dp_ticks: int = 96,
    include_ilp: bool = False,
    ilp_time_limit: float = 10.0,
    ilp_rel_gap: float = 0.003,
) -> ExperimentResult:
    """One Figure-10/11/12/13-style panel for any problem family.

    Single-run amortization applies per solver, not per problem:
    ``dp-msr`` runs **once** and its frontier is read at every budget,
    ``dp-bmr`` reuses a single extracted tree index across budgets,
    and every solver with a registered trajectory-replay sweep runs
    **once** per grid (plan-identical to per-budget solves — see the
    module docstring).  Single-run solvers record their one run time
    flat across the grid, as in the paper.  Everything else runs once
    per budget.  Objective extraction and the feasibility
    double-checks route through the family's
    :class:`~repro.core.problemspec.ProblemSpec`; ``include_ilp`` adds
    a time-limited OPT series via the family's registered ILP panel
    and raises for families without one.
    """
    spec = get_spec(problem)
    solvers = list(solvers) if solvers is not None else list(spec.default_panel_solvers)
    budgets = list(budgets) if budgets else budget_grid(graph, spec.name)
    result = ExperimentResult(name=name, dataset=graph.name, problem=spec.name)
    t0 = time.perf_counter()
    start_edges = sweep_start_edges(spec.name, graph, solvers)
    # a shared sweep start state (MSR's Edmonds run) is part of
    # producing every greedy series, so its cost folds into each sweep
    # solver's flat runtime below
    start_dt = time.perf_counter() - t0
    needs_index = (spec.name, "dp-bmr") in SINGLE_RUN_PANELS and "dp-bmr" in solvers
    ctx = {
        "spec": spec,
        "dp_ticks": dp_ticks,
        "dp_bmr_index": extract_index(graph) if needs_index else None,
    }

    def check_and_extract(score, b: float) -> float:
        """Spec-routed objective, with the constrained-side re-check."""
        assert within_budget_recomputed(spec.score_constrained(score), b)
        return spec.score_objective(score)

    for solver_name in solvers:
        obj = Series(solver_name)
        rt = Series(solver_name)
        grid_sweep = get_sweep(spec.name, solver_name)
        single = SINGLE_RUN_PANELS.get((spec.name, solver_name))
        if grid_sweep is None:
            # validate the name against the family up front — a
            # cross-family name (e.g. dp-msr on a BMR panel) must fail
            # with the registry's hinting KeyError, never produce a
            # silently wrong series
            get_solver(spec.name, solver_name)
        if single is not None:
            ys, ts = single(graph, list(budgets), ctx)
            for b, y, dt in zip(budgets, ys, ts):
                obj.add(b, y)
                rt.add(b, dt)
        elif grid_sweep is not None:
            t0 = time.perf_counter()
            entries = grid_sweep(graph, list(budgets), start_edges=start_edges)
            dt = time.perf_counter() - t0 + start_dt
            for e in entries:
                y = math.inf if e.score is None else check_and_extract(e.score, e.budget)
                obj.add(e.budget, y)
                rt.add(e.budget, dt)
        else:
            fn = get_solver(spec.name, solver_name)
            for b in budgets:
                t0 = time.perf_counter()
                plan = fn(graph, b)
                dt = time.perf_counter() - t0
                if plan is None:  # infeasible budget for this family
                    obj.add(b, math.inf)
                    rt.add(b, dt)
                    continue
                obj.add(b, check_and_extract(evaluate_plan(graph, plan), b))
                rt.add(b, dt)
        result.objective[solver_name] = obj
        result.runtime[solver_name] = rt

    ilp_panel = None
    if include_ilp:
        ilp_panel = _ILP_PANELS.get(spec.name)
        if ilp_panel is None:
            raise ValueError(
                f"include_ilp: no ILP panel registered for {spec.name!r}; "
                f"options: {sorted(_ILP_PANELS)}"
            )
    if ilp_panel is not None:
        obj = Series("opt-ilp")
        rt = Series("opt-ilp")
        for b in budgets:
            t0 = time.perf_counter()
            res = ilp_panel(graph, b, time_limit=ilp_time_limit, mip_rel_gap=ilp_rel_gap)
            dt = time.perf_counter() - t0
            y = math.inf if res.plan is None else spec.score_objective(res.score)
            obj.add(b, y)
            rt.add(b, dt)
        result.objective["opt-ilp"] = obj
        result.runtime["opt-ilp"] = rt

    if spec.budget_kind == "storage":
        result.notes["min_storage"] = min_storage_plan_tree(graph).total_storage
    result.notes["nodes"] = graph.num_versions
    result.notes["edges"] = graph.num_deltas
    return result


def run_msr_experiment(
    graph: VersionGraph,
    *,
    name: str,
    solvers: list[str] = ("lmg", "lmg-all", "dp-msr"),
    budgets: list[float] | None = None,
    dp_ticks: int = 96,
    include_ilp: bool = False,
    ilp_time_limit: float = 10.0,
    ilp_rel_gap: float = 0.003,
) -> ExperimentResult:
    """One Figure-10/11/12 panel: :func:`run_experiment` for MSR."""
    return run_experiment(
        graph,
        problem="msr",
        name=name,
        solvers=solvers,
        budgets=budgets,
        dp_ticks=dp_ticks,
        include_ilp=include_ilp,
        ilp_time_limit=ilp_time_limit,
        ilp_rel_gap=ilp_rel_gap,
    )


def run_bmr_experiment(
    graph: VersionGraph,
    *,
    name: str,
    solvers: list[str] = ("mp", "dp-bmr"),
    budgets: list[float] | None = None,
) -> ExperimentResult:
    """One Figure-13 panel: :func:`run_experiment` for BMR."""
    return run_experiment(
        graph, problem="bmr", name=name, solvers=solvers, budgets=budgets
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def ascii_plot(
    series_map: dict[str, Series],
    *,
    title: str = "",
    width: int = 68,
    height: int = 14,
    log_y: bool = True,
) -> str:
    """Log-scale ASCII line chart, one marker per series (paper figures
    are log-scale line charts; this is their terminal rendering)."""
    markers = "ox+*#@%&"
    finite = {k: s.finite() for k, s in series_map.items()}
    finite = {k: s for k, s in finite.items() if s.x}
    if not finite:
        return f"{title}\n(no finite data)"
    xs = [x for s in finite.values() for x in s.x]
    ys = [max(y, 1e-12) for s in finite.values() for y in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y:
        y_lo, y_hi = math.log10(y_lo), math.log10(max(y_hi, y_lo * (1 + 1e-9)))
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    grid = [[" "] * width for _ in range(height)]
    for (label, s), marker in zip(sorted(finite.items()), markers):
        for x, y in zip(s.x, s.y):
            yy = math.log10(max(y, 1e-12)) if log_y else y
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yy - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    legend = "  ".join(
        f"{m}={label}" for (label, _), m in zip(sorted(finite.items()), markers)
    )
    lines = [title, legend] if title else [legend]
    top = f"{(10 ** y_hi if log_y else y_hi):.3g}"
    bot = f"{(10 ** y_lo if log_y else y_lo):.3g}"
    lines.append(f"y: {bot} .. {top} (log)" if log_y else f"y: {bot} .. {top}")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(f"x: {x_lo:.3g} .. {x_hi:.3g}")
    return "\n".join(lines)


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """Render rows as a GitHub-flavored Markdown table."""
    def fmt(x) -> str:
        if isinstance(x, float):
            return f"{x:.4g}"
        return str(x)

    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    out.extend("| " + " | ".join(fmt(c) for c in row) + " |" for row in rows)
    return "\n".join(out)
