"""Experiment harness: sweeps, series, reports.

Every Section-7 artifact is a set of *series* — objective (log scale)
against a constraint grid, per algorithm — plus run-time panels.  This
module runs the sweeps and renders results as Markdown tables and ASCII
log-plots so benchmark output is self-contained in the terminal and in
``results/*.json``.

Single-run sweep amortization
-----------------------------
Two solver families produce their whole budget series from **one** run:

* DP-MSR's frontier is read at every budget ("the DP algorithm returns
  a whole spectrum of solutions at once", exactly as the paper does);
* the greedy families replay one recorded trajectory across the grid
  (:func:`repro.fastgraph.sweep_greedy_msr` for LMG / LMG-All,
  :func:`repro.fastgraph.sweep_greedy_bmr` for ``bmr-lmg``) — valid
  because the greedy move sequence is budget-monotone, with a live
  continuation on the rare divergence, so each grid point's plan is
  identical to an independent solve at that budget.  The MP family has
  no replayable trajectory (its Prim growth is budget-dependent at
  every relaxation) and keeps per-budget runs.

For single-run families the run-time series records the one shared
wall-clock time, shown flat across the grid, as in the paper's panels.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.graph import VersionGraph
from ..core.problems import evaluate_plan
from ..core.tolerance import within_budget_recomputed
from ..algorithms.dp_bmr import dp_bmr, extract_index
from ..algorithms.dp_msr import DPMSRSolver
from ..algorithms.ilp import msr_ilp
from ..algorithms.registry import (
    BMR_SOLVERS,
    MSR_SOLVERS,
    get_bmr_sweep,
    get_msr_sweep,
    msr_sweep_start_edges,
)
from ..algorithms.arborescence import min_storage_plan_tree

__all__ = [
    "Series",
    "ExperimentResult",
    "msr_budget_grid",
    "bmr_budget_grid",
    "run_msr_experiment",
    "run_bmr_experiment",
    "ascii_plot",
    "markdown_table",
    "results_dir",
]


@dataclass
class Series:
    """One labeled line of a figure: x (budgets) vs y (objective)."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one ``(x, y)`` measurement."""
        self.x.append(float(x))
        self.y.append(float(y))

    def finite(self) -> "Series":
        """Copy with non-finite (infeasible) points dropped."""
        pts = [(a, b) for a, b in zip(self.x, self.y) if math.isfinite(b)]
        return Series(self.label, [a for a, _ in pts], [b for _, b in pts])


@dataclass
class ExperimentResult:
    """All series of one panel plus metadata for EXPERIMENTS.md."""

    name: str
    dataset: str
    problem: str = ""  # "msr" | "bmr" (set by the run_* entry points)
    objective: dict[str, Series] = field(default_factory=dict)
    runtime: dict[str, Series] = field(default_factory=dict)
    notes: dict[str, float | str] = field(default_factory=dict)

    @property
    def budget_kind(self) -> str:
        """What the x-axis budgets constrain: storage (MSR family) or
        retrieval (BMR family); empty when the problem is unset."""
        return {"msr": "storage", "bmr": "retrieval"}.get(self.problem, "")

    def to_json_dict(self) -> dict:
        """Strict-JSON payload: non-finite values (infeasible grid
        points, infinite budgets) become ``None``, since ``json.dumps``
        would emit the non-RFC ``Infinity`` literal that jq/JSON.parse
        reject.  ``problem`` / ``budget_kind`` let downstream parsers
        distinguish the MSR family (storage budgets) from the BMR
        family (retrieval budgets)."""

        def series(s: Series) -> dict:
            safe = lambda vals: [v if math.isfinite(v) else None for v in vals]  # noqa: E731
            return {"x": safe(s.x), "y": safe(s.y)}

        return {
            "name": self.name,
            "dataset": self.dataset,
            "problem": self.problem,
            "budget_kind": self.budget_kind,
            "objective": {k: series(s) for k, s in self.objective.items()},
            "runtime": {k: series(s) for k, s in self.runtime.items()},
            "notes": self.notes,
        }

    def save(self, directory: Path | None = None) -> Path:
        """Write the JSON payload under ``results/``; returns the path."""
        directory = directory or results_dir()
        directory.mkdir(parents=True, exist_ok=True)
        safe = f"{self.name}_{self.dataset}".replace(" ", "_").replace("(", "").replace(")", "")
        path = directory / f"{safe}.json"
        path.write_text(json.dumps(self.to_json_dict(), indent=1, allow_nan=False))
        return path


def results_dir() -> Path:
    """The repository-level ``results/`` directory."""
    return Path(__file__).resolve().parents[3] / "results"


def msr_budget_grid(
    graph: VersionGraph, points: int = 7, span: float = 4.0
) -> list[float]:
    """Storage budgets from just-feasible to ``span`` × minimum storage,
    capped at the materialize-everything cost (the useful range)."""
    base = min_storage_plan_tree(graph).total_storage
    hi = min(base * span, graph.total_version_storage() * 1.0)
    hi = max(hi, base * 1.05)
    return list(np.geomspace(base * 1.02, hi, points))


def bmr_budget_grid(
    graph: VersionGraph, points: int = 7, span: float = 6.0
) -> list[float]:
    """Retrieval budgets from zero to ``span`` × the costliest delta:
    a zero point (materialize everything) plus a geometric ramp."""
    hi = graph.max_retrieval_cost() * span
    return [0.0] + list(np.geomspace(max(hi / 64, 1.0), hi, points - 1))


def run_msr_experiment(
    graph: VersionGraph,
    *,
    name: str,
    solvers: list[str] = ("lmg", "lmg-all", "dp-msr"),
    budgets: list[float] | None = None,
    dp_ticks: int = 96,
    include_ilp: bool = False,
    ilp_time_limit: float = 10.0,
    ilp_rel_gap: float = 0.003,
) -> ExperimentResult:
    """One Figure-10/11/12 panel.

    DP-MSR runs **once** and its frontier is read at every budget; the
    LMG family runs **once** per grid through the trajectory-replay
    sweep (plan-identical to per-budget solves — see the module
    docstring for the replay contract).  Both record their single run
    time flat across the grid, as in the paper.  Other solvers run once
    per budget.  ILP (OPT) is optional and time-limited.
    """
    budgets = budgets or msr_budget_grid(graph)
    result = ExperimentResult(name=name, dataset=graph.name, problem="msr")
    t0 = time.perf_counter()
    start_edges = msr_sweep_start_edges(graph, solvers)
    # the shared Edmonds run is part of producing every greedy series,
    # so its cost folds into each sweep solver's flat runtime below
    start_dt = time.perf_counter() - t0

    for solver_name in solvers:
        obj = Series(solver_name)
        rt = Series(solver_name)
        sweep = get_msr_sweep(solver_name)
        if solver_name == "dp-msr":
            t0 = time.perf_counter()
            frontier = DPMSRSolver(graph, ticks=dp_ticks).frontier()
            dt = time.perf_counter() - t0
            for b in budgets:
                obj.add(b, frontier.best_retrieval_within(b))
                rt.add(b, dt)
        elif sweep is not None:
            t0 = time.perf_counter()
            entries = sweep(graph, list(budgets), start_edges=start_edges)
            dt = time.perf_counter() - t0 + start_dt
            for e in entries:
                obj.add(e.budget, math.inf if e.score is None else e.score.sum_retrieval)
                rt.add(e.budget, dt)
        else:
            fn = MSR_SOLVERS[solver_name]
            for b in budgets:
                t0 = time.perf_counter()
                plan = fn(graph, b)
                dt = time.perf_counter() - t0
                y = math.inf if plan is None else evaluate_plan(graph, plan).sum_retrieval
                obj.add(b, y)
                rt.add(b, dt)
        result.objective[solver_name] = obj
        result.runtime[solver_name] = rt

    if include_ilp:
        obj = Series("opt-ilp")
        rt = Series("opt-ilp")
        for b in budgets:
            t0 = time.perf_counter()
            res = msr_ilp(graph, b, time_limit=ilp_time_limit, mip_rel_gap=ilp_rel_gap)
            dt = time.perf_counter() - t0
            y = math.inf if res.plan is None else res.score.sum_retrieval
            obj.add(b, y)
            rt.add(b, dt)
        result.objective["opt-ilp"] = obj
        result.runtime["opt-ilp"] = rt

    result.notes["min_storage"] = min_storage_plan_tree(graph).total_storage
    result.notes["nodes"] = graph.num_versions
    result.notes["edges"] = graph.num_deltas
    return result


def run_bmr_experiment(
    graph: VersionGraph,
    *,
    name: str,
    solvers: list[str] = ("mp", "dp-bmr"),
    budgets: list[float] | None = None,
) -> ExperimentResult:
    """One Figure-13 panel (storage objective vs retrieval budget).

    DP-BMR reuses a single extracted tree index across budgets, the
    same O(n²) precomputation amortization the paper's sweep uses;
    ``bmr-lmg`` runs **once** per grid through the trajectory-replay
    sweep (plan-identical to per-budget solves), recording its single
    run time flat across the grid like the MSR greedy series.
    """
    if budgets is None:
        budgets = bmr_budget_grid(graph)
    result = ExperimentResult(name=name, dataset=graph.name, problem="bmr")
    shared_index = extract_index(graph) if "dp-bmr" in solvers else None

    for solver_name in solvers:
        obj = Series(solver_name)
        rt = Series(solver_name)
        sweep = get_bmr_sweep(solver_name)
        if sweep is not None:
            t0 = time.perf_counter()
            entries = sweep(graph, list(budgets))
            dt = time.perf_counter() - t0
            for e in entries:
                obj.add(e.budget, math.inf if e.score is None else e.score.storage)
                rt.add(e.budget, dt)
                if e.score is not None:
                    assert within_budget_recomputed(e.score.max_retrieval, e.budget)
            result.objective[solver_name] = obj
            result.runtime[solver_name] = rt
            continue
        for b in budgets:
            t0 = time.perf_counter()
            if solver_name == "dp-bmr":
                from ..algorithms.dp_bmr import dp_bmr_heuristic

                plan = dp_bmr_heuristic(graph, b, index=shared_index).plan
            else:
                plan = BMR_SOLVERS[solver_name](graph, b)
            dt = time.perf_counter() - t0
            if plan is None:  # infeasible retrieval budget
                obj.add(b, math.inf)
                rt.add(b, dt)
                continue
            score = evaluate_plan(graph, plan)
            assert within_budget_recomputed(score.max_retrieval, b)
            obj.add(b, score.storage)
            rt.add(b, dt)
        result.objective[solver_name] = obj
        result.runtime[solver_name] = rt
    result.notes["nodes"] = graph.num_versions
    result.notes["edges"] = graph.num_deltas
    return result


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def ascii_plot(
    series_map: dict[str, Series],
    *,
    title: str = "",
    width: int = 68,
    height: int = 14,
    log_y: bool = True,
) -> str:
    """Log-scale ASCII line chart, one marker per series (paper figures
    are log-scale line charts; this is their terminal rendering)."""
    markers = "ox+*#@%&"
    finite = {k: s.finite() for k, s in series_map.items()}
    finite = {k: s for k, s in finite.items() if s.x}
    if not finite:
        return f"{title}\n(no finite data)"
    xs = [x for s in finite.values() for x in s.x]
    ys = [max(y, 1e-12) for s in finite.values() for y in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y:
        y_lo, y_hi = math.log10(y_lo), math.log10(max(y_hi, y_lo * (1 + 1e-9)))
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    grid = [[" "] * width for _ in range(height)]
    for (label, s), marker in zip(sorted(finite.items()), markers):
        for x, y in zip(s.x, s.y):
            yy = math.log10(max(y, 1e-12)) if log_y else y
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yy - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    legend = "  ".join(
        f"{m}={label}" for (label, _), m in zip(sorted(finite.items()), markers)
    )
    lines = [title, legend] if title else [legend]
    top = f"{(10 ** y_hi if log_y else y_hi):.3g}"
    bot = f"{(10 ** y_lo if log_y else y_lo):.3g}"
    lines.append(f"y: {bot} .. {top} (log)" if log_y else f"y: {bot} .. {top}")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(f"x: {x_lo:.3g} .. {x_hi:.3g}")
    return "\n".join(lines)


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """Render rows as a GitHub-flavored Markdown table."""
    def fmt(x) -> str:
        if isinstance(x, float):
            return f"{x:.4g}"
        return str(x)

    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    out.extend("| " + " | ".join(fmt(c) for c in row) + " |" for row in rows)
    return "\n".join(out)
