"""Bench-regression comparator behind ``repro-versioning bench-check``.

Compares a *candidate* benchmark payload (a fresh ``BENCH_*.json``, e.g.
a CI smoke run) against a *committed baseline* and fails when a tracked
metric regresses beyond a noise margin.  Tracked metrics are recognized
structurally, so every bench payload gets gating without a per-file
schema:

* **speedup ratios** — top-level numeric keys ending in ``_speedup``
  (plus ``min_speedup``).  These are scale-free (kernel A vs kernel B on
  the *same* machine and input), which is what makes them comparable
  across CI runners where absolute wall-clock seconds are not; absolute
  timings are deliberately *not* tracked.  Higher is better: the
  candidate must reach ``baseline * (1 - margin)``.
* **gate booleans** — top-level ``True`` baseline values (plan-identity
  flags like ``all_plans_identical``, feasibility flags, ``sweep_never_
  slower``).  A ``True → False`` transition is always a regression, no
  margin applies.  Baselines that are already ``False`` gate nothing.

A tracked metric that is missing (or ``null``) in the candidate is a
*structural* failure — the bench stopped reporting something the gate
watches — and is reported distinctly from a regression.

Exit codes (pinned by ``tests/test_bench_check.py`` and relied on by
CI):

* ``0`` — all tracked metrics within margin (improvements included);
* ``1`` — at least one regression;
* ``2`` — bad input: unreadable/illegal JSON, no baseline for a
  candidate, or a tracked metric missing from the candidate.

The default margin is **0.5**: a tracked speedup may lose up to half
its baseline value before the gate trips.  That is deliberately loose —
shared CI runners routinely halve a ratio through noisy neighbors — so
the gate catches order-of-magnitude collapses ("the incremental kernel
silently fell back to rescan") rather than jitter.  See
``docs/benchmarks.md`` for the workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "MetricDiff",
    "compare_payloads",
    "format_report",
    "main",
]

#: Default relative noise margin for speedup metrics.
DEFAULT_MARGIN = 0.5


@dataclass(frozen=True)
class MetricDiff:
    """Outcome of one tracked metric comparison."""

    key: str
    baseline: object
    candidate: object
    #: one of ``ok`` / ``improved`` / ``regression`` / ``missing``
    status: str


def _is_speedup_key(key: str) -> bool:
    return key.endswith("_speedup") or key == "min_speedup"


def tracked_metrics(baseline: dict) -> dict[str, object]:
    """The metrics of ``baseline`` that the gate watches (see module
    docstring): non-null top-level speedup ratios and True booleans."""
    out: dict[str, object] = {}
    for key, value in baseline.items():
        if _is_speedup_key(key) and isinstance(value, (int, float)):
            out[key] = float(value)
        elif value is True:
            out[key] = True
    return out


def compare_payloads(
    baseline: dict, candidate: dict, *, margin: float = DEFAULT_MARGIN
) -> list[MetricDiff]:
    """Compare the tracked metrics of two bench payloads.

    Returns one :class:`MetricDiff` per tracked metric, in baseline key
    order.  ``margin`` is the relative slack for speedup ratios; gate
    booleans are exact.
    """
    diffs: list[MetricDiff] = []
    for key, base in tracked_metrics(baseline).items():
        cand = candidate.get(key)
        if base is True:
            if cand is True:
                status = "ok"
            elif cand is None:
                status = "missing"
            else:
                status = "regression"
            diffs.append(MetricDiff(key, True, cand, status))
            continue
        if not isinstance(cand, (int, float)) or isinstance(cand, bool):
            diffs.append(MetricDiff(key, base, cand, "missing"))
            continue
        cand = float(cand)
        floor = base * (1.0 - margin)
        if cand < floor:
            status = "regression"
        elif cand > base:
            status = "improved"
        else:
            status = "ok"
        diffs.append(MetricDiff(key, base, cand, status))
    return diffs


def format_report(
    name: str, diffs: list[MetricDiff], *, margin: float = DEFAULT_MARGIN
) -> str:
    """Human-readable comparison table for one payload pair."""
    lines = [f"{name}: {len(diffs)} tracked metric(s), margin {margin:g}"]
    if not diffs:
        lines.append("  (nothing tracked in the baseline)")
    for d in diffs:
        if d.baseline is True:
            detail = f"{d.baseline} -> {d.candidate}"
        elif isinstance(d.candidate, float):
            floor = float(d.baseline) * (1.0 - margin)  # type: ignore[arg-type]
            detail = (
                f"{d.baseline:.3g} -> {d.candidate:.3g} (floor {floor:.3g})"
            )
        else:
            detail = f"{d.baseline:.3g} -> {d.candidate!r}"
        tag = {"regression": "REGRESSION", "missing": "MISSING"}.get(
            d.status, d.status
        )
        lines.append(f"  {tag:>10}  {d.key}: {detail}")
    return "\n".join(lines)


def _load(path: Path) -> dict:
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: bench payload must be a JSON object")
    return payload


def check_pair(
    baseline_path: Path, candidate_path: Path, *, margin: float
) -> tuple[int, str]:
    """Compare one candidate against its baseline.

    Returns ``(exit code, report text)`` with the code contract of the
    module docstring.
    """
    try:
        baseline = _load(baseline_path)
        candidate = _load(candidate_path)
    except (OSError, ValueError) as err:
        return 2, f"error: {err}"
    diffs = compare_payloads(baseline, candidate, margin=margin)
    report = format_report(candidate_path.name, diffs, margin=margin)
    statuses = {d.status for d in diffs}
    if "missing" in statuses:
        return 2, report
    if "regression" in statuses:
        return 1, report
    return 0, report


def main(argv: list[str] | None = None) -> int:
    """``repro-versioning bench-check`` entry point.

    Candidates are matched to baselines by file name inside
    ``--baseline-dir`` (default ``benchmarks/baselines``), or compared
    against an explicit ``--baseline`` file when given (single
    candidate only).  The worst per-pair exit code wins: missing/bad
    input (2) over regression (1) over clean (0).
    """
    parser = argparse.ArgumentParser(
        prog="repro-versioning bench-check",
        description="Fail when a bench payload regresses against its "
        "committed baseline (see docs/benchmarks.md).",
    )
    parser.add_argument("candidates", nargs="+", help="fresh BENCH_*.json files")
    parser.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="directory of committed baselines, matched by file name "
        "(default benchmarks/baselines)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="explicit baseline file (exactly one candidate required)",
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=DEFAULT_MARGIN,
        help=f"relative noise margin for speedup ratios "
        f"(default {DEFAULT_MARGIN})",
    )
    args = parser.parse_args(argv)
    if args.baseline is not None and len(args.candidates) != 1:
        print("error: --baseline takes exactly one candidate", file=sys.stderr)
        return 2

    worst = 0
    for cand in args.candidates:
        cand_path = Path(cand)
        if args.baseline is not None:
            base_path = Path(args.baseline)
        else:
            base_path = Path(args.baseline_dir) / cand_path.name
        if not base_path.exists():
            print(f"error: no baseline {base_path} for {cand_path}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        code, report = check_pair(base_path, cand_path, margin=args.margin)
        print(report)
        worst = max(worst, code)
    return worst


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
