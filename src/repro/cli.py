"""Command-line interface.

Examples
--------
Regenerate a paper figure::

    repro-versioning figure fig10 --dataset datasharing
    repro-versioning figure fig13 --dataset styleguide

Optimize a version graph stored as JSON::

    repro-versioning solve msr graph.json --budget 21000 --solver lmg-all
    repro-versioning solve bmr graph.json --budget 600 --solver dp-bmr

Sweep a whole budget grid in one pass (LMG-family solvers replay one
recorded greedy trajectory instead of re-solving per budget)::

    repro-versioning sweep msr graph.json --points 16 --format markdown
    repro-versioning sweep msr --dataset styleguide --scale 0.2 --out panel.json

Stream a repository through the online ingest engine (per-arrival plan
repair + staleness-bounded re-solves; ``--problem bmr`` serves under a
max-retrieval budget instead of a storage budget)::

    repro-versioning ingest --commits 500 --seed 7 --budget-factor 4
    repro-versioning ingest --commits 200 --budget 50000 --solver lmg-all \
        --staleness 0.05 --format markdown
    repro-versioning ingest --problem bmr --commits 200 --budget 900 \
        --solver mp-local
    repro-versioning ingest --problem bmr --commits 200 --budget-factor 3
    repro-versioning ingest --commits 400 --shards 4 --stitch-every 100

Inspect a dataset preset::

    repro-versioning dataset styleguide --scale 0.5

Notes
-----
* ``solve`` exits with code **1** and an ``infeasible:`` message on
  stderr when the budget does not admit any plan (MSR storage budget
  below the minimum storage configuration, or a negative BMR retrieval
  budget), whether the solver signals that by returning ``None`` or by
  raising ``ValueError``.  Exit code 2 is reserved for usage errors,
  including structural :class:`~repro.core.graph.GraphError` problems
  with the input graph (reported as ``error:`` on stderr).
* ``solve --backend`` picks the greedy implementation: ``array`` (the
  default — the flat-array kernels from :mod:`repro.fastgraph`) or
  ``dict`` (the reference implementation).  Both produce identical
  plans; solvers without an array variant ignore the flag.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from .core.graph import GraphError, VersionGraph
from .core.problemspec import SPECS
from .core.problems import evaluate_plan

__all__ = ["main"]


def _cmd_figure(args: argparse.Namespace) -> int:
    from . import bench

    fn = {
        "table4": lambda: bench.table4(),
        "fig10": lambda: bench.fig10(args.dataset or "datasharing"),
        "fig11": lambda: bench.fig11(args.dataset or "styleguide"),
        "fig12": lambda: bench.fig12(args.dataset or "LeetCode (0.2)"),
        "fig13": lambda: bench.fig13(args.dataset or "styleguide"),
        "theorem1": lambda: bench.theorem1(),
        "treewidth": lambda: bench.footnote7_treewidth(),
    }.get(args.name)
    if fn is None:
        print(f"unknown figure {args.name!r}", file=sys.stderr)
        return 2
    fn()
    return 0


def _load_graph(
    path: str | None, dataset: str | None = None, scale: float = 1.0
) -> VersionGraph:
    """Graph from a JSON file path, or a preset when ``dataset`` is
    given; raises OSError/KeyError/GraphError/ValueError on bad input."""
    if path is not None:
        return VersionGraph.from_json(Path(path).read_text())
    from .gen.presets import load_dataset

    return load_dataset(dataset, scale=scale)


def _cmd_solve(args: argparse.Namespace) -> int:
    from .algorithms.registry import get_solver

    try:
        graph = _load_graph(args.graph)
    except (OSError, GraphError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    solver = get_solver(args.problem, args.solver, backend=args.backend)
    try:
        plan = solver(graph, args.budget)
    except GraphError as err:
        # structural/input problem (e.g. wrong graph shape for a DP
        # solver) — a usage error, not a budget outcome
        print(f"error: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        # infeasible budget signalled by raising instead of None
        print(f"infeasible: {err}", file=sys.stderr)
        return 1
    if plan is None:
        print("infeasible: budget below the minimum achievable", file=sys.stderr)
        return 1
    score = evaluate_plan(graph, plan)
    print(
        json.dumps(
            {
                "problem": args.problem,
                "solver": args.solver,
                "budget": args.budget,
                "storage": score.storage,
                "sum_retrieval": score.sum_retrieval,
                "max_retrieval": score.max_retrieval,
                "materialized": sorted(map(str, plan.materialized)),
                "stored_deltas": sorted([list(map(str, e)) for e in plan.stored_deltas]),
            },
            indent=1,
        )
    )
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .gen.presets import load_dataset

    g = load_dataset(args.name, scale=args.scale, compressed=args.compressed)
    if args.out:
        Path(args.out).write_text(g.to_json())
        print(f"wrote {args.out}")
    print(json.dumps(g.stats(), indent=1))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .bench.harness import (
        ascii_plot,
        budget_grid,
        markdown_table,
        run_experiment,
    )
    from .core.problemspec import get_spec

    spec = get_spec(args.problem)
    if (args.graph is None) == (args.dataset is None):
        print("error: pass a graph JSON path or --dataset (not both)", file=sys.stderr)
        return 2
    try:
        graph = _load_graph(args.graph, args.dataset, args.scale)
    except (OSError, KeyError, GraphError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    default_solvers = ",".join(spec.default_panel_solvers)
    solvers = [
        s.strip() for s in (args.solvers or default_solvers).split(",") if s.strip()
    ]
    try:
        if args.budgets:
            budgets = [float(b) for b in args.budgets.split(",")]
        else:
            budgets = budget_grid(
                graph, spec.name, points=args.points, span=args.span
            )
    except ValueError as err:
        print(f"error: bad budget grid: {err}", file=sys.stderr)
        return 2

    try:
        result = run_experiment(
            graph, problem=spec.name, name="sweep", solvers=solvers, budgets=budgets
        )
    except KeyError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    # strict JSON: inf points are null; "problem"/"budget_kind" tell
    # downstream parsers whether budgets cap storage (MSR) or retrieval
    # (BMR)
    payload = result.to_json_dict()
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=1, allow_nan=False))
        print(f"wrote {args.out}", file=sys.stderr)
    if args.format in ("markdown", "both"):
        budget_label = f"{result.budget_kind} budget"

        def panel_table(series_map, label):
            headers = [budget_label] + [f"{s} ({label})" for s in solvers]
            rows = [
                [b] + [series_map[s].y[i] for s in solvers]
                for i, b in enumerate(budgets)
            ]
            return markdown_table(headers, rows)

        obj_label = spec.objective_label
        print(f"## {spec.name.upper()} sweep — {graph.name or 'graph'}\n")
        print(panel_table(result.objective, obj_label))
        print()
        print(panel_table(result.runtime, "s"))
        print()
        print(ascii_plot(result.objective, title=f"{spec.name.upper()} objective"))
    if args.format in ("json", "both"):
        print(json.dumps(payload, indent=1, allow_nan=False))
    return 0


def _run_sharded_ingest(args, repo, budget, budget_factor) -> int:
    """The ``ingest --shards N`` path: route arrivals across shard engines.

    Commits are diffed against their parents exactly like the
    single-engine path, then handed to a
    :class:`~repro.engine.sharded.ShardRouter`; a final cross-shard
    stitch produces the globally feasible plan the payload reports.
    """
    from .engine import ShardRouter
    from .vcs.build import snapshot_delta_bytes_pair

    try:
        router = ShardRouter(
            args.shards,
            problem=args.problem,
            solver=args.solver,
            budget=budget,
            budget_factor=budget_factor,
            staleness_threshold=args.staleness,
            background=args.background,
            stitch_interval=args.stitch_every,
            name=f"ingest-{args.seed}",
        )
    except (KeyError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    every = max(1, args.every)
    entries = []
    total_seconds = 0.0
    try:
        with router:
            for commit in repo.commits:
                deltas = []
                for p in commit.parents:
                    fwd, bwd = snapshot_delta_bytes_pair(
                        repo.commits[p].snapshot, commit.snapshot
                    )
                    deltas.append((p, commit.id, float(fwd), float(fwd)))
                    deltas.append((commit.id, p, float(bwd), float(bwd)))
                stats = router.ingest_version(
                    commit.id, float(commit.total_bytes()), deltas
                )
                total_seconds += stats.seconds
                if commit.id % every == 0 or commit.id == repo.num_commits - 1:
                    entry = dataclasses.asdict(stats)
                    entry["shard"] = router.shard_of(commit.id)
                    entries.append(entry)
            plan = router.stitch()
    except GraphError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"infeasible: {err}", file=sys.stderr)
        return 1

    union = router.union_graph()
    payload = {
        "problem": router.spec.name,
        "mode": "online-sharded",
        "budget_kind": router.spec.budget_kind,
        "solver": router.solver_name,
        "commits": repo.num_commits,
        "seed": args.seed,
        "budget": budget,
        "budget_factor": budget_factor,
        "shards": args.shards,
        "stitch_every": args.stitch_every,
        "staleness_threshold": (
            None if args.staleness == float("inf") else args.staleness
        ),
        "background": args.background,
        "entries": entries,
        "summary": {
            "versions": union.num_versions,
            "deltas": union.num_deltas,
            "shard_versions": [s.graph.num_versions for s in router.shards],
            "resolves": sum(s.resolves for s in router.shards),
            "stitches": router.stitches,
            "stitched_objective": router.stitched_objective,
            "stitched_feasible": plan.is_feasible(union),
            "materialized": len(plan.materialized),
            "stored_deltas": len(plan.stored_deltas),
            "total_seconds": total_seconds,
            "mean_arrival_seconds": total_seconds / max(1, repo.num_commits),
        },
    }
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=1, allow_nan=False))
        print(f"wrote {args.out}", file=sys.stderr)
    if args.format in ("markdown", "both"):
        from .bench.harness import markdown_table

        headers = ["index", "shard", "storage", "retrieval", "staleness", "resolved"]
        rows = [
            [e["index"], e["shard"], e["storage"], e["retrieval"],
             round(e["staleness"], 6), e["resolved"]]
            for e in entries
        ]
        s = payload["summary"]
        print(
            f"## {router.spec.name.upper()} sharded ingest — "
            f"{args.shards} shards\n"
        )
        print(markdown_table(headers, rows))
        print()
        print(
            f"{s['versions']} versions, {s['deltas']} deltas, "
            f"{s['resolves']} shard re-solves, {s['stitches']} stitches, "
            f"stitched objective {s['stitched_objective']}"
        )
    if args.format in ("json", "both"):
        print(json.dumps(payload, indent=1, allow_nan=False))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from .engine import IngestEngine
    from .vcs import random_repository

    if args.budget is not None and args.budget_factor is not None:
        print("error: pass --budget or --budget-factor, not both", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    budget = args.budget
    budget_factor = args.budget_factor if budget is None else None
    if budget is None and budget_factor is None:
        # both families carry an online lower bound on their budget
        # scale; 4x it is a comfortable default for either
        budget_factor = 4.0

    repo = random_repository(
        args.commits,
        branch_prob=args.branch_prob,
        merge_prob=args.merge_prob,
        seed=args.seed,
    )
    if args.shards > 1:
        return _run_sharded_ingest(args, repo, budget, budget_factor)
    try:
        engine = IngestEngine(
            problem=args.problem,
            solver=args.solver,
            budget=budget,
            budget_factor=budget_factor,
            staleness_threshold=args.staleness,
            background=args.background,
            name=f"ingest-{args.seed}",
        )
    except KeyError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    every = max(1, args.every)
    entries = []
    total_seconds = 0.0
    try:
        for stats in engine.ingest_repository(repo):
            total_seconds += stats.seconds
            if stats.index % every == 0 or stats.index == repo.num_commits - 1:
                entries.append(dataclasses.asdict(stats))
        engine.wait()  # integrate any in-flight background re-solve
    except GraphError as err:
        # GraphError subclasses ValueError: structural problems must be
        # caught first to keep the exit-code contract (2, not 1)
        print(f"error: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"infeasible: {err}", file=sys.stderr)
        return 1

    g = engine.graph
    tree = engine.tree
    payload = {
        # "problem" + "budget_kind" distinguish the families for
        # downstream parsers: MSR budgets cap plan storage, BMR budgets
        # cap every version's retrieval cost — both derived from the
        # engine's ProblemSpec, never hand-maintained literals
        "problem": engine.spec.name,
        "mode": "online",
        "budget_kind": engine.spec.budget_kind,
        "solver": engine.solver_name,
        "commits": repo.num_commits,
        "seed": args.seed,
        "budget": budget,
        "budget_factor": budget_factor,
        "staleness_threshold": (
            None if args.staleness == float("inf") else args.staleness
        ),
        "background": args.background,
        "entries": entries,
        "summary": {
            "versions": g.num_versions,
            "deltas": g.num_deltas,
            "resolves": engine.resolves,
            "final_budget": engine.current_budget(),
            "final_storage": tree.total_storage,
            "final_retrieval": tree.total_retrieval,
            "final_max_retrieval": tree.max_retrieval(),
            "final_staleness": engine.staleness_bound,
            "total_seconds": total_seconds,
            "mean_arrival_seconds": total_seconds / max(1, repo.num_commits),
        },
    }
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=1, allow_nan=False))
        print(f"wrote {args.out}", file=sys.stderr)
    if args.format in ("markdown", "both"):
        from .bench.harness import markdown_table

        budget_label = f"{payload['budget_kind']} budget"
        headers = [
            "index",
            budget_label,
            "storage",
            "retrieval",
            "max retrieval",
            "staleness",
            "resolved",
        ]
        rows = [
            [e["index"], e["budget"], e["storage"], e["retrieval"],
             e["max_retrieval"], round(e["staleness"], 6), e["resolved"]]
            for e in entries
        ]
        s = payload["summary"]
        print(f"## {engine.spec.name.upper()} online ingest — {g.name or 'repo'}\n")
        print(markdown_table(headers, rows))
        print()
        print(
            f"{s['versions']} versions, {s['deltas']} deltas, "
            f"{s['resolves']} re-solves, "
            f"{s['mean_arrival_seconds'] * 1e3:.3f} ms/arrival"
        )
    if args.format in ("json", "both"):
        print(json.dumps(payload, indent=1, allow_nan=False))
    return 0


class _StoreUsageError(Exception):
    """Invalid store-command flag combination — a usage error (exit 2),
    distinct from ValueError so it is never reported as infeasible."""


def _resolve_store_budget(graph, spec, budget, budget_factor) -> float:
    """Fixed budget, or ``factor`` x the spec's lower bound on ``graph``."""
    if (budget is None) == (budget_factor is None):
        raise _StoreUsageError("pass exactly one of --budget / --budget-factor")
    if budget is not None:
        return float(budget)
    lb = spec.lower_bound_tracker()
    lb.rebuild(graph)
    return float(budget_factor) * lb.value()


def _store_solve(repo, problem: str, solver: str | None, budget, budget_factor):
    """Solve the repo's version graph; returns ``(plan, params dict)``.

    Raises ``ValueError`` when the budget is infeasible (plan is None).
    """
    from .algorithms.registry import get_solver
    from .core.problemspec import get_spec
    from .vcs import build_graph_from_repo

    spec = get_spec(problem)
    solver = solver or spec.default_engine_solver
    graph = build_graph_from_repo(repo)
    resolved = _resolve_store_budget(graph, spec, budget, budget_factor)
    plan = get_solver(spec.name, solver)(graph, resolved)
    if plan is None:
        raise ValueError(
            f"{spec.budget_kind} budget {resolved:g} is below the minimum achievable"
        )
    return plan, {
        "problem": spec.name,
        "solver": solver,
        "budget": resolved,
        "budget_kind": spec.budget_kind,
    }


def _store_summary(store, repo) -> dict:
    """The JSON panel emitted by ``store materialize`` / ``migrate``."""
    raw = sum(c.total_bytes() for c in repo.commits)
    stored = store.total_bytes()
    versions = store.versions
    return {
        "versions": len(versions),
        "materialized": sum(1 for v in versions if store.is_materialized(v)),
        "delta_edges": sum(1 for v in versions if not store.is_materialized(v)),
        "objects": store.objects.count(),
        "stored_bytes": stored,
        "raw_bytes": raw,
        "dedup_ratio": raw / stored if stored else None,
        "max_chain_depth": max(
            (store.chain_depth(v) for v in versions), default=0
        ),
    }


def _store_repo_from_source(source: dict):
    """Regenerate the deterministic repository a store was built from."""
    from .vcs import random_repository

    return random_repository(
        source["commits"],
        branch_prob=source["branch_prob"],
        merge_prob=source["merge_prob"],
        seed=source["seed"],
    )


def _cmd_store(args: argparse.Namespace) -> int:
    from .store import MaterializationStore, StoreError

    try:
        if args.store_command == "materialize":
            store = MaterializationStore.open(args.dir)
            if store.versions:
                print(
                    "error: store already holds a plan; use `store migrate`",
                    file=sys.stderr,
                )
                return 2
            from .vcs import random_repository

            repo = random_repository(
                args.commits,
                branch_prob=args.branch_prob,
                merge_prob=args.merge_prob,
                seed=args.seed,
            )
            plan, params = _store_solve(
                repo, args.problem, args.solver, args.budget, args.budget_factor
            )
            store.materialize(repo, plan)
            store.source = {
                "commits": args.commits,
                "seed": args.seed,
                "branch_prob": args.branch_prob,
                "merge_prob": args.merge_prob,
                **params,
            }
            store.flush()
            print(json.dumps(
                {"source": store.source, **_store_summary(store, repo)},
                indent=1,
            ))
            return 0

        store = MaterializationStore.open(args.dir)
        if args.store_command == "fsck":
            findings = store.fsck()
            print(json.dumps(
                {
                    "clean": not findings,
                    "findings": [dataclasses.asdict(f) for f in findings],
                },
                indent=1,
            ))
            return 1 if findings else 0

        if args.store_command == "checkout":
            snap = store.checkout(args.version)
            total = sum(
                len(p.encode()) + sum(len(ln.encode()) + 1 for ln in lines)
                for p, lines in snap.items()
            )
            if args.out:
                out_dir = Path(args.out).resolve()
                for path, lines in snap.items():
                    # Manifest paths come from the store's own records;
                    # a tampered store must not escape the output dir.
                    target = (out_dir / path).resolve()
                    if Path(path).is_absolute() or not target.is_relative_to(
                        out_dir
                    ):
                        raise StoreError(
                            f"refusing to write outside {out_dir}: {path!r}"
                        )
                    target.parent.mkdir(parents=True, exist_ok=True)
                    target.write_text("".join(ln + "\n" for ln in lines))
                print(f"wrote {len(snap)} files to {args.out}", file=sys.stderr)
            print(json.dumps(
                {
                    "version": args.version,
                    "digest": store.digest(args.version),
                    "chain_depth": store.chain_depth(args.version),
                    "files": len(snap),
                    "bytes": total,
                },
                indent=1,
            ))
            return 0

        # migrate: re-solve the recorded instance under new parameters
        if store.source is None:
            print(
                "error: store has no recorded source; only stores built by "
                "`store materialize` can migrate via the CLI",
                file=sys.stderr,
            )
            return 2
        source = store.source
        repo = _store_repo_from_source(source)
        budget, factor = args.budget, args.budget_factor
        if budget is None and factor is None:
            budget = source["budget"]
        plan, params = _store_solve(
            repo,
            args.problem or source["problem"],
            args.solver or source["solver"],
            budget,
            factor,
        )
        report = store.sync(plan)
        store.source = {**source, **params}
        store.flush()
        print(json.dumps(
            {
                "source": store.source,
                "edges_written": report.edges_written,
                "edges_deleted": report.edges_deleted,
                "edges_rewritten": report.edges_rewritten,
                "objects_written": report.objects_written,
                "objects_deleted": report.objects_deleted,
                **_store_summary(store, repo),
            },
            indent=1,
        ))
        return 0
    except (OSError, GraphError, StoreError, KeyError, _StoreUsageError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"infeasible: {err}", file=sys.stderr)
        return 1


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from .bench.check import main as check_main

    argv: list[str] = list(args.candidates)
    argv += ["--baseline-dir", args.baseline_dir, "--margin", str(args.margin)]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    return check_main(argv)


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import main as lint_main

    argv: list[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-versioning",
        description="Dataset-versioning storage/retrieval optimization "
        "(reproduction of Guo et al., IPPS 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    p_fig.add_argument("name", help="table4|fig10|fig11|fig12|fig13|theorem1|treewidth")
    p_fig.add_argument("--dataset", default=None)
    p_fig.set_defaults(func=_cmd_figure)

    p_solve = sub.add_parser("solve", help="optimize a version graph JSON file")
    p_solve.add_argument("problem", choices=sorted(SPECS))
    p_solve.add_argument("graph", help="path to VersionGraph JSON")
    p_solve.add_argument("--budget", type=float, required=True)
    p_solve.add_argument(
        "--solver",
        default="lmg-all",
        help="msr: lmg | lmg-all | dp-msr | ilp; "
        "bmr: mp | mp-local | bmr-lmg | dp-bmr | ilp (default lmg-all)",
    )
    p_solve.add_argument(
        "--backend",
        choices=["array", "dict"],
        default=None,
        help="greedy solver backend (default: the fastgraph array kernels)",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_data = sub.add_parser("dataset", help="build a dataset preset")
    p_data.add_argument("name")
    p_data.add_argument("--scale", type=float, default=1.0)
    p_data.add_argument("--compressed", action="store_true")
    p_data.add_argument("--out", default=None)
    p_data.set_defaults(func=_cmd_dataset)

    p_sweep = sub.add_parser(
        "sweep",
        help="evaluate solvers over a whole budget grid in one pass",
        description=(
            "Evaluate solvers over a budget grid and emit the JSON/Markdown "
            "panel.  Single-run amortization: DP-MSR reads one frontier at "
            "every budget, and the LMG greedy family replays one recorded "
            "move trajectory across the grid (plan-identical to independent "
            "per-budget solves; see repro.fastgraph.trajectory).  MP and ILP "
            "run once per budget."
        ),
    )
    p_sweep.add_argument("problem", choices=sorted(SPECS))
    p_sweep.add_argument("graph", nargs="?", default=None, help="path to VersionGraph JSON")
    p_sweep.add_argument("--dataset", default=None, help="preset name instead of a JSON file")
    p_sweep.add_argument("--scale", type=float, default=1.0, help="preset scale (with --dataset)")
    p_sweep.add_argument(
        "--solvers",
        default=None,
        help="comma-separated solver names "
        "(default: lmg,lmg-all,dp-msr for msr; mp,dp-bmr for bmr)",
    )
    p_sweep.add_argument(
        "--budgets",
        default=None,
        help="comma-separated explicit budget grid (default: auto grid)",
    )
    p_sweep.add_argument(
        "--points", type=int, default=16, help="auto-grid size (default 16)"
    )
    p_sweep.add_argument(
        "--span",
        type=float,
        default=None,
        help="auto-grid span factor (default: 4 for msr, 6 for bmr, "
        "matching the harness grids)",
    )
    p_sweep.add_argument(
        "--format",
        choices=["json", "markdown", "both"],
        default="json",
        help="panel rendering (default json)",
    )
    p_sweep.add_argument("--out", default=None, help="also write the JSON panel here")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_ing = sub.add_parser(
        "ingest",
        help="stream commits through the online ingest engine",
        description=(
            "Generate a simulated repository and stream its commits through "
            "repro.engine.IngestEngine: each arrival is diffed against its "
            "parents only, appended to the incrementally compiled graph, and "
            "greedily attached to the live plan; a staleness bound triggers "
            "full re-solves.  --problem msr keeps storage within the budget "
            "(objective: total retrieval); --problem bmr keeps every "
            "version's retrieval within the budget (objective: storage).  "
            "Emits per-arrival plan stats as a strict-JSON panel (like "
            "`sweep`) or a Markdown table."
        ),
    )
    p_ing.add_argument(
        "--problem",
        choices=sorted(SPECS),
        default="msr",
        help="budget family: msr = storage budget, bmr = max-retrieval "
        "budget (default msr)",
    )
    p_ing.add_argument(
        "--commits", type=int, default=200, help="repository size (default 200)"
    )
    p_ing.add_argument("--seed", type=int, default=0, help="repository seed")
    p_ing.add_argument(
        "--branch-prob", type=float, default=0.12, help="branching probability"
    )
    p_ing.add_argument(
        "--merge-prob", type=float, default=0.06, help="merge probability"
    )
    p_ing.add_argument(
        "--budget",
        type=float,
        default=None,
        help="fixed budget (total storage for msr, max retrieval for bmr)",
    )
    p_ing.add_argument(
        "--budget-factor",
        type=float,
        default=None,
        help="dynamic budget = factor x the problem's online lower bound "
        "(min-storage bound for msr, retrieval-scale bound for bmr; "
        "default 4.0 when --budget is not given)",
    )
    p_ing.add_argument(
        "--solver",
        default=None,
        help="engine solver (msr: lmg | lmg-all, default lmg; "
        "bmr: mp | mp-local | bmr-lmg, default mp-local)",
    )
    p_ing.add_argument(
        "--staleness",
        type=float,
        default=0.1,
        help="staleness-bound re-solve threshold (default 0.1; inf disables)",
    )
    p_ing.add_argument(
        "--background",
        action="store_true",
        help="run threshold re-solves on a background thread",
    )
    p_ing.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the stream across N shard engines and stitch a "
        "global plan at the end (default 1 = single engine)",
    )
    p_ing.add_argument(
        "--stitch-every",
        type=int,
        default=None,
        help="with --shards > 1: also re-stitch the global plan every "
        "K arrivals (default: only the final stitch)",
    )
    p_ing.add_argument(
        "--every",
        type=int,
        default=1,
        help="emit every K-th arrival in the panel (default 1 = all)",
    )
    p_ing.add_argument(
        "--format",
        choices=["json", "markdown", "both"],
        default="json",
        help="panel rendering (default json)",
    )
    p_ing.add_argument("--out", default=None, help="also write the JSON panel here")
    p_ing.set_defaults(func=_cmd_ingest)

    p_bc = sub.add_parser(
        "bench-check",
        help="gate bench payloads against committed baselines",
        description=(
            "Compare fresh BENCH_*.json payloads against the committed "
            "baselines (benchmarks/baselines by default, matched by file "
            "name) and fail on regressions of the tracked metrics: speedup "
            "ratios within a noise margin, gate booleans exactly.  Exit 0 "
            "when clean, 1 on a regression, 2 on missing metrics or bad "
            "input.  See docs/benchmarks.md."
        ),
    )
    p_bc.add_argument("candidates", nargs="+", help="fresh BENCH_*.json files")
    p_bc.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="committed baseline directory (default benchmarks/baselines)",
    )
    p_bc.add_argument(
        "--baseline", default=None, help="explicit baseline file (one candidate)"
    )
    p_bc.add_argument(
        "--margin",
        type=float,
        default=0.5,
        help="relative noise margin for speedup ratios (default 0.5)",
    )
    p_bc.set_defaults(func=_cmd_bench_check)

    p_store = sub.add_parser(
        "store",
        help="execute a storage plan against a content-addressed store",
        description=(
            "Materialize a solved plan into an on-disk content-addressed "
            "store, check versions back out byte-identically, migrate the "
            "store to a re-solved plan rewriting only changed edges, and "
            "verify integrity with fsck.  See docs/storage.md."
        ),
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    ps_mat = store_sub.add_parser(
        "materialize",
        help="generate a repo, solve it, and materialize the plan",
    )
    ps_mat.add_argument("--dir", required=True, help="store directory")
    ps_mat.add_argument(
        "--commits", type=int, default=100, help="repository size (default 100)"
    )
    ps_mat.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    ps_mat.add_argument(
        "--branch-prob", type=float, default=0.15, help="branch probability"
    )
    ps_mat.add_argument(
        "--merge-prob", type=float, default=0.05, help="merge probability"
    )
    ps_mat.add_argument(
        "--problem", choices=sorted(SPECS), default="msr", help="problem family"
    )
    ps_mat.add_argument(
        "--solver", default=None, help="solver name (default: the spec's engine solver)"
    )
    ps_mat.add_argument("--budget", type=float, default=None, help="absolute budget")
    ps_mat.add_argument(
        "--budget-factor",
        type=float,
        default=None,
        help="budget as a multiple of the spec's lower bound",
    )
    ps_mat.set_defaults(func=_cmd_store)

    ps_co = store_sub.add_parser(
        "checkout", help="reconstruct one version byte-identically"
    )
    ps_co.add_argument("--dir", required=True, help="store directory")
    ps_co.add_argument("--version", type=int, required=True, help="version id")
    ps_co.add_argument("--out", default=None, help="write the files into this directory")
    ps_co.set_defaults(func=_cmd_store)

    ps_mig = store_sub.add_parser(
        "migrate",
        help="re-solve the recorded instance and rewrite only changed edges",
    )
    ps_mig.add_argument("--dir", required=True, help="store directory")
    ps_mig.add_argument(
        "--problem",
        choices=sorted(SPECS),
        default=None,
        help="switch problem family (default: keep the recorded one)",
    )
    ps_mig.add_argument(
        "--solver", default=None, help="switch solver (default: keep the recorded one)"
    )
    ps_mig.add_argument("--budget", type=float, default=None, help="absolute budget")
    ps_mig.add_argument(
        "--budget-factor",
        type=float,
        default=None,
        help="budget as a multiple of the spec's lower bound",
    )
    ps_mig.set_defaults(func=_cmd_store)

    ps_fsck = store_sub.add_parser(
        "fsck", help="verify every object hash and replay every delta chain"
    )
    ps_fsck.add_argument("--dir", required=True, help="store directory")
    ps_fsck.set_defaults(func=_cmd_store)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's AST invariant linter",
        description=(
            "Run repro.analysis over the given paths (default src/repro): "
            "tolerance-discipline, spec-routing, registry-discipline, "
            "layering and lock-discipline.  Exit 0 when clean, 1 on "
            "findings.  See docs/static_analysis.md."
        ),
    )
    p_lint.add_argument(
        "paths", nargs="*", default=[], help="files or directories (default src/repro)"
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    p_lint.add_argument(
        "--select", default=None, help="comma-separated rule names (default: all)"
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    p_lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
