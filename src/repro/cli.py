"""Command-line interface.

Examples
--------
Regenerate a paper figure::

    repro-versioning figure fig10 --dataset datasharing
    repro-versioning figure fig13 --dataset styleguide

Optimize a version graph stored as JSON::

    repro-versioning solve msr graph.json --budget 21000 --solver lmg-all
    repro-versioning solve bmr graph.json --budget 600 --solver dp-bmr

Inspect a dataset preset::

    repro-versioning dataset styleguide --scale 0.5

Notes
-----
* ``solve`` exits with code **1** and an ``infeasible:`` message on
  stderr when the budget does not admit any plan (MSR storage budget
  below the minimum storage configuration, or a negative BMR retrieval
  budget), whether the solver signals that by returning ``None`` or by
  raising ``ValueError``.  Exit code 2 is reserved for usage errors,
  including structural :class:`~repro.core.graph.GraphError` problems
  with the input graph (reported as ``error:`` on stderr).
* ``solve --backend`` picks the greedy implementation: ``array`` (the
  default — the flat-array kernels from :mod:`repro.fastgraph`) or
  ``dict`` (the reference implementation).  Both produce identical
  plans; solvers without an array variant ignore the flag.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.graph import GraphError, VersionGraph
from .core.problems import evaluate_plan

__all__ = ["main"]


def _cmd_figure(args: argparse.Namespace) -> int:
    from . import bench

    fn = {
        "table4": lambda: bench.table4(),
        "fig10": lambda: bench.fig10(args.dataset or "datasharing"),
        "fig11": lambda: bench.fig11(args.dataset or "styleguide"),
        "fig12": lambda: bench.fig12(args.dataset or "LeetCode (0.2)"),
        "fig13": lambda: bench.fig13(args.dataset or "styleguide"),
        "theorem1": lambda: bench.theorem1(),
        "treewidth": lambda: bench.footnote7_treewidth(),
    }.get(args.name)
    if fn is None:
        print(f"unknown figure {args.name!r}", file=sys.stderr)
        return 2
    fn()
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from .algorithms.registry import get_bmr_solver, get_msr_solver

    graph = VersionGraph.from_json(Path(args.graph).read_text())
    if args.problem == "msr":
        solver = get_msr_solver(args.solver, backend=args.backend)
    else:
        solver = get_bmr_solver(args.solver, backend=args.backend)
    try:
        plan = solver(graph, args.budget)
    except GraphError as err:
        # structural/input problem (e.g. wrong graph shape for a DP
        # solver) — a usage error, not a budget outcome
        print(f"error: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        # infeasible budget signalled by raising instead of None
        print(f"infeasible: {err}", file=sys.stderr)
        return 1
    if plan is None:
        print("infeasible: budget below the minimum achievable", file=sys.stderr)
        return 1
    score = evaluate_plan(graph, plan)
    print(
        json.dumps(
            {
                "problem": args.problem,
                "solver": args.solver,
                "budget": args.budget,
                "storage": score.storage,
                "sum_retrieval": score.sum_retrieval,
                "max_retrieval": score.max_retrieval,
                "materialized": sorted(map(str, plan.materialized)),
                "stored_deltas": sorted([list(map(str, e)) for e in plan.stored_deltas]),
            },
            indent=1,
        )
    )
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .gen.presets import load_dataset

    g = load_dataset(args.name, scale=args.scale, compressed=args.compressed)
    if args.out:
        Path(args.out).write_text(g.to_json())
        print(f"wrote {args.out}")
    print(json.dumps(g.stats(), indent=1))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-versioning",
        description="Dataset-versioning storage/retrieval optimization "
        "(reproduction of Guo et al., IPPS 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    p_fig.add_argument("name", help="table4|fig10|fig11|fig12|fig13|theorem1|treewidth")
    p_fig.add_argument("--dataset", default=None)
    p_fig.set_defaults(func=_cmd_figure)

    p_solve = sub.add_parser("solve", help="optimize a version graph JSON file")
    p_solve.add_argument("problem", choices=["msr", "bmr"])
    p_solve.add_argument("graph", help="path to VersionGraph JSON")
    p_solve.add_argument("--budget", type=float, required=True)
    p_solve.add_argument("--solver", default="lmg-all")
    p_solve.add_argument(
        "--backend",
        choices=["array", "dict"],
        default=None,
        help="greedy solver backend (default: the fastgraph array kernels)",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_data = sub.add_parser("dataset", help="build a dataset preset")
    p_data.add_argument("name")
    p_data.add_argument("--scale", type=float, default=1.0)
    p_data.add_argument("--compressed", action="store_true")
    p_data.add_argument("--out", default=None)
    p_data.set_defaults(func=_cmd_dataset)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
