"""repro — dataset versioning via graph optimization.

A production-quality reproduction of Guo, Li, Sukprasert, Khuller,
Deshpande, Mukherjee: *"To Store or Not to Store: a graph theoretical
approach for Dataset Versioning"* (IPPS 2024, arXiv:2402.11741).

The library answers one question: given a graph of dataset versions and
deltas between them, which versions should be stored in full and which
should be reconstructed through deltas, trading storage cost against
retrieval cost?

Subpackages
-----------
``repro.core``
    Version graphs, storage plans, the MSR/MMR/BSR/BMR problem family.
``repro.algorithms``
    Baselines, LMG / LMG-All greedy heuristics, tree DPs (DP-BMR exact,
    DP-MSR frontier), ILP exacts, Lemma-7 reductions.
``repro.fastgraph``
    Flat-array (CSR) solver kernels: compiled graphs
    (``VersionGraph.compile()``) and plan-identical array
    implementations of the greedy family; the registry's default
    backend (``backend="dict"`` keeps the reference path).
``repro.treewidth``
    Tree decompositions and the bounded-treewidth DP (Section 5.3).
``repro.vcs``
    A miniature version-control substrate (Myers diff, deltas, commits)
    used to derive "natural" version graphs.
``repro.store``
    The plan executor: a content-addressed chunk/delta store that
    materializes a plan's bytes, checks out any version byte-identically,
    migrates between plans edge-by-edge, and fscks itself.
``repro.gen``
    Synthetic workload generators emulating the paper's datasets.
``repro.engine``
    The online ingest engine: incremental graph compilation + live
    plan repair with staleness-bounded re-solves.
``repro.parallel``
    Process-based scatter/gather helpers for sweeps and the tree DP,
    plus the background re-solve runner the engine uses.
``repro.bench``
    The experiment harness regenerating every table/figure of Section 7.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
