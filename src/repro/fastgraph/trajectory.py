"""Single-pass greedy budget sweeps via trajectory replay.

A Figure-10/13-style panel evaluates a greedy solver on a whole grid
of budgets.  Re-running the solver per budget re-derives the same
start tree and replays the same greedy prefix ``O(B)`` times.  This
module turns that ``O(B · solve)`` sweep into ``O(solve + B)`` for
**both** problem families through one engine, :func:`sweep_greedy`,
parameterized by a :class:`~repro.core.problemspec.ProblemSpec`:

1. **Record** — run the solver once at the loosest grid budget,
   logging every applied move as ``(edge id, feasibility value,
   objective value)``.  The feasibility value is exactly the quantity
   the live kernel checked against its budget — plan storage after the
   move for the MSR family, the moved subtree's post-move max
   retrieval for the BMR family — supplied per spec, so replay
   admission (:meth:`ProblemSpec.replay_feasible`) is bit-equal to a
   fresh run's own check.
2. **Replay** — walk the grid in ascending budget order, applying
   recorded moves onto one shared tree while they stay feasible; each
   exact grid point's plan is emitted straight from the shared tree.
3. **Diverge** — when the next recorded move overshoots the current
   budget, the run at that budget may settle for a different move.
   All grid budgets that diverge *at the same recorded position* form
   a **band**: the loosest band member forks an O(V)
   :meth:`ArrayPlanTree.clone` and resumes the live kernel, recording
   its continuation; the tighter band members then replay **that**
   recorded continuation recursively instead of re-running live moves
   from the shared prefix.  This divergence-continuation sharing is
   what lifts LMG-All's sweep speedup toward LMG's: on dense grids the
   expensive live rounds run once per band, not once per grid point.

Why replay is valid
-------------------
The greedy move sequence is budget-monotone.  At any state, the set of
feasible moves under a tighter budget is a subset of the set under a
looser one, and both runs pick the scan-order-first maximum of the
same ranking key.  Hence while the looser run's chosen move remains
feasible under the tighter budget, it is *also* the tighter run's
first maximum — the tighter run's plan follows the looser run's
trajectory up to the first recorded move that exceeds the tighter
budget.  From there the tighter run is an ordinary greedy run from the
shared state, which is exactly the same record/replay problem one
level down: the band's loosest budget records it live, and the band's
tighter budgets replay that recording.  Every emitted plan is
*identical by construction* to an independent solve at its budget,
enforced by ``tests/test_sweep_trajectory.py`` and
``tests/test_sweep_continuation.py``.

MP is excluded: Modified Prim's grows a tree from scratch whose
*structure* depends on the retrieval budget at every relaxation, so
its runs at different budgets share no prefix trajectory.  MP sweeps
amortize the compiled graph instead (see :mod:`repro.parallel.sweep`).
``mp-local`` inherits MP's exclusion (its start tree is MP's).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import VersionGraph
from ..core.problems import PlanScore, evaluate_plan
from ..core.problemspec import ProblemSpec, get_spec
from ..core.solution import StoragePlan
from .compiled import CompiledGraph
from .plantree import ArrayPlanTree
from .solvers import (
    _bmr_default_rounds,
    _bmr_run,
    _compiled,
    _lmg_all_default_rounds,
    _lmg_all_run,
    _lmg_candidates,
    _lmg_default_rounds,
    _lmg_run,
    _materialized_array_tree,
)

__all__ = [
    "SweepEntry",
    "sweep_greedy",
    "sweep_greedy_msr",
    "sweep_greedy_bmr",
    "TRAJECTORY_SOLVERS",
    "GREEDY_SWEEP_SOLVERS",
    "BMR_GREEDY_SWEEP_SOLVERS",
]


@dataclass(frozen=True)
class SweepEntry:
    """One grid point of a greedy budget sweep.

    ``plan``/``score`` are ``None`` when the budget is infeasible for
    the whole family (below the minimum storage configuration for MSR,
    negative for BMR), matching the registry solvers'
    ``None``-on-infeasible contract.  ``replayed`` is True when the
    plan was served entirely from recorded trajectories (the main
    recording or a shared divergence continuation); False means a live
    kernel continuation had to apply at least one new move for this
    specific budget.
    """

    budget: float
    plan: StoragePlan | None
    score: PlanScore | None
    replayed: bool

    @property
    def feasible(self) -> bool:
        """True when the budget admitted a plan."""
        return self.plan is not None


def _start_msr(cg: CompiledGraph, start_edges) -> ArrayPlanTree:
    """MSR start: the minimum-storage arborescence (Edmonds)."""
    if start_edges is None:
        from .arborescence import min_storage_parent_edges

        start_edges = min_storage_parent_edges(cg)
    return ArrayPlanTree(cg, start_edges)


def _start_bmr(cg: CompiledGraph, start_edges) -> ArrayPlanTree:
    """BMR start: the all-materialized plan (``start_edges`` unused)."""
    return _materialized_array_tree(cg)


def _run_lmg(cg, tree, budget, rounds, record) -> None:
    """Resumable LMG rounds (candidates derived from the tree state)."""
    _lmg_run(cg, tree, _lmg_candidates(cg, tree), budget, rounds, record)


def _run_lmg_all(cg, tree, budget, rounds, record) -> None:
    """Resumable LMG-All rounds."""
    _lmg_all_run(cg, tree, budget, rounds, record)


def _run_bmr(cg, tree, budget, rounds, record) -> None:
    """Resumable BMR local-move rounds."""
    _bmr_run(cg, tree, budget, rounds, record)


@dataclass(frozen=True)
class _TrajectoryFamily:
    """How one greedy solver plugs into the replay engine.

    ``start`` builds the budget-independent start tree, ``run`` resumes
    the live kernel from any tree state (recording applied moves), and
    ``rounds`` caps the total greedy rounds exactly like a fresh run.
    """

    start: object  # (cg, start_edges) -> ArrayPlanTree
    run: object  # (cg, tree, budget, rounds, record) -> None
    rounds: object  # (cg) -> int


#: ``(problem, solver)`` -> replay adapter, for every greedy solver
#: whose trajectory is budget-monotone.  The MP family is absent by
#: design (see the module docstring).
TRAJECTORY_SOLVERS = {
    ("msr", "lmg"): _TrajectoryFamily(_start_msr, _run_lmg, _lmg_default_rounds),
    ("msr", "lmg-all"): _TrajectoryFamily(
        _start_msr, _run_lmg_all, _lmg_all_default_rounds
    ),
    ("bmr", "bmr-lmg"): _TrajectoryFamily(
        _start_bmr, _run_bmr, _bmr_default_rounds
    ),
}

#: MSR solver names the trajectory sweep supports.
GREEDY_SWEEP_SOLVERS = tuple(
    # key filter over the (problem, name) table, not behavior dispatch
    # lint-ignore: spec-routing
    sorted(n for p, n in TRAJECTORY_SOLVERS if p == "msr")
)

#: BMR solver names the trajectory sweep supports.
BMR_GREEDY_SWEEP_SOLVERS = tuple(
    # key filter over the (problem, name) table, not behavior dispatch
    # lint-ignore: spec-routing
    sorted(n for p, n in TRAJECTORY_SOLVERS if p == "bmr")
)


def sweep_greedy(
    graph: VersionGraph | CompiledGraph,
    problem: str | ProblemSpec,
    solver: str,
    budgets: list[float],
    *,
    start_edges: list[tuple[int, int]] | None = None,
) -> list[SweepEntry]:
    """Evaluate ``solver`` at every budget of ``problem`` in one run.

    Parameters
    ----------
    graph:
        A :class:`VersionGraph` (compiled through the cached hook) or a
        pre-built :class:`CompiledGraph`.
    problem:
        Problem family name (``"msr"`` / ``"bmr"``) or a
        :class:`~repro.core.problemspec.ProblemSpec`.
    solver:
        A solver registered in :data:`TRAJECTORY_SOLVERS` for the
        family.
    budgets:
        Budgets (storage for MSR, max retrieval for BMR), any order,
        duplicates allowed.  Results come back in the same order.
    start_edges:
        Optional pre-computed minimum-storage arborescence as
        ``(version index, parent edge id)`` pairs — lets parallel MSR
        workers reuse one Edmonds run.  Families whose start tree is
        not the arborescence (BMR's all-materialized start) ignore it.

    Every entry's plan is identical (parent map, storage, retrieval) to
    an independent solver run at that budget; diverged grid points
    share recorded continuations per divergence band (see the module
    docstring).
    """
    spec = get_spec(problem)
    try:
        family = TRAJECTORY_SOLVERS[(spec.name, solver)]
    except KeyError:
        options = sorted(n for p, n in TRAJECTORY_SOLVERS if p == spec.name)
        raise KeyError(
            f"unknown {spec.name.upper()} sweep solver {solver!r}; "
            f"options: {options}"
        ) from None
    cg = _compiled(graph)
    score_graph = graph if isinstance(graph, VersionGraph) else cg.graph

    base = family.start(cg, start_edges)
    floor = spec.sweep_floor(base)
    results: list[SweepEntry | None] = [None] * len(budgets)
    feasible_ix = []
    for i, b in enumerate(budgets):
        if spec.replay_feasible(floor, b):
            feasible_ix.append(i)
        else:
            results[i] = SweepEntry(
                budget=float(b), plan=None, score=None, replayed=False
            )
    if not feasible_ix:
        return [e for e in results if e is not None]

    # one full solver run at the loosest budget, recording every move
    loosest = max(budgets[i] for i in feasible_ix)
    rec_tree = base.clone()
    total_rounds = family.rounds(cg)
    steps: list[tuple[int, float, float]] = []
    family.run(cg, rec_tree, loosest, total_rounds, steps)

    def emit(i: int, tree: ArrayPlanTree, replayed: bool) -> None:
        plan = tree.to_plan()
        results[i] = SweepEntry(
            budget=float(budgets[i]),
            plan=plan,
            score=evaluate_plan(score_graph, plan),
            replayed=replayed,
        )

    halts = spec.replay_halts_on_budget

    def solve_points(
        tree: ArrayPlanTree,
        start_value: float,
        recorded: list[tuple[int, float, float]],
        used_rounds: int,
        ixs: list[int],
        enqueue,
    ) -> None:
        """Serve grid indices ``ixs`` (ascending budgets) from ``tree``.

        ``tree`` is the shared state where ``recorded`` starts and is
        mutated forward; divergence positions are non-decreasing in the
        budget, so both the shared tree and the scan cursor only ever
        move forward (the whole replay of one recording is O(len
        (recorded) + len(ixs)), never a per-budget rescan).  Diverged
        indices are grouped into same-position bands; each band's
        loosest member records a live continuation that the tighter
        members replay via a work item handed to ``enqueue``.
        """
        # scan cursor over ``recorded``: positions are non-decreasing
        # in the budget, so each budget resumes where the previous one
        # stopped.  ``before`` is the constrained accumulator at the
        # cursor — for halting families it is the feasibility value
        # recorded at the previous step (bit-equal to the live tree's,
        # because replay applies identical moves in identical order).
        scan_pos = 0
        scan_before = start_value

        def position(b: float) -> tuple[int, bool]:
            """Where a fresh run at ``b`` departs from ``recorded``.

            Returns ``(pos, exact)``: ``exact`` means the fresh run
            simply stops at ``pos`` (budget halt, or trajectory
            exhausted) and the replayed prefix *is* its plan; otherwise
            the recorded move at ``pos`` is infeasible at ``b`` and the
            run diverges there.  Advances the shared cursor: a looser
            budget can neither halt nor go infeasible before a tighter
            one did, so restarting the scan is never needed.
            """
            nonlocal scan_pos, scan_before
            while scan_pos < len(recorded):
                if halts and scan_before >= b:
                    return scan_pos, True
                feas = recorded[scan_pos][1]
                if not spec.replay_feasible(feas, b):
                    return scan_pos, False
                scan_before = feas
                scan_pos += 1
            return len(recorded), True

        pos = 0
        k = 0
        while k < len(ixs):
            i = ixs[k]
            p, exact = position(budgets[i])
            while pos < p:
                tree.apply_swap_edge(recorded[pos][0])
                pos += 1
            if exact:
                emit(i, tree, replayed=True)
                k += 1
                continue
            band = [i]
            k += 1
            while k < len(ixs):
                pj, exj = position(budgets[ixs[k]])
                if exj or pj != p:
                    break
                band.append(ixs[k])
                k += 1
            # the loosest band member resumes the live kernel on a fork,
            # recording its continuation for the tighter members
            fork = tree.clone()
            continuation: list[tuple[int, float, float]] = []
            family.run(
                cg,
                fork,
                budgets[band[-1]],
                max(0, total_rounds - (used_rounds + p)),
                continuation,
            )
            emit(band[-1], fork, replayed=not continuation)
            if len(band) > 1:
                enqueue(
                    (
                        tree.clone(),
                        spec.sweep_floor(tree) if halts else start_value,
                        continuation,
                        used_rounds + p,
                        band[:-1],
                    )
                )

    # Band work items are independent of each other and of the frame
    # that spawned them (each carries its own cloned tree), so nested
    # sub-divergence is drained from an explicit worklist instead of
    # recursion — a dense grid cannot hit the interpreter's recursion
    # limit no matter how deep bands nest.
    ordered = sorted(feasible_ix, key=lambda i: budgets[i])
    work = [(base, floor, steps, 0, ordered)]
    while work:
        frame = work.pop()
        solve_points(*frame, enqueue=work.append)
    return [e for e in results if e is not None]


def sweep_greedy_msr(
    graph: VersionGraph | CompiledGraph,
    solver: str,
    budgets: list[float],
    *,
    start_edges: list[tuple[int, int]] | None = None,
) -> list[SweepEntry]:
    """Storage-budget sweep: :func:`sweep_greedy` with ``problem="msr"``."""
    return sweep_greedy(graph, "msr", solver, budgets, start_edges=start_edges)


def sweep_greedy_bmr(
    graph: VersionGraph | CompiledGraph,
    solver: str,
    budgets: list[float],
) -> list[SweepEntry]:
    """Retrieval-budget sweep: :func:`sweep_greedy` with ``problem="bmr"``."""
    return sweep_greedy(graph, "bmr", solver, budgets)
