"""Single-pass greedy budget sweeps via trajectory replay.

A Figure-10-style panel evaluates LMG / LMG-All on a whole grid of
storage budgets.  Re-running the solver per budget re-derives the same
Edmonds start tree and replays the same greedy prefix ``O(B)`` times.
This module turns that ``O(B · solve)`` sweep into ``O(solve + B)``:

1. **Record** — run the solver once at the loosest grid budget,
   logging every applied move as ``(edge id, total_storage after,
   total_retrieval after)``.
2. **Replay** — walk the grid in ascending budget order, applying
   recorded moves onto one shared tree while they stay feasible; each
   grid point's plan is emitted straight from the shared tree.
3. **Diverge** — when the next recorded move overshoots the current
   budget, fork an O(V) :meth:`ArrayPlanTree.clone` and resume the
   *live* greedy on the clone at that budget.

Why replay is valid
-------------------
The greedy move sequence is budget-monotone.  At any state, the set of
feasible moves under a tighter budget is a subset of the set under a
looser one, and both solvers pick the scan-order-first maximum of the
same ranking key.  Hence while the loose run's chosen move remains
feasible under the tighter budget, it is *also* the tighter run's
first maximum — the tighter run's plan is a prefix of the loose run's
trajectory.  The first recorded move that exceeds the tighter budget is
where the runs may diverge (the tighter run may settle for a cheaper,
lower-ranked move); from there the sweep resumes the ordinary kernel on
a cloned tree, so the emitted plan is *identical by construction* to an
independent solve at that budget, divergence or not.  Feasibility
checks during replay compare the recorded post-move storage against
:func:`repro.core.tolerance.within_budget` — bit-equal to the fresh
run's check because replaying identical moves accumulates identical
IEEE floats.

MP is excluded: Modified Prim's grows a tree from scratch whose
*structure* depends on the retrieval budget at every relaxation, so its
runs at different budgets share no prefix trajectory.  MP sweeps
amortize the compiled graph instead (see :mod:`repro.parallel.sweep`).
``mp-local`` inherits MP's exclusion (its start tree is MP's).

Retrieval-budget grids (BMR)
----------------------------
:func:`sweep_greedy_bmr` applies the same record/replay/diverge scheme
to ``bmr-lmg``, whose trajectory is budget-monotone for the identical
reason: its all-materialized start is budget-independent, a move's
feasibility check (``max retrieval of the moved subtree after the
move`` against the budget) is monotone in the budget, and its ranking
key never reads the budget.  Each recorded step stores that post-move
subtree maximum — bit-equal to what a fresh run at a tighter budget
would compute in the same state — so replay admission is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import VersionGraph
from ..core.problems import PlanScore, evaluate_plan
from ..core.solution import StoragePlan
from ..core.tolerance import within_budget
from .compiled import CompiledGraph
from .plantree import ArrayPlanTree
from .solvers import (
    _bmr_default_rounds,
    _bmr_run,
    _check_bmr_feasible,
    _compiled,
    _lmg_all_default_rounds,
    _lmg_all_run,
    _lmg_candidates,
    _lmg_default_rounds,
    _lmg_run,
    _materialized_array_tree,
)

__all__ = [
    "SweepEntry",
    "sweep_greedy_msr",
    "sweep_greedy_bmr",
    "GREEDY_SWEEP_SOLVERS",
    "BMR_GREEDY_SWEEP_SOLVERS",
]

#: MSR solver names the trajectory sweep supports.
GREEDY_SWEEP_SOLVERS = ("lmg", "lmg-all")

#: BMR solver names the trajectory sweep supports (``mp`` / ``mp-local``
#: are excluded: their MP start tree is budget-dependent).
BMR_GREEDY_SWEEP_SOLVERS = ("bmr-lmg",)


@dataclass(frozen=True)
class SweepEntry:
    """One grid point of a greedy budget sweep.

    ``plan``/``score`` are ``None`` when the budget is below the
    minimum storage configuration (matching the registry solvers'
    ``None``-on-infeasible contract).  ``replayed`` is True when the
    plan came straight from the recorded trajectory; False means the
    live greedy had to resume past a divergence point.
    """

    budget: float
    plan: StoragePlan | None
    score: PlanScore | None
    replayed: bool

    @property
    def feasible(self) -> bool:
        """True when the budget admitted a plan."""
        return self.plan is not None


def _record_trajectory(
    cg: CompiledGraph, solver: str, tree: ArrayPlanTree, budget: float
) -> list[tuple[int, float, float]]:
    steps: list[tuple[int, float, float]] = []
    if solver == "lmg":
        rounds = _lmg_default_rounds(cg)
        _lmg_run(cg, tree, _lmg_candidates(cg, tree), budget, rounds, steps)
    else:
        _lmg_all_run(cg, tree, budget, _lmg_all_default_rounds(cg), steps)
    return steps


def _continue_live(
    cg: CompiledGraph,
    solver: str,
    tree: ArrayPlanTree,
    budget: float,
    used_rounds: int,
) -> int:
    """Resume the ordinary greedy kernel from ``tree``; returns the
    number of moves it applied."""
    applied: list[tuple[int, float, float]] = []
    if solver == "lmg":
        rounds = max(0, _lmg_default_rounds(cg) - used_rounds)
        _lmg_run(cg, tree, _lmg_candidates(cg, tree), budget, rounds, applied)
    else:
        rounds = max(0, _lmg_all_default_rounds(cg) - used_rounds)
        _lmg_all_run(cg, tree, budget, rounds, applied)
    return len(applied)


def sweep_greedy_msr(
    graph: VersionGraph | CompiledGraph,
    solver: str,
    budgets: list[float],
    *,
    start_edges: list[tuple[int, int]] | None = None,
) -> list[SweepEntry]:
    """Evaluate ``solver`` at every storage budget with one solver run.

    Parameters
    ----------
    graph:
        A :class:`VersionGraph` (compiled through the cached hook) or a
        pre-built :class:`CompiledGraph`.
    solver:
        ``"lmg"`` or ``"lmg-all"`` (see :data:`GREEDY_SWEEP_SOLVERS`).
    budgets:
        Storage budgets, any order, duplicates allowed.  Results come
        back in the same order.
    start_edges:
        Optional pre-computed minimum-storage arborescence as
        ``(version index, parent edge id)`` pairs — lets parallel
        workers reuse one Edmonds run instead of re-deriving it.

    Every entry's plan is identical (parent map, storage, retrieval) to
    an independent ``lmg_array`` / ``lmg_all_array`` run at that budget.
    """
    if solver not in GREEDY_SWEEP_SOLVERS:
        raise KeyError(
            f"unknown sweep solver {solver!r}; options: {list(GREEDY_SWEEP_SOLVERS)}"
        )
    cg = _compiled(graph)
    score_graph = graph if isinstance(graph, VersionGraph) else cg.graph
    if start_edges is None:
        from .arborescence import min_storage_parent_edges

        start_edges = min_storage_parent_edges(cg)
    base = ArrayPlanTree(cg, start_edges)
    min_storage = base.total_storage

    results: list[SweepEntry | None] = [None] * len(budgets)
    feasible_ix = []
    for i, b in enumerate(budgets):
        if within_budget(min_storage, b):
            feasible_ix.append(i)
        else:
            results[i] = SweepEntry(
                budget=float(b), plan=None, score=None, replayed=False
            )
    if not feasible_ix:
        return [e for e in results if e is not None]

    # one full solver run at the loosest budget, recording every move
    loosest = max(budgets[i] for i in feasible_ix)
    rec_tree = base.clone()
    steps = _record_trajectory(cg, solver, rec_tree, loosest)

    def emit(i: int, tree: ArrayPlanTree, replayed: bool) -> None:
        plan = tree.to_plan()
        results[i] = SweepEntry(
            budget=float(budgets[i]),
            plan=plan,
            score=evaluate_plan(score_graph, plan),
            replayed=replayed,
        )

    # ascending replay over one shared tree; ``pos`` counts applied steps
    pos = 0
    for i in sorted(feasible_ix, key=lambda i: budgets[i]):
        b = budgets[i]
        exact = True
        while pos < len(steps):
            if base.total_storage >= b:
                break  # fresh run stops before scanning: prefix is exact
            eid, storage_after, _ = steps[pos]
            if not within_budget(storage_after, b):
                exact = False  # fresh run may settle for a cheaper move
                break
            base.apply_swap_edge(eid)
            pos += 1
        if exact:
            emit(i, base, replayed=True)
        else:
            fork = base.clone()
            applied = _continue_live(cg, solver, fork, b, used_rounds=pos)
            emit(i, fork, replayed=applied == 0)

    return [e for e in results if e is not None]


def sweep_greedy_bmr(
    graph: VersionGraph | CompiledGraph,
    solver: str,
    budgets: list[float],
) -> list[SweepEntry]:
    """Evaluate ``solver`` at every retrieval budget with one solver run.

    The BMR counterpart of :func:`sweep_greedy_msr`: one ``bmr-lmg``
    run at the loosest retrieval budget records every applied move plus
    the move's feasibility value (the moved subtree's post-move max
    retrieval); tighter budgets replay the recorded prefix while those
    values stay within budget and resume the live kernel on a cloned
    tree past the first infeasible recorded move.  Entries with a
    negative (infeasible) budget come back with ``plan=None``,
    mirroring the registry solvers' ``None``-on-infeasible contract.

    Every entry's plan is identical (parent map, storage, retrieval) to
    an independent :func:`~repro.fastgraph.solvers.bmr_lmg_array` run
    at that budget.
    """
    if solver not in BMR_GREEDY_SWEEP_SOLVERS:
        raise KeyError(
            f"unknown BMR sweep solver {solver!r}; "
            f"options: {list(BMR_GREEDY_SWEEP_SOLVERS)}"
        )
    cg = _compiled(graph)
    score_graph = graph if isinstance(graph, VersionGraph) else cg.graph

    results: list[SweepEntry | None] = [None] * len(budgets)
    feasible_ix = []
    for i, b in enumerate(budgets):
        if within_budget(0.0, b):
            feasible_ix.append(i)
        else:
            results[i] = SweepEntry(
                budget=float(b), plan=None, score=None, replayed=False
            )
    if not feasible_ix:
        return [e for e in results if e is not None]

    # one full solver run at the loosest budget, recording every move
    loosest = max(budgets[i] for i in feasible_ix)
    _check_bmr_feasible(loosest)
    base = _materialized_array_tree(cg)
    rec_tree = base.clone()
    rounds = _bmr_default_rounds(cg)
    steps: list[tuple[int, float, float]] = []
    _bmr_run(cg, rec_tree, loosest, rounds, steps)

    def emit(i: int, tree: ArrayPlanTree, replayed: bool) -> None:
        plan = tree.to_plan()
        results[i] = SweepEntry(
            budget=float(budgets[i]),
            plan=plan,
            score=evaluate_plan(score_graph, plan),
            replayed=replayed,
        )

    # ascending replay over one shared tree; ``pos`` counts applied steps
    pos = 0
    for i in sorted(feasible_ix, key=lambda i: budgets[i]):
        b = budgets[i]
        exact = True
        while pos < len(steps):
            eid, moved_submax, _ = steps[pos]
            if not within_budget(moved_submax, b):
                exact = False  # fresh run may settle for a smaller-shift move
                break
            base.apply_swap_edge(eid)
            pos += 1
        if exact:
            emit(i, base, replayed=True)
        else:
            fork = base.clone()
            applied = _bmr_run(cg, fork, b, max(0, rounds - pos))
            emit(i, fork, replayed=applied == 0)

    return [e for e in results if e is not None]
