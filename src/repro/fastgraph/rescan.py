"""Frozen rescan-per-round greedy kernels (perf baseline + oracle).

These are the pre-incremental array kernels, preserved verbatim: every
round re-scores *every* candidate move from the tree's cached vectors,
re-runs the Euler DFS (LMG-All / BMR), and applies the winning swap
through the original Python-walk path
(:meth:`~repro.fastgraph.plantree.ArrayPlanTree._apply_swap_rescan`).

They exist for two reasons:

* **perf baseline** — ``benchmarks/bench_scaling_xl.py`` measures the
  incremental kernels (:mod:`~repro.fastgraph.solvers`) against these
  to report the swap-loop speedup at the 20k/100k tiers;
* **identity oracle** — a third independent implementation (after the
  dict reference and the incremental kernels) that must produce
  bit-identical plans; ``tests/test_incremental_kernels.py`` checks all
  three against each other.

Do not "improve" these loops: their per-round full rescan *is* the
behavior being measured.  The selection logic must stay in lockstep
with the incremental kernels' masked argmax — both are clones of the
dict reference's scan.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import VersionGraph
from ..core.tolerance import within_budget
from .compiled import CompiledGraph
from .plantree import ArrayPlanTree
from .solvers import (
    _NEG_INF,
    _bmr_default_rounds,
    _check_bmr_feasible,
    _check_msr_feasible,
    _compiled,
    _lmg_all_default_rounds,
    _lmg_candidates,
    _lmg_default_rounds,
    _materialized_array_tree,
    _min_storage_array_tree,
)

__all__ = ["lmg_array_rescan", "lmg_all_array_rescan", "bmr_lmg_array_rescan"]


def _lmg_run_rescan(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    cand: np.ndarray,
    storage_budget: float,
    rounds: int,
) -> None:
    """LMG rounds, re-scoring every surviving candidate each round."""
    aux = cg.aux
    es = cg.edge_storage

    for _ in range(rounds):
        if tree.total_storage >= storage_budget or cand.size == 0:
            break
        live = cand[tree.parent[cand] != aux]
        if live.size == 0:
            break
        # materialization move per candidate: (P(v), v) -> (AUX, v)
        ds = es[cg.aux_edge[live]] - es[tree.par_edge[live]]
        reduction = tree.ret[live] * tree.size[live]  # == -dr
        valid = within_budget(tree.total_storage + ds, storage_budget) & (
            reduction > 0.0
        )
        if not valid.any():
            break
        inf_tier = valid & (ds <= 0.0)
        if inf_tier.any():
            # rho = inf tier: larger reduction wins, first in order on ties
            pick = int(np.argmax(np.where(inf_tier, reduction, _NEG_INF)))
        else:
            rho = np.full(live.shape, _NEG_INF)
            np.divide(reduction, ds, out=rho, where=valid)
            pick = int(np.argmax(rho))
        best_v = int(live[pick])
        tree._apply_swap_rescan(int(cg.aux_edge[best_v]))
        cand = cand[cand != best_v]


def lmg_array_rescan(
    graph: VersionGraph | CompiledGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Rescan-per-round LMG; plan-identical to :func:`~repro.fastgraph.
    solvers.lmg_array` and the dict reference."""
    cg = _compiled(graph)
    tree = _min_storage_array_tree(cg)
    _check_msr_feasible(tree, storage_budget)
    cand = _lmg_candidates(cg, tree)
    rounds = max_iterations if max_iterations is not None else _lmg_default_rounds(cg)
    _lmg_run_rescan(cg, tree, cand, storage_budget, rounds)
    return tree


def _lmg_all_run_rescan(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    storage_budget: float,
    rounds: int,
) -> None:
    """LMG-All rounds with a full Euler DFS + edge rescan per round."""
    aux = cg.aux
    src, dst = cg.edge_src, cg.edge_dst
    es, er = cg.edge_storage, cg.edge_retrieval

    for _ in range(rounds):
        if tree.total_storage >= storage_budget:
            break
        tree.refresh_euler()
        tin, tout = tree._tin, tree._tout
        # skip current tree edges and moves that would create a cycle
        # (src inside dst's subtree; AUX sources can never be)
        valid = tree.parent[dst] != src
        valid &= ~((src != aux) & (tin[dst] <= tin[src]) & (tout[src] <= tout[dst]))
        ds = es - es[tree.par_edge[dst]]
        dr = (tree.ret[src] + er - tree.ret[dst]) * tree.size[dst]
        valid &= dr < 0.0  # Algorithm 7 line 9: retrieval must improve
        valid &= within_budget(tree.total_storage + ds, storage_budget)
        if not valid.any():
            break
        reduction = -dr
        inf_tier = valid & (ds <= 0.0)
        if inf_tier.any():
            pick = int(np.argmax(np.where(inf_tier, reduction, _NEG_INF)))
        else:
            rho = np.full(reduction.shape, _NEG_INF)
            np.divide(reduction, ds, out=rho, where=valid)
            pick = int(np.argmax(rho))
        tree._apply_swap_rescan(pick)


def lmg_all_array_rescan(
    graph: VersionGraph | CompiledGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Rescan-per-round LMG-All; plan-identical to :func:`~repro.
    fastgraph.solvers.lmg_all_array` and the dict reference."""
    cg = _compiled(graph)
    tree = _min_storage_array_tree(cg)
    _check_msr_feasible(tree, storage_budget)
    rounds = (
        max_iterations if max_iterations is not None else _lmg_all_default_rounds(cg)
    )
    _lmg_all_run_rescan(cg, tree, storage_budget, rounds)
    return tree


def _bmr_run_rescan(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    retrieval_budget: float,
    rounds: int,
) -> None:
    """BMR local-move rounds with a full DFS + RMQ + rescan per round."""
    aux = cg.aux
    src, dst = cg.edge_src, cg.edge_dst
    es, er = cg.edge_storage, cg.edge_retrieval

    for _ in range(rounds):
        tree.refresh_euler()
        tin, tout = tree._tin, tree._tout
        submax = tree.subtree_max_retrieval()
        # skip current tree edges and moves that would create a cycle
        valid = tree.parent[dst] != src
        valid &= ~((src != aux) & (tin[dst] <= tin[src]) & (tout[src] <= tout[dst]))
        ds = es - es[tree.par_edge[dst]]
        valid &= ds < 0.0  # the BMR objective (storage) must strictly improve
        shift = tree.ret[src] + er - tree.ret[dst]
        # every version in subtree(dst) shifts by the same amount: the
        # move is admissible iff the subtree maximum stays within budget
        valid &= within_budget(submax[dst] + shift, retrieval_budget)
        if not valid.any():
            break
        reduction = -ds
        inf_tier = valid & (shift <= 0.0)
        if inf_tier.any():
            # retrieval-non-increasing tier: larger reduction wins,
            # first in edge order on ties
            pick = int(np.argmax(np.where(inf_tier, reduction, _NEG_INF)))
        else:
            rho = np.full(reduction.shape, _NEG_INF)
            np.divide(reduction, shift, out=rho, where=valid)
            pick = int(np.argmax(rho))
        tree._apply_swap_rescan(pick)


def bmr_lmg_array_rescan(
    graph: VersionGraph | CompiledGraph,
    retrieval_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Rescan-per-round BMR-LMG; plan-identical to :func:`~repro.
    fastgraph.solvers.bmr_lmg_array` and the dict reference."""
    cg = _compiled(graph)
    _check_bmr_feasible(retrieval_budget)
    tree = _materialized_array_tree(cg)
    rounds = max_iterations if max_iterations is not None else _bmr_default_rounds(cg)
    _bmr_run_rescan(cg, tree, retrieval_budget, rounds)
    return tree
