"""Optional numba backend for the greedy family (``backend="numba"``).

The incremental NumPy kernels (:mod:`~repro.fastgraph.solvers`) spend
their remaining time in per-round full-length array passes; compiled
scalar loops beat them by skipping every masked intermediate.  This
module provides nopython re-implementations of the three greedy swap
loops — LMG, LMG-All, BMR-LMG — registered behind the existing
``backend=`` seam as ``"numba"``.

Plan identity is preserved the same way as everywhere else in the
stack: the kernels perform the identical IEEE float operations in the
identical scan order as the dict reference (and therefore as the array
kernels), track two selection tiers with strict ``>`` comparisons
(first maximum wins, matching ``np.argmax``), and compare budgets
against :func:`~repro.core.tolerance.budget_cap` thresholds computed by
the one shared tolerance helper.  Rather than teaching the kernels the
whole :class:`~repro.fastgraph.plantree.ArrayPlanTree` bookkeeping,
they record the *applied edge sequence*; the wrappers replay it onto
the start tree through :meth:`~repro.fastgraph.plantree.ArrayPlanTree.
apply_swap_edge`, so the returned tree's cached state is bit-identical
to the array kernels' output by construction.

numba is optional and the container may not ship it:

* :data:`HAVE_NUMBA` reports availability;
* without numba, :func:`njit` degrades to a passthrough decorator, so
  the kernels still *run* (as slow interpreted loops) — the plan
  identity tests exercise them either way;
* the public solvers (:func:`lmg_native`, :func:`lmg_all_native`,
  :func:`bmr_lmg_native`) raise :class:`~repro.core.graph.GraphError`
  when numba is missing instead of silently running interpreted — an
  explicit ``backend="numba"`` request wants compiled speed, and a
  100x-slower fallback would be a worse surprise than an error.  CI
  installs numba in one matrix leg and runs the identity suite against
  the compiled kernels (see docs/benchmarks.md).
"""

from __future__ import annotations

import numpy as np

from ..core.graph import GraphError, VersionGraph
from ..core.tolerance import budget_cap
from .compiled import CompiledGraph
from .plantree import ArrayPlanTree
from .solvers import (
    _bmr_default_rounds,
    _check_bmr_feasible,
    _check_msr_feasible,
    _compiled,
    _lmg_all_default_rounds,
    _lmg_candidates,
    _lmg_default_rounds,
    _materialized_array_tree,
    _min_storage_array_tree,
)

__all__ = [
    "HAVE_NUMBA",
    "lmg_native",
    "lmg_all_native",
    "bmr_lmg_native",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default container path
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Passthrough decorator standing in for ``numba.njit``."""

        def _wrap(fn):
            return fn

        if args and callable(args[0]):
            return args[0]
        return _wrap


def _require_numba(name: str) -> None:
    if not HAVE_NUMBA:
        raise GraphError(
            f"{name} requires the optional numba package "
            f"(backend='numba'; install numba or use backend='array')"
        )


@njit(cache=True)
def _build_children(parent, head, nxt):  # pragma: no cover - jitted
    """First-child / next-sibling lists from the parent array.

    Filled from high to low index so each child list iterates in
    ascending index order — any order yields a valid preorder (child
    order is not load-bearing, see the plantree module docstring).
    """
    n1 = parent.shape[0]
    for v in range(n1):
        head[v] = -1
    for v in range(n1 - 1, -1, -1):
        p = parent[v]
        if p >= 0:
            nxt[v] = head[p]
            head[p] = v


@njit(cache=True)
def _build_euler(parent, size, aux, head, nxt, stack, order, tin, tout):  # pragma: no cover
    """One preorder DFS; ``tout`` derives from the maintained sizes."""
    _build_children(parent, head, nxt)
    sp = 0
    stack[0] = aux
    t = 0
    while sp >= 0:
        x = stack[sp]
        sp -= 1
        order[t] = x
        tin[x] = t
        t += 1
        c = head[x]
        while c != -1:
            sp += 1
            stack[sp] = c
            c = nxt[c]
    n1 = parent.shape[0]
    for v in range(n1):
        tout[v] = tin[v] + size[v] - 1


@njit(cache=True)
def _apply_move(parent, par_edge, ret, size, order, tin, tout, es, er, src, dst, aux, pick):  # pragma: no cover
    """Apply edge ``pick``; same IEEE updates as the plantree walks.

    Subtree enumeration uses this round's pre-move preorder block.
    Returns the move's storage delta.
    """
    u = src[pick]
    v = dst[pick]
    p = parent[v]
    ds = es[pick] - es[par_edge[v]]
    shift = ret[u] + er[pick] - ret[v]
    parent[v] = u
    par_edge[v] = pick
    sz = size[v]
    x = p
    while True:
        size[x] -= sz
        if x == aux:
            break
        x = parent[x]
    x = u
    while True:
        size[x] += sz
        if x == aux:
            break
        x = parent[x]
    if shift != 0.0:
        for i in range(tin[v], tout[v] + 1):
            ret[order[i]] += shift
    return ds


@njit(cache=True)
def _lmg_kernel(parent, par_edge, ret, size, cand, src, dst, es, er, aux_edge, aux, total_storage, budget, cap, rounds, out):  # pragma: no cover
    """LMG rounds; returns the number of applied materializations."""
    n1 = parent.shape[0]
    head = np.empty(n1, np.int64)
    nxt = np.empty(n1, np.int64)
    stack = np.empty(n1, np.int64)
    order = np.empty(n1, np.int64)
    tin = np.empty(n1, np.int64)
    tout = np.empty(n1, np.int64)
    applied = 0
    neg_inf = -np.inf
    for _ in range(rounds):
        if total_storage >= budget:
            break
        _build_euler(parent, size, aux, head, nxt, stack, order, tin, tout)
        best_inf = np.int64(-1)
        best_inf_red = neg_inf
        best_rho = np.int64(-1)
        best_rho_val = neg_inf
        for i in range(cand.shape[0]):
            v = cand[i]
            if parent[v] == aux:
                continue
            ds = es[aux_edge[v]] - es[par_edge[v]]
            red = ret[v] * size[v]
            if not (total_storage + ds <= cap):
                continue
            if not (red > 0.0):
                continue
            if ds <= 0.0:
                if red > best_inf_red:
                    best_inf_red = red
                    best_inf = v
            elif best_inf == -1:
                rho = red / ds
                if rho > best_rho_val:
                    best_rho_val = rho
                    best_rho = v
        best_v = best_inf if best_inf != -1 else best_rho
        if best_v == -1:
            break
        pick = aux_edge[best_v]
        total_storage += _apply_move(
            parent, par_edge, ret, size, order, tin, tout, es, er, src, dst, aux, pick
        )
        out[applied] = pick
        applied += 1
    return applied


@njit(cache=True)
def _lmg_all_kernel(parent, par_edge, ret, size, src, dst, es, er, aux, total_storage, budget, cap, rounds, out):  # pragma: no cover
    """LMG-All rounds; returns the number of applied swaps."""
    n1 = parent.shape[0]
    m = src.shape[0]
    head = np.empty(n1, np.int64)
    nxt = np.empty(n1, np.int64)
    stack = np.empty(n1, np.int64)
    order = np.empty(n1, np.int64)
    tin = np.empty(n1, np.int64)
    tout = np.empty(n1, np.int64)
    applied = 0
    neg_inf = -np.inf
    for _ in range(rounds):
        if total_storage >= budget:
            break
        _build_euler(parent, size, aux, head, nxt, stack, order, tin, tout)
        best_inf = np.int64(-1)
        best_inf_red = neg_inf
        best_rho = np.int64(-1)
        best_rho_val = neg_inf
        for e in range(m):
            u = src[e]
            v = dst[e]
            if parent[v] == u:
                continue
            if u != aux and tin[v] <= tin[u] and tout[u] <= tout[v]:
                continue  # cycle: u inside subtree(v)
            dr = (ret[u] + er[e] - ret[v]) * size[v]
            if not (dr < 0.0):
                continue
            ds = es[e] - es[par_edge[v]]
            if not (total_storage + ds <= cap):
                continue
            red = -dr
            if ds <= 0.0:
                if red > best_inf_red:
                    best_inf_red = red
                    best_inf = e
            elif best_inf == -1:
                rho = red / ds
                if rho > best_rho_val:
                    best_rho_val = rho
                    best_rho = e
        pick = best_inf if best_inf != -1 else best_rho
        if pick == -1:
            break
        total_storage += _apply_move(
            parent, par_edge, ret, size, order, tin, tout, es, er, src, dst, aux, pick
        )
        out[applied] = pick
        applied += 1
    return applied


@njit(cache=True)
def _bmr_kernel(parent, par_edge, ret, size, src, dst, es, er, aux, cap, rounds, out):  # pragma: no cover
    """BMR local-move rounds; returns the number of applied swaps."""
    n1 = parent.shape[0]
    m = src.shape[0]
    head = np.empty(n1, np.int64)
    nxt = np.empty(n1, np.int64)
    stack = np.empty(n1, np.int64)
    order = np.empty(n1, np.int64)
    tin = np.empty(n1, np.int64)
    tout = np.empty(n1, np.int64)
    submax = np.empty(n1, np.float64)
    applied = 0
    neg_inf = -np.inf
    for _ in range(rounds):
        _build_euler(parent, size, aux, head, nxt, stack, order, tin, tout)
        # subtree maxima by one reverse-preorder pass (selection only)
        for v in range(n1):
            submax[v] = ret[v]
        for i in range(n1 - 1, 0, -1):
            w = order[i]
            p = parent[w]
            if submax[w] > submax[p]:
                submax[p] = submax[w]
        best_inf = np.int64(-1)
        best_inf_red = neg_inf
        best_rho = np.int64(-1)
        best_rho_val = neg_inf
        for e in range(m):
            u = src[e]
            v = dst[e]
            if parent[v] == u:
                continue
            if u != aux and tin[v] <= tin[u] and tout[u] <= tout[v]:
                continue  # cycle: u inside subtree(v)
            ds = es[e] - es[par_edge[v]]
            if not (ds < 0.0):
                continue  # the BMR objective must strictly improve
            shift = ret[u] + er[e] - ret[v]
            if not (submax[v] + shift <= cap):
                continue
            red = -ds
            if shift <= 0.0:
                if red > best_inf_red:
                    best_inf_red = red
                    best_inf = e
            elif best_inf == -1:
                rho = red / shift
                if rho > best_rho_val:
                    best_rho_val = rho
                    best_rho = e
        pick = best_inf if best_inf != -1 else best_rho
        if pick == -1:
            break
        _apply_move(
            parent, par_edge, ret, size, order, tin, tout, es, er, src, dst, aux, pick
        )
        out[applied] = pick
        applied += 1
    return applied


def _kernel_state(tree: ArrayPlanTree):
    """int64/float64 working copies of the tree state for a kernel."""
    return (
        tree.parent.astype(np.int64),
        tree.par_edge.astype(np.int64),
        tree.ret.copy(),
        tree.size.astype(np.int64),
    )


def _replay(tree: ArrayPlanTree, out: np.ndarray, applied: int) -> ArrayPlanTree:
    """Apply the kernel's recorded edge sequence onto ``tree``.

    The replay goes through the incremental fresh-path swaps, so every
    cached float on the returned tree is bit-identical to what the
    array kernels would have produced for the same move sequence.
    """
    tree.ensure_euler()
    for eid in out[:applied].tolist():
        tree.apply_swap_edge(eid)
    return tree


def _lmg_native_tree(
    cg: CompiledGraph, storage_budget: float, rounds: int
) -> ArrayPlanTree:
    """LMG via the nopython kernel (runs interpreted without numba)."""
    tree = _min_storage_array_tree(cg)
    _check_msr_feasible(tree, storage_budget)
    cand = _lmg_candidates(cg, tree).astype(np.int64)
    parent, par_edge, ret, size = _kernel_state(tree)
    out = np.empty(max(rounds, 0), dtype=np.int64)
    applied = _lmg_kernel(
        parent,
        par_edge,
        ret,
        size,
        cand,
        cg.edge_src.astype(np.int64),
        cg.edge_dst.astype(np.int64),
        cg.edge_storage,
        cg.edge_retrieval,
        cg.aux_edge.astype(np.int64),
        cg.aux,
        tree.total_storage,
        storage_budget,
        budget_cap(storage_budget),
        rounds,
        out,
    )
    return _replay(tree, out, applied)


def _lmg_all_native_tree(
    cg: CompiledGraph, storage_budget: float, rounds: int
) -> ArrayPlanTree:
    """LMG-All via the nopython kernel."""
    tree = _min_storage_array_tree(cg)
    _check_msr_feasible(tree, storage_budget)
    parent, par_edge, ret, size = _kernel_state(tree)
    out = np.empty(max(rounds, 0), dtype=np.int64)
    applied = _lmg_all_kernel(
        parent,
        par_edge,
        ret,
        size,
        cg.edge_src.astype(np.int64),
        cg.edge_dst.astype(np.int64),
        cg.edge_storage,
        cg.edge_retrieval,
        cg.aux,
        tree.total_storage,
        storage_budget,
        budget_cap(storage_budget),
        rounds,
        out,
    )
    return _replay(tree, out, applied)


def _bmr_native_tree(
    cg: CompiledGraph, retrieval_budget: float, rounds: int
) -> ArrayPlanTree:
    """BMR-LMG via the nopython kernel."""
    _check_bmr_feasible(retrieval_budget)
    tree = _materialized_array_tree(cg)
    parent, par_edge, ret, size = _kernel_state(tree)
    out = np.empty(max(rounds, 0), dtype=np.int64)
    applied = _bmr_kernel(
        parent,
        par_edge,
        ret,
        size,
        cg.edge_src.astype(np.int64),
        cg.edge_dst.astype(np.int64),
        cg.edge_storage,
        cg.edge_retrieval,
        cg.aux,
        budget_cap(retrieval_budget),
        rounds,
        out,
    )
    return _replay(tree, out, applied)


def lmg_native(
    graph: VersionGraph | CompiledGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Numba kernel for LMG; plan-identical to :func:`~repro.fastgraph.
    solvers.lmg_array` and the dict reference.

    Raises :class:`~repro.core.graph.GraphError` when numba is not
    installed and ``ValueError`` on MSR-infeasible budgets.
    """
    _require_numba("lmg_native")
    cg = _compiled(graph)
    rounds = max_iterations if max_iterations is not None else _lmg_default_rounds(cg)
    return _lmg_native_tree(cg, storage_budget, rounds)


def lmg_all_native(
    graph: VersionGraph | CompiledGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Numba kernel for LMG-All; plan-identical to :func:`~repro.
    fastgraph.solvers.lmg_all_array` and the dict reference."""
    _require_numba("lmg_all_native")
    cg = _compiled(graph)
    rounds = (
        max_iterations if max_iterations is not None else _lmg_all_default_rounds(cg)
    )
    return _lmg_all_native_tree(cg, storage_budget, rounds)


def bmr_lmg_native(
    graph: VersionGraph | CompiledGraph,
    retrieval_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Numba kernel for BMR-LMG; plan-identical to :func:`~repro.
    fastgraph.solvers.bmr_lmg_array` and the dict reference."""
    _require_numba("bmr_lmg_native")
    cg = _compiled(graph)
    rounds = max_iterations if max_iterations is not None else _bmr_default_rounds(cg)
    return _bmr_native_tree(cg, retrieval_budget, rounds)
