"""Vectorized Chu-Liu/Edmonds over compiled graphs.

The dict reference (:mod:`repro.algorithms.arborescence`) contracts one
cycle per level with O(E) Python work per level; bidirectional version
graphs produce O(V) two-cycles, so the reference costs O(V·E)
interpreter operations and dominates every greedy MSR solve.  This
module runs the identical algorithm on flat int/float arrays:

* cheapest-incoming selection is two ``np.minimum.at`` scatters
  (min weight, then first edge index among the minima — the reference's
  "ties keep the earliest edge" rule);
* "which cycle does the reference contract first?" is answered without
  the per-level O(V) path walk: a node's best-incoming walk either ends
  at the root or on a cycle, so pointer-doubling the best-parent map
  (``log V`` gathers) classifies all nodes at once and the first
  first-seen destination not reaching the root is exactly the start the
  reference's scan would find a cycle from;
* contraction and unrolling are masked array passes in edge order,
  preserving the reference's tie-breaking (first minimal relabeled edge
  per contracted choice).

Output is the **same arborescence** the dict implementation returns —
same parent per node, verified by the fastgraph equivalence suite — in
O(levels · (E + V log V)) vectorized work instead of O(levels · E)
interpreted work.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import GraphError
from .compiled import CompiledGraph

__all__ = ["min_storage_parent_edges"]


def min_storage_parent_edges(cg: CompiledGraph) -> list[tuple[int, int]]:
    """Minimum-storage arborescence of the extended graph, as
    ``(version index, parent edge id)`` pairs rooted at AUX.

    Plan-identical to ``min_storage_arborescence`` on ``cg.graph``.
    Raises :class:`GraphError` when some version is unreachable.
    """
    root = cg.aux
    keep = cg.edge_dst != root  # edges into the root are never useful
    u0 = cg.edge_src[keep]
    v0 = cg.edge_dst[keep]
    w0 = cg.edge_storage[keep]
    eid0 = np.nonzero(keep)[0].astype(np.int64)

    parent_eid = _edmonds_array(cg.n + 1, root, u0, v0, w0, eid0)
    missing = [cg.nodes[v] for v in range(cg.n) if parent_eid[v] < 0]
    if missing:
        raise GraphError(f"nodes unreachable from root: {missing[:5]!r}")
    return [(v, int(parent_eid[v])) for v in range(cg.n)]


def _best_incoming(
    num_ids: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-destination cheapest incoming edge, earliest edge on ties.

    Returns ``(best_w, best_pos)`` arrays over node ids; ``best_pos`` is
    the position in the current edge arrays (sentinel ``len(u)`` when a
    node has no incoming edge).
    """
    m = len(u)
    best_w = np.full(num_ids, np.inf)
    np.minimum.at(best_w, v, w)
    best_pos = np.full(num_ids, m, dtype=np.int64)
    at_min = w == best_w[v]
    np.minimum.at(best_pos, v[at_min], np.nonzero(at_min)[0].astype(np.int64))
    return best_w, best_pos


def _first_cycle(
    num_ids: int,
    root: int,
    u: np.ndarray,
    v: np.ndarray,
    best_pos: np.ndarray,
) -> np.ndarray | None:
    """The cycle the reference scan contracts at this level, or None.

    The reference walks starts in first-seen destination order and
    contracts the first cycle a walk closes on.  Every walk ends at the
    root or on a cycle, and earlier starts cannot silently consume a
    cycle (they would have contracted it), so the contracted cycle is
    the one reachable from the first start that does not reach the root.
    """
    m = len(u)
    # best-parent functional map; root (and incoming-free nodes) absorb
    f = np.full(num_ids, root, dtype=np.int64)
    has_in = best_pos < m
    ids = np.nonzero(has_in)[0]
    f[ids] = u[best_pos[ids]]
    # pointer doubling until every walk of length >= num_ids is resolved
    g = f
    steps = 1
    while steps < num_ids:
        g = g[g]
        steps *= 2
    cyclic = g[v] != root  # per edge: does its destination reach a cycle?
    if not cyclic.any():
        return None
    # first qualifying destination in edge order == first qualifying
    # start in the reference's first-seen-destination scan order
    rep = int(g[v[int(np.argmax(cyclic))]])
    cycle = [rep]
    x = int(f[rep])
    while x != rep:
        cycle.append(x)
        x = int(f[x])
    return np.array(cycle, dtype=np.int64)


def _edmonds_array(
    num_base_ids: int,
    root: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    eid: np.ndarray,
) -> np.ndarray:
    """Iterative contraction/unroll; returns parent edge id per base id.

    Mirrors ``repro.algorithms.arborescence._edmonds`` level by level;
    ``eid`` threads the original compiled-graph edge id of every
    relabeled edge so the final answer is expressed directly in parent
    *edge* ids (-1 = no parent found / unreachable).
    """
    # each contraction removes a >=2-cycle and adds one super node, so
    # the id space is bounded by twice the base ids
    levels: list[tuple] = []
    next_id = num_base_ids

    while True:
        num_ids = next_id
        best_w, best_pos = _best_incoming(num_ids, u, v, w)
        cycle = _first_cycle(num_ids, root, u, v, best_pos)
        if cycle is None:
            break
        super_node = next_id
        next_id += 1
        in_cyc = np.zeros(num_ids + 1, dtype=bool)
        in_cyc[cycle] = True
        cu, cv = in_cyc[u], in_cyc[v]
        keep = ~(cu & cv)
        # displaced cycle edge weight is best_w[v] for edges into the cycle
        w_new = np.where(cv, w - best_w[v], w)[keep]
        u_cur, v_cur, eid_cur = u[keep], v[keep], eid[keep]
        u_new = np.where(cu[keep], super_node, u_cur)
        v_new = np.where(cv[keep], super_node, v_cur)
        levels.append(
            (
                num_ids,
                u,  # pre-contraction sources (for cycle-edge completion)
                eid,  # pre-contraction edge ids
                best_pos,
                cycle,
                super_node,
                u_cur,
                v_cur,
                eid_cur,
                u_new,
                v_new,
                w_new,
            )
        )
        u, v, w, eid = u_new, v_new, w_new, eid_cur

    # base answer over the innermost id space
    parent = np.full(next_id, -1, dtype=np.int64)
    parent_eid = np.full(next_id, -1, dtype=np.int64)
    ids = np.nonzero(best_pos < len(u))[0]
    parent[ids] = u[best_pos[ids]]
    parent_eid[ids] = eid[best_pos[ids]]

    for (
        num_ids,
        u_lvl,
        eid_lvl,
        best_pos,
        cycle,
        super_node,
        u_cur,
        v_cur,
        eid_cur,
        u_new,
        v_new,
        w_new,
    ) in reversed(levels):
        sub_parent = parent
        # choose, per contracted (parent, child) pair, the first minimal
        # relabeled edge — the edge the contracted level effectively used
        sel = np.nonzero(sub_parent[v_new] == u_new)[0]
        grp = v_new[sel]
        choice_w = np.full(num_ids + 1, np.inf)
        np.minimum.at(choice_w, grp, w_new[sel])
        at_min = sel[w_new[sel] == choice_w[grp]]
        choice_pos = np.full(num_ids + 1, len(u_new), dtype=np.int64)
        np.minimum.at(choice_pos, v_new[at_min], at_min)

        # translate the chosen edges back to this level's endpoints
        # (includes the edge entering the contracted cycle)
        parent = np.full(num_ids, -1, dtype=np.int64)
        parent_eid = np.full(num_ids, -1, dtype=np.int64)
        chosen = choice_pos[choice_pos < len(u_new)]
        parent[v_cur[chosen]] = u_cur[chosen]
        parent_eid[v_cur[chosen]] = eid_cur[chosen]
        entered_at = -1
        if choice_pos[super_node] < len(u_new):
            entered_at = int(v_cur[choice_pos[super_node]])
        # cycle edges: keep all but the one displaced by the entering edge
        for x in cycle:
            if x != entered_at:
                pos = best_pos[x]
                parent[x] = u_lvl[pos]
                parent_eid[x] = eid_lvl[pos]
    return parent_eid[:num_base_ids]
