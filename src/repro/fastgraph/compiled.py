"""Index-compiled version graphs (node interning + CSR arrays).

A :class:`CompiledGraph` freezes one *extended* version graph into flat
NumPy arrays.  Everything is keyed by small integers:

* versions get indices ``0 .. n-1`` in insertion order, the auxiliary
  root :data:`~repro.core.graph.AUX` gets index ``n`` (:attr:`aux`);
* edges get ids ``0 .. m-1`` in the extended graph's edge *insertion*
  order — original deltas first, then one ``(AUX, v)`` materialization
  edge per version.  Edge-id order is load-bearing: the greedy kernels
  break ties by scan order exactly like the dict reference solvers.

The CSR adjacency (``out_indptr``/``out_edges`` and the ``in_`` pair)
stores *edge ids* rather than neighbor indices, so every per-edge
attribute lookup is one array load.  Within a source node the CSR slice
preserves successor insertion order, matching
``VersionGraph.successors(u)`` iteration.

Incremental appends and detaches
--------------------------------
Online ingest grows a graph one version at a time, and recompiling the
whole thing per arrival is O(V + E) *interpreter* work.  A compiled
graph therefore absorbs pure append mutations in place
(:meth:`apply_mutation`, driven by the :class:`~repro.core.graph.
GraphMutation` event stream): new versions and new deltas land in cheap
pending buffers, the integer-keyed lookups (``index``, :meth:`edge_id`,
``n``/``aux``/``num_edges``) stay current eagerly, and the flat arrays
are rebuilt lazily by :meth:`refresh` with vectorized NumPy passes
(concatenate + stable argsort CSR) — identical, elementwise, to a
from-scratch compile of the final graph.

Detach mutations (``remove_delta`` / ``remove_version`` — version
retirement) are absorbed too: the removed edge ids / node slots are
*tombstoned* and the next :meth:`refresh` compacts them out with
vectorized masks, renumbering survivors while preserving relative
insertion order.  The compacted result is elementwise-equal to a fresh
compile of the post-retirement graph.  Between refreshes the scalar
lookups stay coherent with a *slot* numbering that still includes dead
slots (``n`` / ``aux`` count them; ``index`` does not resolve retired
nodes; ``num_edges`` counts live edges only), so plan repair can keep
working in the pre-compaction id space and re-solve after the compile.

Two id-stability rules follow from the canonical edge layout (real
deltas first, AUX edges after):

* **real** edge ids never change once assigned;
* **AUX** edge ids shift by one for every real delta appended later
  (they sit after the real block).  Between refreshes
  ``edge_id(aux, v)`` always answers with the id that the *next*
  refresh will assign, so callers that hold AUX edge ids across appends
  must re-query them (the ingest engine re-solves from scratch instead
  of holding them).

Index dtypes (the memory diet)
------------------------------
Every index-valued array (endpoints, CSR adjacency, ``aux_edge``) is
stored in :attr:`index_dtype` — ``int32`` while both the node and edge
counts fit (halving index memory and cache traffic at the 100k+ bench
tiers), ``int64`` otherwise.  The dtype is chosen automatically at
compile time, can be forced via ``index_dtype=``, and is upgraded in
place by :meth:`refresh` if incremental appends outgrow the 32-bit
range; forcing ``int32`` past its capacity raises
:class:`~repro.core.graph.GraphError`.  Index *values* are exact either
way, so plans are unaffected.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import AUX, GraphError, GraphMutation, Node, VersionGraph

__all__ = ["CompiledGraph"]

#: Largest count an ``int32``-indexed compiled graph can address.
_INT32_CAPACITY = int(np.iinfo(np.int32).max)


def _index_span(num_nodes: int, num_edges: int) -> int:
    """Largest value the index arrays must represent (AUX id included)."""
    return max(num_nodes + 1, num_edges)


def _auto_index_dtype(num_nodes: int, num_edges: int) -> np.dtype:
    """Narrowest index dtype that can address the graph."""
    if _index_span(num_nodes, num_edges) <= _INT32_CAPACITY:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def _check_index_capacity(
    num_nodes: int, num_edges: int, dtype: np.dtype
) -> None:
    """Raise ``GraphError`` when ``dtype`` cannot address the graph."""
    span = _index_span(num_nodes, num_edges)
    limit = int(np.iinfo(dtype).max)
    if span > limit:
        raise GraphError(
            f"index dtype {np.dtype(dtype).name} cannot address "
            f"{num_nodes} versions / {num_edges} edges "
            f"(needs {span} > {limit})"
        )


class CompiledGraph:
    """Flat-array snapshot of an extended :class:`VersionGraph`.

    Attributes
    ----------
    graph:
        The extended :class:`VersionGraph` this was compiled from (kept
        for interop: building dict ``PlanTree`` views, arborescences).
    nodes:
        Version objects by index (length ``n``; AUX is *not* listed).
    index:
        Mapping node → index, including ``AUX → n``.
    aux:
        Index of the auxiliary root (``== n``).
    node_storage:
        ``float64[n + 1]`` materialization costs (0.0 for AUX).
    edge_src / edge_dst:
        ``index_dtype[m]`` endpoints per edge id.
    edge_storage / edge_retrieval:
        ``float64[m]`` delta costs per edge id.
    aux_edge:
        ``index_dtype[n]`` — edge id of ``(AUX, v)`` per version index.
    index_dtype:
        Dtype of every index-valued array (``int32`` while the graph
        fits, ``int64`` otherwise; see the module docstring).
    out_indptr / out_edges, in_indptr / in_edges:
        CSR adjacency over edge ids, successor/predecessor order
        preserved from the source graph.

    The array attributes are valid only while no appends are pending;
    :meth:`refresh` (called automatically by
    :meth:`~repro.core.graph.VersionGraph.compile`) folds pending
    appends in.  The scalar/lookup attributes (``n``, ``aux``,
    ``num_edges``, ``index``, ``nodes``, :meth:`edge_id`) are always
    current.
    """

    __slots__ = (
        "graph",
        "nodes",
        "index",
        "n",
        "aux",
        "num_edges",
        "node_storage",
        "edge_src",
        "edge_dst",
        "edge_storage",
        "edge_retrieval",
        "aux_edge",
        "out_indptr",
        "out_edges",
        "in_indptr",
        "in_edges",
        "_edge_index",
        "name",
        "_r_src",
        "_r_dst",
        "_r_es",
        "_r_er",
        "_m_real",
        "_node_store",
        "_pend_nodes",
        "_pend_edges",
        "_dead_nodes",
        "_dead_edges",
        "_owns_graph",
        "_stale",
        "index_dtype",
        "_str_order",
    )

    def __init__(
        self,
        graph: VersionGraph,
        *,
        index_dtype: np.dtype | type | None = None,
    ) -> None:
        ext = graph if graph.has_aux else graph.extended()
        self.graph = ext
        self.name = ext.name
        # appends can only be routed here by the *source* graph's event
        # stream; a compile of an already-extended graph would see its
        # own mutations twice, so it opts out of incremental absorption
        self._owns_graph = ext is not graph
        self.nodes: list[Node] = [v for v in ext.versions if v is not AUX]
        n = len(self.nodes)
        self.n = n
        self.aux = n
        self.index: dict[Node, int] = {v: i for i, v in enumerate(self.nodes)}
        self.index[AUX] = n

        self._node_store = np.array(
            [ext.storage_cost(v) for v in self.nodes], dtype=np.float64
        )

        # real deltas in insertion order; ``extended()`` appends the AUX
        # edges after them, so this is the canonical edge-id layout
        real = [(u, v, d) for u, v, d in ext.deltas() if u is not AUX]
        m = len(real)
        self._m_real = m
        if index_dtype is None:
            idt = _auto_index_dtype(n, m + n)
        else:
            idt = np.dtype(index_dtype)
            _check_index_capacity(n, m + n, idt)
        self.index_dtype = idt
        self._str_order: np.ndarray | None = None
        src = np.empty(m, dtype=idt)
        dst = np.empty(m, dtype=idt)
        es = np.empty(m, dtype=np.float64)
        er = np.empty(m, dtype=np.float64)
        edge_index: dict[tuple[int, int], int] = {}
        for eid, (u, v, d) in enumerate(real):
            ui = self.index[u]
            vi = self.index[v]
            src[eid] = ui
            dst[eid] = vi
            es[eid] = d.storage
            er[eid] = d.retrieval
            edge_index[(ui, vi)] = eid
        self._r_src = src
        self._r_dst = dst
        self._r_es = es
        self._r_er = er
        self._edge_index = edge_index

        self._pend_nodes: list[float] = []
        self._pend_edges: list[tuple[int, int, float, float]] = []
        self._dead_nodes: set[int] = set()
        self._dead_edges: set[int] = set()
        self.num_edges = m + n
        self._stale = True
        self.refresh()

    # ------------------------------------------------------------------
    # incremental appends
    # ------------------------------------------------------------------
    def apply_mutation(self, event: GraphMutation) -> bool:
        """Absorb an append or detach mutation; False = cache dropped.

        ``add_version`` interns the new node (taking over the old AUX
        index, AUX moves to ``n + 1``) and schedules its storage cost and
        materialization edge; ``add_delta`` assigns the next real edge id
        eagerly and buffers the costs.  ``remove_delta`` /
        ``remove_version`` tombstone the edge id / node slot for the
        next :meth:`refresh` to compact out (lazily — removals are
        amortized into the next re-solve's compile).  Cost updates
        (``update_version`` / ``update_delta``) return False so the
        owning graph falls back to full invalidation.
        """
        if not self._owns_graph:
            return False
        if event.kind in GraphMutation.DETACH_KINDS:
            return self._apply_detach(event)
        if event.kind not in GraphMutation.APPEND_KINDS:
            return False
        ext = self.graph
        if event.kind == "add_version":
            v = event.v
            i = self.n
            self.nodes.append(v)
            self.index[v] = i
            self.n = i + 1
            self.aux = self.n
            self.index[AUX] = self.n
            self._pend_nodes.append(float(event.storage))
            self.num_edges += 1  # the (AUX, v) materialization edge
            ext.add_version(v, event.storage)
            ext.add_delta(AUX, v, event.storage, 0.0)
        else:  # add_delta
            ui = self.index[event.u]
            vi = self.index[event.v]
            self._edge_index[(ui, vi)] = self._m_real
            self._m_real += 1
            self.num_edges += 1
            self._pend_edges.append(
                (ui, vi, float(event.storage), float(event.retrieval))
            )
            ext.add_delta(event.u, event.v, event.storage, event.retrieval)
        self._stale = True
        return True

    def _apply_detach(self, event: GraphMutation) -> bool:
        """Tombstone a removed edge / retired version for lazy compaction.

        The pre-compaction *slot* numbering is left intact (``n`` /
        ``aux`` still count dead slots; real edge ids keep their eager
        assignment) so mid-stream consumers holding node indices stay
        coherent until the next :meth:`refresh`.  ``num_edges`` drops
        eagerly to the live count.
        """
        ext = self.graph
        if event.kind == "remove_delta":
            ui = self.index[event.u]
            vi = self.index[event.v]
            eid = self._edge_index.pop((ui, vi))
            self._dead_edges.add(eid)
            self.num_edges -= 1
            ext.remove_delta(event.u, event.v)
        else:  # remove_version — incident deltas already removed upstream
            vi = self.index.pop(event.v)
            self._dead_nodes.add(vi)
            self.num_edges -= 1  # the (AUX, v) materialization edge
            self._str_order = None  # dead slots must drop out of scan order
            ext.remove_version(event.v)
        self._stale = True
        return True

    def refresh(self) -> "CompiledGraph":
        """Fold pending appends and compact tombstones into the arrays.

        Amortized O(V + E) *vectorized* work (array concatenation, mask
        compaction when detaches are pending, plus a stable argsort per
        CSR direction), against the O(V + E) interpreter loops of a
        from-scratch compile.  No-op when nothing is pending.  The
        rebuilt arrays are fresh objects — previously returned arrays
        (e.g. held by a :meth:`snapshot`) are never mutated in place.

        Compaction renumbers surviving nodes and edges densely while
        preserving relative insertion order, which keeps the result
        elementwise-equal to a fresh compile of the post-retirement
        graph (dicts preserve survivor order under deletion).
        """
        if not self._stale:
            return self
        if _index_span(self.n, self.num_edges) > np.iinfo(self.index_dtype).max:
            # appends outgrew int32: upgrade in place before rebuilding
            self.index_dtype = np.dtype(np.int64)
            self._r_src = self._r_src.astype(np.int64)
            self._r_dst = self._r_dst.astype(np.int64)
        if self._pend_nodes:
            self._node_store = np.concatenate(
                [self._node_store, np.array(self._pend_nodes, dtype=np.float64)]
            )
            self._pend_nodes = []
        if self._pend_edges:
            pend = self._pend_edges
            idt = self.index_dtype
            self._r_src = np.concatenate(
                [self._r_src, np.array([e[0] for e in pend], dtype=idt)]
            )
            self._r_dst = np.concatenate(
                [self._r_dst, np.array([e[1] for e in pend], dtype=idt)]
            )
            self._r_es = np.concatenate(
                [self._r_es, np.array([e[2] for e in pend], dtype=np.float64)]
            )
            self._r_er = np.concatenate(
                [self._r_er, np.array([e[3] for e in pend], dtype=np.float64)]
            )
            self._pend_edges = []
        compacted = False
        if self._dead_edges:
            keep = np.ones(len(self._r_src), dtype=bool)
            keep[np.fromiter(self._dead_edges, dtype=np.int64)] = False
            self._r_src = self._r_src[keep]
            self._r_dst = self._r_dst[keep]
            self._r_es = self._r_es[keep]
            self._r_er = self._r_er[keep]
            self._m_real = len(self._r_src)
            self._dead_edges = set()
            compacted = True
        if self._dead_nodes:
            alive = np.ones(self.n, dtype=bool)
            alive[np.fromiter(self._dead_nodes, dtype=np.int64)] = False
            remap = np.cumsum(alive) - 1  # old slot -> compacted index
            idt = self.index_dtype
            self._r_src = remap[self._r_src].astype(idt, copy=False)
            self._r_dst = remap[self._r_dst].astype(idt, copy=False)
            self._node_store = self._node_store[alive]
            self.nodes = [v for i, v in enumerate(self.nodes) if alive[i]]
            self.n = len(self.nodes)
            self.aux = self.n
            self.index = {v: i for i, v in enumerate(self.nodes)}
            self.index[AUX] = self.n
            self._dead_nodes = set()
            self._str_order = None
            compacted = True
        if compacted:
            self._rebuild_edge_index()
        n = self.n
        m = self._m_real
        idt = self.index_dtype
        arange_n = np.arange(n, dtype=idt)
        self.node_storage = np.append(self._node_store, 0.0)
        self.edge_src = np.concatenate([self._r_src, np.full(n, self.aux, dtype=idt)])
        self.edge_dst = np.concatenate([self._r_dst, arange_n])
        self.edge_storage = np.concatenate([self._r_es, self._node_store])
        self.edge_retrieval = np.concatenate(
            [self._r_er, np.zeros(n, dtype=np.float64)]
        )
        self.aux_edge = (m + arange_n).astype(idt, copy=False)
        self.out_indptr, self.out_edges = _csr_from_keys(self.edge_src, n + 1, idt)
        self.in_indptr, self.in_edges = _csr_from_keys(self.edge_dst, n + 1, idt)
        self._stale = False
        return self

    def _rebuild_edge_index(self) -> None:
        """Renumber ``(src, dst) -> eid`` after a compaction pass.

        O(m) interpreter work, paid only when detaches were pending —
        the same cost a fresh compile's interning loop pays.
        """
        self._edge_index = {
            (int(u), int(v)): eid
            for eid, (u, v) in enumerate(
                zip(self._r_src.tolist(), self._r_dst.tolist())
            )
        }

    def snapshot(self) -> "CompiledGraph":
        """Frozen shallow copy for off-thread solves.

        Shares the flat arrays (which are replaced wholesale, never
        mutated, by :meth:`refresh`) and copies the small Python-side
        indexes, so subsequent appends to the live graph leave the
        snapshot untouched.  The ``graph`` attribute still references
        the live extended graph — array-only consumers (the solver
        kernels, ``ArrayPlanTree.to_plan``) are safe; dict-graph
        consumers must not race an ingesting writer.
        """
        self.refresh()
        new = object.__new__(CompiledGraph)
        new.graph = self.graph
        new.name = self.name
        new.nodes = list(self.nodes)
        new.index = dict(self.index)
        new.n = self.n
        new.aux = self.aux
        new.num_edges = self.num_edges
        for attr in (
            "node_storage",
            "edge_src",
            "edge_dst",
            "edge_storage",
            "edge_retrieval",
            "aux_edge",
            "out_indptr",
            "out_edges",
            "in_indptr",
            "in_edges",
            "_r_src",
            "_r_dst",
            "_r_es",
            "_r_er",
            "_node_store",
        ):
            setattr(new, attr, getattr(self, attr))
        new._edge_index = dict(self._edge_index)
        new._m_real = self._m_real
        new.index_dtype = self.index_dtype
        new._str_order = self._str_order
        new._pend_nodes = []
        new._pend_edges = []
        new._dead_nodes = set()
        new._dead_edges = set()
        new._owns_graph = False
        new._stale = False
        return new

    # ------------------------------------------------------------------
    def node_of(self, i: int) -> Node:
        """Original node object for index ``i`` (AUX for :attr:`aux`)."""
        return AUX if i == self.aux else self.nodes[i]

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of ``(u, v)`` by node indices; KeyError when absent.

        Always current: AUX edges answer ``m_real + v`` (the id the next
        :meth:`refresh` materializes), real edges their eagerly assigned
        id.
        """
        if u == self.aux:
            if 0 <= v < self.n:
                return self._m_real + v
            raise KeyError((u, v))
        return self._edge_index[(u, v)]

    def out_slice(self, u: int) -> np.ndarray:
        """Edge ids leaving ``u``, in successor insertion order."""
        return self.out_edges[self.out_indptr[u] : self.out_indptr[u + 1]]

    def in_slice(self, v: int) -> np.ndarray:
        """Edge ids entering ``v``, in predecessor insertion order."""
        return self.in_edges[self.in_indptr[v] : self.in_indptr[v + 1]]

    @property
    def str_order(self) -> np.ndarray:
        """Version indices sorted by ``str(node)`` — the LMG scan order.

        The greedy LMG kernel and the MP heap both enumerate candidates
        in string order of the node labels (matching the dict reference
        solvers' ``sorted`` calls).  Stringifying every node per solve is
        O(n) interpreter work, so the key array is computed once and
        cached; appends are detected by length and trigger a re-sort.
        """
        # guarded-by: compile-owner (same single-writer discipline as the
        # flat arrays: ingest mutates only via apply_mutation/refresh on
        # the owning thread, solvers read a snapshot())
        cached = self._str_order
        if cached is None or cached.size != self.n:
            nodes = self.nodes
            order = sorted(range(self.n), key=lambda i: str(nodes[i]))
            cached = np.array(order, dtype=self.index_dtype)
            self._str_order = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - trivial
        label = f" {self.name!r}" if self.name else ""
        return f"<CompiledGraph{label}: {self.n} versions, {self.num_edges} edges>"


def _csr_from_keys(
    keys: np.ndarray, num_nodes: int, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray]:
    """CSR (indptr, edge ids) grouping edge ids by ``keys``.

    A stable argsort preserves edge-id order within each node — exactly
    the per-node insertion order the dict adjacency iterates in.
    """
    indptr = np.zeros(num_nodes + 1, dtype=dtype)
    np.cumsum(np.bincount(keys, minlength=num_nodes), out=indptr[1:])
    indices = np.argsort(keys, kind="stable").astype(dtype, copy=False)
    return indptr, indices
