"""Index-compiled version graphs (node interning + CSR arrays).

A :class:`CompiledGraph` freezes one *extended* version graph into flat
NumPy arrays.  Everything is keyed by small integers:

* versions get indices ``0 .. n-1`` in insertion order, the auxiliary
  root :data:`~repro.core.graph.AUX` gets index ``n`` (:attr:`aux`);
* edges get ids ``0 .. m-1`` in the extended graph's edge *insertion*
  order — original deltas first, then one ``(AUX, v)`` materialization
  edge per version.  Edge-id order is load-bearing: the greedy kernels
  break ties by scan order exactly like the dict reference solvers.

The CSR adjacency (``out_indptr``/``out_edges`` and the ``in_`` pair)
stores *edge ids* rather than neighbor indices, so every per-edge
attribute lookup is one array load.  Within a source node the CSR slice
preserves successor insertion order, matching
``VersionGraph.successors(u)`` iteration.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import AUX, Node, VersionGraph

__all__ = ["CompiledGraph"]


class CompiledGraph:
    """Flat-array snapshot of an extended :class:`VersionGraph`.

    Attributes
    ----------
    graph:
        The extended :class:`VersionGraph` this was compiled from (kept
        for interop: building dict ``PlanTree`` views, arborescences).
    nodes:
        Version objects by index (length ``n``; AUX is *not* listed).
    index:
        Mapping node → index, including ``AUX → n``.
    aux:
        Index of the auxiliary root (``== n``).
    node_storage:
        ``float64[n + 1]`` materialization costs (0.0 for AUX).
    edge_src / edge_dst:
        ``int64[m]`` endpoints per edge id.
    edge_storage / edge_retrieval:
        ``float64[m]`` delta costs per edge id.
    aux_edge:
        ``int64[n]`` — edge id of ``(AUX, v)`` per version index.
    out_indptr / out_edges, in_indptr / in_edges:
        CSR adjacency over edge ids, successor/predecessor order
        preserved from the source graph.
    """

    __slots__ = (
        "graph",
        "nodes",
        "index",
        "n",
        "aux",
        "num_edges",
        "node_storage",
        "edge_src",
        "edge_dst",
        "edge_storage",
        "edge_retrieval",
        "aux_edge",
        "out_indptr",
        "out_edges",
        "in_indptr",
        "in_edges",
        "_edge_index",
        "name",
    )

    def __init__(self, graph: VersionGraph) -> None:
        ext = graph if graph.has_aux else graph.extended()
        self.graph = ext
        self.name = ext.name
        self.nodes: list[Node] = [v for v in ext.versions if v is not AUX]
        n = len(self.nodes)
        self.n = n
        self.aux = n
        self.index: dict[Node, int] = {v: i for i, v in enumerate(self.nodes)}
        self.index[AUX] = n

        storage = np.zeros(n + 1, dtype=np.float64)
        for v, i in zip(self.nodes, range(n)):
            storage[i] = ext.storage_cost(v)
        self.node_storage = storage

        m = ext.num_deltas
        self.num_edges = m
        src = np.empty(m, dtype=np.int64)
        dst = np.empty(m, dtype=np.int64)
        es = np.empty(m, dtype=np.float64)
        er = np.empty(m, dtype=np.float64)
        aux_edge = np.full(n, -1, dtype=np.int64)
        out_lists: list[list[int]] = [[] for _ in range(n + 1)]
        in_lists: list[list[int]] = [[] for _ in range(n + 1)]
        edge_index: dict[tuple[int, int], int] = {}
        for eid, (u, v, d) in enumerate(ext.deltas()):
            ui = self.index[u]
            vi = self.index[v]
            src[eid] = ui
            dst[eid] = vi
            es[eid] = d.storage
            er[eid] = d.retrieval
            out_lists[ui].append(eid)
            in_lists[vi].append(eid)
            edge_index[(ui, vi)] = eid
            if ui == n:
                aux_edge[vi] = eid
        self.edge_src = src
        self.edge_dst = dst
        self.edge_storage = es
        self.edge_retrieval = er
        self.aux_edge = aux_edge
        self._edge_index = edge_index
        self.out_indptr, self.out_edges = _csr(out_lists, m)
        self.in_indptr, self.in_edges = _csr(in_lists, m)

    # ------------------------------------------------------------------
    def node_of(self, i: int) -> Node:
        """Original node object for index ``i`` (AUX for :attr:`aux`)."""
        return AUX if i == self.aux else self.nodes[i]

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of ``(u, v)`` by node indices; KeyError when absent."""
        return self._edge_index[(u, v)]

    def out_slice(self, u: int) -> np.ndarray:
        """Edge ids leaving ``u``, in successor insertion order."""
        return self.out_edges[self.out_indptr[u] : self.out_indptr[u + 1]]

    def in_slice(self, v: int) -> np.ndarray:
        """Edge ids entering ``v``, in predecessor insertion order."""
        return self.in_edges[self.in_indptr[v] : self.in_indptr[v + 1]]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        label = f" {self.name!r}" if self.name else ""
        return f"<CompiledGraph{label}: {self.n} versions, {self.num_edges} edges>"


def _csr(adj_lists: list[list[int]], m: int) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-node edge-id lists into (indptr, indices) arrays."""
    indptr = np.zeros(len(adj_lists) + 1, dtype=np.int64)
    for i, lst in enumerate(adj_lists):
        indptr[i + 1] = indptr[i] + len(lst)
    indices = np.empty(m, dtype=np.int64)
    pos = 0
    for lst in adj_lists:
        for eid in lst:
            indices[pos] = eid
            pos += 1
    return indptr, indices
