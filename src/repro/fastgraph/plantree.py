"""Flat-array plan trees with the PlanTree O(1) swap contract.

:class:`ArrayPlanTree` mirrors :class:`~repro.core.solution.PlanTree`
over a :class:`~repro.fastgraph.compiled.CompiledGraph`: per-node cached
retrieval costs and subtree sizes make evaluating the move "re-route
``v`` through edge ``e``" a constant number of array loads, and the
cached vectors themselves are the inputs the vectorized greedy kernels
scan with NumPy instead of per-candidate Python loops.

Equivalence discipline
----------------------
The array kernels must produce *plan-identical* results to the dict
reference solvers, whose tie-breaks compare floats for exact equality.
Every cached quantity here is therefore computed with the same IEEE
operations in the same order as ``PlanTree``:

* construction consumes ``(version, parent-edge)`` pairs in the same
  iteration order as ``PlanTree``'s ``parent.items()`` loop, so the
  Python-float storage accumulator matches bit for bit;
* retrieval costs are path sums ``ret[parent] + r_e`` assigned in the
  identical root-first DFS order;
* :meth:`apply_swap_edge` shifts the moved subtree with one addition
  per node, exactly like ``PlanTree.apply_swap``.

Incremental Euler maintenance
-----------------------------
:meth:`apply_swap_edge` has two implementations.  The *python* path is
the original one: eager child-list surgery, O(depth) size walks, and it
invalidates the Euler intervals (``_order_dirty``).  The *fresh* path
runs when the intervals are current and keeps them current: moving
``v``'s subtree is a contiguous block move inside the preorder (shift
the nodes between the block and its destination by ``±size(v)``, slide
the block, rederive ``tout = tin + size - 1``), ancestor size updates
are two interval-containment masks, and the subtree retrieval shift is
the existing one-masked-add.  All O(V) vectorized, zero Python walks —
this is what makes the incremental greedy kernels O(V) per round
instead of "re-DFS the tree per round".  Child lists are rebuilt lazily
(``_children_dirty``) in index order; no consumer depends on child
*order* (a DFS preorder from rebuilt lists is a different but equally
valid Euler tour, and ``materialized_versions`` callers sort).  Both
paths apply the identical single IEEE addition per shifted node, so
plans stay bit-identical whichever path runs.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import AUX, GraphError, Node
from ..core.solution import PlanTree, RetrievalSummary, StoragePlan
from ..core.tolerance import close_enough
from .compiled import CompiledGraph

__all__ = ["ArrayPlanTree"]


class ArrayPlanTree:
    """A spanning arborescence of a compiled graph, rooted at AUX.

    State is indexed by node index (AUX = ``cg.aux``):

    * ``parent`` — parent node index (-1 for AUX);
    * ``par_edge`` — edge id of ``(parent[v], v)`` (-1 for AUX);
    * ``ret`` — retrieval cost ``R(v)`` along the unique AUX path;
    * ``size`` — subtree sizes (the paper's "dependency number");
    * ``children`` — per-node child lists, rebuilt lazily from
      ``parent`` after vectorized swaps (``_ensure_children``);
    * Euler intervals ``tin``/``tout`` for O(1) ancestor tests,
      maintained incrementally by fresh-path swaps and recomputed
      lazily otherwise.

    Index-valued arrays inherit the compiled graph's
    :attr:`~repro.fastgraph.compiled.CompiledGraph.index_dtype`.
    """

    __slots__ = (
        "cg",
        "parent",
        "par_edge",
        "ret",
        "size",
        "children",
        "total_storage",
        "total_retrieval",
        "_tin",
        "_tout",
        "_preorder",
        "_order_dirty",
        "_children_dirty",
        "_iota",
        "_rmq_table",
        "_rmq_lo",
        "_rmq_hi",
        "_cap",
        "_parent_buf",
        "_par_edge_buf",
        "_ret_buf",
        "_size_buf",
        "_tin_buf",
        "_tout_buf",
    )

    def __init__(self, cg: CompiledGraph, parent_edges: list[tuple[int, int]]):
        """Build from ``(version index, parent edge id)`` pairs.

        The pair order defines the children-list and storage-summation
        order (see module docstring).  Every version must appear exactly
        once; the referenced edge must end at it.
        """
        n = cg.n
        idt = cg.index_dtype
        self.cg = cg
        self.parent = np.full(n + 1, -1, dtype=idt)
        self.par_edge = np.full(n + 1, -1, dtype=idt)
        self.ret = np.zeros(n + 1, dtype=np.float64)
        self.size = np.ones(n + 1, dtype=idt)
        self.children: list[list[int]] = [[] for _ in range(n + 1)]
        self.total_storage = 0.0
        self.total_retrieval = 0.0
        self._tin = np.zeros(n + 1, dtype=idt)
        self._tout = np.zeros(n + 1, dtype=idt)
        self._preorder = np.zeros(0, dtype=idt)
        self._order_dirty = True
        self._children_dirty = False
        self._iota: np.ndarray | None = None
        # guarded-by: tree-owner (scratch reused across calls; trees are
        # single-owner objects — clones never share it)
        self._rmq_table: np.ndarray | None = None
        # guarded-by: tree-owner — dirty Euler-position window of the
        # cached sparse table ([lo, hi], lo > hi means clean); fresh-path
        # swaps only touch a contiguous preorder range, so the table
        # refresh can be partial
        self._rmq_lo = 1 << 62
        self._rmq_hi = -1
        # guarded-by: tree-owner — amortized-growth backing buffers for
        # the six per-node arrays (see append_version); 0 = not buffered
        self._cap = 0
        self._parent_buf: np.ndarray | None = None
        self._par_edge_buf: np.ndarray | None = None
        self._ret_buf: np.ndarray | None = None
        self._size_buf: np.ndarray | None = None
        self._tin_buf: np.ndarray | None = None
        self._tout_buf: np.ndarray | None = None

        seen = 0
        for v, eid in parent_edges:
            if cg.edge_dst[eid] != v or self.par_edge[v] != -1:
                raise GraphError(f"bad parent edge {eid} for version index {v}")
            p = int(cg.edge_src[eid])
            self.parent[v] = p
            self.par_edge[v] = eid
            self.children[p].append(int(v))
            self.total_storage += float(cg.edge_storage[eid])
            seen += 1
        if seen != n:
            raise GraphError(f"parent map covers {seen} of {n} versions")
        self._recompute_all()

    @classmethod
    def from_parent_map(cls, cg: CompiledGraph, parent: dict[Node, Node]) -> "ArrayPlanTree":
        """Build from a node-keyed parent map (e.g. an arborescence)."""
        pairs = [
            (cg.index[v], cg.edge_id(cg.index[p], cg.index[v]))
            for v, p in parent.items()
            if v is not AUX
        ]
        return cls(cg, pairs)

    # ------------------------------------------------------------------
    def _recompute_all(self) -> None:
        """Recompute R, subtree sizes and total retrieval in O(V)."""
        aux = self.cg.aux
        er = self.cg.edge_retrieval
        # same stack DFS as PlanTree._topo_order (root-first)
        order: list[int] = []
        stack = [aux]
        while stack:
            x = stack.pop()
            order.append(x)
            stack.extend(self.children[x])
        if len(order) != self.cg.n + 1:
            raise GraphError("parent map contains a cycle")
        self.total_retrieval = 0.0
        self.ret[aux] = 0.0
        for v in order[1:]:
            self.ret[v] = self.ret[self.parent[v]] + er[self.par_edge[v]]
            self.total_retrieval += float(self.ret[v])
        self.size[:] = 1
        for v in reversed(order[1:]):
            self.size[self.parent[v]] += self.size[v]
        self._order_dirty = True

    def _ensure_children(self) -> None:
        """Rebuild the per-node child lists from ``parent`` if stale.

        Fresh-path swaps skip child-list surgery (an O(degree)
        ``list.remove`` per move — AUX holds O(V) children in the BMR
        all-materialized start tree) and just flip ``_children_dirty``;
        the lists are rebuilt here in node-index order on the next
        consumer.  Child order is not load-bearing (module docstring).
        """
        if not self._children_dirty:
            return
        n1 = len(self.parent)
        children: list[list[int]] = [[] for _ in range(n1)]
        for v, p in enumerate(self.parent.tolist()):
            if p >= 0:
                children[p].append(v)
        self.children = children
        self._children_dirty = False

    def ensure_euler(self) -> None:
        """Make the Euler intervals current (no-op when already fresh)."""
        if self._order_dirty:
            self.refresh_euler()

    def refresh_euler(self) -> None:
        """Recompute the subtree intervals used by :meth:`is_ancestor`.

        One single-visit DFS collects the preorder; the intervals are
        then derived vectorized from the cached subtree sizes:
        ``tin[v] = preorder position``, ``tout[v] = tin[v] + size[v] -
        1``.  A node's subtree is exactly the preorder block
        ``[tin, tout]``, so every containment test (`is_ancestor`, the
        kernels' cycle masks, :meth:`apply_swap_edge`'s batch shift
        mask) answers identically to the classic entry/exit-timer
        Euler tour while paying one Python walk instead of two.  The
        preorder itself is kept on :attr:`_preorder` for the
        range-max queries of :meth:`subtree_max_retrieval`.
        """
        self._ensure_children()
        order_list: list[int] = []
        append = order_list.append
        stack = [self.cg.aux]
        pop = stack.pop
        extend = stack.extend
        children = self.children
        while stack:
            x = pop()
            append(x)
            c = children[x]
            if c:
                extend(c)
        idt = self.parent.dtype
        order = np.array(order_list, dtype=idt)
        # detached (dead) rows are unreachable from AUX: their positions
        # stay -1, which every interval-containment mask excludes
        pos = np.full(len(self.parent), -1, dtype=idt)
        pos[order] = np.arange(len(order), dtype=idt)
        self._preorder = order
        self._tin = pos
        self._tout = pos + self.size - 1
        self._order_dirty = False
        # a full reorder invalidates the whole cached range-max table
        self._rmq_lo = 0
        self._rmq_hi = len(order) - 1

    def is_ancestor(self, a: int, b: int) -> bool:
        """True when node index ``a`` is an ancestor of ``b`` (or equal)."""
        if self._order_dirty:
            self.refresh_euler()
        return bool(self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a])

    # ------------------------------------------------------------------
    # moves (by edge id)
    # ------------------------------------------------------------------
    def swap_deltas_edge(self, eid: int) -> tuple[float, float]:
        """Evaluate re-routing ``dst(eid)`` through edge ``eid``.

        Returns ``(delta_storage, delta_total_retrieval)``; the caller
        must ensure ``src(eid)`` is not inside ``dst(eid)``'s subtree.
        """
        cg = self.cg
        u = cg.edge_src[eid]
        v = cg.edge_dst[eid]
        ds = float(cg.edge_storage[eid] - cg.edge_storage[self.par_edge[v]])
        dr = float((self.ret[u] + cg.edge_retrieval[eid] - self.ret[v]) * self.size[v])
        return ds, dr

    def apply_swap_edge(self, eid: int) -> None:
        """Apply the move evaluated by :meth:`swap_deltas_edge`.

        Identity swaps (``eid`` already is ``v``'s parent edge, e.g.
        :meth:`materialize` on an already-materialized version) return
        immediately: the full remove/append plus size/retrieval walks
        would be a semantic no-op but accumulate float churn in
        ``total_storage`` / ``total_retrieval``.

        Dispatches on Euler freshness: with current intervals the move
        is applied fully vectorized *and leaves them current*
        (:meth:`_apply_swap_fresh`); otherwise the original Python-walk
        path runs and the intervals stay invalidated.  Both paths
        perform identical IEEE float updates (module docstring).
        """
        cg = self.cg
        u = int(cg.edge_src[eid])
        v = int(cg.edge_dst[eid])
        if eid == int(self.par_edge[v]):
            return
        if u != cg.aux and self.is_ancestor(v, u):
            raise GraphError(f"swap would create a cycle: {u} is in subtree({v})")
        # the fresh path's preorder scatter assumes every slot is live;
        # with detached (dead) rows present the python walk runs instead
        if self._order_dirty or len(self._preorder) != len(self.parent):
            self._apply_swap_python(eid, u, v)
        else:
            self._apply_swap_fresh(eid, u, v)

    def _apply_swap_rescan(self, eid: int) -> None:
        """Apply a (pre-validated, non-identity) swap via the walk path.

        Entry point for the :mod:`~repro.fastgraph.rescan` baseline
        kernels, which preserve the pre-incremental behavior — eager
        child lists, per-move Python walks, Euler invalidation — as a
        timing and plan-identity reference.  Skips the identity/cycle
        guards (the rescan kernels' candidate masks already enforce
        them, exactly like the historical code path did).
        """
        cg = self.cg
        self._apply_swap_python(eid, int(cg.edge_src[eid]), int(cg.edge_dst[eid]))

    def _apply_swap_python(self, eid: int, u: int, v: int) -> None:
        """Original swap path: child surgery + O(depth) walks.

        Leaves ``_order_dirty`` set; the batch subtree-retrieval shift
        still applies when the intervals happen to be fresh (same single
        IEEE addition per node as the walk).
        """
        aux = self.cg.aux
        p = int(self.parent[v])
        ds, dr = self.swap_deltas_edge(eid)
        shift = float(self.ret[u] + self.cg.edge_retrieval[eid] - self.ret[v])

        self._ensure_children()
        self.children[p].remove(v)
        self.children[u].append(v)
        self.parent[v] = u
        self.par_edge[v] = eid

        sz = int(self.size[v])
        x = p
        while True:
            self.size[x] -= sz
            if x == aux:
                break
            x = int(self.parent[x])
        x = u
        while True:
            self.size[x] += sz
            if x == aux:
                break
            x = int(self.parent[x])

        if shift != 0.0:
            if not self._order_dirty:
                # Batch subtree shift: with fresh Euler intervals the
                # subtree of ``v`` is exactly the nodes whose entry time
                # falls inside ``v``'s interval, so the whole shift is
                # one masked array add instead of a per-node Python walk;
                # each element still receives the identical single IEEE
                # addition, keeping plans bit-identical.
                tin = self._tin
                mask = (tin >= tin[v]) & (tin <= self._tout[v])
                self.ret[mask] += shift
            else:
                stack = [v]
                while stack:
                    y = stack.pop()
                    self.ret[y] += shift
                    stack.extend(self.children[y])
        self.total_storage += ds
        self.total_retrieval += dr
        self._order_dirty = True

    def _apply_swap_fresh(self, eid: int, u: int, v: int) -> None:
        """Vectorized swap that keeps the Euler intervals current.

        Requires fresh intervals.  The preorder block of ``v``'s
        subtree ``[a, b]`` slides to just after ``u``'s entry ``pu``
        (becoming ``u``'s first child — a different but valid preorder
        of the new tree); the nodes between the block and its
        destination shift by ``±size(v)``; exits are rederived as
        ``tout = tin + size - 1`` from the updated sizes.  Ancestor
        size updates use interval-containment masks over the *old*
        intervals — ancestors of ``p``/``u`` are never inside ``v``'s
        subtree (the cycle guard ran), so the masks touch exactly the
        nodes the Python walks would.  Retrieval gets the same
        one-masked-add subtree shift as before.  Child lists are left
        stale (``_children_dirty``).
        """
        cg = self.cg
        p = int(self.parent[v])
        ds, dr = self.swap_deltas_edge(eid)
        shift = float(self.ret[u] + cg.edge_retrieval[eid] - self.ret[v])

        tin = self._tin
        tout = self._tout
        size = self.size
        sz = int(size[v])
        a = int(tin[v])
        b = int(tout[v])
        pu = int(tin[u])
        # masks over the *pre-move* intervals
        block = (tin >= a) & (tin <= b)
        anc_p = (tin <= tin[p]) & (tout >= tout[p])
        anc_u = (tin <= pu) & (tout >= tout[u])

        self.parent[v] = u
        self.par_edge[v] = eid
        size[anc_p] -= sz
        size[anc_u] += sz
        if shift != 0.0:
            self.ret[block] += shift

        # slide the preorder block to sit right after u
        if pu < a:
            between = (tin > pu) & (tin < a)
            tin[between] += sz
            tin[block] += (pu + 1) - a
            self._rmq_lo = min(self._rmq_lo, pu + 1)
            self._rmq_hi = max(self._rmq_hi, b)
        else:  # pu > b: u cannot be inside the block (cycle guard)
            between = (tin > b) & (tin <= pu)
            tin[between] -= sz
            tin[block] += (pu - sz + 1) - a
            self._rmq_lo = min(self._rmq_lo, a)
            self._rmq_hi = max(self._rmq_hi, pu)
        np.add(tin, size, out=tout)
        tout -= 1
        iota = self._iota
        if iota is None or iota.size != tin.size:
            iota = np.arange(tin.size, dtype=tin.dtype)
            self._iota = iota
        self._preorder[tin] = iota

        self._children_dirty = True
        self.total_storage += ds
        self.total_retrieval += dr

    def materialize(self, v: int) -> None:
        """Shortcut: re-route version index ``v`` through its AUX edge."""
        self.apply_swap_edge(int(self.cg.aux_edge[v]))

    # ------------------------------------------------------------------
    # retirement (online version removal)
    # ------------------------------------------------------------------
    def detach_version(self, v: int, edge_storage: float) -> None:
        """Remove leaf version index ``v`` from the plan (retirement).

        ``edge_storage`` is the storage cost of ``v``'s current parent
        edge, passed explicitly because the compiled arrays may already
        have tombstoned it.  ``v`` must be a leaf — the caller re-homes
        its children first (:meth:`rehome_subtree`).  O(depth): one size
        walk up to AUX.

        The slot becomes a *dead row* (``parent[v] == -1`` with ``v !=
        aux``): it keeps its position so every other slot's numbering —
        shared with the engine's bookkeeping and the pre-compaction
        compiled graph — stays intact until the next full re-solve.
        Dead rows are skipped by the exporters (:meth:`to_plan`,
        :meth:`parent_map`, :meth:`retrieval_summary`) and excluded
        from the Euler order; trees carrying dead rows support appends,
        detaches, re-homes and exports, but not the fresh swap path or
        :meth:`subtree_max_retrieval` (re-solves rebuild the tree on a
        compacted graph first).
        """
        aux = len(self.parent) - 1
        p = int(self.parent[v])
        if not (0 <= v < aux) or p < 0:
            raise GraphError(f"cannot detach index {v}: not a live version")
        if int(self.size[v]) != 1:
            raise GraphError(
                f"cannot detach index {v}: {int(self.size[v]) - 1} "
                "dependants still attach through it"
            )
        self._ensure_children()
        self.children[p].remove(v)
        self.total_retrieval -= float(self.ret[v])
        self.total_storage -= float(edge_storage)
        x = p
        while True:
            self.size[x] -= 1
            if x == aux:
                break
            x = int(self.parent[x])
        self.parent[v] = -1
        self.par_edge[v] = -1
        self.ret[v] = 0.0
        self.size[v] = 1
        self._order_dirty = True

    def rehome_subtree(
        self,
        v: int,
        new_parent: int,
        par_eid: int,
        edge_storage: float,
        edge_retrieval: float,
        old_edge_storage: float,
    ) -> float:
        """Re-route ``v`` (subtree and all) under ``new_parent``.

        The plan-repair move for retirement: when a retired version's
        tree child must find a new parent, the whole child subtree moves
        with it.  All edge costs are passed explicitly (the compiled
        arrays may be mid-tombstone); ``par_eid`` is recorded for
        bookkeeping only.  The caller must ensure ``new_parent`` is not
        inside ``v``'s subtree (an O(depth) parent walk — the Euler
        intervals may be stale here).

        O(depth) size walks plus an O(|subtree(v)|) retrieval shift
        walk.  Returns the maximum retrieval cost inside the moved
        subtree after the move, which is exactly the quantity BMR
        feasibility checks need.
        """
        aux = len(self.parent) - 1
        p = int(self.parent[v])
        u = int(new_parent)
        if p < 0 or not (0 <= v < aux):
            raise GraphError(f"cannot re-home index {v}: not a live version")
        if u == v or not (0 <= u <= aux) or (u != aux and self.parent[u] < 0):
            raise GraphError(f"bad re-home parent index {u}")
        shift = float(self.ret[u] + edge_retrieval - self.ret[v])

        self._ensure_children()
        self.children[p].remove(v)
        self.children[u].append(v)
        self.parent[v] = u
        self.par_edge[v] = par_eid

        sz = int(self.size[v])
        x = p
        while True:
            self.size[x] -= sz
            if x == aux:
                break
            x = int(self.parent[x])
        x = u
        while True:
            self.size[x] += sz
            if x == aux:
                break
            x = int(self.parent[x])

        sub_max = -np.inf
        stack = [v]
        children = self.children
        ret = self.ret
        while stack:
            y = stack.pop()
            if shift != 0.0:
                ret[y] += shift
            r = float(ret[y])
            if r > sub_max:
                sub_max = r
            stack.extend(children[y])
        self.total_storage += float(edge_storage) - float(old_edge_storage)
        self.total_retrieval += shift * sz
        self._order_dirty = True
        return sub_max

    def subtree_max_retrieval(self) -> np.ndarray:
        """Per-node max retrieval cost over each node's subtree.

        ``float64[n + 1]`` indexed like :attr:`ret` (the AUX entry is
        the tree-wide maximum).  A node's subtree is a contiguous block
        of the preorder (see :meth:`refresh_euler`), so the answer for
        *all* nodes is a batch of range-max queries over the preorder
        depth-cost sequence, served by a sparse table built with
        O(log V) vectorized ``np.maximum`` passes.  Since ``max`` only
        *selects* among the cached floats (no arithmetic), the result
        is bit-identical to the dict reference's reverse-topological
        recomputation.  The BMR greedy kernels read this once per round
        to admit only swaps that keep every version of the moved
        subtree within the retrieval budget.
        """
        if self._order_dirty:
            self.refresh_euler()
        n1 = len(self.parent)
        levels = max(1, int(n1).bit_length())  # floor(log2(n1)) + 1 levels
        # sparse table over the preorder sequence, -inf padded so every
        # level-k lookup at i + 2^(k-1) stays in bounds and inert.  The
        # buffer is cached across calls (the BMR kernel queries once per
        # round) and refreshed *incrementally*: a fresh-path swap only
        # perturbs the preorder inside one contiguous position window
        # [_rmq_lo, _rmq_hi], and a row-k entry at position i covers row-0
        # positions [i, i + 2^k - 1], so exactly the entries with
        # i in [lo - 2^k + 1, hi] can change — every untouched entry's
        # window is disjoint from the dirty range and keeps its value.
        # Since max only *selects*, the partially refreshed table is
        # bit-identical to a full rebuild.  Row 0's -inf tail is written
        # once at allocation and never read as stale.
        width = n1 + (1 << levels)
        table = self._rmq_table
        if table is None or table.shape != (levels, width):
            table = np.full((levels, width), -np.inf)
            self._rmq_table = table
            self._rmq_lo, self._rmq_hi = 0, n1 - 1
        lo, hi = self._rmq_lo, self._rmq_hi
        if lo <= hi:
            table[0, lo : hi + 1] = self.ret[self._preorder[lo : hi + 1]]
            for k in range(1, levels):
                half = 1 << (k - 1)
                x0 = max(0, lo - (1 << k) + 1)
                x1 = min(width - half, hi + 1)
                np.maximum(
                    table[k - 1, x0:x1],
                    table[k - 1, x0 + half : x1 + half],
                    out=table[k, x0:x1],
                )
            self._rmq_lo, self._rmq_hi = 1 << 62, -1
        # per-node query: range [tin, tin + size) as two overlapping
        # power-of-two windows (exact for max)
        k = np.frexp(self.size.astype(np.float64))[1] - 1
        lo = self._tin
        hi = lo + self.size - (1 << k).astype(lo.dtype)
        flat_lo = k.astype(np.int64) * width + lo
        flat_hi = k.astype(np.int64) * width + hi
        return np.maximum(table.ravel()[flat_lo], table.ravel()[flat_hi])

    # ------------------------------------------------------------------
    # incremental growth (online ingest)
    # ------------------------------------------------------------------
    @property
    def num_versions(self) -> int:
        """Versions covered by this tree (its own count — during online
        ingest the compiled graph may already be ahead by one)."""
        return len(self.parent) - 1

    def append_version(
        self,
        parent_index: int,
        par_eid: int,
        edge_storage: float,
        edge_retrieval: float,
    ) -> int:
        """Grow the tree by one version attached through the given edge.

        The new version takes the next index (``num_versions`` before
        the call — matching the compiled graph's interning order) and
        the AUX root moves up by one slot, exactly like
        :class:`~repro.fastgraph.compiled.CompiledGraph` renumbers AUX
        on appends.  Edge costs are passed explicitly so the tree never
        reads the (possibly snapshotted or mid-append) compiled arrays;
        ``par_eid`` is recorded for bookkeeping only.

        Amortized O(1) array growth (the six per-node arrays are views
        into capacity-doubling backing buffers), O(#materialized) for
        the AUX renumber (a fancy-index over AUX's child list instead
        of a full-array mask scan), O(depth) for subtree sizes — this
        is what keeps per-arrival ingest latency flat as the graph
        grows.  Returns the new version's index.
        """
        old_len = len(self.parent)
        old_aux = old_len - 1  # AUX slot == old version count
        new_v = old_aux  # the new version takes over the old AUX index
        new_aux = old_len
        if parent_index == old_aux:
            parent_index = new_aux  # caller said "materialize" pre-renumber
        if not (0 <= parent_index <= new_aux) or parent_index == new_v:
            raise GraphError(f"bad attach parent index {parent_index}")
        idt = self.parent.dtype
        if max(new_aux, par_eid) > np.iinfo(idt).max:
            # the graph outgrew this tree's index dtype (mirrors
            # CompiledGraph.refresh's in-place upgrade); the narrow
            # backing buffers are dropped and re-allocated below
            idt = np.dtype(np.int64)
            self.parent = self.parent.astype(idt)
            self.par_edge = self.par_edge.astype(idt)
            self.size = self.size.astype(idt)
            self._tin = self._tin.astype(idt)
            self._tout = self._tout.astype(idt)
            self._preorder = self._preorder.astype(idt)
            self._iota = None
            self._cap = 0

        self._ensure_children()  # before growth: built from the old parent
        aux_children = self.children[old_aux]

        new_len = old_len + 1
        if self._cap < new_len:
            cap = max(2 * old_len, new_len, 8)
            for name in (
                "parent",
                "par_edge",
                "ret",
                "size",
                "_tin",
                "_tout",
            ):
                cur = getattr(self, name)
                buf = np.empty(cap, dtype=cur.dtype)
                buf[:old_len] = cur
                setattr(self, ("" if name[0] == "_" else "_") + name + "_buf", buf)
            self._cap = cap
        # the public arrays are always views of the buffers once capped,
        # so extending a view preserves all previously written slots
        parent = self._parent_buf[:new_len]
        par_edge = self._par_edge_buf[:new_len]
        ret = self._ret_buf[:new_len]
        size = self._size_buf[:new_len]
        self._tin = self._tin_buf[:new_len]
        self._tout = self._tout_buf[:new_len]

        # AUX moves up one slot: re-parent exactly its children (the
        # materialized versions) instead of mask-scanning every node
        if aux_children:
            parent[np.asarray(aux_children, dtype=idt)] = new_aux
        parent[new_aux] = -1
        parent[new_v] = -1
        self.parent = parent
        par_edge[new_aux] = -1
        par_edge[new_v] = -1
        self.par_edge = par_edge
        ret[new_aux] = 0.0
        ret[new_v] = 0.0
        self.ret = ret
        size[new_aux] = size[old_aux]
        size[new_v] = 1
        self.size = size
        self.children.append(aux_children)  # AUX child list moves up
        self.children[old_aux] = []

        p = int(parent_index)
        self.parent[new_v] = p
        self.par_edge[new_v] = par_eid
        self.children[p].append(new_v)
        self.ret[new_v] = self.ret[p] + edge_retrieval
        self.total_storage += float(edge_storage)
        self.total_retrieval += float(self.ret[new_v])
        x = p
        while True:
            self.size[x] += 1
            if x == new_aux:
                break
            x = int(self.parent[x])
        self._order_dirty = True
        return new_v

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def clone(self) -> "ArrayPlanTree":
        """O(V) snapshot sharing the compiled graph.

        Cached floats are copied bit-for-bit, so a clone continues any
        greedy run exactly where the original stood — the trajectory
        sweep forks one at each budget divergence point.
        """
        new = object.__new__(ArrayPlanTree)
        new.cg = self.cg
        new.parent = self.parent.copy()
        new.par_edge = self.par_edge.copy()
        new.ret = self.ret.copy()
        new.size = self.size.copy()
        if self._children_dirty:
            new.children = []  # rebuilt on demand from the parent array
        else:
            new.children = [list(c) for c in self.children]
        new.total_storage = self.total_storage
        new.total_retrieval = self.total_retrieval
        new._tin = self._tin.copy()
        new._tout = self._tout.copy()
        new._preorder = self._preorder.copy()
        new._order_dirty = self._order_dirty
        new._children_dirty = self._children_dirty
        new._iota = self._iota  # read-only scatter index, safe to share
        new._rmq_table = None  # scratch is per-owner (guarded-by above)
        new._rmq_lo = 1 << 62
        new._rmq_hi = -1
        new._cap = 0  # clones re-buffer lazily on their first append
        new._parent_buf = None
        new._par_edge_buf = None
        new._ret_buf = None
        new._size_buf = None
        new._tin_buf = None
        new._tout_buf = None
        return new

    # ------------------------------------------------------------------
    # conversions / inspection
    # ------------------------------------------------------------------
    def max_retrieval(self) -> float:
        """``max_v R(v)`` over the versions (0.0 for an empty graph)."""
        n = self.cg.n
        return float(self.ret[:n].max()) if n else 0.0

    def retrieval_summary(self) -> RetrievalSummary:
        """Aggregate retrieval statistics of the current tree.

        Dead (detached) rows are skipped, like every exporter here.
        """
        per = {
            self.cg.nodes[i]: float(self.ret[i])
            for i in range(self.cg.n)
            if self.parent[i] >= 0
        }
        return RetrievalSummary(
            total=self.total_retrieval,
            maximum=max(per.values(), default=0.0),
            per_version=per,
        )

    def materialized_versions(self) -> list[Node]:
        """Versions stored in full (children of AUX)."""
        self._ensure_children()
        return [self.cg.nodes[i] for i in self.children[self.cg.aux]]

    def parent_map(self) -> dict[Node, Node]:
        """Node-keyed parent map (AUX parents for materialized nodes).

        Dead (detached) rows are skipped.
        """
        return {
            self.cg.nodes[v]: self.cg.node_of(int(self.parent[v]))
            for v in range(self.cg.n)
            if self.parent[v] >= 0
        }

    def to_plan(self) -> StoragePlan:
        """Export as a :class:`StoragePlan` over the original nodes."""
        aux = self.cg.aux
        nodes = self.cg.nodes
        mats = []
        deltas = []
        for v in range(self.cg.n):
            p = int(self.parent[v])
            if p == aux:
                mats.append(nodes[v])
            elif p >= 0:  # dead (detached) rows are skipped
                deltas.append((nodes[p], nodes[v]))
        return StoragePlan.of(mats, deltas)

    def to_plan_tree(self) -> PlanTree:
        """Materialize the equivalent dict :class:`PlanTree` view."""
        return PlanTree(self.cg.graph, self.parent_map())

    def check_invariants(self) -> None:
        """Validate cached values against the dict implementation."""
        fresh = self.to_plan_tree()
        if not close_enough(self.total_storage, fresh.total_storage):
            raise GraphError(
                f"storage cache drift: {self.total_storage} vs {fresh.total_storage}"
            )
        if not close_enough(self.total_retrieval, fresh.total_retrieval):
            raise GraphError(
                f"retrieval cache drift: {self.total_retrieval} vs {fresh.total_retrieval}"
            )
        for i, node in enumerate(self.cg.nodes):
            if self.parent[i] < 0:
                continue  # dead (detached) row
            if not close_enough(float(self.ret[i]), fresh.ret[node]):
                raise GraphError(f"retrieval cache drift at {node!r}")
            if fresh.subtree_size[node] != int(self.size[i]):
                raise GraphError(f"subtree size drift at {node!r}")
