"""Flat-array plan trees with the PlanTree O(1) swap contract.

:class:`ArrayPlanTree` mirrors :class:`~repro.core.solution.PlanTree`
over a :class:`~repro.fastgraph.compiled.CompiledGraph`: per-node cached
retrieval costs and subtree sizes make evaluating the move "re-route
``v`` through edge ``e``" a constant number of array loads, and the
cached vectors themselves are the inputs the vectorized greedy kernels
scan with NumPy instead of per-candidate Python loops.

Equivalence discipline
----------------------
The array kernels must produce *plan-identical* results to the dict
reference solvers, whose tie-breaks compare floats for exact equality.
Every cached quantity here is therefore computed with the same IEEE
operations in the same order as ``PlanTree``:

* construction consumes ``(version, parent-edge)`` pairs in the same
  iteration order as ``PlanTree``'s ``parent.items()`` loop, so the
  Python-float storage accumulator matches bit for bit;
* retrieval costs are path sums ``ret[parent] + r_e`` assigned in the
  identical root-first DFS order;
* :meth:`apply_swap_edge` shifts the moved subtree with one addition
  per node, exactly like ``PlanTree.apply_swap``.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import AUX, GraphError, Node
from ..core.solution import PlanTree, RetrievalSummary, StoragePlan
from ..core.tolerance import close_enough
from .compiled import CompiledGraph

__all__ = ["ArrayPlanTree"]


class ArrayPlanTree:
    """A spanning arborescence of a compiled graph, rooted at AUX.

    State is indexed by node index (AUX = ``cg.aux``):

    * ``parent`` — parent node index (-1 for AUX);
    * ``par_edge`` — edge id of ``(parent[v], v)`` (-1 for AUX);
    * ``ret`` — retrieval cost ``R(v)`` along the unique AUX path;
    * ``size`` — subtree sizes (the paper's "dependency number");
    * ``children`` — per-node child lists (mutation bookkeeping);
    * Euler intervals ``tin``/``tout`` for O(1) ancestor tests,
      recomputed lazily after mutations.
    """

    __slots__ = (
        "cg",
        "parent",
        "par_edge",
        "ret",
        "size",
        "children",
        "total_storage",
        "total_retrieval",
        "_tin",
        "_tout",
        "_preorder",
        "_order_dirty",
    )

    def __init__(self, cg: CompiledGraph, parent_edges: list[tuple[int, int]]):
        """Build from ``(version index, parent edge id)`` pairs.

        The pair order defines the children-list and storage-summation
        order (see module docstring).  Every version must appear exactly
        once; the referenced edge must end at it.
        """
        n = cg.n
        self.cg = cg
        self.parent = np.full(n + 1, -1, dtype=np.int64)
        self.par_edge = np.full(n + 1, -1, dtype=np.int64)
        self.ret = np.zeros(n + 1, dtype=np.float64)
        self.size = np.ones(n + 1, dtype=np.int64)
        self.children: list[list[int]] = [[] for _ in range(n + 1)]
        self.total_storage = 0.0
        self.total_retrieval = 0.0
        self._tin = np.zeros(n + 1, dtype=np.int64)
        self._tout = np.zeros(n + 1, dtype=np.int64)
        self._preorder = np.zeros(0, dtype=np.int64)
        self._order_dirty = True

        seen = 0
        for v, eid in parent_edges:
            if cg.edge_dst[eid] != v or self.par_edge[v] != -1:
                raise GraphError(f"bad parent edge {eid} for version index {v}")
            p = int(cg.edge_src[eid])
            self.parent[v] = p
            self.par_edge[v] = eid
            self.children[p].append(int(v))
            self.total_storage += float(cg.edge_storage[eid])
            seen += 1
        if seen != n:
            raise GraphError(f"parent map covers {seen} of {n} versions")
        self._recompute_all()

    @classmethod
    def from_parent_map(cls, cg: CompiledGraph, parent: dict[Node, Node]) -> "ArrayPlanTree":
        """Build from a node-keyed parent map (e.g. an arborescence)."""
        pairs = [
            (cg.index[v], cg.edge_id(cg.index[p], cg.index[v]))
            for v, p in parent.items()
            if v is not AUX
        ]
        return cls(cg, pairs)

    # ------------------------------------------------------------------
    def _recompute_all(self) -> None:
        """Recompute R, subtree sizes and total retrieval in O(V)."""
        aux = self.cg.aux
        er = self.cg.edge_retrieval
        # same stack DFS as PlanTree._topo_order (root-first)
        order: list[int] = []
        stack = [aux]
        while stack:
            x = stack.pop()
            order.append(x)
            stack.extend(self.children[x])
        if len(order) != self.cg.n + 1:
            raise GraphError("parent map contains a cycle")
        self.total_retrieval = 0.0
        self.ret[aux] = 0.0
        for v in order[1:]:
            self.ret[v] = self.ret[self.parent[v]] + er[self.par_edge[v]]
            self.total_retrieval += float(self.ret[v])
        self.size[:] = 1
        for v in reversed(order[1:]):
            self.size[self.parent[v]] += self.size[v]
        self._order_dirty = True

    def refresh_euler(self) -> None:
        """Recompute the subtree intervals used by :meth:`is_ancestor`.

        One single-visit DFS collects the preorder; the intervals are
        then derived vectorized from the cached subtree sizes:
        ``tin[v] = preorder position``, ``tout[v] = tin[v] + size[v] -
        1``.  A node's subtree is exactly the preorder block
        ``[tin, tout]``, so every containment test (`is_ancestor`, the
        kernels' cycle masks, :meth:`apply_swap_edge`'s batch shift
        mask) answers identically to the classic entry/exit-timer
        Euler tour while paying one Python walk instead of two.  The
        preorder itself is kept on :attr:`_preorder` for the
        range-max queries of :meth:`subtree_max_retrieval`.
        """
        order_list: list[int] = []
        append = order_list.append
        stack = [self.cg.aux]
        pop = stack.pop
        extend = stack.extend
        children = self.children
        while stack:
            x = pop()
            append(x)
            c = children[x]
            if c:
                extend(c)
        order = np.array(order_list, dtype=np.int64)
        pos = np.empty(len(order), dtype=np.int64)
        pos[order] = np.arange(len(order), dtype=np.int64)
        self._preorder = order
        self._tin = pos
        self._tout = pos + self.size - 1
        self._order_dirty = False

    def is_ancestor(self, a: int, b: int) -> bool:
        """True when node index ``a`` is an ancestor of ``b`` (or equal)."""
        if self._order_dirty:
            self.refresh_euler()
        return bool(self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a])

    # ------------------------------------------------------------------
    # moves (by edge id)
    # ------------------------------------------------------------------
    def swap_deltas_edge(self, eid: int) -> tuple[float, float]:
        """Evaluate re-routing ``dst(eid)`` through edge ``eid``.

        Returns ``(delta_storage, delta_total_retrieval)``; the caller
        must ensure ``src(eid)`` is not inside ``dst(eid)``'s subtree.
        """
        cg = self.cg
        u = cg.edge_src[eid]
        v = cg.edge_dst[eid]
        ds = float(cg.edge_storage[eid] - cg.edge_storage[self.par_edge[v]])
        dr = float((self.ret[u] + cg.edge_retrieval[eid] - self.ret[v]) * self.size[v])
        return ds, dr

    def apply_swap_edge(self, eid: int) -> None:
        """Apply the move evaluated by :meth:`swap_deltas_edge`.

        Identity swaps (``eid`` already is ``v``'s parent edge, e.g.
        :meth:`materialize` on an already-materialized version) return
        immediately: the full remove/append plus size/retrieval walks
        would be a semantic no-op but accumulate float churn in
        ``total_storage`` / ``total_retrieval``.
        """
        cg = self.cg
        u = int(cg.edge_src[eid])
        v = int(cg.edge_dst[eid])
        if eid == int(self.par_edge[v]):
            return
        aux = cg.aux
        if u != aux and self.is_ancestor(v, u):
            raise GraphError(f"swap would create a cycle: {u} is in subtree({v})")
        p = int(self.parent[v])
        ds, dr = self.swap_deltas_edge(eid)
        shift = float(self.ret[u] + cg.edge_retrieval[eid] - self.ret[v])

        self.children[p].remove(v)
        self.children[u].append(v)
        self.parent[v] = u
        self.par_edge[v] = eid

        sz = int(self.size[v])
        x = p
        while True:
            self.size[x] -= sz
            if x == aux:
                break
            x = int(self.parent[x])
        x = u
        while True:
            self.size[x] += sz
            if x == aux:
                break
            x = int(self.parent[x])

        if shift != 0.0:
            if not self._order_dirty:
                # Batch subtree shift: with fresh Euler intervals the
                # subtree of ``v`` is exactly the nodes whose entry time
                # falls inside ``v``'s interval, so the whole shift is
                # one masked array add instead of a per-node Python walk
                # (LMG-All refreshes the intervals every round for its
                # cycle tests, so its moves always take this path; each
                # element still receives the identical single IEEE
                # addition, keeping plans bit-identical).
                tin = self._tin
                mask = (tin >= tin[v]) & (tin <= self._tout[v])
                self.ret[mask] += shift
            else:
                stack = [v]
                while stack:
                    y = stack.pop()
                    self.ret[y] += shift
                    stack.extend(self.children[y])
        self.total_storage += ds
        self.total_retrieval += dr
        self._order_dirty = True

    def materialize(self, v: int) -> None:
        """Shortcut: re-route version index ``v`` through its AUX edge."""
        self.apply_swap_edge(int(self.cg.aux_edge[v]))

    def subtree_max_retrieval(self) -> np.ndarray:
        """Per-node max retrieval cost over each node's subtree.

        ``float64[n + 1]`` indexed like :attr:`ret` (the AUX entry is
        the tree-wide maximum).  A node's subtree is a contiguous block
        of the preorder (see :meth:`refresh_euler`), so the answer for
        *all* nodes is a batch of range-max queries over the preorder
        depth-cost sequence, served by a sparse table built with
        O(log V) vectorized ``np.maximum`` passes.  Since ``max`` only
        *selects* among the cached floats (no arithmetic), the result
        is bit-identical to the dict reference's reverse-topological
        recomputation.  The BMR greedy kernels read this once per round
        to admit only swaps that keep every version of the moved
        subtree within the retrieval budget.
        """
        if self._order_dirty:
            self.refresh_euler()
        n1 = len(self.parent)
        levels = max(1, int(n1).bit_length())  # floor(log2(n1)) + 1 levels
        # sparse table over the preorder sequence, -inf padded so every
        # level-k lookup at i + 2^(k-1) stays in bounds and inert
        table = np.full((levels, n1 + (1 << levels)), -np.inf)
        table[0, :n1] = self.ret[self._preorder]
        for k in range(1, levels):
            half = 1 << (k - 1)
            np.maximum(table[k - 1, :-half], table[k - 1, half:], out=table[k, :-half])
        # per-node query: range [tin, tin + size) as two overlapping
        # power-of-two windows (exact for max)
        k = np.frexp(self.size.astype(np.float64))[1] - 1
        lo = self._tin
        hi = lo + self.size - (1 << k).astype(np.int64)
        flat_lo = k * table.shape[1] + lo
        flat_hi = k * table.shape[1] + hi
        return np.maximum(table.ravel()[flat_lo], table.ravel()[flat_hi])

    # ------------------------------------------------------------------
    # incremental growth (online ingest)
    # ------------------------------------------------------------------
    @property
    def num_versions(self) -> int:
        """Versions covered by this tree (its own count — during online
        ingest the compiled graph may already be ahead by one)."""
        return len(self.parent) - 1

    def append_version(
        self,
        parent_index: int,
        par_eid: int,
        edge_storage: float,
        edge_retrieval: float,
    ) -> int:
        """Grow the tree by one version attached through the given edge.

        The new version takes the next index (``num_versions`` before
        the call — matching the compiled graph's interning order) and
        the AUX root moves up by one slot, exactly like
        :class:`~repro.fastgraph.compiled.CompiledGraph` renumbers AUX
        on appends.  Edge costs are passed explicitly so the tree never
        reads the (possibly snapshotted or mid-append) compiled arrays;
        ``par_eid`` is recorded for bookkeeping only.

        O(V) for the AUX renumber + array growth, O(depth) for subtree
        sizes — no full recompute.  Returns the new version's index.
        """
        old_len = len(self.parent)
        old_aux = old_len - 1  # AUX slot == old version count
        new_v = old_aux  # the new version takes over the old AUX index
        new_aux = old_len
        if parent_index == old_aux:
            parent_index = new_aux  # caller said "materialize" pre-renumber
        if not (0 <= parent_index <= new_aux) or parent_index == new_v:
            raise GraphError(f"bad attach parent index {parent_index}")

        parent = np.append(self.parent, np.int64(-1))
        parent[parent == old_aux] = new_aux
        parent[new_aux] = -1
        self.parent = parent
        par_edge = np.append(self.par_edge, np.int64(-1))
        par_edge[new_aux] = -1
        self.par_edge = par_edge
        ret = np.append(self.ret, 0.0)
        ret[new_aux] = 0.0
        self.ret = ret
        size = np.append(self.size, np.int64(1))
        size[new_aux] = size[old_aux]
        size[new_v] = 1
        self.size = size
        self.children.append(self.children[old_aux])  # AUX child list moves up
        self.children[old_aux] = []
        self._tin = np.append(self._tin, np.int64(0))
        self._tout = np.append(self._tout, np.int64(0))

        p = int(parent_index)
        self.parent[new_v] = p
        self.par_edge[new_v] = par_eid
        self.children[p].append(new_v)
        self.ret[new_v] = self.ret[p] + edge_retrieval
        self.total_storage += float(edge_storage)
        self.total_retrieval += float(self.ret[new_v])
        x = p
        while True:
            self.size[x] += 1
            if x == new_aux:
                break
            x = int(self.parent[x])
        self._order_dirty = True
        return new_v

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def clone(self) -> "ArrayPlanTree":
        """O(V) snapshot sharing the compiled graph.

        Cached floats are copied bit-for-bit, so a clone continues any
        greedy run exactly where the original stood — the trajectory
        sweep forks one at each budget divergence point.
        """
        new = object.__new__(ArrayPlanTree)
        new.cg = self.cg
        new.parent = self.parent.copy()
        new.par_edge = self.par_edge.copy()
        new.ret = self.ret.copy()
        new.size = self.size.copy()
        new.children = [list(c) for c in self.children]
        new.total_storage = self.total_storage
        new.total_retrieval = self.total_retrieval
        new._tin = self._tin.copy()
        new._tout = self._tout.copy()
        new._preorder = self._preorder.copy()
        new._order_dirty = self._order_dirty
        return new

    # ------------------------------------------------------------------
    # conversions / inspection
    # ------------------------------------------------------------------
    def max_retrieval(self) -> float:
        """``max_v R(v)`` over the versions (0.0 for an empty graph)."""
        n = self.cg.n
        return float(self.ret[:n].max()) if n else 0.0

    def retrieval_summary(self) -> RetrievalSummary:
        """Aggregate retrieval statistics of the current tree."""
        per = {self.cg.nodes[i]: float(self.ret[i]) for i in range(self.cg.n)}
        return RetrievalSummary(
            total=self.total_retrieval,
            maximum=max(per.values(), default=0.0),
            per_version=per,
        )

    def materialized_versions(self) -> list[Node]:
        """Versions stored in full (children of AUX)."""
        return [self.cg.nodes[i] for i in self.children[self.cg.aux]]

    def parent_map(self) -> dict[Node, Node]:
        """Node-keyed parent map (AUX parents for materialized nodes)."""
        return {
            self.cg.nodes[v]: self.cg.node_of(int(self.parent[v]))
            for v in range(self.cg.n)
        }

    def to_plan(self) -> StoragePlan:
        """Export as a :class:`StoragePlan` over the original nodes."""
        aux = self.cg.aux
        nodes = self.cg.nodes
        mats = []
        deltas = []
        for v in range(self.cg.n):
            p = int(self.parent[v])
            if p == aux:
                mats.append(nodes[v])
            else:
                deltas.append((nodes[p], nodes[v]))
        return StoragePlan.of(mats, deltas)

    def to_plan_tree(self) -> PlanTree:
        """Materialize the equivalent dict :class:`PlanTree` view."""
        return PlanTree(self.cg.graph, self.parent_map())

    def check_invariants(self) -> None:
        """Validate cached values against the dict implementation."""
        fresh = self.to_plan_tree()
        if not close_enough(self.total_storage, fresh.total_storage):
            raise GraphError(
                f"storage cache drift: {self.total_storage} vs {fresh.total_storage}"
            )
        if not close_enough(self.total_retrieval, fresh.total_retrieval):
            raise GraphError(
                f"retrieval cache drift: {self.total_retrieval} vs {fresh.total_retrieval}"
            )
        for i, node in enumerate(self.cg.nodes):
            if not close_enough(float(self.ret[i]), fresh.ret[node]):
                raise GraphError(f"retrieval cache drift at {node!r}")
            if fresh.subtree_size[node] != int(self.size[i]):
                raise GraphError(f"subtree size drift at {node!r}")
