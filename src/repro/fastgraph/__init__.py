"""fastgraph — index-compiled graphs and flat-array solver kernels.

The dict-of-dicts :class:`~repro.core.graph.VersionGraph` is the right
structure for construction and correctness work, but the greedy solver
family (LMG, LMG-All, MP) evaluates millions of candidate moves per run
and Python dict lookups keyed by arbitrary hashables dominate profiles
long before algorithmic cost does.  This subsystem compiles a graph once
into flat NumPy arrays and reruns the greedy hot loops on top of them:

:class:`CompiledGraph`
    Node→int interning plus CSR-style arrays: per-edge source /
    destination / storage / retrieval vectors in deterministic edge
    insertion order, and indptr/indices adjacency for both directions.
    Obtained via :meth:`repro.core.graph.VersionGraph.compile`, which
    caches the result (budget sweeps reuse one compiled graph across
    every budget probe).  Append mutations — new versions, new deltas —
    *extend* the cached arrays in place through the mutation-event API
    (elementwise-equal to a fresh compile; the online ingest engine
    rides on this), while cost updates and removals still invalidate.

:class:`ArrayPlanTree`
    The flat-array counterpart of :class:`~repro.core.solution.PlanTree`
    with the same O(1) swap-evaluation contract (cached retrieval costs
    and subtree sizes), swap application by *edge id*, and exports back
    to :class:`~repro.core.solution.StoragePlan` / ``PlanTree``.

:func:`lmg_array` / :func:`lmg_all_array` / :func:`mp_array` /
:func:`bmr_lmg_array` / :func:`mp_local_array`
    Greedy kernels that vectorize the per-round candidate scan — the
    MSR family plus the BMR local-move family (storage minimization
    under a max-retrieval budget).  They are **plan-identical** to the
    dict reference implementations — same iteration order, same IEEE
    arithmetic, same tie-breaking — which is enforced by the
    equivalence suites in ``tests/test_fastgraph.py`` /
    ``tests/test_bmr_greedy.py`` across every ``repro.gen.presets``
    dataset.

:func:`sweep_greedy` (thin wrappers :func:`sweep_greedy_msr` /
:func:`sweep_greedy_bmr`)
    Single-pass budget-grid sweeps for the greedy families of **both**
    problem specs via trajectory replay
    (:mod:`repro.fastgraph.trajectory`): one recorded solver run at the
    loosest budget emits plan-identical results for the entire grid;
    diverged grid points are grouped into bands that share the nearest
    looser neighbor's recorded live continuation instead of each
    re-running the kernel.

Backend selection is plumbed through the solver registry: the plain
names (``solver="lmg"``) resolve to the array kernels automatically,
while ``get_solver("msr", "lmg", backend="dict")`` keeps the reference
path and ``backend="numba"`` picks the optional compiled kernels of
:mod:`repro.fastgraph.native` (plan-identical too; raises a clear
error when numba is not installed — see :data:`HAVE_NUMBA`).  See
:mod:`repro.algorithms.registry`.
"""

from .compiled import CompiledGraph
from .native import HAVE_NUMBA, bmr_lmg_native, lmg_all_native, lmg_native
from .plantree import ArrayPlanTree
from .solvers import bmr_lmg_array, lmg_all_array, lmg_array, mp_array, mp_local_array
from .trajectory import (
    BMR_GREEDY_SWEEP_SOLVERS,
    GREEDY_SWEEP_SOLVERS,
    TRAJECTORY_SOLVERS,
    SweepEntry,
    sweep_greedy,
    sweep_greedy_bmr,
    sweep_greedy_msr,
)

__all__ = [
    "CompiledGraph",
    "ArrayPlanTree",
    "lmg_array",
    "lmg_all_array",
    "mp_array",
    "bmr_lmg_array",
    "mp_local_array",
    "HAVE_NUMBA",
    "lmg_native",
    "lmg_all_native",
    "bmr_lmg_native",
    "SweepEntry",
    "sweep_greedy",
    "sweep_greedy_msr",
    "sweep_greedy_bmr",
    "TRAJECTORY_SOLVERS",
    "GREEDY_SWEEP_SOLVERS",
    "BMR_GREEDY_SWEEP_SOLVERS",
]
