"""Vectorized greedy kernels: LMG, LMG-All, MP on compiled graphs.

Each kernel is a drop-in replacement for its dict reference
(:func:`repro.algorithms.lmg.lmg`, :func:`repro.algorithms.lmg_all.
lmg_all`, :func:`repro.algorithms.mp.mp`) with the per-round candidate
scan turned into NumPy array arithmetic.  The *choices* are identical by
construction:

* candidates are laid out in the reference scan order (string-sorted
  versions for LMG, edge insertion order for LMG-All, heap order for
  MP), so ``np.argmax``'s first-maximum rule reproduces the reference
  "strictly better" tie-breaking;
* move deltas are computed with the same IEEE float operations on the
  same cached quantities, so equal-ratio ties resolve the same way;
* infeasibility is signalled identically (``ValueError`` when the MSR
  storage budget is below the minimum storage configuration).

All three accept either a :class:`~repro.core.graph.VersionGraph`
(compiled on the fly through the cached ``.compile()`` hook) or a
pre-built :class:`CompiledGraph`, which is how budget sweeps amortize
compilation across probes.

The LMG / LMG-All greedy loops are factored into *resumable* round
runners (:func:`_lmg_run`, :func:`_lmg_all_run`) that start from any
existing :class:`ArrayPlanTree` state and optionally record the applied
move sequence.  :mod:`repro.fastgraph.trajectory` builds the single-pass
budget-grid sweep on top of them: record the trajectory once at the
loosest budget, replay prefixes for every tighter budget, and resume the
live greedy from a cloned tree on the rare divergence.

Incremental scoring
-------------------
The round runners are *incremental*: instead of re-deriving every
candidate's gain and feasibility from the tree each round (preserved as
the :mod:`~repro.fastgraph.rescan` baselines), they hold the per-move
quantities that feed the masked argmax — ``ds``/``reduction`` per LMG
candidate, ``ds``/``dr``/``shift``/cycle/tree-edge masks per edge for
LMG-All and BMR — in live arrays across rounds, and after each applied
swap recompute only the entries the move invalidated.  A swap of
``v``'s subtree from ``p`` to ``u`` perturbs retrieval inside
``subtree(v)`` (one Euler-interval preorder slice), subtree sizes on
the ancestors of ``p`` and ``u`` (two interval-containment masks), and
``v``'s own parent edge; the affected *edges* are gathered from the
CSR adjacency of exactly those nodes.  The recomputed entries use the
same IEEE expressions on the same cached quantities, so the state
arrays stay bit-equal to a full rescan and the argmax picks the
identical move.  :class:`ArrayPlanTree` keeps its Euler intervals
current across swaps (see the plantree module docstring), so no
per-round Python DFS remains anywhere in the round loop.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..core.graph import VersionGraph
from ..core.tolerance import budget_cap, within_budget
from .compiled import CompiledGraph
from .plantree import ArrayPlanTree

__all__ = ["lmg_array", "lmg_all_array", "mp_array", "bmr_lmg_array", "mp_local_array"]

_NEG_INF = -math.inf


def _compiled(graph: VersionGraph | CompiledGraph) -> CompiledGraph:
    if isinstance(graph, CompiledGraph):
        return graph
    return graph.compile()


def _min_storage_array_tree(cg: CompiledGraph) -> ArrayPlanTree:
    """Minimum-storage starting configuration as an :class:`ArrayPlanTree`.

    Uses the vectorized Chu-Liu/Edmonds, which returns the identical
    arborescence to the dict solvers' ``min_storage_plan_tree`` start.
    """
    from .arborescence import min_storage_parent_edges

    return ArrayPlanTree(cg, min_storage_parent_edges(cg))


def _check_msr_feasible(tree: ArrayPlanTree, storage_budget: float) -> None:
    if not within_budget(tree.total_storage, storage_budget):
        raise ValueError(
            f"storage budget {storage_budget} below minimum storage "
            f"{tree.total_storage}: MSR infeasible"
        )


def _lmg_default_rounds(cg: CompiledGraph) -> int:
    """Default LMG round cap: each round materializes one version."""
    return cg.n


def _lmg_all_default_rounds(cg: CompiledGraph) -> int:
    """Default LMG-All round cap: every applied move strictly reduces
    retrieval, so the loop stops far earlier in practice."""
    return 4 * cg.n + 64


# Re-snapshot the LMG kernel's static Euler copy once the accumulated
# masked-interval work exceeds this multiple of the node count: numpy
# passes cost ~ns/element while a refresh is an O(V) Python DFS
# (~us/element), so refreshes must amortize over far more than one
# full-array pass of saved work.
_LMG_RESNAPSHOT_FACTOR = 1024


def _lmg_candidates(cg: CompiledGraph, tree: ArrayPlanTree) -> np.ndarray:
    """LMG's remaining-candidate array in the reference scan order
    (versions sorted by str, non-materialized only)."""
    order = cg.str_order
    return order[tree.parent[order] != cg.aux]


def _csr_gather(indptr: np.ndarray, edges: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Concatenated CSR rows for ``nodes`` (edge ids, duplicates kept).

    Vectorized equivalent of ``concatenate([edges[indptr[v]:indptr[v+1]]
    for v in nodes])`` — the incremental kernels use it to gather every
    edge incident to the node set a swap invalidated.
    """
    starts = indptr[nodes].astype(np.int64, copy=False)
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return edges[:0]
    ends = np.cumsum(counts)
    # slot i of the output belongs to row r(i) = searchsorted-style rank;
    # offset every slot by its row's start relative to the running total
    slots = np.arange(total, dtype=np.int64)
    slots += np.repeat(starts - (ends - counts), counts)
    return edges[slots]


def _lmg_run(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    cand: np.ndarray,
    storage_budget: float,
    rounds: int,
    record: list[tuple[int, float, float]] | None = None,
) -> np.ndarray:
    """Run LMG greedy rounds from the current ``tree`` / ``cand`` state.

    Mutates ``tree`` in place and returns the surviving candidate array.
    When ``record`` is given, each applied move appends
    ``(edge id, total_storage after, total_retrieval after)``.

    Incremental: ``ds`` per candidate is fixed for its lifetime (a
    candidate's parent edge only changes when it is itself materialized
    and leaves the pool) and the retrieval ``reduction`` is recomputed
    only for candidates inside the materialized subtree or above its old
    parent.

    Selection is lazy greedy (CELF): ``reduction`` is monotone
    non-increasing for every candidate — materializing a node only
    lowers ``ret`` inside its subtree and ``size`` on its old ancestor
    chain — so a max-heap keyed ``(-score, position)`` whose stale tops
    are re-keyed on pop always surfaces the true maximum, and the
    position tie-break reproduces ``np.argmax``'s first-maximum rule
    over the rescan baseline's compacted ``live`` array (compaction
    preserves order).  The two score tiers stay exact: the inf tier
    (``ds <= 0``, always within budget while the loop runs) can only
    lose members, so every inf-tier round precedes every ratio-tier
    round; once the ratio tier is in charge ``total_storage`` is
    strictly increasing, so a ratio candidate that exceeds the budget
    cap never becomes feasible again and may be dropped from the heap
    (it stays in the returned candidate pool).
    """
    aux = cg.aux
    es = cg.edge_storage
    er = cg.edge_retrieval
    if cand.size == 0:
        return cand
    # Static Euler snapshot + detach labels.  LMG only ever reattaches a
    # subtree under AUX, so relative preorder never changes: a node's
    # *current* subtree is exactly the positions of its snapshot
    # interval whose deepest materialized-since-snapshot ancestor
    # (``labels``) matches its own.  That turns every move into an
    # O(snapshot interval) masked pass instead of the O(V) permutation
    # maintenance of the generic fresh-swap path; when the accumulated
    # interval work exceeds ``_LMG_RESNAPSHOT_FACTOR * V`` the snapshot
    # is refreshed so stale (over-wide) intervals cannot compound.
    tree.ensure_euler()
    pre0 = tree._preorder.copy()
    tin0 = tree._tin.copy()
    tout0 = tree._tout.copy()
    labels = np.full(pre0.size, -1, dtype=np.int64)
    resnapshot_at = _LMG_RESNAPSHOT_FACTOR * pre0.size
    work = 0
    ret = tree.ret
    size = tree.size
    parent = tree.parent
    par_edge = tree.par_edge

    alive = np.asarray(tree.parent[cand] != aux)
    n_alive = int(np.count_nonzero(alive))
    # materialization move per candidate: (P(v), v) -> (AUX, v)
    ds = es[cg.aux_edge[cand]] - es[tree.par_edge[cand]]
    reduction = tree.ret[cand] * tree.size[cand]  # == -dr
    pos_of = np.full(len(tree.parent), -1, dtype=np.int64)
    pos_of[cand] = np.arange(cand.size, dtype=np.int64)
    # within_budget(x, b) is exactly x <= budget_cap(b): hoisting the
    # cap keeps the identical IEEE comparison across lazy re-checks
    cap = budget_cap(storage_budget)
    pos_red = reduction > 0.0
    ds_le0 = ds <= 0.0  # ds is fixed for a candidate's lifetime
    # inf tier: larger reduction wins, first position on ties
    idx_a = np.flatnonzero(alive & ds_le0 & pos_red)
    heap_a = [(-float(reduction[i]), int(i)) for i in idx_a]
    heapq.heapify(heap_a)
    # ratio tier: rho = reduction / ds; cache the reduction the key was
    # computed from so a pop can tell whether the entry is stale
    idx_b = np.flatnonzero(alive & ~ds_le0 & pos_red)
    heap_b = [
        (-float(r) / float(d), int(i), float(r))
        for r, d, i in zip(reduction[idx_b], ds[idx_b], idx_b)
    ]
    heapq.heapify(heap_b)

    for _ in range(rounds):
        if tree.total_storage >= storage_budget or n_alive == 0:
            break
        pick = -1
        while heap_a:
            neg_red, i = heap_a[0]
            if not alive[i]:
                heapq.heappop(heap_a)
                continue
            r = float(reduction[i])
            if r != -neg_red:
                heapq.heappop(heap_a)
                if r > 0.0:
                    heapq.heappush(heap_a, (-r, i))
                continue
            pick = i
            break
        if pick < 0:
            while heap_b:
                neg_rho, i, red_c = heap_b[0]
                if not alive[i]:
                    heapq.heappop(heap_b)
                    continue
                r = float(reduction[i])
                if r != red_c:
                    heapq.heappop(heap_b)
                    if r > 0.0:
                        heapq.heappush(heap_b, (-r / float(ds[i]), i, r))
                    continue
                if not ds[i] + tree.total_storage <= cap:
                    # ratio phase: total_storage only grows from here on
                    heapq.heappop(heap_b)
                    continue
                pick = i
                break
        if pick < 0:
            break
        best_v = int(cand[pick])
        eid = int(cg.aux_edge[best_v])
        # apply (P(v), v) -> (AUX, v) in place: the same IEEE float
        # updates as apply_swap_edge specialized to u = AUX, with the
        # current subtree resolved from the snapshot labels and the old
        # ancestors walked as P(v)'s parent chain (O(depth))
        ds_move = float(es[eid] - es[par_edge[best_v]])
        dscore = ret[aux] + er[eid] - ret[best_v]
        dr_move = float(dscore * size[best_v])
        shift = float(dscore)
        a = int(tin0[best_v])
        b = int(tout0[best_v])
        seg_lab = labels[a : b + 1]
        sel = seg_lab == labels[a]
        sub = pre0[a : b + 1][sel]
        p = int(parent[best_v])
        anc = []
        x = p
        while True:
            anc.append(x)
            if x == aux:
                break
            x = int(parent[x])
        anc_arr = np.asarray(anc, dtype=np.int64)
        sz = int(size[best_v])
        parent[best_v] = aux
        par_edge[best_v] = eid
        size[anc_arr] -= sz
        size[aux] += sz
        if shift != 0.0:
            ret[sub] += shift
        tree.total_storage += ds_move
        tree.total_retrieval += dr_move
        seg_lab[sel] = best_v
        tree._order_dirty = True
        tree._children_dirty = True
        alive[pick] = False
        n_alive -= 1
        if record is not None:
            record.append((eid, tree.total_storage, tree.total_retrieval))
        touched = pos_of[np.concatenate([sub.astype(np.int64, copy=False), anc_arr])]
        touched = touched[touched >= 0]
        nodes = cand[touched]
        reduction[touched] = ret[nodes] * size[nodes]
        work += b - a + 1
        if work >= resnapshot_at:
            tree.refresh_euler()
            pre0 = tree._preorder.copy()
            tin0 = tree._tin.copy()
            tout0 = tree._tout.copy()
            labels.fill(-1)
            tree._order_dirty = True
            work = 0
    return cand[alive]


def lmg_array(
    graph: VersionGraph | CompiledGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Array kernel for LMG (Algorithm 1); plan-identical to dict LMG.

    Each greedy round evaluates every remaining candidate's
    materialization move with four vectorized array expressions instead
    of a Python loop, then applies the best move exactly as the
    reference does.  Raises ``ValueError`` when ``storage_budget`` is
    below the minimum storage configuration (MSR infeasible).
    """
    cg = _compiled(graph)
    tree = _min_storage_array_tree(cg)
    _check_msr_feasible(tree, storage_budget)
    cand = _lmg_candidates(cg, tree)
    rounds = max_iterations if max_iterations is not None else _lmg_default_rounds(cg)
    _lmg_run(cg, tree, cand, storage_budget, rounds)
    return tree


def _lmg_all_run(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    storage_budget: float,
    rounds: int,
    record: list[tuple[int, float, float]] | None = None,
) -> None:
    """Run LMG-All greedy rounds from the current ``tree`` state.

    Mutates ``tree`` in place; ``record`` collects applied moves as in
    :func:`_lmg_run`.

    Incremental: the per-edge move quantities (``nontree``/cycle masks,
    ``ds``, ``dr``) persist across rounds.  Applying edge ``e = (u, v)``
    invalidates ``ds`` and ``nontree`` for ``v``'s in-edges (its parent
    edge changed), ``dr`` for edges incident to ``subtree(v)``
    (retrieval shifted) or entering an old/new ancestor (size changed),
    and the cycle mask for edges *leaving* ``subtree(v)`` (the only
    sources whose ancestor chain changed).  All recomputed with the
    rescan expressions — state stays bit-equal to a full rescan.
    """
    aux = cg.aux
    src, dst = cg.edge_src, cg.edge_dst
    es, er = cg.edge_storage, cg.edge_retrieval
    out_indptr, out_edges = cg.out_indptr, cg.out_edges
    in_indptr, in_edges = cg.in_indptr, cg.in_edges
    if rounds <= 0:
        return
    tree.ensure_euler()
    tin, tout, preorder = tree._tin, tree._tout, tree._preorder
    ret, size = tree.ret, tree.size

    # skip current tree edges and moves that would create a cycle
    # (src inside dst's subtree; AUX sources can never be)
    nontree = tree.parent[dst] != src
    cyc = (src != aux) & (tin[dst] <= tin[src]) & (tout[src] <= tout[dst])
    ds = es - es[tree.par_edge[dst]]
    dr = (ret[src] + er - ret[dst]) * size[dst]
    # budget-independent mask parts, maintained at the invalidation
    # sites of their inputs (recombinations only — no new float ops).
    # Algorithm 7 line 9: retrieval must improve (dr < 0)
    static_ok = nontree & ~cyc & (dr < 0.0)
    ds_le0 = ds <= 0.0
    reduction = -dr

    for _ in range(rounds):
        if tree.total_storage >= storage_budget:
            break
        valid = static_ok & within_budget(tree.total_storage + ds, storage_budget)
        if not valid.any():
            break
        inf_tier = valid & ds_le0
        if inf_tier.any():
            pick = int(np.argmax(np.where(inf_tier, reduction, _NEG_INF)))
        else:
            rho = np.full(reduction.shape, _NEG_INF)
            np.divide(reduction, ds, out=rho, where=valid)
            pick = int(np.argmax(rho))
        v = int(dst[pick])
        u = int(src[pick])
        p = int(tree.parent[v])
        # pre-move invalidation sets (Euler arrays mutate in place)
        sub = preorder[int(tin[v]) : int(tout[v]) + 1].copy()
        anc = (tin <= tin[p]) & (tout >= tout[p])
        anc |= (tin <= tin[u]) & (tout >= tout[u])
        tree.apply_swap_edge(pick)
        if record is not None:
            record.append((pick, tree.total_storage, tree.total_retrieval))
        # v's parent edge changed: ds / nontree for its in-edges
        ein = cg.in_slice(v)
        ds[ein] = es[ein] - es[tree.par_edge[v]]
        nontree[ein] = src[ein] != u
        ds_le0[ein] = ds[ein] <= 0.0
        # retrieval shifted inside subtree(v), sizes changed on the old
        # and new ancestor chains: dr for every edge touching either set
        e_out = _csr_gather(out_indptr, out_edges, sub)
        e_in = _csr_gather(in_indptr, in_edges, sub)
        e_anc = _csr_gather(in_indptr, in_edges, np.nonzero(anc)[0])
        touched = np.concatenate([e_out, e_in, e_anc])
        dr[touched] = (ret[src[touched]] + er[touched] - ret[dst[touched]]) * size[
            dst[touched]
        ]
        reduction[touched] = -dr[touched]
        # only subtree(v) members' ancestor chains changed: cycle mask
        # for their out-edges, against the post-move intervals
        cyc[e_out] = (
            (src[e_out] != aux)
            & (tin[dst[e_out]] <= tin[src[e_out]])
            & (tout[src[e_out]] <= tout[dst[e_out]])
        )
        # recombine the static mask where any ingredient changed (ein is
        # a subset of e_in — v is in its own subtree — so dr is current)
        sidx = np.concatenate([ein, e_out, touched])
        static_ok[sidx] = nontree[sidx] & ~cyc[sidx] & (dr[sidx] < 0.0)


def lmg_all_array(
    graph: VersionGraph | CompiledGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Array kernel for LMG-All (Algorithm 7); plan-identical to dict.

    The per-round scan over every extended-graph edge becomes a masked
    array computation; cycle tests use the vectorized Euler intervals.
    Raises ``ValueError`` on MSR-infeasible budgets like the reference.
    """
    cg = _compiled(graph)
    tree = _min_storage_array_tree(cg)
    _check_msr_feasible(tree, storage_budget)
    rounds = (
        max_iterations if max_iterations is not None else _lmg_all_default_rounds(cg)
    )
    _lmg_all_run(cg, tree, storage_budget, rounds)
    return tree


def mp_array(
    graph: VersionGraph | CompiledGraph,
    retrieval_budget: float,
) -> ArrayPlanTree:
    """Array kernel for Modified Prim's (BMR); plan-identical to dict MP.

    Prim growth is inherently sequential, but each attachment's
    relaxation sweep over the out-edges is one masked NumPy pass:
    feasibility filter, lexicographic "(storage, retrieval) strictly
    better" test and the ``best_*`` updates all happen on candidate
    arrays, with only the surviving (improving) edges pushed onto the
    heap one by one in CSR order — the same order the dict reference
    pushes them, so heap ties resolve identically.  Raises
    ``ValueError`` when the finite retrieval budget is infeasible
    (negative budgets: even materializing everything has max
    retrieval 0).
    """
    cg = _compiled(graph)
    n, aux = cg.n, cg.aux
    es, er, dst = cg.edge_storage, cg.edge_retrieval, cg.edge_dst

    # best known attachment per unattached version: (storage, retrieval, parent)
    best_s = es[cg.aux_edge]  # fancy indexing copies; mutated below
    best_r = np.zeros(n, dtype=np.float64)
    best_p = np.full(n, aux, dtype=np.int64)
    attached = np.full(n + 1, -1, dtype=np.int64)
    # heap entries: (storage, retrieval, seq, v, parent) — lazy deletion,
    # initial order sorted by str to match the reference (the cached key
    # array replaces an O(n) re-stringify + sort per solve)
    init_s = best_s[cg.str_order].tolist()
    heap: list[tuple[float, float, int, int, int]] = [
        (s, 0.0, seq, v, aux)
        for seq, (s, v) in enumerate(zip(init_s, cg.str_order.tolist()))
    ]
    seq = len(heap)
    heapq.heapify(heap)
    attach_order: list[tuple[int, int]] = []

    while heap:
        s, r, _, v, p = heapq.heappop(heap)
        if (
            attached[v] != -1
            or float(best_s[v]) != s
            or float(best_r[v]) != r
            or int(best_p[v]) != p
        ):
            continue
        attached[v] = p
        attach_order.append((v, p))
        eids = cg.out_slice(v)
        if eids.size == 0:
            continue
        w = dst[eids]
        ws = es[eids]
        nr = r + er[eids]
        # same float ops and comparisons as the scalar loop; successors
        # are unique per source, so the masked update cannot self-clash
        mask = (w != aux) & (attached[w] == -1)
        mask &= within_budget(nr, retrieval_budget)
        mask &= (ws < best_s[w]) | ((ws == best_s[w]) & (nr < best_r[w]))
        if not mask.any():
            continue
        idx = np.nonzero(mask)[0]
        sel_w = w[idx]
        sel_s = ws[idx]
        sel_r = nr[idx]
        best_s[sel_w] = sel_s
        best_r[sel_w] = sel_r
        best_p[sel_w] = v
        # bulk push: one tolist() per array instead of a numpy scalar
        # conversion per element; push order (CSR order) is unchanged,
        # so heap ties still resolve identically
        push = heapq.heappush
        for s2, r2, w2 in zip(sel_s.tolist(), sel_r.tolist(), sel_w.tolist()):
            push(heap, (s2, r2, seq, w2, v))
            seq += 1

    assert len(attach_order) == n, "materialization keeps MP feasible"
    tree = ArrayPlanTree(
        cg, [(v, int(cg.edge_id(p, v))) for v, p in attach_order]
    )
    if math.isfinite(retrieval_budget) and not within_budget(
        tree.max_retrieval(), retrieval_budget
    ):
        raise ValueError(
            f"retrieval budget {retrieval_budget} infeasible: MP plan has "
            f"max retrieval {tree.max_retrieval()}"
        )
    return tree


# ----------------------------------------------------------------------
# BMR greedy family (minimize storage under a max-retrieval budget)
# ----------------------------------------------------------------------
def _bmr_default_rounds(cg: CompiledGraph) -> int:
    """Default BMR local-move round cap: every applied move strictly
    reduces storage, so the loop stops far earlier in practice."""
    return 4 * cg.n + 64


def _bmr_run(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    retrieval_budget: float,
    rounds: int,
    record: list[tuple[int, float, float]] | None = None,
) -> int:
    """Run BMR local-move rounds from the current ``tree`` state.

    Mutates ``tree`` in place and returns the number of applied moves.
    When ``record`` is given, each applied move appends ``(edge id, max
    retrieval of the moved subtree after the move, total_storage
    after)`` — the first quantity is exactly the move's feasibility
    check value, which the trajectory sweep replays against tighter
    budgets.

    Incremental like :func:`_lmg_all_run`: per-edge ``ds``, ``shift``
    and the masks persist across rounds, with ``shift`` touched only by
    retrieval changes (edges incident to the moved subtree — subtree
    sizes don't enter it).  The admissibility bound
    ``submax[dst] + shift`` still needs each round's subtree maxima,
    served by the plan tree's cached sparse table over the live Euler
    preorder — no per-round DFS.
    """
    aux = cg.aux
    src, dst = cg.edge_src, cg.edge_dst
    es, er = cg.edge_storage, cg.edge_retrieval
    out_indptr, out_edges = cg.out_indptr, cg.out_edges
    in_indptr, in_edges = cg.in_indptr, cg.in_edges
    applied = 0
    if rounds <= 0:
        return applied
    tree.ensure_euler()
    tin, tout, preorder = tree._tin, tree._tout, tree._preorder
    ret = tree.ret

    # skip current tree edges and moves that would create a cycle
    nontree = tree.parent[dst] != src
    cyc = (src != aux) & (tin[dst] <= tin[src]) & (tout[src] <= tout[dst])
    ds = es - es[tree.par_edge[dst]]
    shift = ret[src] + er - ret[dst]
    # budget-independent parts of the per-round masks, maintained at the
    # same invalidation sites as their inputs (pure recombinations of
    # already-exact state — no new float ops, so no identity risk)
    static_ok = nontree & ~cyc & (ds < 0.0)
    shift_le0 = shift <= 0.0
    reduction = -ds

    for _ in range(rounds):
        submax = tree.subtree_max_retrieval()
        # storage must strictly improve (static_ok) and every version in
        # subtree(dst) shifts by the same amount: the move is admissible
        # iff the subtree maximum stays within budget
        valid = static_ok & within_budget(submax[dst] + shift, retrieval_budget)
        if not valid.any():
            break
        inf_tier = valid & shift_le0
        if inf_tier.any():
            # retrieval-non-increasing tier: larger reduction wins,
            # first in edge order on ties
            pick = int(np.argmax(np.where(inf_tier, reduction, _NEG_INF)))
        else:
            rho = np.full(reduction.shape, _NEG_INF)
            np.divide(reduction, shift, out=rho, where=valid)
            pick = int(np.argmax(rho))
        new_submax = float(submax[dst[pick]] + shift[pick])
        v = int(dst[pick])
        u = int(src[pick])
        sub = preorder[int(tin[v]) : int(tout[v]) + 1].copy()
        tree.apply_swap_edge(pick)
        applied += 1
        if record is not None:
            record.append((pick, new_submax, tree.total_storage))
        # v's parent edge changed: ds / nontree for its in-edges
        ein = cg.in_slice(v)
        ds[ein] = es[ein] - es[tree.par_edge[v]]
        nontree[ein] = src[ein] != u
        reduction[ein] = -ds[ein]
        # retrieval shifted inside subtree(v) only (sizes don't enter
        # shift): recompute it for edges touching the subtree, and the
        # cycle mask for edges leaving it, on the post-move intervals
        e_out = _csr_gather(out_indptr, out_edges, sub)
        e_in = _csr_gather(in_indptr, in_edges, sub)
        touched = np.concatenate([e_out, e_in])
        shift[touched] = ret[src[touched]] + er[touched] - ret[dst[touched]]
        shift_le0[touched] = shift[touched] <= 0.0
        cyc[e_out] = (
            (src[e_out] != aux)
            & (tin[dst[e_out]] <= tin[src[e_out]])
            & (tout[src[e_out]] <= tout[dst[e_out]])
        )
        # recombine the static mask where any ingredient changed
        sidx = np.concatenate([ein, e_out])
        static_ok[sidx] = nontree[sidx] & ~cyc[sidx] & (ds[sidx] < 0.0)
    return applied


def _materialized_array_tree(cg: CompiledGraph) -> ArrayPlanTree:
    """All-materialized starting configuration (max retrieval 0)."""
    return ArrayPlanTree(cg, [(v, int(cg.aux_edge[v])) for v in range(cg.n)])


def _check_bmr_feasible(retrieval_budget: float) -> None:
    if not within_budget(0.0, retrieval_budget):
        raise ValueError(
            f"retrieval budget {retrieval_budget} infeasible: even "
            f"materializing every version has max retrieval 0"
        )


def bmr_lmg_array(
    graph: VersionGraph | CompiledGraph,
    retrieval_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Array kernel for BMR-LMG; plan-identical to dict :func:`~repro.
    algorithms.bmr_greedy.bmr_lmg`.

    Starts from the all-materialized plan and applies the best
    storage-reducing swap whose moved subtree stays within the
    retrieval budget, one masked array scan per round.  Raises
    ``ValueError`` on negative (infeasible) retrieval budgets.
    """
    cg = _compiled(graph)
    _check_bmr_feasible(retrieval_budget)
    tree = _materialized_array_tree(cg)
    rounds = max_iterations if max_iterations is not None else _bmr_default_rounds(cg)
    _bmr_run(cg, tree, retrieval_budget, rounds)
    return tree


def mp_local_array(
    graph: VersionGraph | CompiledGraph,
    retrieval_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Array kernel for MP + BMR local moves; plan-identical to dict
    :func:`~repro.algorithms.bmr_greedy.mp_local`.

    Runs :func:`mp_array` and refines its tree with the same swap loop
    as :func:`bmr_lmg_array`; never stores more than plain MP.  Raises
    ``ValueError`` on infeasible retrieval budgets, like MP itself.
    """
    cg = _compiled(graph)
    tree = mp_array(cg, retrieval_budget)
    rounds = max_iterations if max_iterations is not None else _bmr_default_rounds(cg)
    _bmr_run(cg, tree, retrieval_budget, rounds)
    return tree
