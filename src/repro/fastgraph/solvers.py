"""Vectorized greedy kernels: LMG, LMG-All, MP on compiled graphs.

Each kernel is a drop-in replacement for its dict reference
(:func:`repro.algorithms.lmg.lmg`, :func:`repro.algorithms.lmg_all.
lmg_all`, :func:`repro.algorithms.mp.mp`) with the per-round candidate
scan turned into NumPy array arithmetic.  The *choices* are identical by
construction:

* candidates are laid out in the reference scan order (string-sorted
  versions for LMG, edge insertion order for LMG-All, heap order for
  MP), so ``np.argmax``'s first-maximum rule reproduces the reference
  "strictly better" tie-breaking;
* move deltas are computed with the same IEEE float operations on the
  same cached quantities, so equal-ratio ties resolve the same way;
* infeasibility is signalled identically (``ValueError`` when the MSR
  storage budget is below the minimum storage configuration).

All three accept either a :class:`~repro.core.graph.VersionGraph`
(compiled on the fly through the cached ``.compile()`` hook) or a
pre-built :class:`CompiledGraph`, which is how budget sweeps amortize
compilation across probes.

The LMG / LMG-All greedy loops are factored into *resumable* round
runners (:func:`_lmg_run`, :func:`_lmg_all_run`) that start from any
existing :class:`ArrayPlanTree` state and optionally record the applied
move sequence.  :mod:`repro.fastgraph.trajectory` builds the single-pass
budget-grid sweep on top of them: record the trajectory once at the
loosest budget, replay prefixes for every tighter budget, and resume the
live greedy from a cloned tree on the rare divergence.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..core.graph import VersionGraph
from ..core.tolerance import within_budget
from .compiled import CompiledGraph
from .plantree import ArrayPlanTree

__all__ = ["lmg_array", "lmg_all_array", "mp_array", "bmr_lmg_array", "mp_local_array"]

_NEG_INF = -math.inf


def _compiled(graph: VersionGraph | CompiledGraph) -> CompiledGraph:
    if isinstance(graph, CompiledGraph):
        return graph
    return graph.compile()


def _min_storage_array_tree(cg: CompiledGraph) -> ArrayPlanTree:
    """Minimum-storage starting configuration as an :class:`ArrayPlanTree`.

    Uses the vectorized Chu-Liu/Edmonds, which returns the identical
    arborescence to the dict solvers' ``min_storage_plan_tree`` start.
    """
    from .arborescence import min_storage_parent_edges

    return ArrayPlanTree(cg, min_storage_parent_edges(cg))


def _check_msr_feasible(tree: ArrayPlanTree, storage_budget: float) -> None:
    if not within_budget(tree.total_storage, storage_budget):
        raise ValueError(
            f"storage budget {storage_budget} below minimum storage "
            f"{tree.total_storage}: MSR infeasible"
        )


def _lmg_default_rounds(cg: CompiledGraph) -> int:
    """Default LMG round cap: each round materializes one version."""
    return cg.n


def _lmg_all_default_rounds(cg: CompiledGraph) -> int:
    """Default LMG-All round cap: every applied move strictly reduces
    retrieval, so the loop stops far earlier in practice."""
    return 4 * cg.n + 64


def _lmg_candidates(cg: CompiledGraph, tree: ArrayPlanTree) -> np.ndarray:
    """LMG's remaining-candidate array in the reference scan order
    (versions sorted by str, non-materialized only)."""
    aux = cg.aux
    return np.array(
        sorted(
            (i for i in range(cg.n) if tree.parent[i] != aux),
            key=lambda i: str(cg.nodes[i]),
        ),
        dtype=np.int64,
    )


def _lmg_run(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    cand: np.ndarray,
    storage_budget: float,
    rounds: int,
    record: list[tuple[int, float, float]] | None = None,
) -> np.ndarray:
    """Run LMG greedy rounds from the current ``tree`` / ``cand`` state.

    Mutates ``tree`` in place and returns the surviving candidate array.
    When ``record`` is given, each applied move appends
    ``(edge id, total_storage after, total_retrieval after)``.
    """
    aux = cg.aux
    es = cg.edge_storage

    for _ in range(rounds):
        if tree.total_storage >= storage_budget or cand.size == 0:
            break
        live = cand[tree.parent[cand] != aux]
        if live.size == 0:
            break
        # materialization move per candidate: (P(v), v) -> (AUX, v)
        ds = es[cg.aux_edge[live]] - es[tree.par_edge[live]]
        reduction = tree.ret[live] * tree.size[live]  # == -dr
        valid = within_budget(tree.total_storage + ds, storage_budget) & (
            reduction > 0.0
        )
        if not valid.any():
            break
        inf_tier = valid & (ds <= 0.0)
        if inf_tier.any():
            # rho = inf tier: larger reduction wins, first in order on ties
            pick = int(np.argmax(np.where(inf_tier, reduction, _NEG_INF)))
        else:
            rho = np.full(live.shape, _NEG_INF)
            np.divide(reduction, ds, out=rho, where=valid)
            pick = int(np.argmax(rho))
        best_v = int(live[pick])
        tree.materialize(best_v)
        cand = cand[cand != best_v]
        if record is not None:
            record.append(
                (int(cg.aux_edge[best_v]), tree.total_storage, tree.total_retrieval)
            )
    return cand


def lmg_array(
    graph: VersionGraph | CompiledGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Array kernel for LMG (Algorithm 1); plan-identical to dict LMG.

    Each greedy round evaluates every remaining candidate's
    materialization move with four vectorized array expressions instead
    of a Python loop, then applies the best move exactly as the
    reference does.  Raises ``ValueError`` when ``storage_budget`` is
    below the minimum storage configuration (MSR infeasible).
    """
    cg = _compiled(graph)
    tree = _min_storage_array_tree(cg)
    _check_msr_feasible(tree, storage_budget)
    cand = _lmg_candidates(cg, tree)
    rounds = max_iterations if max_iterations is not None else _lmg_default_rounds(cg)
    _lmg_run(cg, tree, cand, storage_budget, rounds)
    return tree


def _lmg_all_run(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    storage_budget: float,
    rounds: int,
    record: list[tuple[int, float, float]] | None = None,
) -> None:
    """Run LMG-All greedy rounds from the current ``tree`` state.

    Mutates ``tree`` in place; ``record`` collects applied moves as in
    :func:`_lmg_run`.
    """
    aux = cg.aux
    src, dst = cg.edge_src, cg.edge_dst
    es, er = cg.edge_storage, cg.edge_retrieval

    for _ in range(rounds):
        if tree.total_storage >= storage_budget:
            break
        tree.refresh_euler()
        tin, tout = tree._tin, tree._tout
        # skip current tree edges and moves that would create a cycle
        # (src inside dst's subtree; AUX sources can never be)
        valid = tree.parent[dst] != src
        valid &= ~((src != aux) & (tin[dst] <= tin[src]) & (tout[src] <= tout[dst]))
        ds = es - es[tree.par_edge[dst]]
        dr = (tree.ret[src] + er - tree.ret[dst]) * tree.size[dst]
        valid &= dr < 0.0  # Algorithm 7 line 9: retrieval must improve
        valid &= within_budget(tree.total_storage + ds, storage_budget)
        if not valid.any():
            break
        reduction = -dr
        inf_tier = valid & (ds <= 0.0)
        if inf_tier.any():
            pick = int(np.argmax(np.where(inf_tier, reduction, _NEG_INF)))
        else:
            rho = np.full(reduction.shape, _NEG_INF)
            np.divide(reduction, ds, out=rho, where=valid)
            pick = int(np.argmax(rho))
        tree.apply_swap_edge(pick)
        if record is not None:
            record.append((pick, tree.total_storage, tree.total_retrieval))


def lmg_all_array(
    graph: VersionGraph | CompiledGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Array kernel for LMG-All (Algorithm 7); plan-identical to dict.

    The per-round scan over every extended-graph edge becomes a masked
    array computation; cycle tests use the vectorized Euler intervals.
    Raises ``ValueError`` on MSR-infeasible budgets like the reference.
    """
    cg = _compiled(graph)
    tree = _min_storage_array_tree(cg)
    _check_msr_feasible(tree, storage_budget)
    rounds = (
        max_iterations if max_iterations is not None else _lmg_all_default_rounds(cg)
    )
    _lmg_all_run(cg, tree, storage_budget, rounds)
    return tree


def mp_array(
    graph: VersionGraph | CompiledGraph,
    retrieval_budget: float,
) -> ArrayPlanTree:
    """Array kernel for Modified Prim's (BMR); plan-identical to dict MP.

    Prim growth is inherently sequential, but each attachment's
    relaxation sweep over the out-edges is one masked NumPy pass:
    feasibility filter, lexicographic "(storage, retrieval) strictly
    better" test and the ``best_*`` updates all happen on candidate
    arrays, with only the surviving (improving) edges pushed onto the
    heap one by one in CSR order — the same order the dict reference
    pushes them, so heap ties resolve identically.  Raises
    ``ValueError`` when the finite retrieval budget is infeasible
    (negative budgets: even materializing everything has max
    retrieval 0).
    """
    cg = _compiled(graph)
    n, aux = cg.n, cg.aux
    es, er, dst = cg.edge_storage, cg.edge_retrieval, cg.edge_dst

    # best known attachment per unattached version: (storage, retrieval, parent)
    best_s = es[cg.aux_edge]  # fancy indexing copies; mutated below
    best_r = np.zeros(n, dtype=np.float64)
    best_p = np.full(n, aux, dtype=np.int64)
    attached = np.full(n + 1, -1, dtype=np.int64)
    # heap entries: (storage, retrieval, seq, v, parent) — lazy deletion,
    # initial order sorted by str to match the reference
    heap: list[tuple[float, float, int, int, int]] = []
    seq = 0
    for v in sorted(range(n), key=lambda i: str(cg.nodes[i])):
        heap.append((float(best_s[v]), 0.0, seq, v, aux))
        seq += 1
    heapq.heapify(heap)
    attach_order: list[tuple[int, int]] = []

    while heap:
        s, r, _, v, p = heapq.heappop(heap)
        if (
            attached[v] != -1
            or float(best_s[v]) != s
            or float(best_r[v]) != r
            or int(best_p[v]) != p
        ):
            continue
        attached[v] = p
        attach_order.append((v, p))
        eids = cg.out_slice(v)
        if eids.size == 0:
            continue
        w = dst[eids]
        ws = es[eids]
        nr = r + er[eids]
        # same float ops and comparisons as the scalar loop; successors
        # are unique per source, so the masked update cannot self-clash
        mask = (w != aux) & (attached[w] == -1)
        mask &= within_budget(nr, retrieval_budget)
        mask &= (ws < best_s[w]) | ((ws == best_s[w]) & (nr < best_r[w]))
        if not mask.any():
            continue
        idx = np.nonzero(mask)[0]
        sel_w = w[idx]
        sel_s = ws[idx]
        sel_r = nr[idx]
        best_s[sel_w] = sel_s
        best_r[sel_w] = sel_r
        best_p[sel_w] = v
        for j in range(idx.size):
            heapq.heappush(
                heap, (float(sel_s[j]), float(sel_r[j]), seq, int(sel_w[j]), v)
            )
            seq += 1

    assert len(attach_order) == n, "materialization keeps MP feasible"
    tree = ArrayPlanTree(
        cg, [(v, int(cg.edge_id(p, v))) for v, p in attach_order]
    )
    if math.isfinite(retrieval_budget) and not within_budget(
        tree.max_retrieval(), retrieval_budget
    ):
        raise ValueError(
            f"retrieval budget {retrieval_budget} infeasible: MP plan has "
            f"max retrieval {tree.max_retrieval()}"
        )
    return tree


# ----------------------------------------------------------------------
# BMR greedy family (minimize storage under a max-retrieval budget)
# ----------------------------------------------------------------------
def _bmr_default_rounds(cg: CompiledGraph) -> int:
    """Default BMR local-move round cap: every applied move strictly
    reduces storage, so the loop stops far earlier in practice."""
    return 4 * cg.n + 64


def _bmr_run(
    cg: CompiledGraph,
    tree: ArrayPlanTree,
    retrieval_budget: float,
    rounds: int,
    record: list[tuple[int, float, float]] | None = None,
) -> int:
    """Run BMR local-move rounds from the current ``tree`` state.

    Mutates ``tree`` in place and returns the number of applied moves.
    When ``record`` is given, each applied move appends ``(edge id, max
    retrieval of the moved subtree after the move, total_storage
    after)`` — the first quantity is exactly the move's feasibility
    check value, which the trajectory sweep replays against tighter
    budgets.
    """
    aux = cg.aux
    src, dst = cg.edge_src, cg.edge_dst
    es, er = cg.edge_storage, cg.edge_retrieval
    applied = 0

    for _ in range(rounds):
        tree.refresh_euler()
        tin, tout = tree._tin, tree._tout
        submax = tree.subtree_max_retrieval()
        # skip current tree edges and moves that would create a cycle
        valid = tree.parent[dst] != src
        valid &= ~((src != aux) & (tin[dst] <= tin[src]) & (tout[src] <= tout[dst]))
        ds = es - es[tree.par_edge[dst]]
        valid &= ds < 0.0  # the BMR objective (storage) must strictly improve
        shift = tree.ret[src] + er - tree.ret[dst]
        # every version in subtree(dst) shifts by the same amount: the
        # move is admissible iff the subtree maximum stays within budget
        valid &= within_budget(submax[dst] + shift, retrieval_budget)
        if not valid.any():
            break
        reduction = -ds
        inf_tier = valid & (shift <= 0.0)
        if inf_tier.any():
            # retrieval-non-increasing tier: larger reduction wins,
            # first in edge order on ties
            pick = int(np.argmax(np.where(inf_tier, reduction, _NEG_INF)))
        else:
            rho = np.full(reduction.shape, _NEG_INF)
            np.divide(reduction, shift, out=rho, where=valid)
            pick = int(np.argmax(rho))
        new_submax = float(submax[dst[pick]] + shift[pick])
        tree.apply_swap_edge(pick)
        applied += 1
        if record is not None:
            record.append((pick, new_submax, tree.total_storage))
    return applied


def _materialized_array_tree(cg: CompiledGraph) -> ArrayPlanTree:
    """All-materialized starting configuration (max retrieval 0)."""
    return ArrayPlanTree(cg, [(v, int(cg.aux_edge[v])) for v in range(cg.n)])


def _check_bmr_feasible(retrieval_budget: float) -> None:
    if not within_budget(0.0, retrieval_budget):
        raise ValueError(
            f"retrieval budget {retrieval_budget} infeasible: even "
            f"materializing every version has max retrieval 0"
        )


def bmr_lmg_array(
    graph: VersionGraph | CompiledGraph,
    retrieval_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Array kernel for BMR-LMG; plan-identical to dict :func:`~repro.
    algorithms.bmr_greedy.bmr_lmg`.

    Starts from the all-materialized plan and applies the best
    storage-reducing swap whose moved subtree stays within the
    retrieval budget, one masked array scan per round.  Raises
    ``ValueError`` on negative (infeasible) retrieval budgets.
    """
    cg = _compiled(graph)
    _check_bmr_feasible(retrieval_budget)
    tree = _materialized_array_tree(cg)
    rounds = max_iterations if max_iterations is not None else _bmr_default_rounds(cg)
    _bmr_run(cg, tree, retrieval_budget, rounds)
    return tree


def mp_local_array(
    graph: VersionGraph | CompiledGraph,
    retrieval_budget: float,
    *,
    max_iterations: int | None = None,
) -> ArrayPlanTree:
    """Array kernel for MP + BMR local moves; plan-identical to dict
    :func:`~repro.algorithms.bmr_greedy.mp_local`.

    Runs :func:`mp_array` and refines its tree with the same swap loop
    as :func:`bmr_lmg_array`; never stores more than plain MP.  Raises
    ``ValueError`` on infeasible retrieval budgets, like MP itself.
    """
    cg = _compiled(graph)
    tree = mp_array(cg, retrieval_budget)
    rounds = max_iterations if max_iterations is not None else _bmr_default_rounds(cg)
    _bmr_run(cg, tree, retrieval_budget, rounds)
    return tree
