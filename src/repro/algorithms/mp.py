"""MP — Modified Prim's heuristic for BoundedMax Retrieval.

MP is the prior best-performing baseline the paper compares DP-BMR
against (Section 7; originally from Bhattacherjee et al. VLDB'15).  The
VLDB description: grow a spanning structure from scratch Prim-style,
always attaching the version with the cheapest *storage* attachment
whose resulting retrieval cost stays within the budget ``R``.

Our interpretation (documented because no reference implementation is
available offline):

* maintain a growing plan tree rooted at AUX; every version starts
  un-attached with its materialization edge ``(AUX, v)`` as the default
  candidate (retrieval 0, always feasible);
* at each step attach the version with the cheapest candidate edge
  (by storage cost), breaking ties toward smaller resulting retrieval;
* after attaching ``v`` with retrieval ``R(v)``, relax every out-delta
  ``(v, w)``: the edge becomes a candidate for ``w`` iff
  ``R(v) + r_vw <= R`` and its storage cost beats ``w``'s current
  candidate.

This is exactly Prim's algorithm on the extended graph with storage
weights, filtered by the retrieval budget — hence "Modified Prim".  The
output is always feasible (materialization is always available) and
equals the minimum-storage arborescence when ``R = inf``.
"""

from __future__ import annotations

import heapq
import math

from ..core.graph import AUX, Node, VersionGraph
from ..core.tolerance import within_budget
from ..core.solution import PlanTree

__all__ = ["mp"]


def mp(graph: VersionGraph, retrieval_budget: float) -> PlanTree:
    """Run Modified Prim's for BMR. Returns a feasible :class:`PlanTree`.

    ``retrieval_budget`` is the max-retrieval constraint ``R``; the plan
    satisfies ``max_v R(v) <= R`` by construction.
    """
    ext = graph if graph.has_aux else graph.extended()
    versions = [v for v in ext.versions if v is not AUX]

    # best known attachment per unattached version: (storage, retrieval, parent)
    best: dict[Node, tuple[float, float, Node]] = {
        v: (ext.delta(AUX, v).storage, 0.0, AUX) for v in versions
    }
    attached: dict[Node, Node] = {}
    ret: dict[Node, float] = {}
    # heap entries: (storage, retrieval, seq, v, parent) — lazy deletion
    heap: list[tuple[float, float, int, Node, Node]] = []
    seq = 0
    for v in sorted(versions, key=str):
        s, r, p = best[v]
        heap.append((s, r, seq, v, p))
        seq += 1
    heapq.heapify(heap)

    while heap:
        s, r, _, v, p = heapq.heappop(heap)
        if v in attached or best[v][:2] != (s, r) or best[v][2] != p:
            continue
        attached[v] = p
        ret[v] = r
        for w, delta in ext.successors(v).items():
            if w is AUX or w in attached:
                continue
            nr = r + delta.retrieval
            if not within_budget(nr, retrieval_budget):
                continue
            cand = (delta.storage, nr, v)
            if (cand[0], cand[1]) < best[w][:2]:
                best[w] = cand
                heapq.heappush(heap, (delta.storage, nr, seq, w, v))
                seq += 1

    assert len(attached) == len(versions), "materialization keeps MP feasible"
    tree = PlanTree(ext, attached)
    if math.isfinite(retrieval_budget) and not within_budget(
        tree.max_retrieval(), retrieval_budget
    ):
        # Only reachable for budgets below zero: materializing every
        # version always yields max retrieval 0.  Raise like the MSR
        # solvers so the CLI can report infeasibility (exit code 1).
        raise ValueError(
            f"retrieval budget {retrieval_budget} infeasible: MP plan has "
            f"max retrieval {tree.max_retrieval()}"
        )
    return tree


def mp_storage(graph: VersionGraph, retrieval_budget: float) -> float:
    """Convenience: the storage cost MP achieves under budget ``R``."""
    return mp(graph, retrieval_budget).total_storage
