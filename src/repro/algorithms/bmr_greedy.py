"""Greedy local-move heuristics for BMR (storage under a retrieval cap).

The paper's BMR story (Sections 6.2 / 7) pits the exact tree DP against
MP, the prior Prim-style constructive heuristic.  Both leave an obvious
gap: MP never revisits an attachment, and the DP only sees the
extracted bidirectional tree.  This module adds the *local-search*
counterpart of the LMG family for the BMR objective — minimize total
storage subject to ``max_v R(v) <= R``:

:func:`bmr_lmg`
    An LMG-style swap loop started from the all-materialized plan (the
    retrieval-optimal configuration, exactly dual to LMG starting from
    the storage-optimal arborescence).  Each round scans every edge of
    the extended graph and applies the best *storage-reducing* swap
    whose moved subtree stays within the retrieval budget; moves are
    ranked by ``rho = storage reduction / retrieval increase`` with
    retrieval-non-increasing moves taken first (``rho = inf`` tier),
    mirroring LMG's ratio rule with the objective and constraint roles
    exchanged.

:func:`mp_local`
    MP's constructive tree refined by the same swap loop.  Every
    applied move strictly reduces storage while preserving budget
    feasibility, so ``mp_local`` dominates plain MP on the BMR
    objective by construction.

Feasibility bookkeeping
-----------------------
Re-routing ``v`` through ``(u, v)`` shifts the retrieval cost of every
node in ``v``'s subtree by ``shift = R(u) + r_uv - R(v)``; the move is
admissible iff ``max-subtree-retrieval(v) + shift`` stays within the
budget (checked through :func:`repro.core.tolerance.within_budget`, the
shared admission tolerance).  Per-subtree maxima are recomputed once per
round in O(V) — the same order as one candidate scan.

The flat-array kernels in :mod:`repro.fastgraph.solvers`
(``bmr_lmg_array`` / ``mp_local_array``) are plan-identical to these
references: same scan order, same IEEE float expressions, same
first-strictly-greater tie-breaking.
"""

from __future__ import annotations

from ..core.graph import AUX, Node, VersionGraph
from ..core.solution import PlanTree
from ..core.tolerance import within_budget
from .mp import mp

__all__ = ["bmr_lmg", "mp_local", "bmr_local_moves"]


def _subtree_max_retrieval(tree: PlanTree) -> dict[Node, float]:
    """Per-node maximum retrieval cost over the node's subtree.

    One reverse-topological pass; ``max`` selects among exact cached
    floats, so the result is bit-identical however the tree was built.
    """
    order = list(tree.iter_nodes_topological())
    submax = {v: tree.ret[v] for v in order}
    submax[AUX] = 0.0
    for v in reversed(order):
        p = tree.parent[v]
        if submax[v] > submax[p]:
            submax[p] = submax[v]
    return submax


def bmr_local_moves(
    tree: PlanTree,
    retrieval_budget: float,
    rounds: int,
) -> PlanTree:
    """Run the BMR swap loop on ``tree`` in place; returns ``tree``.

    Each round scans all edges of the extended graph in insertion
    order, skips current tree edges / cycle-creating moves, and applies
    the best storage-reducing swap whose moved subtree stays within
    ``retrieval_budget``.  Stops when no admissible move remains or
    after ``rounds`` rounds.
    """
    ext = tree.graph
    edges: list[tuple[Node, Node]] = [(u, v) for u, v, _ in ext.deltas()]

    for _ in range(rounds):
        submax = _subtree_max_retrieval(tree)
        tree.refresh_euler()
        best_key: tuple[int, float] | None = None  # (inf tier?, rho or reduction)
        best_move: tuple[Node, Node] | None = None
        for u, v in edges:
            if tree.parent[v] == u:
                continue
            if u is not AUX and tree.is_ancestor(v, u):
                continue  # would create a cycle (u descends from v)
            new_d = ext.delta(u, v)
            ds = new_d.storage - ext.delta(tree.parent[v], v).storage
            if ds >= 0:
                continue  # the BMR objective (storage) must strictly improve
            shift = tree.ret[u] + new_d.retrieval - tree.ret[v]
            if not within_budget(submax[v] + shift, retrieval_budget):
                continue  # some version in subtree(v) would bust the budget
            reduction = -ds
            if shift <= 0:
                key = (1, reduction)  # rho = inf tier, larger reduction first
            else:
                key = (0, reduction / shift)
            if best_key is None or key > best_key:
                best_key = key
                best_move = (u, v)
        if best_move is None:
            break
        tree.apply_swap(*best_move)
    return tree


def _default_rounds(tree: PlanTree) -> int:
    """Default round cap: every applied move strictly reduces storage,
    so the loop terminates long before this safety bound in practice."""
    return 4 * len(tree.parent) + 64


def bmr_lmg(
    graph: VersionGraph,
    retrieval_budget: float,
    *,
    max_iterations: int | None = None,
) -> PlanTree:
    """LMG-style greedy for BMR. Returns the final :class:`PlanTree`.

    Starts from the all-materialized plan (``max_v R(v) = 0``, feasible
    for every non-negative budget) and greedily trades retrieval slack
    for storage through budget-feasible edge swaps.  Raises
    ``ValueError`` when ``retrieval_budget`` is negative (even the
    all-materialized plan is infeasible then), matching :func:`~repro.
    algorithms.mp.mp`'s infeasibility contract.
    """
    if not within_budget(0.0, retrieval_budget):
        raise ValueError(
            f"retrieval budget {retrieval_budget} infeasible: even "
            f"materializing every version has max retrieval 0"
        )
    ext = graph if graph.has_aux else graph.extended()
    tree = PlanTree(ext, {v: AUX for v in ext.versions if v is not AUX})
    rounds = max_iterations if max_iterations is not None else _default_rounds(tree)
    return bmr_local_moves(tree, retrieval_budget, rounds)


def mp_local(
    graph: VersionGraph,
    retrieval_budget: float,
    *,
    max_iterations: int | None = None,
) -> PlanTree:
    """MP followed by BMR local moves. Returns the final :class:`PlanTree`.

    Runs Modified Prim's to build a feasible tree, then refines it with
    the same swap loop as :func:`bmr_lmg`; the result never stores more
    than plain MP.  Raises ``ValueError`` on infeasible (negative)
    retrieval budgets, exactly like MP itself.
    """
    tree = mp(graph, retrieval_budget)
    rounds = max_iterations if max_iterations is not None else _default_rounds(tree)
    return bmr_local_moves(tree, retrieval_budget, rounds)
