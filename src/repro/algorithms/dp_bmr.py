"""DP-BMR — exact O(n²) dynamic program for BMR on bidirectional trees.

Implements Algorithm 2 / Theorem 8 of the paper.  ``DP[v][u]`` is the
minimum storage of a partial plan on the subtree ``T[v]`` where ``v`` is
retrieved from the *materialized* version ``u`` (``u`` may sit outside
``T[v]``; only the last edge of the retrieval path is charged inside the
subproblem) and every other node of ``T[v]`` is retrieved from within
``T[v]``.  The recurrence distinguishes the three cases of Figure 5:

1. ``u = v`` — materialize ``v`` and charge ``s_v``;
2. ``u`` below ``v`` — charge the up-edge from the child subtree
   containing ``u``; that child must share ``u``;
3. ``u`` outside ``T[v]`` — charge the down-edge from ``v``'s parent.

Each child ``w`` not on the retrieval path contributes
``min(OPT[w], DP[w][u])`` where ``OPT[w] = min_x DP[w][x]`` over
``x ∈ T[w]``.

The module also provides the Section-6.2 heuristic wrapper
(:func:`dp_bmr_heuristic`): extract a bidirectional tree from a general
digraph, run the exact DP, and map the plan back (synthetic reverse
deltas become materializations — cost-equivalent by construction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.graph import GraphError, Node, VersionGraph
from ..core.tolerance import within_budget
from ..core.solution import StoragePlan
from .arborescence import extract_tree_parent_map

__all__ = [
    "TreeIndex",
    "dp_bmr",
    "dp_bmr_heuristic",
    "build_bidirectional_tree",
    "DPBMRResult",
]

INF = math.inf


class TreeIndex:
    """Rooted view of a bidirectional tree with all-pairs path costs.

    Precomputes, for a tree with ``n`` nodes:

    * parent/children structure and a post-order,
    * ``path_cost[u][v]`` — retrieval cost of the unique directed path
      ``u -> v`` (O(n²) via one BFS per source),
    * Euler intervals for O(1) "is ``u`` inside ``T[v]``" tests,
    * ``step_from[u][v]`` — the next node after ``u`` on the path
      ``u -> v`` (used to find ``p^u_v``, the node *preceding* ``v``).
    """

    def __init__(self, graph: VersionGraph, root: Node, parent: dict[Node, Node]):
        self.graph = graph
        self.root = root
        self.parent = dict(parent)
        self.children: dict[Node, list[Node]] = {v: [] for v in graph.versions}
        for v, p in parent.items():
            self.children[p].append(v)
        # deterministic child order
        for p in self.children:
            self.children[p].sort(key=str)

        # post-order and Euler intervals
        self.post_order: list[Node] = []
        self.tin: dict[Node, int] = {}
        self.tout: dict[Node, int] = {}
        timer = 0
        stack: list[tuple[Node, bool]] = [(root, False)]
        while stack:
            x, done = stack.pop()
            if done:
                self.post_order.append(x)
                self.tout[x] = timer
                timer += 1
                continue
            self.tin[x] = timer
            timer += 1
            stack.append((x, True))
            for c in reversed(self.children[x]):
                stack.append((c, False))

        # undirected adjacency for path walks
        self._adj: dict[Node, list[Node]] = {v: [] for v in graph.versions}
        for v, p in parent.items():
            self._adj[v].append(p)
            self._adj[p].append(v)

        # all-pairs directed path costs + first step on each path
        self.path_cost: dict[Node, dict[Node, float]] = {}
        self._next: dict[Node, dict[Node, Node]] = {}
        for u in graph.versions:
            cost = {u: 0.0}
            first: dict[Node, Node] = {}
            stack2 = [u]
            while stack2:
                x = stack2.pop()
                for y in self._adj[x]:
                    if y in cost:
                        continue
                    cost[y] = cost[x] + graph.delta(x, y).retrieval
                    first[y] = x  # predecessor of y on the path from u
                    stack2.append(y)
            self.path_cost[u] = cost
            self._next[u] = first

    def in_subtree(self, u: Node, v: Node) -> bool:
        """True when ``u`` lies in the subtree rooted at ``v``."""
        return self.tin[v] <= self.tin[u] and self.tout[u] <= self.tout[v]

    def subtree_nodes(self, v: Node) -> list[Node]:
        """All nodes of ``T[v]`` (cached; O(subtree) on first call)."""
        cached = getattr(self, "_subtree_cache", None)
        if cached is None:
            cached = {}
            self._subtree_cache = cached
        if v not in cached:
            out: list[Node] = []
            stack = [v]
            while stack:
                x = stack.pop()
                out.append(x)
                stack.extend(self.children[x])
            cached[v] = out
        return cached[v]

    def pred_on_path(self, u: Node, v: Node) -> Node:
        """``p^u_v``: the node preceding ``v`` on the path ``u -> v``."""
        return self._next[u][v]

    @property
    def nodes(self) -> list[Node]:
        """All tree nodes in entry-time (DFS) order."""
        return list(self.tin)


@dataclass
class DPBMRResult:
    """Output of :func:`dp_bmr`.

    Attributes
    ----------
    storage:
        Optimal storage cost under the max-retrieval budget.
    plan:
        The reconstructed :class:`StoragePlan` achieving it.
    centers:
        Mapping node -> the materialized version it retrieves from.
    """

    storage: float
    plan: StoragePlan
    centers: dict[Node, Node]


def dp_bmr(
    graph: VersionGraph,
    retrieval_budget: float,
    *,
    root: Node | None = None,
    index: TreeIndex | None = None,
) -> DPBMRResult:
    """Exact BMR on a bidirectional tree (Algorithm 2).

    ``graph`` must be a bidirectional tree; pass ``index`` to reuse the
    O(n²) precomputation across budgets (the Figure-13 sweeps do).
    """
    if index is None:
        if not graph.is_bidirectional_tree():
            raise GraphError("dp_bmr requires a bidirectional tree input")
        if root is None:
            root = min(graph.versions, key=str)
        parent = _orient(graph, root)
        index = TreeIndex(graph, root, parent)
    g = index.graph
    budget = retrieval_budget

    # DP[v] maps u -> minimum storage; OPT[v] = (value, argmin u)
    DP: dict[Node, dict[Node, float]] = {}
    OPT: dict[Node, tuple[float, Node]] = {}

    for v in index.post_order:
        row: dict[Node, float] = {}
        pc_to_v = {u: index.path_cost[u][v] for u in index.nodes}
        for u, ruv in pc_to_v.items():
            if not within_budget(ruv, budget):
                continue
            if u == v:
                base = g.storage_cost(v)
            else:
                pred = index.pred_on_path(u, v)
                base = g.delta(pred, v).storage
            total = base
            for w in index.children[v]:
                if u != v and index.in_subtree(u, w):
                    dw = DP[w].get(u, INF)
                else:
                    dw = min(OPT[w][0], DP[w].get(u, INF))
                total += dw
                if total == INF:
                    break
            if total < INF:
                row[u] = total
        DP[v] = row
        best_u = None
        best = INF
        for u, val in row.items():
            if index.in_subtree(u, v) and val < best:
                best = val
                best_u = u
        if best_u is None:
            # plain ValueError (not GraphError): this is budget
            # infeasibility, not a structural problem with the input
            raise ValueError(
                f"retrieval budget infeasible: no feasible partial "
                f"solution at {v!r}"
            )
        OPT[v] = (best, best_u)

    # ------------------------------------------------------------------
    # reconstruction: walk top-down assigning each node its center
    # ------------------------------------------------------------------
    centers: dict[Node, Node] = {}
    stack: list[tuple[Node, Node]] = [(index.root, OPT[index.root][1])]
    while stack:
        v, u = stack.pop()
        centers[v] = u
        for w in index.children[v]:
            if u != v and index.in_subtree(u, w):
                stack.append((w, u))
            else:
                dw = DP[w].get(u, INF)
                if OPT[w][0] <= dw:
                    stack.append((w, OPT[w][1]))
                else:
                    stack.append((w, u))

    materialized = [v for v, u in centers.items() if v == u]
    deltas = []
    for v, u in centers.items():
        if v != u:
            deltas.append((index.pred_on_path(u, v), v))
    plan = StoragePlan.of(materialized, deltas)
    return DPBMRResult(storage=OPT[index.root][0], plan=plan, centers=centers)


def _orient(graph: VersionGraph, root: Node) -> dict[Node, Node]:
    """Parent map of the underlying tree rooted at ``root``."""
    parent: dict[Node, Node] = {}
    seen = {root}
    stack = [root]
    while stack:
        x = stack.pop()
        for y in graph.successors(x):
            if y not in seen:
                seen.add(y)
                parent[y] = x
                stack.append(y)
    if len(seen) != graph.num_versions:
        raise GraphError("tree is not connected")
    return parent


def build_bidirectional_tree(
    graph: VersionGraph, root: Node, parent: dict[Node, Node]
) -> tuple[VersionGraph, set[tuple[Node, Node]]]:
    """Section 6.2 step 2: arborescence -> bidirectional tree.

    For each tree edge ``(p, v)`` the forward delta comes from the input
    graph; the reverse delta is taken from the graph when present and
    otherwise synthesized as ``(storage=s_p, retrieval=0)`` — the paper's
    "worse-than-trivial delta" convention (Section 2.2), cost-equivalent
    to materializing ``p``.  Returns the tree graph and the set of
    synthesized (reverse) edges.
    """
    tree = VersionGraph(name=f"{graph.name}-tree")
    for v in graph.versions:
        tree.add_version(v, graph.storage_cost(v))
    synthetic: set[tuple[Node, Node]] = set()
    for v, p in parent.items():
        if graph.has_delta(p, v):
            d = graph.delta(p, v)
            tree.add_delta(p, v, d.storage, d.retrieval)
        else:
            # forest-stitching link (disconnected inputs): behaves like
            # materializing the child
            tree.add_delta(p, v, graph.storage_cost(v), 0.0)
            synthetic.add((p, v))
        if graph.has_delta(v, p):
            rd = graph.delta(v, p)
            tree.add_delta(v, p, rd.storage, rd.retrieval)
        else:
            tree.add_delta(v, p, graph.storage_cost(p), 0.0)
            synthetic.add((v, p))
    return tree, synthetic


def dp_bmr_heuristic(
    graph: VersionGraph,
    retrieval_budget: float,
    *,
    root: Node | None = None,
    index: TreeIndex | None = None,
) -> DPBMRResult:
    """DP-BMR on a general digraph via tree extraction (Section 6.2).

    Not optimal in general (the DP only sees the extracted tree) but a
    valid feasible plan for the original graph is always returned.
    Synthetic reverse deltas chosen by the DP are converted into
    materializations of their target, which never increases cost.
    """
    if index is None:
        index = extract_index(graph, root)
    result = dp_bmr(index.graph, retrieval_budget, index=index)
    plan = _map_back(graph, index.graph, result.plan)
    return DPBMRResult(storage=plan.storage_cost(graph), plan=plan, centers=result.centers)


def extract_index(graph: VersionGraph, root: Node | None = None) -> TreeIndex:
    """Extract the Section-6.2 bidirectional tree and index it.

    Disconnected inputs (no spanning root in the base graph) fall back
    to extracting the minimum ``s+r`` forest through the auxiliary root
    and stitching its component roots together with synthetic
    materialization-equivalent links.
    """
    try:
        root, parent = extract_tree_parent_map(graph, root)
    except GraphError:
        root, parent = _extract_forest_parent_map(graph)
    tree, _synthetic = build_bidirectional_tree(graph, root, parent)
    return TreeIndex(tree, root, parent)


def _extract_forest_parent_map(graph: VersionGraph) -> tuple[Node, dict[Node, Node]]:
    """Spanning structure for disconnected graphs via the extended graph."""
    from ..core.graph import AUX
    from .arborescence import minimum_arborescence, storage_plus_retrieval_weight

    ext = graph if graph.has_aux else graph.extended()
    pm = minimum_arborescence(ext, AUX, storage_plus_retrieval_weight)
    roots = sorted((v for v, p in pm.items() if p is AUX), key=str)
    root = roots[0]
    parent = {v: p for v, p in pm.items() if p is not AUX}
    for other in roots[1:]:
        parent[other] = root  # synthetic stitch; build_bidirectional_tree
        # synthesizes both directions as materialization-equivalents
    return root, parent


def _map_back(
    graph: VersionGraph, tree: VersionGraph, plan: StoragePlan
) -> StoragePlan:
    """Replace synthetic tree deltas by materializations of their target."""
    mats = set(plan.materialized)
    deltas = set()
    for u, v in plan.stored_deltas:
        if graph.has_delta(u, v):
            td = tree.delta(u, v)
            gd = graph.delta(u, v)
            # tree deltas always mirror graph deltas when the edge exists
            if (td.storage, td.retrieval) == (gd.storage, gd.retrieval):
                deltas.add((u, v))
                continue
        mats.add(v)
    return StoragePlan.of(mats, deltas)
