"""LAST-based baseline: balance the min-storage tree against root paths.

Bhattacherjee et al. (VLDB'15) adapted Light Approximate Shortest-path
Trees (Khuller, Raghavachari, Young, Algorithmica'95) to the versioning
problem, and the paper discusses LAST as the closest related framework
(Section 1.2.1): find a tree that is simultaneously *light* (near the
minimum-storage tree) and *shallow* (every node within a stretch factor
of its shortest-path distance from the source).

The versioning twist: in the extended graph every version is reachable
from AUX at zero retrieval (materialization), so the naive SPT
reference degenerates.  Following the SVN-like baseline the VLDB paper
balanced against, the stretch reference is the shortest *retrieval*
path from a designated root version ``r0`` (the cheapest spanning
version): ``R_spt(v) = dist_{r0}(v)``.  The construction starts from
the minimum-storage arborescence and re-parents any version whose tree
retrieval exceeds ``alpha * R_spt(v)`` onto its shortest-path parent
(or materializes it when grafting would cycle).

``alpha = 1`` pins every version to its shortest-path retrieval level;
``alpha = inf`` keeps the minimum-storage arborescence; the sweep in
between traces a storage/retrieval trade-off without needing a budget.
"""

from __future__ import annotations

from ..core.graph import AUX, GraphError, Node, VersionGraph
from ..core.solution import PlanTree
from ..core.tolerance import within_budget
from .arborescence import min_storage_arborescence
from .spt import single_source_retrieval

__all__ = ["last_tree", "last_sweep"]


def _spanning_root(graph: VersionGraph) -> Node:
    """Cheapest version that reaches every other version."""
    order = sorted(
        (v for v in graph.versions if v is not AUX),
        key=lambda v: (graph.storage_cost(v), str(v)),
    )
    n = sum(1 for v in graph.versions if v is not AUX)
    for cand in order:
        dist, _ = single_source_retrieval(graph, cand)
        if sum(1 for v in dist if v is not AUX) == n:
            return cand
    raise GraphError("no version spans the graph")


def last_tree(
    graph: VersionGraph, alpha: float, *, root: Node | None = None
) -> PlanTree:
    """Directed LAST-style balanced plan for stretch factor ``alpha``.

    Guarantees ``R(v) <= alpha * dist_r0(v)`` for every version, where
    ``dist_r0`` is the shortest retrieval distance from the root
    version (the root itself is materialized whenever its arborescence
    retrieval is positive).
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    ext = graph if graph.has_aux else graph.extended()
    r0 = root if root is not None else _spanning_root(ext)
    dist, spt_parent = single_source_retrieval(ext, r0)
    spt_parent[r0] = AUX
    parent = min_storage_arborescence(ext)
    tree = PlanTree(ext, parent)

    # Root-first pass: every re-parenting strictly lowers the moved
    # subtree's retrieval costs, so once a node satisfies the stretch
    # bound it stays within it (see tests for the invariant check).
    for v in list(tree.iter_nodes_topological()):
        bound = alpha * dist.get(v, 0.0)
        if not within_budget(tree.ret[v], bound):
            p = spt_parent.get(v, AUX)
            if p is not AUX and tree.is_ancestor(v, p):
                # the SPT parent currently hangs below v; grafting would
                # cycle, and materializing trivially meets the bound
                p = AUX
            tree.apply_swap(p, v)
    return tree


def last_sweep(
    graph: VersionGraph, alphas: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 5.0, 8.0)
) -> list[tuple[float, PlanTree]]:
    """Plans for a grid of stretch factors (a storage/retrieval curve)."""
    ext = graph if graph.has_aux else graph.extended()
    r0 = _spanning_root(ext)
    return [(a, last_tree(ext, a, root=r0)) for a in alphas]
