"""Solver registry: names -> budgeted solver callables.

Benchmarks, the CLI and the parallel sweep workers all address solvers
by name, so the mapping lives in one place.  Two families:

* **MSR solvers** ``f(graph, storage_budget) -> StoragePlan | None``
  (None = budget below the minimum achievable storage);
* **BMR solvers** ``f(graph, retrieval_budget) -> StoragePlan``.

The DP entries rebuild their tree index per call; sweep code that wants
index reuse calls the solver classes directly (see
:mod:`repro.bench.figures`).
"""

from __future__ import annotations

from ..core.graph import VersionGraph
from ..core.solution import StoragePlan
from .dp_bmr import dp_bmr_heuristic
from .dp_msr import dp_msr
from .ilp import bmr_ilp, msr_ilp
from .lmg import lmg
from .lmg_all import lmg_all
from .mp import mp

__all__ = ["MSR_SOLVERS", "BMR_SOLVERS", "get_msr_solver", "get_bmr_solver"]


def _lmg(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg(graph, budget).to_plan()
    except ValueError:
        return None


def _lmg_all(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_all(graph, budget).to_plan()
    except ValueError:
        return None


def _dp_msr(graph: VersionGraph, budget: float) -> StoragePlan | None:
    from ..core.graph import GraphError

    try:
        return dp_msr(graph, budget).plan
    except GraphError:
        return None


def _msr_ilp(graph: VersionGraph, budget: float) -> StoragePlan | None:
    return msr_ilp(graph, budget).plan


def _mp(graph: VersionGraph, budget: float) -> StoragePlan:
    return mp(graph, budget).to_plan()


def _dp_bmr(graph: VersionGraph, budget: float) -> StoragePlan:
    return dp_bmr_heuristic(graph, budget).plan


def _bmr_ilp(graph: VersionGraph, budget: float) -> StoragePlan | None:
    return bmr_ilp(graph, budget).plan


MSR_SOLVERS = {
    "lmg": _lmg,
    "lmg-all": _lmg_all,
    "dp-msr": _dp_msr,
    "ilp": _msr_ilp,
}

BMR_SOLVERS = {
    "mp": _mp,
    "dp-bmr": _dp_bmr,
    "ilp": _bmr_ilp,
}


def get_msr_solver(name: str):
    try:
        return MSR_SOLVERS[name]
    except KeyError:
        raise KeyError(f"unknown MSR solver {name!r}; options: {sorted(MSR_SOLVERS)}") from None


def get_bmr_solver(name: str):
    try:
        return BMR_SOLVERS[name]
    except KeyError:
        raise KeyError(f"unknown BMR solver {name!r}; options: {sorted(BMR_SOLVERS)}") from None
