"""Solver registry: ``(problem, name)`` -> budgeted solver callables.

Benchmarks, the CLI, the ingest engine and the parallel sweep workers
all address solvers by name, so the mapping lives in one place.  Since
the :class:`~repro.core.problemspec.ProblemSpec` refactor there is
**one** registry per addressing surface, keyed by ``(problem, name)``
with ``problem in repro.core.problemspec.SPECS``:

* :data:`SOLVERS` — plan-level solvers
  ``f(graph, budget) -> StoragePlan | None`` (None = the budget is
  infeasible for the family: below the minimum achievable storage for
  MSR, negative retrieval for BMR);
* :data:`SWEEPS` — whole-grid trajectory-replay sweeps
  ``f(graph, budgets, *, start_edges=None) -> list[SweepEntry]`` (one
  solver run for the entire budget grid; only greedy solvers with
  budget-monotone trajectories qualify);
* :data:`ENGINE_KERNELS` — tree-level kernels
  ``f(compiled_graph, budget) -> ArrayPlanTree`` for the online ingest
  engine (only kernels that run directly on a
  :class:`~repro.fastgraph.CompiledGraph` qualify; DP/ILP solvers have
  no array-tree form and are deliberately absent);
* :data:`BACKENDS` — explicit backend requests for the greedy family
  (``"array"`` kernels, the ``"dict"`` reference implementations, and
  the optional compiled ``"numba"`` kernels).

Resolution goes through :func:`get_solver`, :func:`get_sweep` and
:func:`get_engine_solver`, all taking the problem name first.  Plain
names resolve to the **array** backend automatically (it is
plan-identical and much faster); pass ``backend="dict"`` to
:func:`get_solver` to keep the reference path, e.g. for
cross-validation::

    fast = get_solver("msr", "lmg")                  # array kernel
    ref = get_solver("msr", "lmg", backend="dict")   # reference path

Solvers without an array variant accept both backend names and resolve
to their single implementation.  The DP entries rebuild their tree
index per call; sweep code that wants index reuse calls the solver
classes directly (see :mod:`repro.bench.figures`).  The array kernels
reuse the compiled graph cached on the :class:`VersionGraph` itself
(``graph.compile()``), so repeated calls on one graph compile once.

Deprecated surfaces
-------------------
The pre-refactor twin tables and getters — ``MSR_SOLVERS`` /
``BMR_SOLVERS``, ``MSR_SWEEPS`` / ``BMR_SWEEPS``, ``ENGINE_SOLVERS`` /
``BMR_ENGINE_SOLVERS``, ``get_msr_solver`` / ``get_bmr_solver``,
``get_msr_sweep`` / ``get_bmr_sweep``, ``msr_sweep_start_edges`` and
the ``get_engine_solver(name, problem)`` argument order — keep
resolving to the identical objects but emit a ``DeprecationWarning``
(``tests/test_registry_compat.py``).  The table shims are cached
*snapshots* of the unified registry: mutate :data:`SOLVERS` etc. when
patching solvers.
"""

from __future__ import annotations

import warnings

from ..core.graph import GraphError, VersionGraph
from ..core.problemspec import SPECS, get_spec
from ..core.solution import StoragePlan
from ..fastgraph import (
    bmr_lmg_array,
    bmr_lmg_native,
    lmg_all_array,
    lmg_all_native,
    lmg_array,
    lmg_native,
    mp_array,
    mp_local_array,
    sweep_greedy,
)
from .bmr_greedy import bmr_lmg, mp_local
from .dp_bmr import dp_bmr_heuristic
from .dp_msr import dp_msr
from .ilp import bmr_ilp, msr_ilp
from .lmg import lmg
from .lmg_all import lmg_all
from .mp import mp

__all__ = [
    "SOLVERS",
    "SWEEPS",
    "ENGINE_KERNELS",
    "BACKENDS",
    "get_solver",
    "get_sweep",
    "get_engine_solver",
    "sweep_start_edges",
    # deprecated getter shims (DeprecationWarning on use); the six
    # deprecated twin tables resolve through module __getattr__ and are
    # importable by name without being re-exported here
    "get_msr_solver",
    "get_bmr_solver",
    "get_msr_sweep",
    "get_bmr_sweep",
    "msr_sweep_start_edges",
]


def _lmg_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg(graph, budget).to_plan()
    except ValueError:
        return None


def _lmg_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_array(graph, budget).to_plan()
    except ValueError:
        return None


def _lmg_all_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_all(graph, budget).to_plan()
    except ValueError:
        return None


def _lmg_all_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_all_array(graph, budget).to_plan()
    except ValueError:
        return None


def _dp_msr(graph: VersionGraph, budget: float) -> StoragePlan | None:
    from ..core.graph import GraphError

    try:
        return dp_msr(graph, budget).plan
    except GraphError:
        return None


def _msr_ilp(graph: VersionGraph, budget: float) -> StoragePlan | None:
    return msr_ilp(graph, budget).plan


def _mp_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return mp(graph, budget).to_plan()
    except ValueError:
        return None


def _mp_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return mp_array(graph, budget).to_plan()
    except ValueError:
        return None


def _dp_bmr(graph: VersionGraph, budget: float) -> StoragePlan | None:
    from ..core.graph import GraphError

    try:
        return dp_bmr_heuristic(graph, budget).plan
    except GraphError:
        raise  # structural input problem, not a budget outcome
    except ValueError:
        return None


def _bmr_ilp(graph: VersionGraph, budget: float) -> StoragePlan | None:
    return bmr_ilp(graph, budget).plan


def _bmr_lmg_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return bmr_lmg(graph, budget).to_plan()
    except ValueError:
        return None


def _bmr_lmg_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return bmr_lmg_array(graph, budget).to_plan()
    except ValueError:
        return None


def _mp_local_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return mp_local(graph, budget).to_plan()
    except ValueError:
        return None


def _mp_local_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return mp_local_array(graph, budget).to_plan()
    except ValueError:
        return None


def _lmg_numba(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_native(graph, budget).to_plan()
    except GraphError:
        raise  # numba missing is an environment problem, not a budget outcome
    except ValueError:
        return None


def _lmg_all_numba(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_all_native(graph, budget).to_plan()
    except GraphError:
        raise
    except ValueError:
        return None


def _bmr_lmg_numba(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return bmr_lmg_native(graph, budget).to_plan()
    except GraphError:
        raise
    except ValueError:
        return None


#: ``(problem, name)`` -> plan-level solver; greedy names resolve to
#: the array kernels.
SOLVERS = {
    ("msr", "lmg"): _lmg_array,
    ("msr", "lmg-all"): _lmg_all_array,
    ("msr", "dp-msr"): _dp_msr,
    ("msr", "ilp"): _msr_ilp,
    ("bmr", "mp"): _mp_array,
    ("bmr", "mp-local"): _mp_local_array,
    ("bmr", "bmr-lmg"): _bmr_lmg_array,
    ("bmr", "dp-bmr"): _dp_bmr,
    ("bmr", "ilp"): _bmr_ilp,
}


def _sweep_lmg(graph, budgets, *, start_edges=None):
    return sweep_greedy(graph, "msr", "lmg", budgets, start_edges=start_edges)


def _sweep_lmg_all(graph, budgets, *, start_edges=None):
    return sweep_greedy(graph, "msr", "lmg-all", budgets, start_edges=start_edges)


def _sweep_bmr_lmg(graph, budgets, *, start_edges=None):
    return sweep_greedy(graph, "bmr", "bmr-lmg", budgets, start_edges=start_edges)


#: ``(problem, name)`` -> whole-grid trajectory-replay sweep
#: ``f(graph, budgets, *, start_edges=None) -> list[SweepEntry]``.
#: Only greedy solvers with budget-monotone trajectories qualify (the
#: LMG family and ``bmr-lmg``).  The MP family is absent by design:
#: MP's Prim growth depends on the retrieval budget at every
#: relaxation, so runs at different budgets share no prefix (see
#: :mod:`repro.fastgraph.trajectory`).  ``start_edges`` ships a shared
#: Edmonds arborescence to MSR sweeps; families whose start tree is
#: budget-independent of it (BMR's all-materialized start) ignore it.
SWEEPS = {
    ("msr", "lmg"): _sweep_lmg,
    ("msr", "lmg-all"): _sweep_lmg_all,
    ("bmr", "bmr-lmg"): _sweep_bmr_lmg,
}


#: ``(problem, name)`` -> tree-level engine kernel
#: ``f(compiled_graph, budget) -> ArrayPlanTree``.  The ingest engine
#: (:mod:`repro.engine`) needs the *tree*, not the exported
#: :class:`StoragePlan`: between full re-solves it keeps attaching
#: arriving versions onto the live ``ArrayPlanTree``, and the
#: incremental attach / staleness bookkeeping work on the flat arrays.
ENGINE_KERNELS = {
    ("msr", "lmg"): lmg_array,
    ("msr", "lmg-all"): lmg_all_array,
    ("bmr", "mp"): mp_array,
    ("bmr", "mp-local"): mp_local_array,
    ("bmr", "bmr-lmg"): bmr_lmg_array,
}


#: ``(problem, name)`` -> backend -> callable, for explicit backend
#: requests (greedy family only).  The ``"numba"`` entries are the
#: optional compiled kernels of :mod:`repro.fastgraph.native` — they
#: raise a clear error when numba is not installed; solvers without an
#: entry for a requested backend resolve to their default.
BACKENDS = {
    ("msr", "lmg"): {"array": _lmg_array, "dict": _lmg_dict, "numba": _lmg_numba},
    ("msr", "lmg-all"): {
        "array": _lmg_all_array,
        "dict": _lmg_all_dict,
        "numba": _lmg_all_numba,
    },
    ("bmr", "mp"): {"array": _mp_array, "dict": _mp_dict},
    ("bmr", "mp-local"): {"array": _mp_local_array, "dict": _mp_local_dict},
    ("bmr", "bmr-lmg"): {
        "array": _bmr_lmg_array,
        "dict": _bmr_lmg_dict,
        "numba": _bmr_lmg_numba,
    },
}

_BACKEND_NAMES = ("array", "dict", "numba")


def _names(table: dict, problem: str) -> list[str]:
    """Sorted solver names registered for ``problem`` in ``table``."""
    return sorted(n for p, n in table if p == problem)


def _other_problem(problem: str) -> str | None:
    """The one other registered family, or None with >2 families."""
    others = [p for p in SPECS if p != problem]
    return others[0] if len(others) == 1 else None


def get_solver(problem: str, name: str, backend: str | None = None):
    """Look up a plan-level solver for ``problem`` by ``name``.

    ``backend`` picks ``"array"``, ``"dict"`` or ``"numba"`` for the
    greedy family; solvers without that variant resolve to their
    default implementation.  Raises ``ValueError`` for unknown problems and
    ``KeyError`` — with a cross-family hint when the name belongs to
    the other family — for unknown solver names or backends.
    """
    problem = get_spec(problem).name
    if (problem, name) not in SOLVERS:
        other = _other_problem(problem)
        hint = (
            f" ({name!r} is a {other.upper()} solver; use get_{other}_solver)"
            if other is not None and (other, name) in SOLVERS
            else ""
        )
        raise KeyError(
            f"unknown {problem.upper()} solver {name!r}; "
            f"options: {_names(SOLVERS, problem)}{hint}"
        )
    if backend is None:
        return SOLVERS[(problem, name)]
    if backend not in _BACKEND_NAMES:
        raise KeyError(
            f"unknown backend {backend!r}; options: {sorted(_BACKEND_NAMES)}"
        )
    return BACKENDS.get((problem, name), {}).get(backend, SOLVERS[(problem, name)])


def get_sweep(problem: str, name: str):
    """Whole-grid sweep for ``(problem, name)``, or ``None``.

    ``None`` means the solver has no trajectory-replay sweep and must
    be probed per budget (DP, ILP, the MP family).
    """
    problem = get_spec(problem).name
    return SWEEPS.get((problem, name))


def _engine_lookup(problem: str, name: str):
    """Engine-kernel lookup with the pinned engine error messages."""
    if problem not in SPECS:
        raise ValueError(
            f"unknown engine problem {problem!r}; options: {sorted(SPECS)}"
        )
    try:
        return ENGINE_KERNELS[(problem, name)]
    except KeyError:
        other = _other_problem(problem)
        hint = (
            f" ({name!r} is a {other.upper()} engine solver)"
            if other is not None and (other, name) in ENGINE_KERNELS
            else ""
        )
        raise KeyError(
            f"unknown {problem.upper()} engine solver {name!r}; "
            f"options: {_names(ENGINE_KERNELS, problem)}{hint}"
        ) from None


def get_engine_solver(*args, problem: str | None = None, name: str | None = None):
    """Tree-level solver for the ingest engine: ``(problem, name)``.

    Raises ``ValueError`` for unknown problems and ``KeyError`` with
    the valid options for unknown or non-engine-capable solver names.

    The pre-refactor call shapes — positional ``get_engine_solver(name,
    problem)``, keyword ``get_engine_solver(name, problem="bmr")`` and
    single-argument ``get_engine_solver(name)`` — still resolve
    (problem names and solver names never collide) but emit a
    ``DeprecationWarning``.
    """
    legacy = "get_engine_solver(name, problem)"
    new = "get_engine_solver(problem, name)"
    if len(args) > 2 or (args and len(args) + (problem is not None) + (name is not None) > 2):
        raise TypeError("get_engine_solver takes (problem, name)")
    if len(args) == 2:
        first, second = args
        if first in SPECS:
            return _engine_lookup(first, second)
        if second in SPECS or any(first == n for _, n in ENGINE_KERNELS):
            # unambiguously the legacy (name, problem) order: the
            # second argument is a problem, or the first is a known
            # engine solver name (covers legacy calls with a bad
            # problem, whose error message is pinned)
            _deprecated(legacy, new)
            return _engine_lookup(second, first)
        # neither reading is registered: report against the documented
        # new order so a typo'd family name is blamed correctly
        raise ValueError(
            f"unknown engine problem {first!r}; options: {sorted(SPECS)}"
        )
    if len(args) == 1:
        if problem is not None:
            # legacy keyword form: get_engine_solver("mp", problem="bmr")
            _deprecated(legacy, new)
            return _engine_lookup(problem, args[0])
        if name is not None:
            return _engine_lookup(args[0], name)
        if args[0] in SPECS:
            raise TypeError(
                "get_engine_solver(problem, name) requires a solver name"
            )
        _deprecated(legacy, new)
        return _engine_lookup("msr", args[0])
    if problem is not None and name is not None:
        # fully keyworded: identical semantics in both call shapes
        return _engine_lookup(problem, name)
    if name is not None:
        _deprecated(legacy, new)
        return _engine_lookup("msr", name)
    raise TypeError("get_engine_solver(problem, name) requires a solver name")


def sweep_start_edges(
    problem: str, graph: VersionGraph, solvers
) -> list | None:
    """The Edmonds start tree shared by a problem's trajectory sweeps.

    Returns ``(version index, parent edge id)`` pairs when the family's
    sweeps start from the minimum-storage arborescence and at least one
    requested solver has a trajectory sweep; ``None`` otherwise
    (per-budget solvers only, or families with budget-independent
    starts like BMR's all-materialized tree).
    """
    spec = get_spec(problem)
    if not spec.sweep_uses_start_tree:
        return None
    if not any(get_sweep(spec.name, s) is not None for s in solvers):
        return None
    from ..fastgraph.arborescence import min_storage_parent_edges

    return min_storage_parent_edges(graph.compile())


# ----------------------------------------------------------------------
# deprecated pre-ProblemSpec surfaces
# ----------------------------------------------------------------------
def _deprecated(old: str, new: str) -> None:
    """Emit the registry's standard deprecation warning."""
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.algorithms.registry)",
        DeprecationWarning,
        stacklevel=3,
    )


_DEPRECATED_TABLES = {
    "MSR_SOLVERS": (SOLVERS, "msr", 'SOLVERS[("msr", name)]'),
    "BMR_SOLVERS": (SOLVERS, "bmr", 'SOLVERS[("bmr", name)]'),
    "MSR_SWEEPS": (SWEEPS, "msr", 'SWEEPS[("msr", name)]'),
    "BMR_SWEEPS": (SWEEPS, "bmr", 'SWEEPS[("bmr", name)]'),
    "ENGINE_SOLVERS": (ENGINE_KERNELS, "msr", 'ENGINE_KERNELS[("msr", name)]'),
    "BMR_ENGINE_SOLVERS": (ENGINE_KERNELS, "bmr", 'ENGINE_KERNELS[("bmr", name)]'),
}

_table_views: dict[str, dict] = {}


def __getattr__(attr: str):
    """Serve the deprecated twin tables as cached family snapshots."""
    if attr in _DEPRECATED_TABLES:
        table, problem, new = _DEPRECATED_TABLES[attr]
        _deprecated(attr, new)
        if attr not in _table_views:
            _table_views[attr] = {
                n: fn for (p, n), fn in table.items() if p == problem
            }
        return _table_views[attr]
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")


def get_msr_solver(name: str, backend: str | None = None):
    """Deprecated: use ``get_solver("msr", name, backend)``."""
    _deprecated("get_msr_solver(name)", 'get_solver("msr", name)')
    return get_solver("msr", name, backend)


def get_bmr_solver(name: str, backend: str | None = None):
    """Deprecated: use ``get_solver("bmr", name, backend)``."""
    _deprecated("get_bmr_solver(name)", 'get_solver("bmr", name)')
    return get_solver("bmr", name, backend)


def get_msr_sweep(name: str):
    """Deprecated: use ``get_sweep("msr", name)``."""
    _deprecated("get_msr_sweep(name)", 'get_sweep("msr", name)')
    return get_sweep("msr", name)


def get_bmr_sweep(name: str):
    """Deprecated: use ``get_sweep("bmr", name)``."""
    _deprecated("get_bmr_sweep(name)", 'get_sweep("bmr", name)')
    return get_sweep("bmr", name)


def msr_sweep_start_edges(graph: VersionGraph, solvers) -> list | None:
    """Deprecated: use ``sweep_start_edges("msr", graph, solvers)``."""
    _deprecated(
        "msr_sweep_start_edges(graph, solvers)",
        'sweep_start_edges("msr", graph, solvers)',
    )
    return sweep_start_edges("msr", graph, solvers)
