"""Solver registry: names -> budgeted solver callables.

Benchmarks, the CLI and the parallel sweep workers all address solvers
by name, so the mapping lives in one place.  Two families:

* **MSR solvers** ``f(graph, storage_budget) -> StoragePlan | None``
  (None = budget below the minimum achievable storage);
* **BMR solvers** ``f(graph, retrieval_budget) -> StoragePlan | None``
  (None = retrieval budget infeasible, i.e. negative).

Backends
--------
The greedy family (``lmg`` / ``lmg-all`` / ``mp``) exists twice: the
dict-of-dicts reference implementation and the flat-array kernel from
:mod:`repro.fastgraph`.  The plain names resolve to the **array**
backend automatically (it is plan-identical and much faster); pass
``backend="dict"`` to :func:`get_msr_solver` / :func:`get_bmr_solver`
to keep the reference path, e.g. for cross-validation::

    fast = get_msr_solver("lmg")                  # array kernel
    ref = get_msr_solver("lmg", backend="dict")   # reference path

Solvers without an array variant accept both backend names and resolve
to their single implementation.

The DP entries rebuild their tree index per call; sweep code that wants
index reuse calls the solver classes directly (see
:mod:`repro.bench.figures`).  The array kernels reuse the compiled
graph cached on the :class:`VersionGraph` itself (``graph.compile()``),
so repeated calls on one graph compile once.

Budget-grid sweeps have a third addressing surface: :data:`MSR_SWEEPS`
/ :data:`BMR_SWEEPS` map the greedy-family names to whole-grid
trajectory-replay sweeps (``f(graph, budgets) -> list[SweepEntry]``,
one solver run for the entire grid); :func:`get_msr_sweep` /
:func:`get_bmr_sweep` return ``None`` for solvers that must be probed
per budget.
"""

from __future__ import annotations

from ..core.graph import VersionGraph
from ..core.solution import StoragePlan
from ..fastgraph import (
    bmr_lmg_array,
    lmg_all_array,
    lmg_array,
    mp_array,
    mp_local_array,
    sweep_greedy_bmr,
    sweep_greedy_msr,
)
from .bmr_greedy import bmr_lmg, mp_local
from .dp_bmr import dp_bmr_heuristic
from .dp_msr import dp_msr
from .ilp import bmr_ilp, msr_ilp
from .lmg import lmg
from .lmg_all import lmg_all
from .mp import mp

__all__ = [
    "MSR_SOLVERS",
    "BMR_SOLVERS",
    "MSR_SWEEPS",
    "BMR_SWEEPS",
    "ENGINE_SOLVERS",
    "BMR_ENGINE_SOLVERS",
    "BACKENDS",
    "get_msr_solver",
    "get_bmr_solver",
    "get_msr_sweep",
    "get_bmr_sweep",
    "get_engine_solver",
    "msr_sweep_start_edges",
]


def _lmg_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg(graph, budget).to_plan()
    except ValueError:
        return None


def _lmg_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_array(graph, budget).to_plan()
    except ValueError:
        return None


def _lmg_all_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_all(graph, budget).to_plan()
    except ValueError:
        return None


def _lmg_all_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return lmg_all_array(graph, budget).to_plan()
    except ValueError:
        return None


def _dp_msr(graph: VersionGraph, budget: float) -> StoragePlan | None:
    from ..core.graph import GraphError

    try:
        return dp_msr(graph, budget).plan
    except GraphError:
        return None


def _msr_ilp(graph: VersionGraph, budget: float) -> StoragePlan | None:
    return msr_ilp(graph, budget).plan


def _mp_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return mp(graph, budget).to_plan()
    except ValueError:
        return None


def _mp_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return mp_array(graph, budget).to_plan()
    except ValueError:
        return None


def _dp_bmr(graph: VersionGraph, budget: float) -> StoragePlan | None:
    from ..core.graph import GraphError

    try:
        return dp_bmr_heuristic(graph, budget).plan
    except GraphError:
        raise  # structural input problem, not a budget outcome
    except ValueError:
        return None


def _bmr_ilp(graph: VersionGraph, budget: float) -> StoragePlan | None:
    return bmr_ilp(graph, budget).plan


def _bmr_lmg_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return bmr_lmg(graph, budget).to_plan()
    except ValueError:
        return None


def _bmr_lmg_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return bmr_lmg_array(graph, budget).to_plan()
    except ValueError:
        return None


def _mp_local_dict(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return mp_local(graph, budget).to_plan()
    except ValueError:
        return None


def _mp_local_array(graph: VersionGraph, budget: float) -> StoragePlan | None:
    try:
        return mp_local_array(graph, budget).to_plan()
    except ValueError:
        return None


#: Plain-name mapping; greedy names resolve to the array kernels.
MSR_SOLVERS = {
    "lmg": _lmg_array,
    "lmg-all": _lmg_all_array,
    "dp-msr": _dp_msr,
    "ilp": _msr_ilp,
}

BMR_SOLVERS = {
    "mp": _mp_array,
    "mp-local": _mp_local_array,
    "bmr-lmg": _bmr_lmg_array,
    "dp-bmr": _dp_bmr,
    "ilp": _bmr_ilp,
}


def _sweep_lmg(graph, budgets, *, start_edges=None):
    return sweep_greedy_msr(graph, "lmg", budgets, start_edges=start_edges)


def _sweep_lmg_all(graph, budgets, *, start_edges=None):
    return sweep_greedy_msr(graph, "lmg-all", budgets, start_edges=start_edges)


#: Whole-grid sweep callables ``f(graph, budgets) -> list[SweepEntry]``
#: for solvers whose greedy trajectory is budget-monotone (the LMG
#: family).  MP is absent by design: its Prim growth depends on the
#: retrieval budget at every relaxation, so runs at different budgets
#: share no prefix (see :mod:`repro.fastgraph.trajectory`).
MSR_SWEEPS = {
    "lmg": _sweep_lmg,
    "lmg-all": _sweep_lmg_all,
}


def _sweep_bmr_lmg(graph, budgets):
    return sweep_greedy_bmr(graph, "bmr-lmg", budgets)


#: Whole-grid BMR sweep callables; only ``bmr-lmg`` qualifies — its
#: all-materialized start is budget-independent and its move admission
#: is budget-monotone.  ``mp`` / ``mp-local`` are absent by design:
#: MP's Prim growth depends on the retrieval budget at every
#: relaxation, so runs at different budgets share no prefix.
BMR_SWEEPS = {
    "bmr-lmg": _sweep_bmr_lmg,
}


def get_msr_sweep(name: str):
    """Whole-grid sweep for ``name``, or ``None`` when the solver has
    no trajectory-replay sweep (callers fall back to per-budget runs)."""
    return MSR_SWEEPS.get(name)


def get_bmr_sweep(name: str):
    """Whole-grid BMR sweep for ``name``, or ``None`` when the solver
    must be probed per retrieval budget."""
    return BMR_SWEEPS.get(name)


#: Engine-aware solvers ``f(compiled_graph, budget) -> ArrayPlanTree``.
#: The ingest engine (:mod:`repro.engine`) needs the *tree*, not the
#: exported :class:`StoragePlan`: between full re-solves it keeps
#: attaching arriving versions onto the live ``ArrayPlanTree``, and the
#: incremental attach / staleness bookkeeping work on the flat arrays.
#: Only kernels that run directly on a :class:`~repro.fastgraph.
#: CompiledGraph` qualify (the greedy families); DP/ILP solvers have
#: no array-tree form and are deliberately absent.
ENGINE_SOLVERS = {
    "lmg": lmg_array,
    "lmg-all": lmg_all_array,
}

#: BMR engine solvers: budget is the max-retrieval cap, objective is
#: storage.  All three greedy BMR kernels qualify.
BMR_ENGINE_SOLVERS = {
    "mp": mp_array,
    "mp-local": mp_local_array,
    "bmr-lmg": bmr_lmg_array,
}

_ENGINE_TABLES = {"msr": ENGINE_SOLVERS, "bmr": BMR_ENGINE_SOLVERS}


def get_engine_solver(name: str, problem: str = "msr"):
    """Tree-level solver for the ingest engine.

    ``problem`` selects the family: ``"msr"`` (storage budget,
    :data:`ENGINE_SOLVERS`) or ``"bmr"`` (retrieval budget,
    :data:`BMR_ENGINE_SOLVERS`).  Raises ``ValueError`` for unknown
    problems and ``KeyError`` with the valid options for unknown or
    non-engine-capable solver names.
    """
    try:
        table = _ENGINE_TABLES[problem]
    except KeyError:
        raise ValueError(
            f"unknown engine problem {problem!r}; options: "
            f"{sorted(_ENGINE_TABLES)}"
        ) from None
    try:
        return table[name]
    except KeyError:
        hint = ""
        other = "bmr" if problem == "msr" else "msr"
        if name in _ENGINE_TABLES[other]:
            hint = f" ({name!r} is a {other.upper()} engine solver)"
        raise KeyError(
            f"unknown {problem.upper()} engine solver {name!r}; "
            f"options: {sorted(table)}{hint}"
        ) from None


def msr_sweep_start_edges(graph: VersionGraph, solvers) -> list | None:
    """The Edmonds start tree shared by every trajectory-replay sweep,
    or ``None`` when no requested solver supports one."""
    if not any(get_msr_sweep(s) is not None for s in solvers):
        return None
    from ..fastgraph.arborescence import min_storage_parent_edges

    return min_storage_parent_edges(graph.compile())


#: (family, name) -> backend -> callable, for explicit backend requests.
BACKENDS = {
    ("msr", "lmg"): {"array": _lmg_array, "dict": _lmg_dict},
    ("msr", "lmg-all"): {"array": _lmg_all_array, "dict": _lmg_all_dict},
    ("bmr", "mp"): {"array": _mp_array, "dict": _mp_dict},
    ("bmr", "mp-local"): {"array": _mp_local_array, "dict": _mp_local_dict},
    ("bmr", "bmr-lmg"): {"array": _bmr_lmg_array, "dict": _bmr_lmg_dict},
}

_BACKEND_NAMES = ("array", "dict")


def _resolve(family: str, table: dict, name: str, backend: str | None):
    try:
        default = table[name]
    except KeyError:
        other = "bmr" if family == "msr" else "msr"
        other_table = BMR_SOLVERS if other == "bmr" else MSR_SOLVERS
        hint = (
            f" ({name!r} is a {other.upper()} solver; use get_{other}_solver)"
            if name in other_table
            else ""
        )
        raise KeyError(
            f"unknown {family.upper()} solver {name!r}; "
            f"options: {sorted(table)}{hint}"
        ) from None
    if backend is None:
        return default
    if backend not in _BACKEND_NAMES:
        raise KeyError(
            f"unknown backend {backend!r}; options: {sorted(_BACKEND_NAMES)}"
        )
    # solvers without an array variant resolve to their one implementation
    return BACKENDS.get((family, name), {}).get(backend, default)


def get_msr_solver(name: str, backend: str | None = None):
    """Look up an MSR solver; ``backend`` picks ``"array"`` or ``"dict"``."""
    return _resolve("msr", MSR_SOLVERS, name, backend)


def get_bmr_solver(name: str, backend: str | None = None):
    """Look up a BMR solver; ``backend`` picks ``"array"`` or ``"dict"``."""
    return _resolve("bmr", BMR_SOLVERS, name, backend)
