"""Exhaustive exact solvers for tiny instances — the test oracle.

W.l.o.g. optimal plans are spanning arborescences of the extended graph
(Section 2.1: storing edges outside the retrieval forest only adds
storage).  The oracle therefore enumerates every *parent function*
(each version picks one in-edge of the extended graph), filters the
acyclic ones, and scores the resulting plan trees.  The number of
assignments is ``prod_v (in_degree(v) + 1)``, so keep instances below
~10 versions / ~20 deltas.

These solvers are used throughout the test-suite to validate LMG,
LMG-All, MP, the tree DPs, the treewidth DP and the ILPs.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator

from ..core.graph import AUX, GraphError, Node, VersionGraph
from ..core.problems import Objective, PlanScore, Problem
from ..core.solution import PlanTree, StoragePlan

__all__ = [
    "enumerate_parent_maps",
    "enumerate_plan_scores",
    "brute_force_solve",
    "brute_force_frontier",
    "MAX_BRUTE_FORCE_ASSIGNMENTS",
]

MAX_BRUTE_FORCE_ASSIGNMENTS = 2_000_000


def enumerate_parent_maps(graph: VersionGraph) -> Iterator[dict[Node, Node]]:
    """Yield every acyclic parent map over the extended graph."""
    ext = graph if graph.has_aux else graph.extended()
    versions = [v for v in ext.versions if v is not AUX]
    choice_lists = [sorted(ext.predecessors(v), key=_order_key) for v in versions]
    count = 1
    for choices in choice_lists:
        count *= max(1, len(choices))
        if count > MAX_BRUTE_FORCE_ASSIGNMENTS:
            raise GraphError(
                f"instance too large for brute force (> {MAX_BRUTE_FORCE_ASSIGNMENTS} "
                "parent assignments)"
            )
    for combo in itertools.product(*choice_lists):
        pm = dict(zip(versions, combo))
        if _acyclic(pm):
            yield pm


def _order_key(v: Node) -> tuple[int, str]:
    return (0 if v is AUX else 1, str(v))


def _acyclic(parent: dict[Node, Node]) -> bool:
    state: dict[Node, int] = {}
    for start in parent:
        x = start
        path = []
        while x in parent and x not in state:
            state[x] = 1
            path.append(x)
            x = parent[x]
        if x in state and state[x] == 1 and x in parent:
            return False
        for y in path:
            state[y] = 2
    return True


def enumerate_plan_scores(
    graph: VersionGraph,
) -> Iterator[tuple[StoragePlan, PlanScore]]:
    """Yield ``(plan, score)`` for every tree-shaped plan."""
    ext = graph if graph.has_aux else graph.extended()
    for pm in enumerate_parent_maps(ext):
        tree = PlanTree(ext, pm)
        plan = tree.to_plan()
        score = PlanScore(
            storage=tree.total_storage,
            sum_retrieval=tree.total_retrieval,
            max_retrieval=tree.max_retrieval(),
        )
        yield plan, score


def brute_force_solve(
    graph: VersionGraph, problem: Problem
) -> tuple[StoragePlan, PlanScore] | None:
    """Optimal plan for ``problem`` or None when no plan is feasible."""
    best: tuple[StoragePlan, PlanScore] | None = None
    for plan, score in enumerate_plan_scores(graph):
        if not problem.is_feasible(score):
            continue
        if best is None or problem.objective_value(score) < problem.objective_value(best[1]):
            best = (plan, score)
    return best


def brute_force_frontier(
    graph: VersionGraph, objective: Objective = Objective.SUM_RETRIEVAL
) -> list[tuple[float, float]]:
    """The exact storage/objective Pareto frontier, sorted by storage.

    Returns ``[(storage, objective_value), ...]`` with strictly
    increasing storage and strictly decreasing objective — the ground
    truth for DP frontier tests and the OPT curves of Figures 10-13.
    """
    points: list[tuple[float, float]] = []
    for _, score in enumerate_plan_scores(graph):
        if not math.isfinite(score.storage):
            continue
        points.append((score.storage, score.objective(objective)))
    points.sort()
    frontier: list[tuple[float, float]] = []
    best = math.inf
    for s, r in points:
        # strict-improvement epsilon for frontier extraction, not a
        # budget feasibility check  # lint-ignore: tolerance-discipline
        if r < best - 1e-12:
            best = r
            if frontier and frontier[-1][0] == s:
                frontier[-1] = (s, r)
            else:
                frontier.append((s, r))
    return frontier
