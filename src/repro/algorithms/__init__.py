"""Algorithms: baselines, heuristics, tree DPs, exact solvers.

Solver naming follows the paper:

* :func:`lmg` — Local Move Greedy (Algorithm 1), the prior MSR heuristic.
* :func:`lmg_all` — the paper's improved greedy (Algorithm 7).
* :func:`mp` — Modified Prim's, the prior BMR heuristic.
* :func:`bmr_lmg` / :func:`mp_local` — LMG-style local-move greedy for
  BMR (all-materialized start, resp. MP start + refinement).
* :func:`dp_bmr` / :func:`dp_bmr_heuristic` — exact tree DP (Algorithm 2)
  and its tree-extraction heuristic (Section 6.2).
* :func:`dp_msr` / :func:`dp_msr_frontier` — the practical frontier DP
  for MSR (Section 6.2) on extracted bidirectional trees.
* :func:`dp_msr_tree_reference` — the Section-5.1 FPTAS reference DP.
* :func:`msr_ilp` / :func:`mmr_ilp` / :func:`bsr_ilp` / :func:`bmr_ilp` —
  exact ILPs (Appendix D) via HiGHS.
* :mod:`~repro.algorithms.reductions` — Lemma-7 binary-search bridges.
"""

from .arborescence import (
    extract_tree_parent_map,
    min_storage_arborescence,
    min_storage_plan_tree,
    minimum_arborescence,
)
from .brute_force import (
    brute_force_frontier,
    brute_force_solve,
    enumerate_parent_maps,
    enumerate_plan_scores,
)
from .bmr_greedy import bmr_lmg, bmr_local_moves, mp_local
from .dp_bmr import (
    DPBMRResult,
    TreeIndex,
    build_bidirectional_tree,
    dp_bmr,
    dp_bmr_heuristic,
    extract_index,
)
from .dp_msr import DPMSRResult, DPMSRSolver, dp_msr, dp_msr_frontier
from .dp_msr_tree import TreeRefResult, dp_msr_tree_reference
from .frontier import Frontier, ThinningGrid, merge_frontiers
from .ilp import ILPResult, bmr_ilp, bsr_ilp, mmr_ilp, msr_ilp
from .last import last_sweep, last_tree
from .lmg import lmg
from .lmg_all import lmg_all
from .mp import mp
from .reductions import (
    ReductionResult,
    bmr_via_mmr,
    bsr_via_msr,
    minimize_budget,
    mmr_via_bmr,
    msr_via_bsr,
)
from .spt import shortest_path_plan_tree, shortest_path_tree, single_source_retrieval
from .variants import solve_bsr, solve_mmr

__all__ = [
    "minimum_arborescence",
    "min_storage_arborescence",
    "min_storage_plan_tree",
    "extract_tree_parent_map",
    "shortest_path_tree",
    "shortest_path_plan_tree",
    "single_source_retrieval",
    "brute_force_solve",
    "brute_force_frontier",
    "enumerate_parent_maps",
    "enumerate_plan_scores",
    "last_tree",
    "last_sweep",
    "lmg",
    "lmg_all",
    "mp",
    "bmr_lmg",
    "mp_local",
    "bmr_local_moves",
    "dp_bmr",
    "dp_bmr_heuristic",
    "dp_msr",
    "dp_msr_frontier",
    "dp_msr_tree_reference",
    "TreeRefResult",
    "DPMSRSolver",
    "DPMSRResult",
    "Frontier",
    "ThinningGrid",
    "merge_frontiers",
    "build_bidirectional_tree",
    "extract_index",
    "TreeIndex",
    "DPBMRResult",
    "msr_ilp",
    "bsr_ilp",
    "mmr_ilp",
    "bmr_ilp",
    "ILPResult",
    "minimize_budget",
    "mmr_via_bmr",
    "msr_via_bsr",
    "bmr_via_mmr",
    "bsr_via_msr",
    "ReductionResult",
    "solve_bsr",
    "solve_mmr",
]
