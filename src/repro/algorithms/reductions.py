"""Lemma-7 reductions: solve one variant with a solver for its dual.

The storage and retrieval roles of the four problems are exchangeable
(Section 2.2): an algorithm for BMR yields one for MMR by binary-
searching the smallest max-retrieval budget whose optimal storage fits
``S``, and symmetrically in the other three directions.  The search
space is finite (``n · r_max`` for max-retrieval, ``n² · r_max`` for
sum-retrieval), so with the *snap-to-achieved* refinement below the
search is exact on integral instances and converges to machine
precision otherwise.

Snap-to-achieved: whenever the inner solver returns a feasible plan, its
*actual* constrained value (e.g. the true max retrieval of the plan) is
used as the next upper bound instead of the probed midpoint.  Each
accepted probe therefore lands exactly on an achievable value and the
search terminates after O(log(range / gap)) probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.graph import VersionGraph
from ..core.tolerance import within_budget
from ..core.problems import PlanScore, evaluate_plan
from ..core.solution import StoragePlan

__all__ = [
    "BudgetSolver",
    "ReductionResult",
    "minimize_budget",
    "mmr_via_bmr",
    "msr_via_bsr",
    "bmr_via_mmr",
    "bsr_via_msr",
]

# A budget solver takes (graph, budget) and returns a feasible plan for
# the budgeted problem (constraint <= budget), minimizing its objective —
# or None when no plan fits the budget (e.g. storage below the minimum
# arborescence cost).
BudgetSolver = Callable[[VersionGraph, float], StoragePlan | None]


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of a Lemma-7 binary search.

    Attributes
    ----------
    budget:
        The smallest probed budget whose inner solution met the outer
        constraint (snapped to an achieved value).
    plan:
        The plan realizing it.
    score:
        Full cost aggregates of ``plan``.
    probes:
        Number of inner-solver invocations (for run-time accounting).
    """

    budget: float
    plan: StoragePlan
    score: PlanScore
    probes: int


def minimize_budget(
    graph: VersionGraph,
    solver: BudgetSolver,
    *,
    outer_limit: float,
    outer_of: Callable[[PlanScore], float],
    inner_of: Callable[[PlanScore], float],
    hi: float,
    lo: float = 0.0,
    tol: float = 1e-6,
    max_probes: int = 80,
) -> ReductionResult:
    """Find the smallest inner budget whose optimal plan satisfies the
    outer constraint ``outer_of(score) <= outer_limit``.

    ``solver(graph, budget)`` should be monotone: loosening the inner
    budget never worsens the outer quantity of its optimal plan.  Exact
    solvers are monotone by definition; MP and DP-BMR are monotone by
    construction.  With a non-monotone heuristic the search still
    returns a feasible plan, just not necessarily the best probe.
    """
    best: tuple[float, StoragePlan, PlanScore] | None = None
    probes = 0

    def probe(budget: float) -> tuple[PlanScore | None, StoragePlan | None]:
        nonlocal probes
        probes += 1
        plan = solver(graph, budget)
        if plan is None:
            return None, None
        return evaluate_plan(graph, plan), plan

    score, plan = probe(hi)
    if score is None or not within_budget(outer_of(score), outer_limit):
        raise ValueError(
            f"outer constraint {outer_limit} unreachable even at inner budget {hi}"
        )
    hi = min(hi, inner_of(score))
    best = (hi, plan, score)

    while probes < max_probes and hi - lo > tol * max(1.0, abs(hi)):
        mid = (lo + hi) / 2
        score, plan = probe(mid)
        if score is not None and within_budget(outer_of(score), outer_limit):
            achieved = min(mid, inner_of(score))
            if achieved < best[0]:
                best = (achieved, plan, score)
            hi = achieved
        else:
            lo = mid
    budget, plan, score = best
    return ReductionResult(budget=budget, plan=plan, score=score, probes=probes)


def _sum_retrieval_upper(graph: VersionGraph) -> float:
    n = graph.num_versions
    return n * n * max(1.0, graph.max_retrieval_cost())


def _max_retrieval_upper(graph: VersionGraph) -> float:
    return graph.num_versions * max(1.0, graph.max_retrieval_cost())


def mmr_via_bmr(
    graph: VersionGraph, bmr_solver: BudgetSolver, storage_budget: float, **kw
) -> ReductionResult:
    """MinMax Retrieval using a BMR solver (Lemma 7)."""
    return minimize_budget(
        graph,
        bmr_solver,
        outer_limit=storage_budget,
        outer_of=lambda s: s.storage,
        inner_of=lambda s: s.max_retrieval,
        hi=_max_retrieval_upper(graph),
        **kw,
    )


def msr_via_bsr(
    graph: VersionGraph, bsr_solver: BudgetSolver, storage_budget: float, **kw
) -> ReductionResult:
    """MinSum Retrieval using a BSR solver (Lemma 7)."""
    return minimize_budget(
        graph,
        bsr_solver,
        outer_limit=storage_budget,
        outer_of=lambda s: s.storage,
        inner_of=lambda s: s.sum_retrieval,
        hi=_sum_retrieval_upper(graph),
        **kw,
    )


def bmr_via_mmr(
    graph: VersionGraph, mmr_solver: BudgetSolver, retrieval_budget: float, **kw
) -> ReductionResult:
    """BMR using an MMR solver: search the smallest storage budget whose
    min-max-retrieval fits ``retrieval_budget`` (the reverse direction,
    Section 2.2)."""
    return minimize_budget(
        graph,
        mmr_solver,
        outer_limit=retrieval_budget,
        outer_of=lambda s: s.max_retrieval,
        inner_of=lambda s: s.storage,
        hi=graph.total_version_storage() + sum(d.storage for _, _, d in graph.deltas()),
        **kw,
    )


def bsr_via_msr(
    graph: VersionGraph, msr_solver: BudgetSolver, retrieval_budget: float, **kw
) -> ReductionResult:
    """BSR using an MSR solver (reverse direction)."""
    return minimize_budget(
        graph,
        msr_solver,
        outer_limit=retrieval_budget,
        outer_of=lambda s: s.sum_retrieval,
        inner_of=lambda s: s.storage,
        hi=graph.total_version_storage() + sum(d.storage for _, _, d in graph.deltas()),
        **kw,
    )
