"""Exact integer-linear-programming solvers (Appendix D), via HiGHS.

The paper computes OPT with Gurobi; offline we use
``scipy.optimize.milp`` (the bundled HiGHS solver) on the same
formulations:

MSR / BSR — single-commodity flow on the extended graph (Appendix D):
    variables ``x_e ∈ {0..n}`` (how many versions retrieve through
    ``e``) and ``I_e ∈ {0,1}`` (is ``e`` stored);
    ``sum_in(u) x - sum_out(u) x = 1`` for every version ``u``;
    ``x_e <= n · I_e``.  Then ``sum_e r_e x_e`` *is* the total
    retrieval cost and ``sum_e s_e I_e`` the total storage (aux edges
    carry the materialization costs).

MMR / BMR — multicommodity: one binary flow ``y^t`` per target version
    (path from AUX to ``t``), coupled by ``y^t_e <= I_e``; the retrieval
    cost of ``t`` is ``sum_e r_e y^t_e``, constrained per target.

Like the paper (Figure 10 caption: "ILP takes too long to finish on all
graphs except datasharing"), use these on small graphs only; callers can
pass a time limit and must check :attr:`ILPResult.optimal`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.graph import AUX, Node, VersionGraph
from ..core.problems import PlanScore, evaluate_plan
from ..core.solution import StoragePlan

__all__ = ["ILPResult", "msr_ilp", "bsr_ilp", "mmr_ilp", "bmr_ilp"]


@dataclass(frozen=True)
class ILPResult:
    """Outcome of an exact solve.

    Attributes
    ----------
    plan:
        The optimal storage plan (None when infeasible / not solved).
    objective:
        Objective value reported by the solver (inf when infeasible).
    optimal:
        True when HiGHS proved optimality within the time limit.
    status:
        HiGHS status message for diagnostics.
    score:
        Re-evaluated plan costs (validation happens in tests).
    """

    plan: StoragePlan | None
    objective: float
    optimal: bool
    status: str
    score: PlanScore | None = None


def _edge_arrays(ext: VersionGraph):
    edges = [(u, v) for u, v, _ in ext.deltas()]
    storage = np.array([ext.delta(u, v).storage for u, v in edges], dtype=float)
    retrieval = np.array([ext.delta(u, v).retrieval for u, v in edges], dtype=float)
    return edges, storage, retrieval


def _flow_matrix(ext: VersionGraph, edges: list[tuple[Node, Node]]):
    """Rows: one conservation constraint per version (not AUX)."""
    versions = [v for v in ext.versions if v is not AUX]
    vidx = {v: i for i, v in enumerate(versions)}
    rows, cols, vals = [], [], []
    for j, (u, v) in enumerate(edges):
        if v in vidx:
            rows.append(vidx[v])
            cols.append(j)
            vals.append(1.0)
        if u in vidx:
            rows.append(vidx[u])
            cols.append(j)
            vals.append(-1.0)
    mat = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(len(versions), len(edges))
    )
    return versions, mat


def _single_commodity(
    graph: VersionGraph,
    *,
    minimize_retrieval: bool,
    storage_budget: float | None,
    retrieval_budget: float | None,
    time_limit: float | None,
    mip_rel_gap: float | None,
) -> ILPResult:
    ext = graph if graph.has_aux else graph.extended()
    edges, s_cost, r_cost = _edge_arrays(ext)
    m = len(edges)
    n = sum(1 for v in ext.versions if v is not AUX)
    versions, flow = _flow_matrix(ext, edges)

    # variable layout: [x_0..x_{m-1}, I_0..I_{m-1}]
    c = np.concatenate([r_cost, np.zeros(m)]) if minimize_retrieval else np.concatenate(
        [np.zeros(m), s_cost]
    )
    constraints = []
    # flow conservation: flow @ x == 1
    constraints.append(
        LinearConstraint(sparse.hstack([flow, sparse.csr_matrix((n, m))]), 1.0, 1.0)
    )
    # indicator coupling: x_e - n I_e <= 0
    eye = sparse.eye(m, format="csr")
    constraints.append(
        LinearConstraint(sparse.hstack([eye, -float(n) * eye]), -np.inf, 0.0)
    )
    # strengthening cut: every version needs a stored in-edge
    # (sum_{e in in(v)} I_e >= 1) — valid for all feasible plans and
    # dramatically tightens the big-M LP relaxation for HiGHS.
    in_rows, in_cols, in_vals = [], [], []
    vidx = {v: i for i, v in enumerate(versions)}
    for j, (u, v) in enumerate(edges):
        if v in vidx:
            in_rows.append(vidx[v])
            in_cols.append(j)
            in_vals.append(1.0)
    in_mat = sparse.csr_matrix((in_vals, (in_rows, in_cols)), shape=(n, m))
    constraints.append(
        LinearConstraint(sparse.hstack([sparse.csr_matrix((n, m)), in_mat]), 1.0, np.inf)
    )
    if storage_budget is not None:
        row = sparse.hstack(
            [sparse.csr_matrix((1, m)), sparse.csr_matrix(s_cost[None, :])]
        )
        constraints.append(LinearConstraint(row, -np.inf, storage_budget))
    if retrieval_budget is not None:
        row = sparse.hstack(
            [sparse.csr_matrix(r_cost[None, :]), sparse.csr_matrix((1, m))]
        )
        constraints.append(LinearConstraint(row, -np.inf, retrieval_budget))

    bounds = Bounds(
        lb=np.zeros(2 * m), ub=np.concatenate([np.full(m, float(n)), np.ones(m)])
    )
    integrality = np.ones(2 * m)
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = mip_rel_gap
    res = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if res.x is None:
        return ILPResult(None, math.inf, False, res.message)
    x = res.x[:m]
    plan = _plan_from_flow(ext, edges, x)
    score = evaluate_plan(graph, plan)
    return ILPResult(
        plan=plan,
        objective=float(res.fun),
        optimal=bool(res.status == 0),
        status=res.message,
        score=score,
    )


def _plan_from_flow(
    ext: VersionGraph, edges: list[tuple[Node, Node]], x: np.ndarray
) -> StoragePlan:
    mats = []
    deltas = []
    for (u, v), flow in zip(edges, x):
        if flow > 0.5:
            if u is AUX:
                mats.append(v)
            else:
                deltas.append((u, v))
    return StoragePlan.of(mats, deltas)


def msr_ilp(
    graph: VersionGraph,
    storage_budget: float,
    *,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
) -> ILPResult:
    """Exact MinSum Retrieval (Appendix D formulation).

    ``mip_rel_gap`` trades proof-of-optimality for speed (the benchmark
    harness uses a small gap; tests use the exact default).
    """
    return _single_commodity(
        graph,
        minimize_retrieval=True,
        storage_budget=storage_budget,
        retrieval_budget=None,
        time_limit=time_limit,
        mip_rel_gap=mip_rel_gap,
    )


def bsr_ilp(
    graph: VersionGraph,
    retrieval_budget: float,
    *,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
) -> ILPResult:
    """Exact BoundedSum Retrieval (storage objective, retrieval budget)."""
    return _single_commodity(
        graph,
        minimize_retrieval=False,
        storage_budget=None,
        retrieval_budget=retrieval_budget,
        time_limit=time_limit,
        mip_rel_gap=mip_rel_gap,
    )


def _multicommodity(
    graph: VersionGraph,
    *,
    storage_budget: float | None,
    retrieval_budget: float | None,
    minimize_max_retrieval: bool,
    time_limit: float | None,
) -> ILPResult:
    """Shared MMR/BMR model: binary per-target flows coupled to I_e.

    Variable layout: ``[y^t_e for t in targets for e] + [I_e] (+ [z])``
    where ``z`` is the max-retrieval epigraph variable for MMR.
    """
    ext = graph if graph.has_aux else graph.extended()
    edges, s_cost, r_cost = _edge_arrays(ext)
    m = len(edges)
    targets = [v for v in ext.versions if v is not AUX]
    n = len(targets)
    vidx = {v: i for i, v in enumerate(targets)}

    num_y = n * m
    num_vars = num_y + m + (1 if minimize_max_retrieval else 0)

    def ycol(t_i: int, e_j: int) -> int:
        return t_i * m + e_j

    icol0 = num_y
    zcol = num_y + m  # only valid for MMR

    rows, cols, vals, lbs, ubs = [], [], [], [], []
    r = 0

    # per-target unit flow from AUX to t: in(u) - out(u) = [u == t]
    for t_i, t in enumerate(targets):
        for u in targets:
            for e_j, (a, b) in enumerate(edges):
                if b == u:
                    rows.append(r)
                    cols.append(ycol(t_i, e_j))
                    vals.append(1.0)
                elif a == u:
                    rows.append(r)
                    cols.append(ycol(t_i, e_j))
                    vals.append(-1.0)
            lbs.append(1.0 if u == t else 0.0)
            ubs.append(1.0 if u == t else 0.0)
            r += 1

    # coupling y^t_e <= I_e
    for t_i in range(n):
        for e_j in range(m):
            rows.append(r)
            cols.append(ycol(t_i, e_j))
            vals.append(1.0)
            rows.append(r)
            cols.append(icol0 + e_j)
            vals.append(-1.0)
            lbs.append(-np.inf)
            ubs.append(0.0)
            r += 1

    # per-target retrieval constraint
    for t_i in range(n):
        for e_j in range(m):
            if r_cost[e_j] != 0.0:
                rows.append(r)
                cols.append(ycol(t_i, e_j))
                vals.append(r_cost[e_j])
        if minimize_max_retrieval:
            rows.append(r)
            cols.append(zcol)
            vals.append(-1.0)
            lbs.append(-np.inf)
            ubs.append(0.0)
        else:
            lbs.append(-np.inf)
            ubs.append(retrieval_budget)
        r += 1

    # storage budget (MMR) — BMR minimizes storage instead
    if storage_budget is not None:
        for e_j in range(m):
            rows.append(r)
            cols.append(icol0 + e_j)
            vals.append(s_cost[e_j])
        lbs.append(-np.inf)
        ubs.append(storage_budget)
        r += 1

    A = sparse.csr_matrix((vals, (rows, cols)), shape=(r, num_vars))
    constraint = LinearConstraint(A, np.array(lbs), np.array(ubs))

    c = np.zeros(num_vars)
    if minimize_max_retrieval:
        c[zcol] = 1.0
    else:
        c[icol0 : icol0 + m] = s_cost

    ub = np.ones(num_vars)
    if minimize_max_retrieval:
        ub[zcol] = np.inf
    bounds = Bounds(lb=np.zeros(num_vars), ub=ub)
    integrality = np.ones(num_vars)
    if minimize_max_retrieval:
        integrality[zcol] = 0.0
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    res = milp(
        c=c, constraints=[constraint], integrality=integrality, bounds=bounds, options=options
    )
    if res.x is None:
        return ILPResult(None, math.inf, False, res.message)
    stored = res.x[icol0 : icol0 + m] > 0.5
    # keep only stored edges actually used by some flow (prunes free I_e)
    used = np.zeros(m, dtype=bool)
    y = res.x[:num_y].reshape(n, m) > 0.5
    used = y.any(axis=0)
    mats, deltas = [], []
    for e_j, (u, v) in enumerate(edges):
        if stored[e_j] and used[e_j]:
            if u is AUX:
                mats.append(v)
            else:
                deltas.append((u, v))
    plan = StoragePlan.of(mats, deltas)
    score = evaluate_plan(graph, plan)
    return ILPResult(
        plan=plan,
        objective=float(res.fun),
        optimal=bool(res.status == 0),
        status=res.message,
        score=score,
    )


def mmr_ilp(
    graph: VersionGraph, storage_budget: float, *, time_limit: float | None = None
) -> ILPResult:
    """Exact MinMax Retrieval (epigraph multicommodity model)."""
    return _multicommodity(
        graph,
        storage_budget=storage_budget,
        retrieval_budget=None,
        minimize_max_retrieval=True,
        time_limit=time_limit,
    )


def bmr_ilp(
    graph: VersionGraph, retrieval_budget: float, *, time_limit: float | None = None
) -> ILPResult:
    """Exact BoundedMax Retrieval (multicommodity model)."""
    return _multicommodity(
        graph,
        storage_budget=None,
        retrieval_budget=retrieval_budget,
        minimize_max_retrieval=False,
        time_limit=time_limit,
    )
