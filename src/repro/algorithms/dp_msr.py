"""DP-MSR — the practical frontier DP for MinSum Retrieval (Section 6.2).

On a bidirectional tree, every storage plan partitions the tree into
connected components, each owning exactly one materialized *center*;
a version's retrieval cost is the unique tree-path cost from its
component's center.  The DP walks the tree bottom-up with state

    ``D[v][u]`` — the Pareto frontier of ``(storage, total retrieval)``
    over partial plans of the subtree ``T[v]`` in which ``v`` belongs to
    a component centered at ``u``

where ``u`` ranges over *all* tree nodes: ``u = v`` materializes ``v``
(charging ``s_v``), ``u`` inside ``T[v]`` charges the up-edge from the
child subtree holding ``u``, and ``u`` outside charges the down-edge
from ``v``'s parent; in each case ``v``'s own retrieval contribution is
the tree distance ``dist(u, v)``.  Folding a child ``w`` into ``v``
combines frontiers: if ``u ∈ T[w]`` the child *must* share the center
(``D[w][u]``), otherwise the child either joins ``v``'s component
(``D[w][u]``) or resolves independently (``BEST[w] = min over centers
x ∈ T[w] of D[w][x]``).

This is equivalent to the paper's ``(k, γ, ρ)`` state of Section 5.1 —
the dependency count ``k`` is the slope of ``D[v][u]`` as a function of
``dist(u, v)`` — but the component-center form needs no binarization
and vectorizes as NumPy frontier algebra.

Fidelity to Section 6.2's three modifications:

1. *storage* (not retrieval) is the discretized axis — frontiers are
   thinned on geometric storage buckets (:class:`ThinningGrid`);
2. geometric discretization — ditto;
3. pruning — frontier points above ``storage_cap`` are discarded.

With ``ticks=None`` the DP is **exact** on bidirectional trees (the
test-suite checks it against brute force); on general digraphs the
Section-6.2 tree extraction applies first, making it a heuristic.
Like the paper's implementation, one run yields the *entire*
storage/retrieval trade-off curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.graph import GraphError, Node, VersionGraph
from ..core.tolerance import self_check_tol, within_budget, within_budget_recomputed
from ..core.problems import PlanScore, evaluate_plan
from ..core.solution import StoragePlan
from .dp_bmr import TreeIndex, _map_back, _orient, extract_index
from .frontier import Frontier, ThinningGrid, merge_frontiers

__all__ = ["DPMSRSolver", "DPMSRResult", "dp_msr", "dp_msr_frontier"]


@dataclass(frozen=True)
class DPMSRResult:
    """A reconstructed plan plus its exact re-evaluated score."""

    plan: StoragePlan
    score: PlanScore
    frontier: Frontier


class DPMSRSolver:
    """Reusable DP-MSR engine over one (extracted) bidirectional tree.

    Parameters
    ----------
    graph:
        Base version graph.  Bidirectional trees are solved directly
        (exactly, when ``ticks=None``); anything else goes through the
        Section-6.2 tree extraction.
    ticks:
        Number of geometric storage buckets per frontier (None = exact).
    storage_cap:
        Pruning threshold; defaults to the total materialization cost
        (beyond which "store everything" with zero retrieval dominates).
    keep_tables:
        Retain per-node DP tables so plans can be reconstructed for any
        budget (uses O(n^2) frontier memory — fine below ~300 nodes).
    """

    def __init__(
        self,
        graph: VersionGraph,
        *,
        root: Node | None = None,
        index: TreeIndex | None = None,
        ticks: int | None = 64,
        storage_cap: float | None = None,
        keep_tables: bool = False,
    ):
        self.graph = graph
        if index is None:
            if graph.is_bidirectional_tree():
                root_ = root if root is not None else min(graph.versions, key=str)
                index = TreeIndex(graph, root_, _orient(graph, root_))
            else:
                index = extract_index(graph, root)
        self.index = index
        self.tree = index.graph
        cap = storage_cap if storage_cap is not None else self.tree.total_version_storage()
        if ticks is None:
            # exact mode; apply cap-only pruning when explicitly requested
            self.grid = (
                None
                if storage_cap is None
                else ThinningGrid(cap=cap, max_points=1_000_000_000)
            )
        else:
            self.grid = ThinningGrid(cap=cap, max_points=ticks)
        self.cap = cap
        self.keep_tables = keep_tables
        self.tables: dict[Node, dict[Node, Frontier]] = {}
        self._frontier: Frontier | None = None

    # ------------------------------------------------------------------
    def frontier(self) -> Frontier:
        """Run the DP (once) and return the root trade-off frontier."""
        if self._frontier is None:
            self._frontier = self._run()
        return self._frontier

    def _init_row(self, v: Node, u: Node) -> Frontier:
        tree, index = self.tree, self.index
        if u == v:
            return Frontier.single(tree.storage_cost(v), 0.0, self.grid)
        pred = index.pred_on_path(u, v)
        return Frontier.single(
            tree.delta(pred, v).storage, index.path_cost[u][v], self.grid
        )

    def _run(self) -> Frontier:
        index, grid = self.index, self.grid
        nodes = index.nodes
        tables = self.tables
        for v in index.post_order:
            rows = {u: self._init_row(v, u) for u in nodes}
            for w in index.children[v]:
                dw = tables[w] if self.keep_tables else tables.pop(w)
                inside = set(index.subtree_nodes(w))
                best_w = merge_frontiers((dw[x] for x in inside), grid)
                for u in nodes:
                    c = dw[u] if u in inside else dw[u].union(best_w, grid)
                    rows[u] = rows[u].combine(c, grid)
            tables[v] = rows
        root_rows = tables[index.root]
        result = merge_frontiers(root_rows.values(), grid)
        if not self.keep_tables:
            tables.clear()
        return result

    # ------------------------------------------------------------------
    # plan reconstruction
    # ------------------------------------------------------------------
    def plan_for_budget(self, storage_budget: float) -> StoragePlan:
        """Reconstruct the plan realizing the frontier point at ``budget``.

        Requires ``keep_tables=True``.  The reconstruction re-runs each
        node's fold sequence and splits the chosen point back into child
        contributions by exact-sum matching.
        """
        if not self.keep_tables:
            raise GraphError("plan reconstruction requires keep_tables=True")
        self.frontier()
        index = self.index
        root_rows = self.tables[index.root]
        best: tuple[float, float, Node] | None = None
        for u, f in root_rows.items():
            p = f.best_point_within(storage_budget)
            if p is not None and (best is None or p[1] < best[1]):
                best = (p[0], p[1], u)
        if best is None:
            raise GraphError(
                f"storage budget {storage_budget} below the minimum achievable "
                f"storage on the extracted tree"
            )
        sto, ret, u = best
        materialized: list[Node] = []
        edges: list[tuple[Node, Node]] = []
        stack: list[tuple[Node, Node, float, float]] = [(index.root, u, sto, ret)]
        while stack:
            v, u, sto, ret = stack.pop()
            if u == v:
                materialized.append(v)
            else:
                edges.append((index.pred_on_path(u, v), v))
            stack.extend(self._decompose(v, u, sto, ret))
        plan = StoragePlan.of(materialized, edges)
        return _map_back(self.graph, self.tree, plan)

    def _decompose(
        self, v: Node, u: Node, sto: float, ret: float
    ) -> list[tuple[Node, Node, float, float]]:
        """Split point (sto, ret) of D[v][u] into child assignments."""
        index, grid = self.index, self.grid
        children = index.children[v]
        if not children:
            return []
        # Rebuild the fold sequence exactly as _run did.
        contribs: list[dict] = []
        acc = [self._init_row(v, u)]
        for w in children:
            dw = self.tables[w]
            inside = set(index.subtree_nodes(w))
            if u in inside:
                c = dw[u]
            else:
                best_w = merge_frontiers((dw[x] for x in inside), grid)
                c = dw[u].union(best_w, grid)
            contribs.append({"w": w, "frontier": c, "inside": inside})
            acc.append(acc[-1].combine(c, grid))
        # Backtrack: peel children off the accumulated point.
        out: list[tuple[Node, Node, float, float]] = []
        target = (sto, ret)
        for i in range(len(children), 0, -1):
            prev, c = acc[i - 1], contribs[i - 1]["frontier"]
            pair = _split_sum(prev, c, target)
            if pair is None:
                raise GraphError(
                    f"reconstruction failed at {v!r} (child {contribs[i-1]['w']!r})"
                )
            (psto, pret), (csto, cret) = pair
            w = contribs[i - 1]["w"]
            inside = contribs[i - 1]["inside"]
            cu = self._locate_center(w, u, inside, csto, cret)
            out.append((w, cu, csto, cret))
            target = (psto, pret)
        return out

    def _locate_center(
        self, w: Node, u: Node, inside: set[Node], sto: float, ret: float
    ) -> Node:
        """Which center realizes point (sto, ret) of child ``w``'s slot?"""
        dw = self.tables[w]
        if u in inside:
            return u
        if _contains_point(dw[u], sto, ret):
            return u
        for x in self.index.subtree_nodes(w):
            if _contains_point(dw[x], sto, ret):
                return x
        raise GraphError(f"no center realizes point ({sto}, {ret}) at {w!r}")


def _contains_point(f: Frontier, sto: float, ret: float) -> bool:
    if f.is_empty:
        return False
    i = np.searchsorted(f.sto, sto - self_check_tol(sto))
    j = np.searchsorted(f.sto, sto + self_check_tol(sto), side="right")
    if i >= j:
        return False
    return bool(np.any(np.abs(f.ret[i:j] - ret) <= self_check_tol(ret)))


def _split_sum(
    a: Frontier, b: Frontier, target: tuple[float, float]
) -> tuple[tuple[float, float], tuple[float, float]] | None:
    """Find points p ∈ a, q ∈ b with p + q == target (within tolerance)."""
    ts, tr = target
    s = a.sto[:, None] + b.sto[None, :]
    r = a.ret[:, None] + b.ret[None, :]
    hit = (np.abs(s - ts) <= self_check_tol(ts)) & (np.abs(r - tr) <= self_check_tol(tr))
    idx = np.argwhere(hit)
    if idx.shape[0] == 0:
        return None
    i, j = idx[0]
    return (float(a.sto[i]), float(a.ret[i])), (float(b.sto[j]), float(b.ret[j]))


# ----------------------------------------------------------------------
# functional API
# ----------------------------------------------------------------------
def dp_msr_frontier(
    graph: VersionGraph,
    *,
    root: Node | None = None,
    index: TreeIndex | None = None,
    ticks: int | None = 64,
    storage_cap: float | None = None,
) -> Frontier:
    """The full storage/retrieval trade-off curve in one DP run.

    This is how the Figure 10-12 sweeps use DP-MSR: the paper plots its
    run time "as a horizontal line over the full range for storage
    constraint" because a single run serves every budget.
    """
    solver = DPMSRSolver(
        graph, root=root, index=index, ticks=ticks, storage_cap=storage_cap
    )
    return solver.frontier()


def dp_msr(
    graph: VersionGraph,
    storage_budget: float,
    *,
    root: Node | None = None,
    index: TreeIndex | None = None,
    ticks: int | None = 64,
) -> DPMSRResult:
    """Solve one MSR instance and reconstruct the plan.

    The returned score re-evaluates the plan on the *original* graph
    (Dijkstra may find cheaper retrieval paths than the extracted tree,
    so ``score.sum_retrieval`` can beat the frontier's estimate).
    """
    solver = DPMSRSolver(
        graph,
        root=root,
        index=index,
        ticks=ticks,
        storage_cap=storage_budget,
        keep_tables=True,
    )
    frontier = solver.frontier()
    plan = solver.plan_for_budget(storage_budget)
    score = evaluate_plan(graph, plan)
    # evaluate_plan re-sums storage in a different association order
    # than the frontier accumulator; validate with recomputation slack
    if not within_budget_recomputed(score.storage, storage_budget):
        raise GraphError(
            f"DP-MSR produced an over-budget plan ({score.storage} > {storage_budget})"
        )
    return DPMSRResult(plan=plan, score=score, frontier=frontier)
