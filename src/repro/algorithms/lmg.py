"""LMG — Local Move Greedy (Algorithm 1 of the paper; Bhattacherjee et al.).

The previously best-known heuristic for MinSum Retrieval:

1. start from the minimum-*storage* arborescence of the extended graph;
2. repeatedly **materialize** the version with the best ratio

   ``rho = (reduction in total retrieval) / (increase in storage)``

   among versions whose materialization keeps total storage within the
   budget;
3. stop when the budget is exhausted, no candidate remains, or no move
   reduces retrieval.

Theorem 1 of the paper shows this can be arbitrarily bad even on
directed paths under a single weight function with triangle inequality
(see :func:`repro.core.instances.lmg_adversarial_chain` and the
``bench_theorem1_lmg_adversarial`` benchmark).

Implementation notes
--------------------
* A move "materialize v" is the edge swap ``(P(v), v) -> (AUX, v)`` on
  the :class:`~repro.core.solution.PlanTree`; evaluating it is O(1)
  thanks to cached subtree sizes, so one greedy round costs O(V) and the
  whole run O(V^2) plus O(subtree) per applied move.
* Following Algorithm 1, each version is materialized at most once
  (the ``U`` set); a move with non-positive retrieval reduction is never
  taken.
* The paper assumes materialization costs exceed delta costs; when a
  swap *reduces* storage while also reducing retrieval we treat its
  ratio as infinite (such moves are always safe and taken first).
"""

from __future__ import annotations

import math

from ..core.graph import AUX, Node, VersionGraph
from ..core.tolerance import within_budget
from ..core.solution import PlanTree
from .arborescence import min_storage_plan_tree

__all__ = ["lmg"]


def lmg(
    graph: VersionGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> PlanTree:
    """Run LMG for MSR. Returns the final :class:`PlanTree`.

    Parameters
    ----------
    graph:
        Base version graph (extended internally).
    storage_budget:
        The MSR storage constraint ``S``.  Must admit the minimum
        storage configuration, otherwise the instance is infeasible and
        a ``ValueError`` is raised.
    max_iterations:
        Optional safety cap on greedy rounds (defaults to ``|V|``, the
        natural bound since each round removes one version from ``U``).
    """
    tree = min_storage_plan_tree(graph)
    if not within_budget(tree.total_storage, storage_budget):
        raise ValueError(
            f"storage budget {storage_budget} below minimum storage "
            f"{tree.total_storage}: MSR infeasible"
        )
    # Candidates sorted once up front; materialized versions are pruned
    # in place, so each round is a plain list scan instead of an
    # O(V log V) re-sort (the scan order — string order — is unchanged,
    # keeping plans identical to the re-sorting implementation).
    candidates = sorted(
        (v for v in tree.parent if tree.parent[v] is not AUX), key=str
    )
    rounds = max_iterations if max_iterations is not None else len(tree.parent)

    for _ in range(rounds):
        if tree.total_storage >= storage_budget or not candidates:
            break
        best_rho = 0.0
        best_v: Node | None = None
        best_dr = 0.0
        for v in candidates:
            if tree.parent[v] is AUX:
                continue
            ds, dr = tree.swap_deltas(AUX, v)
            if not within_budget(tree.total_storage + ds, storage_budget):
                continue
            reduction = -dr
            if reduction <= 0:
                continue
            rho = math.inf if ds <= 0 else reduction / ds
            if rho > best_rho or (
                rho == best_rho == math.inf and reduction > -best_dr
            ):
                best_rho = rho
                best_v = v
                best_dr = dr
        if best_v is None:
            break
        tree.apply_swap(AUX, best_v)
        candidates.remove(best_v)  # drop materialized nodes from the scan
    return tree
