"""Shortest-path-tree baseline (Problem 2 of Table 1).

Running Dijkstra from the auxiliary root with retrieval-cost weights
yields the plan that minimizes every version's retrieval cost
simultaneously (each ``R(v)`` is its graph-theoretic minimum; in
particular both ``max_v R(v)`` and ``sum_v R(v)`` are minimized),
ignoring storage entirely.  Together with the minimum-storage
arborescence it brackets the storage axis of every trade-off figure:
LMG-style heuristics interpolate between these two extremes.
"""

from __future__ import annotations

import heapq

from ..core.graph import AUX, GraphError, Node, VersionGraph
from ..core.solution import PlanTree

__all__ = ["shortest_path_tree", "shortest_path_plan_tree", "single_source_retrieval"]


def single_source_retrieval(
    graph: VersionGraph, source: Node
) -> tuple[dict[Node, float], dict[Node, Node]]:
    """Dijkstra over retrieval costs. Returns ``(dist, parent)``.

    Deterministic: ties broken by insertion order of heap pushes.
    """
    dist: dict[Node, float] = {source: 0.0}
    parent: dict[Node, Node] = {}
    heap: list[tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, u = heapq.heappop(heap)
        if d > dist.get(u, float("inf")):
            continue
        for w, delta in graph.successors(u).items():
            nd = d + delta.retrieval
            if nd < dist.get(w, float("inf")):
                dist[w] = nd
                parent[w] = u
                heapq.heappush(heap, (nd, counter, w))
                counter += 1
    return dist, parent


def shortest_path_tree(graph: VersionGraph) -> dict[Node, Node]:
    """Parent map of the retrieval-shortest-path tree from AUX."""
    ext = graph if graph.has_aux else graph.extended()
    dist, parent = single_source_retrieval(ext, AUX)
    missing = [v for v in ext.versions if v is not AUX and v not in parent]
    if missing:
        raise GraphError(f"versions unreachable from AUX: {missing[:5]!r}")
    return parent


def shortest_path_plan_tree(graph: VersionGraph) -> PlanTree:
    """The minimum-retrieval configuration as a :class:`PlanTree`.

    Note that Dijkstra from AUX with zero-retrieval aux edges tends to
    materialize aggressively: any version whose cheapest retrieval path
    is direct materialization hangs off AUX.
    """
    ext = graph if graph.has_aux else graph.extended()
    return PlanTree(ext, shortest_path_tree(ext))
