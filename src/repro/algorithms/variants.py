"""Practical solvers for the remaining variants: MMR and BSR.

Table 3 of the paper notes that the tree DPs extend to the budget-
flipped problems "naturally, as the objective and constraint are
reversed".  Concretely:

* **BSR** (min storage s.t. total retrieval ≤ R): DP-MSR's single run
  already produces the entire storage/retrieval frontier — reading it
  *transposed* (cheapest storage whose retrieval fits) solves BSR with
  the same (1, 1+ε)-style quality.
* **MMR** (min max-retrieval s.t. storage ≤ S): Lemma 7 in the other
  direction — binary-search the smallest max-retrieval budget whose
  DP-BMR storage fits, reusing one tree index across probes.

Both return plans evaluated on the *original* graph, like every other
solver in the package.
"""

from __future__ import annotations


from ..core.graph import GraphError, VersionGraph
from ..core.tolerance import within_budget, within_budget_recomputed
from ..core.problems import PlanScore, evaluate_plan
from ..core.solution import StoragePlan
from .dp_bmr import dp_bmr_heuristic, extract_index
from .dp_msr import DPMSRSolver
from .reductions import ReductionResult, mmr_via_bmr

__all__ = ["solve_bsr", "solve_mmr"]


def solve_bsr(
    graph: VersionGraph,
    retrieval_budget: float,
    *,
    ticks: int | None = 96,
) -> tuple[StoragePlan, PlanScore]:
    """BoundedSum Retrieval via the transposed DP-MSR frontier.

    Returns ``(plan, score)`` with ``score.sum_retrieval <=
    retrieval_budget``; raises :class:`GraphError` when even the
    zero-retrieval plan (materialize everything) violates the budget
    (impossible for non-negative budgets) or the frontier has no point
    under it.
    """
    solver = DPMSRSolver(graph, ticks=ticks, keep_tables=True)
    frontier = solver.frontier()
    # cheapest storage whose retrieval fits the budget: frontier points
    # are sorted by storage with decreasing retrieval, so scan for the
    # first fitting point.
    target = None
    for sto, ret in frontier.points():
        if within_budget(ret, retrieval_budget):
            target = sto
            break
    if target is None:
        # materialize everything always achieves zero retrieval
        mats = StoragePlan.of(graph.versions)
        score = evaluate_plan(graph, mats)
        if within_budget(score.sum_retrieval, retrieval_budget):
            return mats, score
        raise GraphError(f"retrieval budget {retrieval_budget} unreachable")
    plan = solver.plan_for_budget(target)
    score = evaluate_plan(graph, plan)
    # Dijkstra re-evaluation can only improve retrieval, so feasibility
    # carries over from the frontier point up to re-summation drift.
    assert within_budget_recomputed(score.sum_retrieval, retrieval_budget)
    return plan, score


def solve_mmr(
    graph: VersionGraph,
    storage_budget: float,
    *,
    tol: float = 1e-6,
) -> ReductionResult:
    """MinMax Retrieval via Lemma 7 over DP-BMR (shared tree index)."""
    index = extract_index(graph)

    def bmr_solver(g: VersionGraph, budget: float) -> StoragePlan:
        return dp_bmr_heuristic(g, budget, index=index).plan

    return mmr_via_bmr(graph, bmr_solver, storage_budget, tol=tol)
