"""Reference DP for MSR on bidirectional trees (Section 5.1 / Figure 14).

This is the paper-faithful ``(k, γ, ρ)`` formulation, kept separate
from the production :mod:`repro.algorithms.dp_msr` solver as an
executable specification:

* ``k`` — the *dependency number*: how many (real) versions retrieve
  through the subtree root (including itself) — the multiplier applied
  when a parent steals the root and every dependent's retrieval grows;
* ``γ`` — the *root retrieval*: the cost of reaching the subtree root
  from its materialized descendant, when it is retrieved from below;
* ``ρ`` — the total retrieval accumulated inside the subtree;
* the stored value is the minimum storage achieving ``(k, γ, ρ)``.

States split into the two kinds the 8 cases of Figure 7 distinguish:
``mat`` states (root materialized, γ = 0, keyed by ``(k, ρ)``) that a
parent may *steal* (refunding ``s_root``, charging its own edge and
``k·r`` extra retrieval — the "invisible dependency" of §5.1.1), and
``ret`` states (root retrieved from a materialized descendant, keyed by
``(γ, ρ)``; ``k`` is irrelevant because parents chain onto them without
re-rooting).  Binarization follows Appendix C: high-degree nodes are
split with zero-weight edges into *virtual* clones that contribute
neither retrieval nor dependency counts.

With ``epsilon=None`` retrieval costs are exact and the DP is an exact
MSR solver on bidirectional trees — the tests cross-validate it against
:func:`repro.algorithms.dp_msr_frontier` and brute force.  With
``epsilon`` set, edge retrievals are discretized to
``ceil(r / l), l = ε·r_max/n²`` and Lemma 9's additive ``ε·r_max``
guarantee applies.  Exponential in the worst case (state dicts) — use
the production solver beyond toy sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.graph import GraphError, Node, VersionGraph
from ..core.tolerance import within_budget
from .dp_bmr import _orient

__all__ = ["dp_msr_tree_reference", "TreeRefResult"]


@dataclass(frozen=True)
class TreeRefResult:
    """Best total retrieval within the storage budget (+ state counts)."""

    retrieval: float
    states: int
    scale: float  # discretization unit l (1.0 when exact)


@dataclass
class _BinNode:
    """Binarized tree node; ``virtual`` marks Appendix-C clones."""

    id: int
    original: Node
    virtual: bool
    children: list["_BinNode"]
    # edge costs between this node and each child (down = parent->child)
    down: list[tuple[float, float]]  # (storage, retrieval)
    up: list[tuple[float, float]]


def _binarize(graph: VersionGraph, root: Node) -> _BinNode:
    parent = _orient(graph, root)
    kids: dict[Node, list[Node]] = {v: [] for v in graph.versions}
    for v, p in parent.items():
        kids[p].append(v)
    for p in kids:
        kids[p].sort(key=str)

    counter = [0]

    def build(v: Node) -> _BinNode:
        counter[0] += 1
        node = _BinNode(counter[0], v, False, [], [], [])
        _attach(node, v, list(kids[v]))
        return node

    def _attach(node: _BinNode, v: Node, remaining: list[Node]) -> None:
        if len(remaining) <= 2:
            for c in remaining:
                child = build(c)
                d = graph.delta(v, c)
                u = graph.delta(c, v)
                node.children.append(child)
                node.down.append((d.storage, d.retrieval))
                node.up.append((u.storage, u.retrieval))
            return
        # first real child + a virtual clone carrying the rest
        c = remaining[0]
        child = build(c)
        d = graph.delta(v, c)
        u = graph.delta(c, v)
        node.children.append(child)
        node.down.append((d.storage, d.retrieval))
        node.up.append((u.storage, u.retrieval))

        counter[0] += 1
        clone = _BinNode(counter[0], v, True, [], [], [])
        node.children.append(clone)
        node.down.append((0.0, 0.0))
        node.up.append((0.0, 0.0))
        _attach(clone, v, remaining[1:])

    return build(root)


# state containers: mat[(k, rho)] = sigma ; ret[(gamma, rho)] = sigma
_Mat = dict[tuple[int, float], float]
_Ret = dict[tuple[float, float], float]


def _put(d: dict, key, sigma: float) -> None:
    old = d.get(key)
    if old is None or sigma < old:
        d[key] = sigma


def dp_msr_tree_reference(
    graph: VersionGraph,
    storage_budget: float,
    *,
    root: Node | None = None,
    epsilon: float | None = None,
) -> TreeRefResult:
    """Optimal total retrieval under ``storage_budget`` (Section 5.1).

    ``graph`` must be a bidirectional tree.  Returns the optimum exactly
    when ``epsilon is None``; otherwise within ``epsilon * r_max``
    additively (Lemma 9).
    """
    if not graph.is_bidirectional_tree():
        raise GraphError("reference DP requires a bidirectional tree")
    if root is None:
        root = min(graph.versions, key=str)

    n = graph.num_versions
    if epsilon is None:
        scale = 1.0
        disc = lambda r: r  # noqa: E731 - trivial passthrough
    else:
        rmax = max(graph.max_retrieval_cost(), 1e-12)
        scale = epsilon * rmax / (n * n)
        disc = lambda r: math.ceil(r / scale - 1e-12)  # noqa: E731

    tree = _binarize(graph, root)
    state_count = 0

    def solve(node: _BinNode) -> tuple[_Mat, _Ret]:
        nonlocal state_count
        s_v = graph.storage_cost(node.original)
        own_k = 0 if node.virtual else 1

        kids = [solve(c) for c in node.children]
        # per-child views -------------------------------------------------
        # indep: (rho -> sigma), best over every state kind
        # mats:  ((k, rho) -> sigma), stealable states (root materialized)
        # rets:  ((gamma, rho) -> sigma), root reachable from below
        views = []
        for (mat, ret), child in zip(kids, node.children):
            # Virtual clones carry no storage of their own, so their mat
            # states ("clone materialized at zero cost") are only sound
            # when *stolen* by the real node they mirror (role 1) — they
            # must not leak into the independent or retrieved-from views.
            indep: dict[float, float] = {}
            if not child.virtual:
                for (k, rho), sig in mat.items():
                    _put(indep, rho, sig)
            for (g, rho), sig in ret.items():
                _put(indep, rho, sig)
            rets: _Ret = dict(ret)
            if not child.virtual:
                for (k, rho), sig in mat.items():
                    _put(rets, (0.0, rho), sig)
            views.append({"indep": indep, "mat": mat, "ret": rets, "s": graph.storage_cost(child.original)})

        mat_out: _Mat = {}
        ret_out: _Ret = {}

        deg = len(node.children)
        if deg == 0:
            if node.virtual:
                mat_out[(0, 0.0)] = 0.0  # nothing to store or retrieve
            else:
                mat_out[(1, 0.0)] = s_v
            state_count += 1
            return mat_out, ret_out

        # enumerate the child-role combinations (Figure 7's 8 cases,
        # collapsing symmetric ones):
        # role 0 = independent, 1 = hangs from v, 2 = v retrieves from it
        import itertools

        for roles in itertools.product((0, 1, 2), repeat=deg):
            if sum(1 for r in roles if r == 2) > 1:
                continue  # v retrieves from at most one child
            from_child = next((i for i, r in enumerate(roles) if r == 2), None)
            v_materialized = from_child is None
            if node.virtual and v_materialized:
                # a clone has no storage of its own: "materializing" it
                # is only allowed as the zero-cost pass-through of the
                # split (its mat states mean "the original v is
                # reachable at zero extra cost from this clone's
                # parent"), which is exactly what stealing from the
                # parent models — handled by hanging roles on the real
                # node; still allow it with sigma base 0 so the parent
                # can steal the clone chain.
                pass

            # iterate over the cross product of chosen child states
            # (roles bound as a default: the closure must not track the
            # loop variable)
            def child_iter(i, roles=roles):
                view = views[i]
                if roles[i] == 0:
                    for rho, sig in view["indep"].items():
                        yield ("i", 0, 0.0, rho, sig)
                elif roles[i] == 1:
                    for (k, rho), sig in view["mat"].items():
                        yield ("h", k, 0.0, rho, sig)
                else:
                    for (g, rho), sig in view["ret"].items():
                        yield ("r", 0, g, rho, sig)

            for combo in itertools.product(*(child_iter(i) for i in range(deg))):
                sigma = 0.0 if node.virtual else (s_v if v_materialized else 0.0)
                k_total = own_k
                rho_total = 0.0
                gamma_v = 0.0
                ok = True

                if from_child is not None:
                    kind, _, g_c, rho_c, sig_c = combo[from_child]
                    up_s, up_r = node.up[from_child]
                    gamma_v = g_c + disc(up_r)
                    sigma += sig_c + up_s
                    rho_total += rho_c
                if not node.virtual:
                    rho_total += gamma_v if not v_materialized else 0.0

                for i, entry in enumerate(combo):
                    if i == from_child:
                        continue
                    kind, k_c, _, rho_c, sig_c = entry
                    if kind == "i":
                        sigma += sig_c
                        rho_total += rho_c
                    else:  # hangs from v: steal the materialized root
                        down_s, down_r = node.down[i]
                        sigma += sig_c - views[i]["s"] * (0 if node.children[i].virtual else 1)
                        sigma += down_s
                        extra = k_c * (disc(down_r) + gamma_v)
                        rho_total += rho_c + extra
                        k_total += k_c

                # Budget pruning must leave room for the one refund a
                # parent's steal can apply (this node's own s_v): a mat
                # state over budget by less than s_v may still end up
                # feasible after the §5.1.1 "invisible dependency"
                # refund.
                refundable = s_v if (v_materialized and not node.virtual) else 0.0
                if not within_budget(sigma - refundable, storage_budget):
                    ok = False
                if not ok:
                    continue
                if v_materialized:
                    _put(mat_out, (k_total, rho_total), sigma)
                else:
                    _put(ret_out, (gamma_v, rho_total), sigma)

        # prune dominated states to keep dictionaries small
        mat_out = _prune_mat(mat_out)
        ret_out = _prune_ret(ret_out)
        state_count += len(mat_out) + len(ret_out)
        return mat_out, ret_out

    mat, ret = solve(tree)
    best = math.inf
    for (_, rho), sig in mat.items():
        if within_budget(sig, storage_budget):
            best = min(best, rho)
    for (_, rho), sig in ret.items():
        if within_budget(sig, storage_budget):
            best = min(best, rho)
    if math.isinf(best):
        raise GraphError(f"storage budget {storage_budget} infeasible")
    return TreeRefResult(retrieval=best * scale, states=state_count, scale=scale)


def _prune_mat(states: _Mat) -> _Mat:
    """Drop (k, rho, sigma) states dominated in all three coordinates.

    Smaller k, smaller rho and smaller sigma are all (weakly) better: a
    parent only ever multiplies k by non-negative shifts.
    """
    items = sorted(states.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[1]))
    kept: list[tuple[tuple[int, float], float]] = []
    out: _Mat = {}
    for (k, rho), sig in items:
        dominated = any(
            # DP dominance epsilon over discretized ticks, not a budget
            # feasibility check  # lint-ignore: tolerance-discipline
            k2 <= k and r2 <= rho + 1e-12 and s2 <= sig + 1e-12
            for (k2, r2), s2 in kept
        )
        if not dominated:
            kept.append(((k, rho), sig))
            out[(k, rho)] = sig
    return out


def _prune_ret(states: _Ret) -> _Ret:
    items = sorted(states.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[1]))
    kept: list[tuple[tuple[float, float], float]] = []
    out: _Ret = {}
    for (g, rho), sig in items:
        dominated = any(
            # DP dominance epsilon over discretized ticks, not a budget
            # feasibility check  # lint-ignore: tolerance-discipline
            g2 <= g + 1e-12 and r2 <= rho + 1e-12 and s2 <= sig + 1e-12
            for (g2, r2), s2 in kept
        )
        if not dominated:
            kept.append(((g, rho), sig))
            out[(g, rho)] = sig
    return out
