"""Storage/retrieval Pareto frontiers with geometric thinning.

The practical DP-MSR (Section 6.2) manipulates, per DP state, the set of
achievable ``(storage, total retrieval)`` pairs.  Exact sets grow
exponentially, so the paper's implementation discretizes storage into
geometric "ticks" and prunes states above a storage threshold.  This
module packages that as a small immutable value type:

* a :class:`Frontier` is a pair of parallel NumPy arrays, sorted by
  strictly increasing storage with strictly decreasing retrieval
  (a maximal antichain);
* a :class:`ThinningGrid` optionally coarsens frontiers to at most one
  point per geometric storage bucket (keeping each bucket's best point
  with its **true** storage, so rounding never compounds) and drops
  points above the pruning cap;
* :meth:`Frontier.combine` is the (min,+) product used when two
  independent subproblems merge; :func:`merge_frontiers` is the
  min-union used when taking the best over alternative states.

With ``grid=None`` all operations are exact — the test-suite checks the
exact DP against brute force and the thinned DP against the exact one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.tolerance import budget_cap

__all__ = ["Frontier", "ThinningGrid", "merge_frontiers"]

_EMPTY = np.empty(0, dtype=np.float64)


@dataclass(frozen=True)
class ThinningGrid:
    """Pruning cap plus a per-frontier point budget.

    ``cap`` discards any point with storage above it (the paper's
    pruning threshold — partial solutions costlier than the budget of
    interest can never win).  ``max_points`` bounds each frontier's
    size: when exceeded, points are bucketed on a geometric grid spanned
    by the frontier's *own* storage range ("geometric discretization",
    Section 6.2) and only the best point per bucket survives — keeping
    its **true** storage, so rounding never compounds across folds.
    """

    cap: float = math.inf
    max_points: int = 64

    def __post_init__(self) -> None:
        if self.max_points < 1:
            raise ValueError("max_points must be >= 1")


class Frontier:
    """An immutable Pareto set of ``(storage, retrieval)`` points."""

    __slots__ = ("sto", "ret")

    def __init__(self, sto: np.ndarray, ret: np.ndarray):
        # trusted constructor: arrays must already be canonical
        self.sto = sto
        self.ret = ret

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "Frontier":
        """The canonical empty frontier (shared singleton)."""
        return _EMPTY_FRONTIER

    @staticmethod
    def single(storage: float, retrieval: float, grid: "ThinningGrid | None" = None) -> "Frontier":
        """Frontier of one point; empty when the grid cap prunes it."""
        if grid is not None and storage > grid.cap:
            return _EMPTY_FRONTIER
        return Frontier(
            np.array([storage], dtype=np.float64), np.array([retrieval], dtype=np.float64)
        )

    @staticmethod
    def from_points(
        sto, ret, grid: "ThinningGrid | None" = None
    ) -> "Frontier":
        """Canonicalize arbitrary point arrays (prune + thin)."""
        sto = np.asarray(sto, dtype=np.float64)
        ret = np.asarray(ret, dtype=np.float64)
        return _prune(sto, ret, grid)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.sto.shape[0]

    @property
    def is_empty(self) -> bool:
        """True when the frontier has no points."""
        return self.sto.shape[0] == 0

    def points(self) -> list[tuple[float, float]]:
        """All points as ``(storage, retrieval)`` tuples."""
        return list(zip(self.sto.tolist(), self.ret.tolist()))

    def min_storage(self) -> float:
        """Smallest storage among the points (``inf`` when empty)."""
        return float(self.sto[0]) if len(self) else math.inf

    def best_retrieval_within(self, storage_budget: float) -> float:
        """Min retrieval among points with storage <= budget (inf if none)."""
        i = int(np.searchsorted(self.sto, budget_cap(storage_budget), side="right"))
        if i == 0:
            return math.inf
        return float(self.ret[i - 1])

    def best_point_within(self, storage_budget: float) -> tuple[float, float] | None:
        """Best ``(storage, retrieval)`` with storage within budget, or ``None``."""
        i = int(np.searchsorted(self.sto, budget_cap(storage_budget), side="right"))
        if i == 0:
            return None
        return float(self.sto[i - 1]), float(self.ret[i - 1])

    def dominates_point(self, storage: float, retrieval: float, tol: float = 1e-9) -> bool:
        """True when some frontier point is <= (storage, retrieval)."""
        best = self.best_retrieval_within(storage)
        return best <= retrieval + tol

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def shift(self, d_storage: float, d_retrieval: float, grid: "ThinningGrid | None" = None) -> "Frontier":
        """Add fixed costs to every point (attaching an edge / a node)."""
        if self.is_empty:
            return self
        return _prune(self.sto + d_storage, self.ret + d_retrieval, grid)

    def combine(self, other: "Frontier", grid: "ThinningGrid | None" = None) -> "Frontier":
        """(min,+) product: independent subproblems side by side."""
        if self.is_empty or other.is_empty:
            return _EMPTY_FRONTIER
        s = (self.sto[:, None] + other.sto[None, :]).ravel()
        r = (self.ret[:, None] + other.ret[None, :]).ravel()
        return _prune(s, r, grid)

    def union(self, other: "Frontier", grid: "ThinningGrid | None" = None) -> "Frontier":
        """Min-union: either alternative may realize the state."""
        if self.is_empty:
            return other if grid is None else _prune(other.sto, other.ret, grid)
        if other.is_empty:
            return self if grid is None else _prune(self.sto, self.ret, grid)
        return _prune(
            np.concatenate([self.sto, other.sto]),
            np.concatenate([self.ret, other.ret]),
            grid,
        )

    def __repr__(self) -> str:
        return f"<Frontier {len(self)} pts, sto[{self.min_storage():.3g}..]>"

    # -- invariants (used by hypothesis tests) --------------------------
    def check_invariants(self) -> None:
        """Assert canonical form: sorted, strictly dominating, finite."""
        s, r = self.sto, self.ret
        assert s.shape == r.shape
        if len(s) == 0:
            return
        assert np.all(np.diff(s) > 0), "storage must strictly increase"
        assert np.all(np.diff(r) < 0), "retrieval must strictly decrease"
        assert np.all(np.isfinite(s)) and np.all(np.isfinite(r))


_EMPTY_FRONTIER = Frontier(_EMPTY, _EMPTY)


def _prune(sto: np.ndarray, ret: np.ndarray, grid: ThinningGrid | None) -> Frontier:
    """Canonicalize: cap-filter, Pareto-reduce, optionally thin."""
    if sto.shape[0] == 0:
        return _EMPTY_FRONTIER
    if grid is not None:
        keep = sto <= grid.cap
        if not np.all(keep):
            sto = sto[keep]
            ret = ret[keep]
            if sto.shape[0] == 0:
                return _EMPTY_FRONTIER
    order = np.lexsort((ret, sto))
    s = sto[order]
    r = ret[order]
    cm = np.minimum.accumulate(r)
    keep = np.empty(len(r), dtype=bool)
    keep[0] = True
    # keep a point iff it strictly improves on the best retrieval so far
    keep[1:] = r[1:] < cm[:-1]
    s = s[keep]
    r = r[keep]
    if grid is not None and s.shape[0] > grid.max_points:
        lo, hi = float(s[0]), float(s[-1])
        if lo <= 0:
            # linear buckets when zero-storage points exist
            edges = np.linspace(hi / grid.max_points, hi, num=grid.max_points)
        else:
            edges = np.geomspace(lo, hi, num=grid.max_points)
        edges[-1] = hi
        bucket = np.searchsorted(edges, s, side="left")
        # retrieval strictly decreases along s, so the best point of each
        # bucket is its last element; the global min-storage point is
        # always kept so tight budgets stay feasible
        last = np.empty(len(s), dtype=bool)
        last[:-1] = bucket[:-1] != bucket[1:]
        last[-1] = True
        last[0] = True
        s = s[last]
        r = r[last]
    return Frontier(s, r)


def merge_frontiers(
    frontiers, grid: ThinningGrid | None = None
) -> Frontier:
    """Min-union of many frontiers (best over alternative states)."""
    stos = []
    rets = []
    for f in frontiers:
        if not f.is_empty:
            stos.append(f.sto)
            rets.append(f.ret)
    if not stos:
        return _EMPTY_FRONTIER
    return _prune(np.concatenate(stos), np.concatenate(rets), grid)
