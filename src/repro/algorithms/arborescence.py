"""Minimum spanning arborescence (Chu-Liu/Edmonds), from scratch.

The arborescence rooted at the auxiliary root and weighted by *storage*
cost is Problem 1 of Table 1 — the minimum-storage plan — and the
starting configuration of both LMG (Algorithm 1 line 7) and LMG-All
(Algorithm 7 line 2).  Weighted by ``storage + retrieval`` it is the
tree-extraction step of the DP heuristics (Section 6.2 step 1).

The implementation is the classic contraction algorithm:

1. every non-root node picks its cheapest incoming edge;
2. if the picked edges are acyclic they form the answer;
3. otherwise a cycle is contracted into a super-node, edge weights into
   the cycle are reduced by the weight of the cycle edge they would
   displace, and the algorithm repeats on the contracted graph; the
   cycles are then unrolled innermost-last, each dropping the one cycle
   edge displaced by the contracted level's choice.

The contraction loop is iterative (bidirectional graphs contract one
2-cycle per level, so natural graphs reach O(V) levels — a recursive
formulation overflows the interpreter stack around 1k versions), and
cycle discovery scans nodes in deterministic first-seen edge order so
the same graph yields the same arborescence in every process regardless
of hash randomization.  O(V·E); fine for every graph in the benchmark
suite, and :mod:`repro.fastgraph` carries a vectorized equivalent for
the solver hot paths.  Tests cross-check against
``networkx.minimum_spanning_arborescence``.
"""

from __future__ import annotations

from typing import Callable

from ..core.graph import AUX, Delta, GraphError, Node, VersionGraph
from ..core.solution import PlanTree

__all__ = [
    "minimum_arborescence",
    "min_storage_arborescence",
    "min_storage_plan_tree",
    "extract_tree_parent_map",
    "Weight",
]

Weight = Callable[[Node, Node, Delta], float]


def storage_weight(u: Node, v: Node, d: Delta) -> float:
    """Default weight: the delta's storage cost (Problem 1 / LMG init)."""
    return d.storage


def storage_plus_retrieval_weight(u: Node, v: Node, d: Delta) -> float:
    """Tree-extraction weight of Section 6.2: ``s_e + r_e``."""
    return d.storage + d.retrieval


def minimum_arborescence(
    graph: VersionGraph,
    root: Node,
    weight: Weight = storage_weight,
) -> dict[Node, Node]:
    """Parent map of the minimum arborescence of ``graph`` rooted at ``root``.

    Raises :class:`GraphError` when some node is unreachable from the
    root.  Deterministic: ties are broken by edge insertion order.  The
    returned map is keyed in **graph insertion order**, so downstream
    float accumulations over it (``PlanTree`` storage/retrieval totals)
    are reproducible and bit-identical to the fastgraph kernels, which
    consume parent maps in node-index order.
    """
    nodes = [v for v in graph.versions]
    if root not in graph:
        raise GraphError(f"root {root!r} not in graph")

    # Edge list with original endpoints; weights precomputed once.
    edges: list[tuple[Node, Node, float]] = []
    for u, v, d in graph.deltas():
        if v == root:
            continue  # edges into the root are never useful
        edges.append((u, v, weight(u, v, d)))

    parent_of = _edmonds(edges)
    missing = [v for v in nodes if v != root and v not in parent_of]
    if missing:
        raise GraphError(f"nodes unreachable from root: {missing[:5]!r}")
    return {v: parent_of[v] for v in nodes if v != root}


def _best_incoming(
    edges: list[tuple[Node, Node, float]],
) -> dict[Node, tuple[Node, float, int]]:
    """Cheapest incoming edge per node; ties keep the earliest edge."""
    best_in: dict[Node, tuple[Node, float, int]] = {}
    for idx, (u, v, w) in enumerate(edges):
        if u == v:
            continue
        cur = best_in.get(v)
        if cur is None or w < cur[1]:
            best_in[v] = (u, w, idx)
    return best_in


def _first_cycle(best_in: dict[Node, tuple[Node, float, int]]) -> list[Node] | None:
    """First cycle among the picked edges, scanning starts in ``best_in``
    insertion order (= first-seen edge order) so the choice — and with it
    the whole arborescence — is identical in every process, independent
    of hash randomization."""
    color: dict[Node, int] = {}
    for start in best_in:
        if start in color:
            continue
        path = []
        x: Node = start
        while x in best_in and x not in color:
            color[x] = 1  # on current path
            path.append(x)
            x = best_in[x][0]
        cycle = None
        if x in color and color[x] == 1:
            # found a cycle: suffix of path starting at x
            cycle = path[path.index(x):]
        for y in path:
            color[y] = 2
        if cycle:
            return cycle
    return None


def _edmonds(edges: list[tuple[Node, Node, float]]) -> dict[Node, Node]:
    """Iterative Chu-Liu/Edmonds on an explicit edge list.

    ``edges`` entries are ``(u, v, w)``; returns ``{v: u}`` over the
    *original* node ids.  The caller must pre-filter edges into the
    intended root (the root is simply the node that never appears as a
    destination).  Super-nodes created by contraction are tuples from an
    internal counter to avoid clashing with user node ids.  The
    contraction phase records one level per contracted cycle; the unroll
    phase then walks the levels innermost-first.
    """
    # -- contraction phase: one cycle per level -------------------------
    levels: list[
        tuple[
            dict[Node, tuple[Node, float, int]],  # best_in at this level
            list[Node],  # contracted cycle
            list[tuple[Node, Node, float]],  # relabeled edges
            dict[int, tuple[Node, Node]],  # new edge idx -> pre-relabel endpoints
            Node,  # super node id
        ]
    ] = []
    while True:
        best_in = _best_incoming(edges)
        cycle = _first_cycle(best_in)
        if cycle is None:
            result = {v: u for v, (u, w, i) in best_in.items()}
            break

        cyc_set = set(cycle)
        super_node: Node = ("__cyc__", len(levels), len(cycle))
        new_edges: list[tuple[Node, Node, float]] = []
        # bookkeeping: for each relabeled edge remember the endpoints at
        # this level so the unroll can translate choices back down.
        into_cycle: dict[int, tuple[Node, Node]] = {}
        for u, v, w in edges:
            if u in cyc_set and v in cyc_set:
                continue
            if v in cyc_set:
                # displaced cycle edge is best_in[v]
                reduced = w - best_in[v][1]
                new_edges.append((u, super_node, reduced))
                into_cycle[len(new_edges) - 1] = (u, v)
            elif u in cyc_set:
                new_edges.append((super_node, v, w))
                into_cycle[len(new_edges) - 1] = (u, v)
            else:
                new_edges.append((u, v, w))
                into_cycle[len(new_edges) - 1] = (u, v)
        levels.append((best_in, cycle, new_edges, into_cycle, super_node))
        edges = new_edges

    # -- unroll phase: translate each level's choices back down ---------
    # For each (u_new, v_new) edge of the contracted answer pick the
    # matching new_edges entry with minimal weight (that is the edge the
    # contracted level effectively used).
    for best_in, cycle, new_edges, into_cycle, super_node in reversed(levels):
        sub = result
        result = {}
        entered_at: Node | None = None
        chosen: dict[tuple[Node, Node], tuple[Node, Node, float]] = {}
        for idx, (u_new, v_new, w) in enumerate(new_edges):
            key = (u_new, v_new)
            orig_u, orig_v = into_cycle[idx]
            cur = chosen.get(key)
            if cur is None or w < cur[2]:
                chosen[key] = (orig_u, orig_v, w)
        for v_new, u_new in sub.items():
            orig_u, orig_v, _ = chosen[(u_new, v_new)]
            result[orig_v] = orig_u
            if v_new == super_node:
                entered_at = orig_v

        # cycle edges: keep all but the one displaced by the entering edge
        for v in cycle:
            if v != entered_at:
                result[v] = best_in[v][0]
    return result


def min_storage_arborescence(graph: VersionGraph) -> dict[Node, Node]:
    """Minimum-storage parent map on the extended graph (Problem 1).

    Accepts either a base graph (extended automatically) or an already
    extended graph.
    """
    ext = graph if graph.has_aux else graph.extended()
    return minimum_arborescence(ext, AUX, storage_weight)


def min_storage_plan_tree(graph: VersionGraph) -> PlanTree:
    """The minimum-storage configuration as a mutable :class:`PlanTree`."""
    ext = graph if graph.has_aux else graph.extended()
    return PlanTree(ext, min_storage_arborescence(ext))


def extract_tree_parent_map(
    graph: VersionGraph, root: Node | None = None
) -> tuple[Node, dict[Node, Node]]:
    """Section 6.2 step 1: min arborescence under ``s + r`` weights.

    ``graph`` must be a base (non-extended) version graph.  When ``root``
    is None the version with the smallest materialization cost is used
    ("fix a node v_root as root").  Returns ``(root, parent_map)``; the
    map covers every version except the root.  Raises
    :class:`GraphError` when some version is unreachable from the root —
    natural and ER graphs are bidirectional, so this only happens on
    degenerate inputs.
    """
    if graph.has_aux:
        raise GraphError("tree extraction expects the base graph, not the extended one")
    if root is not None:
        return root, minimum_arborescence(graph, root, storage_plus_retrieval_weight)
    # Prefer the cheapest version as root, but purely-directed graphs may
    # not be spannable from it — fall back through versions by storage
    # cost until one spans (bidirectional graphs always succeed first).
    last_err: GraphError | None = None
    for cand in sorted(graph.versions, key=lambda v: (graph.storage_cost(v), str(v))):
        try:
            return cand, minimum_arborescence(graph, cand, storage_plus_retrieval_weight)
        except GraphError as err:
            last_err = err
    raise GraphError(f"no version spans the graph: {last_err}")
