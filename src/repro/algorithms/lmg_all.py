"""LMG-All — the paper's improved greedy for MSR (Algorithm 7, §6.1).

LMG only ever *materializes* versions.  LMG-All enlarges the move set to
every edge of the extended graph: a greedy step may re-route any version
``v`` to retrieve through any non-descendant ``u`` (materialization is
the special case ``u = AUX``).  Each step picks the move maximizing

``rho_e = (retrieval reduction) / (storage increase)``

with storage-non-increasing, retrieval-reducing moves ranked first
(``rho = inf``).  Moves that would exceed the storage budget or create a
cycle are skipped.

The paper finds LMG-All beats LMG on every dataset and — surprisingly —
runs *faster* on large sparse natural graphs because its moves are
smaller and cheaper to apply; our implementation preserves that
behaviour (see ``benchmarks/bench_fig11_msr_compressed.py``).

Complexity: one greedy round scans all O(E) edges with O(1) move
evaluation (cached subtree sizes + Euler-interval ancestor tests);
applying a move costs O(subtree + depth) and marks the Euler intervals
dirty (rebuilt lazily in O(V)).
"""

from __future__ import annotations


from ..core.graph import AUX, Node, VersionGraph
from ..core.tolerance import within_budget
from ..core.solution import PlanTree
from .arborescence import min_storage_plan_tree

__all__ = ["lmg_all"]


def lmg_all(
    graph: VersionGraph,
    storage_budget: float,
    *,
    max_iterations: int | None = None,
) -> PlanTree:
    """Run LMG-All for MSR. Returns the final :class:`PlanTree`.

    ``max_iterations`` caps greedy rounds (default ``4|V| + 64``; the
    loop almost always stops far earlier because every applied move
    strictly reduces total retrieval).
    """
    tree = min_storage_plan_tree(graph)
    ext = tree.graph
    if not within_budget(tree.total_storage, storage_budget):
        raise ValueError(
            f"storage budget {storage_budget} below minimum storage "
            f"{tree.total_storage}: MSR infeasible"
        )
    # Candidate edges: all deltas of the extended graph (aux edges model
    # materialization).  Precomputed once; per-round filtering handles
    # the tree-dependent conditions.
    edges: list[tuple[Node, Node]] = [(u, v) for u, v, _ in ext.deltas()]
    rounds = max_iterations if max_iterations is not None else 4 * len(tree.parent) + 64

    for _ in range(rounds):
        if tree.total_storage >= storage_budget:
            break
        best_key: tuple[int, float] | None = None  # (finite?, rho or reduction)
        best_move: tuple[Node, Node] | None = None
        tree.refresh_euler()
        for u, v in edges:
            if tree.parent[v] == u:
                continue
            if u is not AUX and tree.is_ancestor(v, u):
                continue  # would create a cycle (u descends from v)
            ds, dr = tree.swap_deltas(u, v)
            if dr >= 0:
                continue  # Algorithm 7 line 9: skip retrieval-non-improving
            if not within_budget(tree.total_storage + ds, storage_budget):
                continue
            reduction = -dr
            if ds <= 0:
                key = (1, reduction)  # rho = inf tier, larger reduction first
            else:
                key = (0, reduction / ds)
            if best_key is None or key > best_key:
                best_key = key
                best_move = (u, v)
        if best_move is None:
            break
        tree.apply_swap(*best_move)
    return tree
